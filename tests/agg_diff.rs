//! Aggregation differential tests: GROUP BY results must be
//! *bit-identical* — same rows, same order, same float bit patterns —
//! across engines (columnar vs row-at-a-time), prune on/off,
//! aggregation pushdown on/off, and thread counts (with injected
//! per-morsel jitter shuffling steal orders). The canonical fold unit
//! is the aligned file chunk, so every configuration folds the same
//! tree; the handwritten L0 oracle replicates that tree from the raw
//! files with an independent accumulator implementation.

use std::io::Write as _;

use dv_core::{ExecMode, QueryOptions, Virtualizer};
use dv_datagen::{ipars, IparsConfig, IparsLayout};
use dv_handwritten::HandIparsL0;
use dv_integration::scratch;
use dv_sql::{bind, parse, UdfRegistry};
use dv_types::{Table, Value};
use proptest::prelude::*;

fn cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 40, grid_per_dir: 50, dirs: 2, nodes: 2, seed: 93 }
}

fn opts(threads: usize, exec: ExecMode, no_prune: bool, no_agg_pushdown: bool) -> QueryOptions {
    QueryOptions {
        intra_node_threads: threads,
        exec,
        no_prune,
        no_agg_pushdown,
        ..Default::default()
    }
}

const AGG_QUERIES: &[&str] = &[
    "SELECT REL, TIME, COUNT(*), SUM(SOIL), MIN(PGAS), MAX(PGAS), AVG(SOIL) \
     FROM IparsData GROUP BY REL, TIME",
    "SELECT TIME, AVG(SOIL) FROM IparsData WHERE SOIL > 0.3 GROUP BY TIME",
    "SELECT COUNT(*), SUM(SOIL), MIN(SOIL), MAX(SOIL), AVG(PGAS) FROM IparsData",
    "SELECT REL FROM IparsData GROUP BY REL",
    "SELECT MAX(SOIL) FROM IparsData WHERE TIME <= 13 GROUP BY REL",
];

/// Require *bit* equality, not `total_cmp` equality: `assert_eq!` on
/// `Value` would already distinguish NaN payloads and -0.0, but spell
/// the comparison out so a future `PartialEq` loosening can't silently
/// weaken the suite.
fn assert_bit_identical(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows.len(), b.rows.len(), "{what}: row count");
    for (i, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{what}: row {i} width");
        for (va, vb) in ra.iter().zip(rb) {
            let same = match (va, vb) {
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
                _ => va == vb,
            };
            assert!(same, "{what}: row {i} diverged: {ra:?} vs {rb:?}");
        }
    }
}

/// Every (engine × prune × pushdown × thread-count) combination
/// returns exactly the serial columnar pushdown result, bit for bit,
/// even with jitter shuffling morsel completion order.
#[test]
fn aggregates_bit_match_across_engines_prune_pushdown_threads() {
    std::env::set_var("DV_MORSEL_JITTER", "2");
    let base = scratch("agg-diff-l0");
    let descriptor = ipars::generate(&base, &cfg(), IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor)
        .storage_base(&base)
        .max_intra_node_threads(8)
        .build()
        .unwrap();
    for sql in AGG_QUERIES {
        let (oracle, _) = v.query_with(sql, &opts(1, ExecMode::Columnar, false, false)).unwrap();
        // Aggregate results are always delivered whole to processor 0.
        assert!(!oracle[0].rows.is_empty(), "{sql}: degenerate diff");
        for exec in [ExecMode::Columnar, ExecMode::RowAtATime] {
            for no_prune in [false, true] {
                for no_push in [false, true] {
                    for threads in [1usize, 2, 8] {
                        let (tables, _) =
                            v.query_with(sql, &opts(threads, exec, no_prune, no_push)).unwrap();
                        assert_bit_identical(
                            &tables[0],
                            &oracle[0],
                            &format!(
                                "{sql} [{exec:?} no_prune={no_prune} \
                                 no_push={no_push} threads={threads}]"
                            ),
                        );
                    }
                }
            }
        }
    }
    std::env::remove_var("DV_MORSEL_JITTER");
}

/// The same fold tree replicated by hand from the raw L0 files, with
/// an independent accumulator implementation.
#[test]
fn aggregates_bit_match_handwritten_oracle() {
    let base = scratch("agg-diff-hand");
    let descriptor = ipars::generate(&base, &cfg(), IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor)
        .storage_base(&base)
        .max_intra_node_threads(8)
        .build()
        .unwrap();
    let hand = HandIparsL0::new(base, cfg().clone(), UdfRegistry::with_builtins());
    for sql in AGG_QUERIES {
        let bq = bind(&parse(sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let expect = hand.execute_agg(&bq).unwrap();
        for exec in [ExecMode::Columnar, ExecMode::RowAtATime] {
            for threads in [1usize, 8] {
                let (tables, _) = v.query_with(sql, &opts(threads, exec, false, false)).unwrap();
                assert_bit_identical(
                    &tables[0],
                    &expect,
                    &format!("{sql} [{exec:?} threads={threads}] vs handwritten"),
                );
            }
        }
    }
}

/// A layout whose chunk boundaries differ from L0 (single all-in-one
/// file) still agrees with itself across every configuration — the
/// fold tree is per-layout canonical, not global.
#[test]
fn aggregates_bit_match_on_other_layouts() {
    for layout in [IparsLayout::II, IparsLayout::V] {
        let base = scratch(&format!("agg-diff-{}", layout.tag()));
        let descriptor = ipars::generate(&base, &cfg(), layout).unwrap();
        let v = Virtualizer::builder(&descriptor)
            .storage_base(&base)
            .max_intra_node_threads(8)
            .build()
            .unwrap();
        let sql = AGG_QUERIES[0];
        let (oracle, _) = v.query_with(sql, &opts(1, ExecMode::Columnar, false, false)).unwrap();
        for exec in [ExecMode::Columnar, ExecMode::RowAtATime] {
            for no_push in [false, true] {
                for threads in [1usize, 8] {
                    let (tables, _) =
                        v.query_with(sql, &opts(threads, exec, false, no_push)).unwrap();
                    assert_bit_identical(
                        &tables[0],
                        &oracle[0],
                        &format!("{} [{exec:?} no_push={no_push} threads={threads}]", layout.tag()),
                    );
                }
            }
        }
    }
}

/// A global aggregate over an empty selection returns an empty table
/// (SQL would say one NULL row; the subset has no NULLs — documented
/// in LANGUAGE.md).
#[test]
fn empty_selection_yields_empty_table() {
    let base = scratch("agg-diff-empty");
    let descriptor = ipars::generate(&base, &cfg(), IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    for no_push in [false, true] {
        let (tables, _) = v
            .query_with(
                "SELECT COUNT(*), SUM(SOIL) FROM IparsData WHERE TIME > 90000",
                &opts(2, ExecMode::Columnar, false, no_push),
            )
            .unwrap();
        assert!(tables[0].rows.is_empty(), "no_push={no_push}");
    }
}

/// NaN-laden data: every NaN bit pattern collapses into one group key;
/// SUM/AVG propagate NaN; MIN/MAX use total_cmp (NaN above all
/// numbers); -0.0 and +0.0 form distinct groups. All of it stable
/// across engines, pushdown modes and thread counts.
#[test]
fn nan_and_signed_zero_groups() {
    const DESC: &str = r#"
[S]
TIME = int
V = float
W = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATAINDEX { TIME }
  DATA { DATASET leaf }
  DATASET "leaf" {
    DATASPACE { LOOP TIME 1:6:1 { LOOP G 1:4:1 { V W } } }
    DATA { DIR[0]/f0 }
  }
}
"#;
    let base = scratch("agg-diff-nan");
    let dir = base.join("n0").join("d");
    std::fs::create_dir_all(&dir).unwrap();
    // 6 times × 4 grid points × (V, W) f32 records. V cycles through
    // NaN (two payloads), ±0.0 and normals; W is a plain ramp.
    let v_vals: [f32; 8] = [
        f32::NAN,
        1.5,
        -0.0,
        f32::from_bits(0x7fc0_0001), // NaN, different payload
        0.0,
        2.5,
        f32::from_bits(0xffc0_0000), // negative NaN
        1.5,
    ];
    let mut bytes = Vec::new();
    for i in 0..24 {
        bytes.extend_from_slice(&v_vals[i % v_vals.len()].to_le_bytes());
        bytes.extend_from_slice(&(i as f32).to_le_bytes());
    }
    let mut f = std::fs::File::create(dir.join("f0")).unwrap();
    f.write_all(&bytes).unwrap();
    drop(f);

    let v =
        Virtualizer::builder(DESC).storage_base(&base).max_intra_node_threads(8).build().unwrap();
    let sql = "SELECT V, COUNT(*), SUM(W), MIN(W), MAX(V), AVG(W) FROM D GROUP BY V";
    let (oracle, _) = v.query_with(sql, &opts(1, ExecMode::Columnar, false, false)).unwrap();
    // 3 NaN patterns collapse to one group; -0.0 and 0.0 stay apart:
    // groups are {NaN, -0.0, 0.0, 1.5, 2.5}.
    assert_eq!(oracle[0].rows.len(), 5, "{}", oracle[0]);
    let keys: Vec<f32> = oracle[0]
        .rows
        .iter()
        .map(|r| match r[0] {
            Value::Float(x) => x,
            ref v => panic!("group key should be float, got {v:?}"),
        })
        .collect();
    assert_eq!(keys[0].to_bits(), (-0.0f32).to_bits(), "sorted order starts at -0.0");
    assert_eq!(keys[1].to_bits(), (0.0f32).to_bits());
    assert!(keys[4].is_nan(), "NaN group sorts last under total_cmp");
    // NaN group: 3 patterns × 3 full cycles = 9 rows.
    assert_eq!(oracle[0].rows[4][1], Value::Long(9));
    // MAX(V) of the 1.5 group is 1.5 exactly.
    assert_eq!(oracle[0].rows[2][4], Value::Float(1.5));

    std::env::set_var("DV_MORSEL_JITTER", "1");
    for exec in [ExecMode::Columnar, ExecMode::RowAtATime] {
        for no_push in [false, true] {
            for threads in [1usize, 2, 8] {
                let (tables, _) = v.query_with(sql, &opts(threads, exec, false, no_push)).unwrap();
                assert_bit_identical(
                    &tables[0],
                    &oracle[0],
                    &format!("nan [{exec:?} no_push={no_push} threads={threads}]"),
                );
            }
        }
    }
    std::env::remove_var("DV_MORSEL_JITTER");
}

const PROP_CALLS: [&str; 6] =
    ["COUNT(*)", "SUM(SOIL)", "MIN(PGAS)", "MAX(SOIL)", "AVG(PGAS)", "AVG(SOIL)"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random GROUP BY queries: both engines, both pushdown modes and
    /// a parallel run all agree with the serial columnar pushdown
    /// fold, bit for bit.
    #[test]
    fn prop_random_group_by_queries(
        group_sel in 0usize..3,
        call_idx in prop::collection::vec(0usize..PROP_CALLS.len(), 1..4),
        pred in prop::option::of((1i64..7, any::<bool>())),
    ) {
        // One shared small dataset (built on first use, cheap to keep).
        use std::sync::OnceLock;
        static V: OnceLock<Virtualizer> = OnceLock::new();
        let v = V.get_or_init(|| {
            let base = scratch("agg-diff-prop");
            let small = IparsConfig {
                realizations: 2, time_steps: 6, grid_per_dir: 10, dirs: 2, nodes: 2, seed: 7,
            };
            let descriptor = ipars::generate(&base, &small, IparsLayout::L0).unwrap();
            Virtualizer::builder(&descriptor)
                .storage_base(&base)
                .max_intra_node_threads(8)
                .build()
                .unwrap()
        });
        let group: &[&str] = match group_sel {
            0 => &["REL"],
            1 => &["TIME"],
            _ => &["REL", "TIME"],
        };
        let mut calls: Vec<&str> = call_idx.iter().map(|&i| PROP_CALLS[i]).collect();
        calls.sort();
        calls.dedup();
        let sql = format!(
            "SELECT {}, {} FROM IparsData{} GROUP BY {}",
            group.join(", "),
            calls.join(", "),
            match pred {
                Some((t, true)) => format!(" WHERE TIME <= {t}"),
                Some((t, false)) => format!(" WHERE TIME >= {t} AND SOIL > 0.4"),
                None => String::new(),
            },
            group.join(", "),
        );
        let (oracle, _) = v.query_with(&sql, &opts(1, ExecMode::Columnar, false, false)).unwrap();
        for (exec, no_push, threads) in [
            (ExecMode::RowAtATime, false, 1),
            (ExecMode::Columnar, true, 1),
            (ExecMode::RowAtATime, true, 8),
            (ExecMode::Columnar, false, 8),
        ] {
            let (tables, _) = v.query_with(&sql, &opts(threads, exec, false, no_push)).unwrap();
            assert_bit_identical(
                &tables[0],
                &oracle[0],
                &format!("{sql} [{exec:?} no_push={no_push} threads={threads}]"),
            );
        }
    }
}
