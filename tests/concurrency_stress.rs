//! Stress tests for the query service plane: concurrent clients over
//! one shared server must get bit-identical results to serial runs,
//! cancellation must free admission slots and leave no orphaned work,
//! per-query cache accounting must stay consistent under sharing, and
//! a panicking UDF must surface as a query error without killing the
//! server.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dv_bench::queries::ipars_queries;
use dv_core::{BandwidthModel, QueryOptions, SubmitOptions, Virtualizer};
use dv_datagen::{ipars, IparsConfig, IparsLayout};
use dv_integration::scratch;

fn cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 40, grid_per_dir: 50, dirs: 2, nodes: 2, seed: 99 }
}

fn build(tag: &str, max_concurrent: usize) -> Virtualizer {
    let base = scratch(tag);
    let descriptor = ipars::generate(&base, &cfg(), IparsLayout::L0).unwrap();
    Virtualizer::builder(&descriptor)
        .storage_base(&base)
        .max_concurrent(max_concurrent)
        .build()
        .unwrap()
}

/// A link slow enough that a full-scan transfer takes many seconds —
/// cancellation tests must interrupt it mid-move, never win by racing
/// a fast query to completion.
fn crawl() -> QueryOptions {
    QueryOptions {
        bandwidth: Some(BandwidthModel {
            bytes_per_sec: 64.0 * 1024.0,
            latency: Duration::from_millis(1),
        }),
        ..QueryOptions::default()
    }
}

/// N client threads running the mixed benchmark workload concurrently
/// get exactly the rows the serial runs got (canonical-sorted
/// bit-match), and the admission limit is never exceeded.
#[test]
fn concurrent_clients_bit_match_serial() {
    let v = Arc::new(build("stress-bitmatch", 4));
    let queries: Vec<String> =
        ipars_queries("IparsData", cfg().time_steps).into_iter().map(|q| q.sql).take(4).collect();
    let serial: Vec<_> = queries
        .iter()
        .map(|sql| v.query_with(sql, &QueryOptions::default()).unwrap().0.remove(0))
        .collect();

    let max_running_seen = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for client in 0..8usize {
            let v = Arc::clone(&v);
            let queries = &queries;
            let serial = &serial;
            let seen = Arc::clone(&max_running_seen);
            scope.spawn(move || {
                for (i, sql) in queries.iter().enumerate() {
                    // Rotate the starting query per client so different
                    // queries genuinely overlap.
                    let i = (i + client) % queries.len();
                    let handle = v
                        .submit(&queries[i], &QueryOptions::default(), &SubmitOptions::default())
                        .unwrap();
                    seen.fetch_max(v.service().running(), Ordering::Relaxed);
                    let (mut tables, stats) = handle.wait().unwrap();
                    let table = tables.remove(0);
                    assert!(
                        table.same_rows(&serial[i]),
                        "client {client} query {i} ({sql}): {} rows vs {} serial",
                        table.len(),
                        serial[i].len()
                    );
                    assert!(stats.query_id > 0);
                }
            });
        }
    });
    assert!(max_running_seen.load(Ordering::Relaxed) <= 4, "admission limit exceeded");
    assert_eq!(v.service().running(), 0, "all slots released");
    assert_eq!(v.service().queued(), 0, "no waiter left behind");
}

/// Concurrent clients × morsel-parallel node pools: every query runs
/// with an explicit 8-thread pool (stealing active inside each node)
/// while 8 clients hammer the shared server — results must still be
/// bit-identical to the serial oracle, now in exact row order, not
/// just as a sorted multiset.
#[test]
fn concurrent_morsel_pools_bit_match_serial_in_order() {
    let base = scratch("stress-morsel");
    let descriptor = ipars::generate(&base, &cfg(), IparsLayout::L0).unwrap();
    let v = Arc::new(
        Virtualizer::builder(&descriptor)
            .storage_base(&base)
            .max_concurrent(4)
            .max_intra_node_threads(8)
            .build()
            .unwrap(),
    );
    let pool = QueryOptions { intra_node_threads: 8, ..QueryOptions::default() };
    let serial = QueryOptions { intra_node_threads: 1, ..QueryOptions::default() };
    let queries: Vec<String> =
        ipars_queries("IparsData", cfg().time_steps).into_iter().map(|q| q.sql).take(4).collect();
    let oracle: Vec<_> =
        queries.iter().map(|sql| v.query_with(sql, &serial).unwrap().0.remove(0)).collect();

    std::thread::scope(|scope| {
        for client in 0..8usize {
            let v = Arc::clone(&v);
            let queries = &queries;
            let oracle = &oracle;
            let pool = &pool;
            scope.spawn(move || {
                for (i, _) in queries.iter().enumerate() {
                    let i = (i + client) % queries.len();
                    let (mut tables, stats) = v.query_with(&queries[i], pool).unwrap();
                    let table = tables.remove(0);
                    assert_eq!(
                        table.rows, oracle[i].rows,
                        "client {client} query {i}: morsel-parallel rows diverged from serial"
                    );
                    assert!(stats.morsels.planned > 0, "morsel plan recorded");
                }
            });
        }
    });
    assert_eq!(v.service().running(), 0, "all slots released");
}

/// A timed-out query returns `Cancelled`, releases its admission slot,
/// and the very next query on the same server succeeds — no orphaned
/// cluster job holds the slot or wedges the workers.
#[test]
fn timeout_frees_slot_and_server_survives() {
    let v = build("stress-timeout", 1);
    let sub = SubmitOptions { timeout: Some(Duration::from_millis(40)), ..Default::default() };
    let handle = v.submit("SELECT * FROM IparsData", &crawl(), &sub).unwrap();
    let err = handle.wait().unwrap_err();
    assert!(err.is_cancelled(), "expected a cancellation, got: {err}");
    assert!(err.to_string().contains("deadline exceeded"), "{err}");

    assert_eq!(v.service().running(), 0, "timed-out query must release its slot");
    assert_eq!(v.service().queued(), 0);
    let (table, _) = v.query("SELECT REL, TIME FROM IparsData WHERE TIME = 1").unwrap();
    assert!(!table.rows.is_empty(), "server must keep serving after a timeout");
}

/// Dropping a session handle without waiting cancels the query
/// (client-side drop abort); an explicit `cancel()` by id does too.
#[test]
fn client_drop_and_explicit_cancel_abort_the_query() {
    let v = build("stress-drop", 2);

    // Drop abort: the handle goes away, the token must trip.
    let handle = v.submit("SELECT * FROM IparsData", &crawl(), &SubmitOptions::default()).unwrap();
    let token = handle.cancel_token().clone();
    drop(handle);
    assert!(token.is_cancelled(), "dropping an unwaited session must cancel it");

    // Explicit cancel by id through the service.
    let handle = v.submit("SELECT * FROM IparsData", &crawl(), &SubmitOptions::default()).unwrap();
    let id = handle.id();
    assert!(v.service().cancel(id), "live query id must be cancellable");
    let err = handle.wait().unwrap_err();
    assert!(err.is_cancelled(), "{err}");

    // Both sessions are gone; the server is idle and healthy.
    deadline_assert(|| v.service().running() == 0, "slots drain after aborts");
    assert!(v.query("SELECT REL FROM IparsData WHERE TIME = 1").is_ok());
}

/// Per-query I/O accounting stays consistent when queries share the
/// segment cache: on the cache-enabled path every issued byte is a
/// recorded miss, every miss is inserted, and hits+misses cover the
/// cache traffic — with no cross-query bleed making a query's counters
/// internally inconsistent.
#[test]
fn shared_cache_accounting_is_consistent_per_query() {
    let v = Arc::new(build("stress-cache", 4));
    let sql = "SELECT REL, TIME, SOIL FROM IparsData WHERE TIME <= 20";

    let snaps: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let v = Arc::clone(&v);
                scope.spawn(move || {
                    let (_, stats) = v.query_with(sql, &QueryOptions::default()).unwrap();
                    stats.io
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut total_miss = 0;
    for (i, io) in snaps.iter().enumerate() {
        assert_eq!(
            io.bytes_issued, io.cache_miss_bytes,
            "query {i}: every issued byte is a cache miss on the cached path"
        );
        assert_eq!(io.cache_miss_bytes, io.cache_insert_bytes, "query {i}: every miss is inserted");
        assert!(io.cache_hit_bytes + io.cache_miss_bytes > 0, "query {i}: cache traffic recorded");
        total_miss += io.cache_miss_bytes;
    }
    // The four identical queries share one cache: collectively they
    // must not have read the dataset four times over.
    let solo = snaps[0].cache_hit_bytes + snaps[0].cache_miss_bytes;
    assert!(
        total_miss < 4 * solo,
        "sharing must deduplicate reads: {total_miss} miss bytes vs {solo} per query"
    );
}

/// A UDF that panics mid-filter becomes a query error naming the
/// panic, the cluster workers survive, and the same server answers the
/// next query normally.
#[test]
fn panicking_udf_is_a_query_error_not_a_dead_server() {
    let base = scratch("stress-panic");
    let descriptor = ipars::generate(&base, &cfg(), IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor)
        .storage_base(&base)
        .udf("BOOM", Some(1), |a| {
            if a[0] > -1.0 {
                panic!("udf exploded");
            }
            a[0]
        })
        .build()
        .unwrap();

    let err = v.query("SELECT REL FROM IparsData WHERE BOOM(SOIL) > 0.5").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("panicked") && msg.contains("udf exploded"), "{msg}");

    assert_eq!(v.service().running(), 0, "failed query must release its slot");
    let (table, _) = v.query("SELECT REL, TIME FROM IparsData WHERE TIME = 1").unwrap();
    assert!(!table.rows.is_empty(), "server must survive a panicking fragment");
}

/// The absorber streams: with in-order per-node block arrival
/// (single worker per node) the reorder buffer holds at most the
/// in-flight morsels' blocks, never the whole result. The old
/// buffer-everything-then-sort absorber would peak at every data
/// block of the query; the watermark drain must stay well below that.
#[test]
fn absorber_reorder_buffer_is_bounded_by_inflight_blocks() {
    let v = build("stress-absorber", 4);
    // Small blocks + small morsels: many sends, many MorselDone
    // watermark advances.
    let opts = QueryOptions {
        intra_node_threads: 1,
        batch_rows: 100,
        morsel_bytes: 16 * 1024,
        ..QueryOptions::default()
    };
    let (tables, stats) = v.query_with("SELECT * FROM IparsData", &opts).unwrap();
    assert!(!tables[0].rows.is_empty());
    assert!(
        stats.mover.sends > 20,
        "need many blocks for a meaningful bound: {}",
        stats.mover.sends
    );
    assert!(
        stats.mover.peak_buffered_blocks * 3 <= stats.mover.sends,
        "streaming absorber must not buffer the whole result: peak {} of {} sends",
        stats.mover.peak_buffered_blocks,
        stats.mover.sends
    );

    // Parallel workers with steal jitter still drain incrementally;
    // the result stays bit-identical (covered by morsel_diff) and the
    // peak can never exceed the total data sends.
    std::env::set_var("DV_MORSEL_JITTER", "1");
    let (_, par) = v
        .query_with(
            "SELECT * FROM IparsData",
            &QueryOptions { intra_node_threads: 8, batch_rows: 100, ..QueryOptions::default() },
        )
        .unwrap();
    std::env::remove_var("DV_MORSEL_JITTER");
    assert!(par.mover.peak_buffered_blocks <= par.mover.sends);

    // Aggregate queries never enter the reorder buffer at all: with
    // pushdown the nodes ship partials, without it the absorber folds
    // each block into a partial on arrival.
    for no_agg_pushdown in [false, true] {
        let (_, agg) = v
            .query_with(
                "SELECT REL, TIME, AVG(SOIL) FROM IparsData GROUP BY REL, TIME",
                &QueryOptions { intra_node_threads: 8, no_agg_pushdown, ..QueryOptions::default() },
            )
            .unwrap();
        assert_eq!(
            agg.mover.peak_buffered_blocks, 0,
            "aggregation (no_agg_pushdown={no_agg_pushdown}) must not buffer data blocks"
        );
    }
}

/// Poll `cond` for up to two seconds before failing — session threads
/// are detached, so slot release may trail `wait()` by a scheduling
/// quantum.
fn deadline_assert(cond: impl Fn() -> bool, what: &str) {
    for _ in 0..200 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for: {what}");
}
