//! Soundness suite for the dv-cost static analysis: across every
//! shipped layout, the bench-style query set, prune on/off,
//! aggregation pushdown on/off and thread counts {1, 8}, every runtime
//! counter in [`QueryStats`] must stay within its static bound.
//!
//! The suite runs with `DV_COST_VALIDATE=1`, so the server's own
//! drain-time validation is armed for every query here (a violation
//! fails the query itself), and additionally rebuilds the
//! [`CostReport`] out-of-band to assert the bounds explicitly — the
//! empirical half of the soundness argument in
//! `crates/layout/src/cost.rs`.

use dv_core::{CostParams, CostReport, ExecMode, QueryOptions, Virtualizer};
use dv_datagen::{ipars, titan, IparsConfig, IparsLayout, TitanConfig};
use dv_integration::scratch;
use dv_layout::{NodePlan, RuntimeCounters};

fn ipars_cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 40, grid_per_dir: 50, dirs: 2, nodes: 2, seed: 91 }
}

fn arm_validation() {
    std::env::set_var("DV_COST_VALIDATE", "1");
}

/// Rebuild the static report exactly as the admission path does: same
/// prep (prune/pushdown toggles applied), same per-node plans, same
/// cost parameters.
fn static_report(v: &Virtualizer, sql: &str, opts: &QueryOptions) -> CostReport {
    let bq = v.server().bind_sql(sql).unwrap();
    let compiled = v.server().compiled();
    let mut prep = compiled.prepare_query(&bq).unwrap();
    if opts.no_prune {
        prep.prune_enabled = false;
    }
    if opts.no_agg_pushdown {
        prep.agg_pushdown = false;
    }
    let plans: Vec<NodePlan> =
        (0..compiled.model.node_count()).map(|n| compiled.plan_node(&prep, n).unwrap()).collect();
    let mut params = CostParams::new(&opts.io, opts.client_processors, bq.predicate.is_some());
    params.io_enabled = opts.io.enabled && opts.exec == ExecMode::Columnar;
    CostReport::analyze_nodes(
        &plans,
        &prep.working,
        &prep.output_positions,
        prep.agg.as_ref(),
        prep.agg_pushdown,
        &params,
    )
}

fn counters(stats: &dv_core::QueryStats) -> RuntimeCounters {
    RuntimeCounters {
        rows_scanned: stats.rows_scanned,
        rows_selected: stats.rows_selected,
        bytes_read: stats.bytes_read,
        afcs: stats.afcs,
        io_runs: stats.io.runs_scheduled,
        read_syscalls: stats.io.read_syscalls,
        bytes_issued: stats.io.bytes_issued,
        mover_sends: stats.mover.sends,
        mover_bytes: stats.bytes_moved,
        agg_groups: stats.mover.agg_groups_out,
        peak_buffered_blocks: stats.mover.peak_buffered_blocks,
    }
}

/// Run one configuration and assert the report admits every counter.
fn check(v: &Virtualizer, sql: &str, opts: &QueryOptions, tag: &str) {
    let report = static_report(v, sql, opts);
    let (_, stats) = v.query_with(sql, opts).unwrap();
    let violations = report.validate(&counters(&stats));
    assert!(
        violations.is_empty(),
        "{tag}: {sql}: {}",
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
    );
}

/// The bench-style query set: full scan, prunable window, stored
/// filter, UDF filter, coordinate-keyed and stored-keyed aggregation.
const QUERIES: &[&str] = &[
    "SELECT REL, TIME, SOIL FROM IparsData",
    "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20",
    "SELECT SOIL, TIME FROM IparsData WHERE SOIL > 0.5",
    "SELECT TIME FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) < 30.0",
    "SELECT REL, COUNT(SOIL), AVG(SOIL) FROM IparsData GROUP BY REL",
    "SELECT TIME, SUM(SOIL) FROM IparsData WHERE TIME <= 15 GROUP BY TIME",
];

#[test]
fn bounds_hold_across_all_layouts_and_modes() {
    arm_validation();
    let cfg = ipars_cfg();
    for layout in IparsLayout::all() {
        let base = scratch(&format!("costdiff-{}", layout.tag()));
        let descriptor = ipars::generate(&base, &cfg, layout).unwrap();
        let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
        for sql in QUERIES {
            for no_prune in [false, true] {
                for no_agg_pushdown in [false, true] {
                    for threads in [1usize, 8] {
                        let opts = QueryOptions {
                            no_prune,
                            no_agg_pushdown,
                            intra_node_threads: threads,
                            ..Default::default()
                        };
                        let tag = format!(
                            "{} prune={} pushdown={} threads={}",
                            layout.label(),
                            !no_prune,
                            !no_agg_pushdown,
                            threads
                        );
                        check(&v, sql, &opts, &tag);
                    }
                }
            }
        }
    }
}

#[test]
fn bounds_hold_on_titan() {
    arm_validation();
    let base = scratch("costdiff-titan");
    let cfg = TitanConfig { points: 4000, tiles: (4, 4, 2), nodes: 1, seed: 7 };
    let descriptor = titan::generate(&base, &cfg).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    for sql in [
        "SELECT X, Y, S1 FROM TitanData",
        "SELECT S1 FROM TitanData WHERE X > 100",
        "SELECT S1, S2 FROM TitanData WHERE X > 50 AND Y < 200",
    ] {
        for threads in [1usize, 8] {
            let opts = QueryOptions { intra_node_threads: threads, ..Default::default() };
            check(&v, sql, &opts, &format!("titan threads={threads}"));
        }
    }
}

/// The row-at-a-time engine takes the direct-read path (one syscall
/// per AFC entry, exact byte accounting) — the report must switch to
/// exact I/O bounds and still hold.
#[test]
fn bounds_hold_on_row_engine() {
    arm_validation();
    let cfg = ipars_cfg();
    let base = scratch("costdiff-row");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::I).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    for sql in QUERIES {
        let opts = QueryOptions { exec: ExecMode::RowAtATime, ..Default::default() };
        check(&v, sql, &opts, "row-at-a-time");
    }
}

mod random {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn shared() -> &'static Virtualizer {
        static V: OnceLock<Virtualizer> = OnceLock::new();
        V.get_or_init(|| {
            let base = scratch("costdiff-prop");
            let descriptor = ipars::generate(&base, &ipars_cfg(), IparsLayout::V).unwrap();
            Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap()
        })
    }

    #[derive(Debug, Clone)]
    struct Spec {
        time_lo: i64,
        time_width: i64,
        soil_gt: Option<f64>,
        udf: bool,
        group_by_rel: bool,
        threads: usize,
        no_prune: bool,
        no_agg_pushdown: bool,
    }

    fn arb_spec() -> impl Strategy<Value = Spec> {
        (
            -5i64..45,
            0i64..15,
            proptest::option::of(0.0f64..1.0),
            any::<bool>(),
            any::<bool>(),
            prop_oneof![Just(1usize), Just(8usize)],
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(
                |(
                    time_lo,
                    time_width,
                    soil_gt,
                    udf,
                    group_by_rel,
                    threads,
                    no_prune,
                    no_agg_pushdown,
                )| Spec {
                    time_lo,
                    time_width,
                    soil_gt,
                    udf,
                    group_by_rel,
                    threads,
                    no_prune,
                    no_agg_pushdown,
                },
            )
    }

    fn spec_sql(spec: &Spec) -> String {
        let (tlo, thi) = (spec.time_lo, spec.time_lo + spec.time_width);
        let mut conjuncts = vec![format!("TIME >= {tlo} AND TIME <= {thi}")];
        if let Some(s) = spec.soil_gt {
            conjuncts.push(format!("SOIL > {s:.3}"));
        }
        if spec.udf {
            conjuncts.push("SPEED(OILVX, OILVY, OILVZ) < 40.0".to_string());
        }
        let where_clause = conjuncts.join(" AND ");
        if spec.group_by_rel {
            format!("SELECT REL, COUNT(SOIL) FROM IparsData WHERE {where_clause} GROUP BY REL")
        } else {
            format!("SELECT REL, TIME, SOIL FROM IparsData WHERE {where_clause}")
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn random_queries_stay_within_bounds(spec in arb_spec()) {
            arm_validation();
            let v = shared();
            let sql = spec_sql(&spec);
            let opts = QueryOptions {
                no_prune: spec.no_prune,
                no_agg_pushdown: spec.no_agg_pushdown,
                intra_node_threads: spec.threads,
                ..Default::default()
            };
            let report = static_report(v, &sql, &opts);
            let (_, stats) = v.query_with(&sql, &opts).unwrap();
            let violations = report.validate(&counters(&stats));
            prop_assert!(
                violations.is_empty(),
                "{spec:?}: {sql}: {}",
                violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
            );
        }
    }
}
