//! Property test: AFC completeness and exactness.
//!
//! For randomized dataset shapes, physical layouts and queries, the
//! virtualized execution must return exactly the rows the analytic
//! oracle computes — every satisfying row exactly once (no row lost by
//! pruning/alignment, none duplicated by grouping).

use proptest::prelude::*;

use dv_datagen::{IparsConfig, IparsLayout};
use dv_integration::{ipars_oracle, ipars_virtualizer};

#[derive(Debug, Clone)]
struct QuerySpec {
    rel_eq: Option<i64>,
    time_lo: i64,
    time_width: i64,
    soil_gt: Option<f64>,
    project_narrow: bool,
}

fn arb_cfg() -> impl Strategy<Value = IparsConfig> {
    (1usize..3, 1usize..6, 1usize..8, prop_oneof![Just(1usize), Just(2usize)], any::<u32>())
        .prop_map(|(r, t, g, d, seed)| IparsConfig {
            realizations: r,
            time_steps: t,
            grid_per_dir: g,
            dirs: d * 2,
            nodes: d * 2, // one dir per node keeps generation cheap
            seed: seed as u64,
        })
}

fn arb_layout() -> impl Strategy<Value = IparsLayout> {
    prop_oneof![
        Just(IparsLayout::L0),
        Just(IparsLayout::I),
        Just(IparsLayout::II),
        Just(IparsLayout::III),
        Just(IparsLayout::IV),
        Just(IparsLayout::V),
        Just(IparsLayout::VI),
    ]
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    (
        proptest::option::of(0i64..3),
        0i64..6,
        0i64..4,
        proptest::option::of(0.0f64..1.0),
        any::<bool>(),
    )
        .prop_map(|(rel_eq, time_lo, time_width, soil_gt, project_narrow)| QuerySpec {
            rel_eq,
            time_lo,
            time_width,
            soil_gt,
            project_narrow,
        })
}

proptest! {
    // Each case generates a dataset on disk; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn virtualized_equals_oracle(cfg in arb_cfg(), layout in arb_layout(), q in arb_query()) {
        let v = ipars_virtualizer(
            &format!("prop-{}", std::thread::current().name().unwrap_or("t").len()),
            &cfg,
            layout,
        );
        let schema = v.schema().clone();

        let mut conjuncts: Vec<String> = Vec::new();
        if let Some(rel) = q.rel_eq {
            conjuncts.push(format!("REL = {rel}"));
        }
        let (tlo, thi) = (q.time_lo, q.time_lo + q.time_width);
        conjuncts.push(format!("TIME >= {tlo} AND TIME <= {thi}"));
        if let Some(s) = q.soil_gt {
            conjuncts.push(format!("SOIL > {s:.3}"));
        }
        let select = if q.project_narrow { "REL, TIME, X, SOIL" } else { "*" };
        let sql = format!("SELECT {select} FROM IparsData WHERE {}", conjuncts.join(" AND "));

        let (table, _) = v.query(&sql).unwrap();

        let projection: Vec<&str> = if q.project_narrow {
            vec!["REL", "TIME", "X", "SOIL"]
        } else {
            schema.attributes().iter().map(|a| a.name.as_str()).collect()
        };
        let soil_idx = schema.index_of("SOIL").unwrap();
        let oracle = ipars_oracle(
            &cfg,
            &schema,
            |row| {
                let rel_ok = q.rel_eq.map(|r| row[0].as_f64() == r as f64).unwrap_or(true);
                let t = row[1].as_f64();
                let time_ok = t >= tlo as f64 && t <= thi as f64;
                let soil_ok = q
                    .soil_gt
                    // Mirror the SQL literal's 3-decimal rounding.
                    .map(|s| row[soil_idx].as_f64() > format!("{s:.3}").parse::<f64>().unwrap())
                    .unwrap_or(true);
                rel_ok && time_ok && soil_ok
            },
            &projection,
        );

        prop_assert!(
            table.same_rows(&oracle),
            "{} / {sql}: got {} rows, oracle {}",
            layout.label(),
            table.len(),
            oracle.len()
        );
    }
}

/// Titan counterpart: random spatial boxes over a chunked dataset must
/// return exactly the oracle rows — chunk pruning (R-tree + bounds
/// refinement) must never lose a record on a chunk boundary.
mod titan_boxes {
    use super::proptest;
    use proptest::prelude::*;

    use dv_core::Virtualizer;
    use dv_datagen::{titan, TitanConfig};
    use dv_integration::scratch;
    use dv_types::Table;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn titan_box_equals_oracle(
            seed in 0u64..1000,
            x0 in 0i64..50_000,
            xw in 0i64..30_000,
            y0 in 0i64..50_000,
            yw in 0i64..30_000,
            z0 in 0i64..500,
            zw in 0i64..300,
            nodes in 1usize..3,
        ) {
            let cfg = TitanConfig { points: 1500, tiles: (3, 3, 2), nodes, seed };
            let base = scratch("prop-titan");
            let descriptor = titan::generate(&base, &cfg).unwrap();
            let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();

            let (x1, y1, z1) = (x0 + xw, y0 + yw, z0 + zw);
            let sql = format!(
                "SELECT * FROM TitanData WHERE X >= {x0} AND X <= {x1} AND \
                 Y >= {y0} AND Y <= {y1} AND Z >= {z0} AND Z <= {z1}"
            );
            let (table, _) = v.query(&sql).unwrap();

            let mut oracle = Table::empty(v.schema().clone());
            for row in cfg.all_rows() {
                let (x, y, z) = (row[0].as_f64(), row[1].as_f64(), row[2].as_f64());
                if x >= x0 as f64 && x <= x1 as f64
                    && y >= y0 as f64 && y <= y1 as f64
                    && z >= z0 as f64 && z <= z1 as f64
                {
                    oracle.rows.push(row);
                }
            }
            prop_assert!(
                table.same_rows(&oracle),
                "box [{x0},{x1}]x[{y0},{y1}]x[{z0},{z1}]: got {} rows, oracle {}",
                table.len(),
                oracle.len()
            );
        }
    }
}
