//! Morsel-parallelism differential tests: results must be
//! *bit-identical* — same rows in the same order per client partition
//! — across thread counts, steal orders (shuffled with injected
//! per-morsel jitter), layouts, engines, and prune on/off. Plus: a
//! cancelled parallel scan leaves no orphaned workers, and a skewed
//! schedule spreads bytes evenly over the pool (the bug the morsel
//! scheduler replaces: count-based chunking serialized behind the
//! biggest file).

use std::io::Write;
use std::time::Duration;

use dv_core::{
    BandwidthModel, ExecMode, PartitionStrategy, QueryOptions, SubmitOptions, Virtualizer,
};
use dv_datagen::{ipars, IparsConfig, IparsLayout};
use dv_integration::scratch;

fn cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 40, grid_per_dir: 50, dirs: 2, nodes: 2, seed: 41 }
}

fn opts(threads: usize, exec: ExecMode, no_prune: bool) -> QueryOptions {
    QueryOptions { intra_node_threads: threads, exec, no_prune, ..QueryOptions::default() }
}

/// Every (layout × engine × prune × thread-count) combination returns
/// exactly the serial oracle's tables: same rows, same order. Jitter
/// (`DV_MORSEL_JITTER`) injects a deterministic pseudo-random sleep
/// per morsel, so the parallel runs complete morsels in thoroughly
/// shuffled orders — the (node, seq) reassembly must still
/// reconstruct schedule order bit-for-bit.
#[test]
fn parallel_results_bit_match_serial_across_layouts_and_engines() {
    let queries = [
        "SELECT * FROM IparsData",
        "SELECT REL, TIME, SOIL, PGAS FROM IparsData WHERE TIME <= 25 AND SOIL > 0.3",
    ];
    std::env::set_var("DV_MORSEL_JITTER", "2");
    for layout in IparsLayout::all() {
        let base = scratch(&format!("morsel-diff-{}", layout.tag()));
        let descriptor = ipars::generate(&base, &cfg(), layout).unwrap();
        let v = Virtualizer::builder(&descriptor)
            .storage_base(&base)
            .max_intra_node_threads(8)
            .build()
            .unwrap();
        for sql in queries {
            for exec in [ExecMode::Columnar, ExecMode::RowAtATime] {
                for no_prune in [false, true] {
                    let (oracle, _) = v.query_with(sql, &opts(1, exec, no_prune)).unwrap();
                    for threads in [2usize, 8] {
                        let (tables, _) =
                            v.query_with(sql, &opts(threads, exec, no_prune)).unwrap();
                        assert_eq!(tables.len(), oracle.len());
                        for (t, o) in tables.iter().zip(&oracle) {
                            assert_eq!(
                                t.rows,
                                o.rows,
                                "{} {exec:?} no_prune={no_prune} threads={threads}: \
                                 parallel output diverged from serial",
                                layout.tag()
                            );
                        }
                    }
                }
            }
        }
    }
    std::env::remove_var("DV_MORSEL_JITTER");
}

/// Partitioned delivery is also steal-order independent: with several
/// client processors, each processor's partition matches the serial
/// run exactly (round-robin keys on plan-time scanned ordinals, not on
/// arrival order).
#[test]
fn partitioned_delivery_is_thread_count_independent() {
    let base = scratch("morsel-parts");
    let descriptor = ipars::generate(&base, &cfg(), IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor)
        .storage_base(&base)
        .max_intra_node_threads(8)
        .build()
        .unwrap();
    let sql = "SELECT REL, TIME, SOIL FROM IparsData WHERE SOIL > 0.2";
    for strategy in [
        PartitionStrategy::RoundRobin,
        PartitionStrategy::HashAttr { position: 2 },
        PartitionStrategy::RangeAttr { position: 2, bounds: vec![0.5] },
    ] {
        let po = |threads: usize| QueryOptions {
            client_processors: 3,
            partition: strategy.clone(),
            intra_node_threads: threads,
            ..QueryOptions::default()
        };
        let (oracle, _) = v.query_with(sql, &po(1)).unwrap();
        for threads in [2usize, 8] {
            let (tables, stats) = v.query_with(sql, &po(threads)).unwrap();
            for (p, (t, o)) in tables.iter().zip(&oracle).enumerate() {
                assert_eq!(
                    t.rows, o.rows,
                    "{strategy:?} threads={threads}: processor {p} partition diverged"
                );
            }
            assert!(stats.morsels.workers > 0, "pool stats recorded");
        }
    }
}

/// Cancelling a parallel scan mid-flight: the query ends with
/// `Cancelled`, every pool worker stops (the admission slot is
/// released, so the next query runs), and no orphaned worker keeps
/// the server busy.
#[test]
fn mid_scan_cancellation_stops_all_workers_and_frees_slot() {
    let base = scratch("morsel-cancel");
    let descriptor = ipars::generate(&base, &cfg(), IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor)
        .storage_base(&base)
        .max_concurrent(1)
        .max_intra_node_threads(8)
        .build()
        .unwrap();
    // A link slow enough that the transfer takes many seconds: the
    // cancel must interrupt the scan, not race it to completion.
    let slow = QueryOptions {
        intra_node_threads: 8,
        bandwidth: Some(BandwidthModel {
            bytes_per_sec: 64.0 * 1024.0,
            latency: Duration::from_millis(1),
        }),
        ..QueryOptions::default()
    };
    let handle = v.submit("SELECT * FROM IparsData", &slow, &SubmitOptions::default()).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    handle.cancel();
    let err = handle.wait().unwrap_err();
    assert!(err.is_cancelled(), "expected cancellation, got: {err}");

    // Slot released and workers gone: the next query (behind the
    // single admission slot) completes promptly and correctly.
    for _ in 0..200 {
        if v.service().running() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(v.service().running(), 0, "cancelled query must release its slot");
    let (table, _) = v.query("SELECT REL, TIME FROM IparsData WHERE TIME = 1").unwrap();
    assert!(!table.rows.is_empty());
}

/// Build a single-node dataset whose per-directory extents shrink
/// steeply: directory 0 holds ~6× the bytes of directory 7. Under the
/// old count-based chunk striping the worker that drew directory 0's
/// AFCs did ~6× the work; byte-budgeted morsels plus stealing must
/// spread bytes nearly evenly.
fn generate_skewed(tag: &str) -> (std::path::PathBuf, String) {
    let base = scratch(tag);
    let dirs = 8usize;
    let times = 16usize;
    let mut descriptor = String::from(
        "[SKEW]\nTIME = int\nVAL = float\nAUX = float\n\n[SkewData]\nDatasetDescription = SKEW\n",
    );
    for d in 0..dirs {
        descriptor.push_str(&format!("DIR[{d}] = node0/skew.d{d}\n"));
    }
    descriptor.push_str(
        "\nDATASET \"SkewData\" {\n  DATATYPE { SKEW }\n  DATAINDEX { TIME }\n  DATA { DATASET var_val DATASET var_aux }\n",
    );
    for (name, file) in [("var_val", "val.dat"), ("var_aux", "aux.dat")] {
        descriptor.push_str(&format!(
            "  DATASET \"{name}\" {{\n    DATASPACE {{ LOOP TIME 1:{times}:1 {{ LOOP GRID 1:(8000-960*$DIRID):1 {{ {} }} }} }}\n    DATA {{ DIR[$DIRID]/{file} DIRID = 0:{}:1 }}\n  }}\n",
            if name == "var_val" { "VAL" } else { "AUX" },
            dirs - 1,
        ));
    }
    descriptor.push_str("}\n");
    for d in 0..dirs {
        let dir = base.join("node0").join(format!("skew.d{d}"));
        std::fs::create_dir_all(&dir).unwrap();
        let rows = 8000 - 960 * d;
        for file in ["val.dat", "aux.dat"] {
            let mut w = std::io::BufWriter::new(std::fs::File::create(dir.join(file)).unwrap());
            for t in 0..times {
                for g in 0..rows {
                    let x = (d * 1_000_000 + t * 10_000 + g) as f32 * 1e-3;
                    w.write_all(&x.to_le_bytes()).unwrap();
                }
            }
            w.flush().unwrap();
        }
    }
    (base, descriptor)
}

/// The skew regression itself: one hugely oversized directory plus
/// progressively smaller ones. The pool must (a) return exactly the
/// serial rows and (b) keep the busiest worker's byte share close to
/// the mean — under count-based chunking it carried ~6× the mean.
#[test]
fn skewed_schedule_balances_worker_bytes() {
    let (base, descriptor) = generate_skewed("morsel-skew");
    let v = Virtualizer::builder(&descriptor)
        .storage_base(&base)
        .max_intra_node_threads(4)
        .build()
        .unwrap();
    let sql = "SELECT TIME, VAL FROM SkewData";
    let serial = QueryOptions { intra_node_threads: 1, ..QueryOptions::default() };
    let (oracle, _) = v.query_with(sql, &serial).unwrap();

    let par = QueryOptions { intra_node_threads: 4, ..QueryOptions::default() };
    let (tables, stats) = v.query_with(sql, &par).unwrap();
    assert_eq!(tables[0].rows, oracle[0].rows, "skewed parallel scan diverged from serial");

    let m = &stats.morsels;
    assert!(m.workers >= 2, "pool must actually be parallel, got {} workers", m.workers);
    assert!(
        m.planned > m.workers,
        "schedule must split finer than the pool: {} morsels for {} workers",
        m.planned,
        m.workers
    );
    // Byte balance: the busiest worker stays within 2× the fair share.
    // (Count-based chunking put ~6 shares on the directory-0 worker.)
    let fair = stats.bytes_read / m.workers;
    assert!(
        m.worker_bytes_max <= 2 * fair,
        "worker byte skew: max {} vs fair share {} ({} morsels, {} stolen)",
        m.worker_bytes_max,
        fair,
        m.planned,
        m.stolen
    );
    assert!(m.worker_bytes_min > 0, "every worker must get work on a skewed schedule");
}
