//! Differential tests for the `dv-verify` certificate: whenever the
//! verifier proves a generated descriptor Safe, the certificate-gated
//! unchecked decode path must return byte-identical results to the
//! checked path; and whenever it refutes a descriptor, the refutation's
//! counterexample must describe bytes a real runtime check rejects.

use dv_core::{Certificate, ExecMode, QueryOptions, Virtualizer};
use dv_datagen::{ipars, IparsConfig, IparsLayout};
use dv_integration::scratch;
use dv_lint::verify::ObservedSizes;
use dv_lint::{verify_descriptor, Code};
use dv_types::{Table, Value};
use proptest::prelude::*;

/// Exact bit pattern of a value — `same_rows` tolerates reordering,
/// this does not (the two decode paths must agree byte for byte).
fn bits(v: &Value) -> (u8, u64) {
    match v {
        Value::Char(x) => (0, *x as u64),
        Value::Short(x) => (1, *x as u16 as u64),
        Value::Int(x) => (2, *x as u32 as u64),
        Value::Long(x) => (3, *x as u64),
        Value::Float(x) => (4, x.to_bits() as u64),
        Value::Double(x) => (5, x.to_bits()),
    }
}

/// Sorted so the comparison is insensitive to the nondeterministic
/// cross-node merge order, but still exact on every row's bytes.
fn table_bits(t: &Table) -> Vec<Vec<(u8, u64)>> {
    let mut rows: Vec<Vec<(u8, u64)>> =
        t.rows.iter().map(|r| r.iter().map(bits).collect()).collect();
    rows.sort();
    rows
}

fn run(v: &Virtualizer, sql: &str) -> Table {
    let opts = QueryOptions { exec: ExecMode::Columnar, ..Default::default() };
    let (mut tables, _) = v.query_with(sql, &opts).unwrap();
    tables.remove(0)
}

/// Stat every generated file so bounds are checked against reality.
fn observed(base: &std::path::Path, descriptor: &str) -> ObservedSizes {
    let model = dv_descriptor::compile(descriptor).unwrap();
    let mut sizes = ObservedSizes::new();
    for f in &model.files {
        let node = &model.nodes[f.node];
        if let Ok(md) = std::fs::metadata(base.join(node).join(&f.rel_path)) {
            sizes.insert((node.clone(), f.rel_path.clone()), md.len());
        }
    }
    sizes
}

fn first_data_file(base: &std::path::Path) -> std::path::PathBuf {
    fn walk(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        for e in std::fs::read_dir(dir).unwrap().flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(&p, out);
            } else if p.extension().is_some_and(|e| e == "dat") {
                out.push(p);
            }
        }
    }
    let mut found = Vec::new();
    walk(base, &mut found);
    found.sort();
    found.into_iter().next().expect("generated dataset has a .dat file")
}

#[derive(Debug, Clone)]
struct Spec {
    layout: IparsLayout,
    realizations: usize,
    time_steps: usize,
    grid_per_dir: usize,
    dirs: usize,
    seed: u64,
    time_lo: i64,
    time_width: i64,
    soil_gt: f64,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (
        (0usize..IparsLayout::all().len(), 1usize..3, 2usize..12, 3usize..20, 1usize..3),
        (any::<u64>(), 0i64..12, 0i64..8, 0.0f64..0.9),
    )
        .prop_map(|((li, realizations, time_steps, grid_per_dir, dirs), rest)| {
            let (seed, time_lo, time_width, soil_gt) = rest;
            Spec {
                layout: IparsLayout::all()[li],
                realizations,
                time_steps,
                grid_per_dir,
                dirs,
                seed,
                time_lo,
                time_width,
                soil_gt,
            }
        })
}

impl Spec {
    fn cfg(&self) -> IparsConfig {
        IparsConfig {
            realizations: self.realizations,
            time_steps: self.time_steps,
            grid_per_dir: self.grid_per_dir,
            // dirs must be a multiple of nodes; keep both in lock-step.
            dirs: self.dirs * 2,
            nodes: 2,
            seed: self.seed,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random descriptor + dataset: the verifier proves it Safe
    /// against the observed file sizes, and the unchecked decode path
    /// (certificate-gated) byte-matches the checked path.
    #[test]
    fn safe_certificate_decode_paths_byte_match(spec in arb_spec()) {
        let base = scratch("verify-diff");
        let descriptor = ipars::generate(&base, &spec.cfg(), spec.layout).unwrap();

        let report = verify_descriptor(&descriptor, Some(&observed(&base, &descriptor))).unwrap();
        prop_assert!(
            report.findings.is_empty() && report.unproven.is_empty(),
            "{:?} {:?} {:?}", spec.layout, report.findings, report.unproven
        );
        prop_assert_eq!(report.certificate(), Certificate::Safe);

        let unchecked =
            Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
        prop_assert_eq!(unchecked.certificate(), Certificate::Safe);
        let checked = Virtualizer::builder(&descriptor)
            .storage_base(&base)
            .verify(false)
            .build()
            .unwrap();
        prop_assert_eq!(checked.certificate(), Certificate::Unverified);

        let (tlo, thi) = (spec.time_lo, spec.time_lo + spec.time_width);
        for sql in [
            "SELECT * FROM IparsData WHERE TIME >= 0".to_string(),
            format!(
                "SELECT REL, TIME, SOIL, SGAS FROM IparsData \
                 WHERE TIME >= {tlo} AND TIME <= {thi} AND SOIL > {:.3}",
                spec.soil_gt
            ),
        ] {
            let a = run(&unchecked, &sql);
            let b = run(&checked, &sql);
            prop_assert_eq!(
                table_bits(&a),
                table_bits(&b),
                "{:?}: unchecked vs checked diverge on {}",
                spec.layout,
                sql
            );
        }
    }
}

/// Truncating a data file refutes the certificate with a DV202
/// counterexample whose byte range really does run past the file, and
/// the runtime (still on the checked path) rejects the access instead
/// of reading garbage.
#[test]
fn refutation_counterexample_trips_runtime_check() {
    let cfg =
        IparsConfig { realizations: 2, time_steps: 6, grid_per_dir: 8, dirs: 2, nodes: 2, seed: 9 };
    let base = scratch("verify-diff-refute");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::V).unwrap();

    let victim = first_data_file(&base);
    let len = std::fs::metadata(&victim).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&victim).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let report = verify_descriptor(&descriptor, Some(&observed(&base, &descriptor))).unwrap();
    assert_eq!(report.certificate(), Certificate::Refuted);
    let finding = report
        .findings
        .iter()
        .find(|f| f.diag.code == Code::Dv202)
        .expect("truncation refuted as DV202");
    let ce = finding.counterexample.as_ref().expect("DV202 carries a counterexample");
    assert!(!ce.indices.is_empty(), "counterexample names the loop indices");
    assert!(ce.byte_hi > len - 3, "counterexample record ends past the truncated file");
    assert!(ce.byte_lo < ce.byte_hi);

    // The builder reaches the same verdict, so the decoder stays on
    // the checked path — and the checked path refuses the short read.
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    assert_eq!(v.certificate(), Certificate::Refuted);
    let err = v.query("SELECT * FROM IparsData WHERE TIME >= 0");
    assert!(err.is_err(), "scan over the truncated file must fail, not fabricate rows");
}
