//! Codec differential tests: the same logical Ipars dataset stored as
//! fixed binary, CSV, zstd, or a mix of all three must return
//! *bit-identical* rows — same rows, same order — across both engines,
//! prune on/off, and thread counts {1, 8} with injected morsel jitter.
//! Plus: warm zstd reads are served from the decompressed segment
//! cache without re-decoding, and a truncated CSV file or corrupted
//! zstd frame surfaces as a clean `DvError` (no panic) that releases
//! the admission slot, so the server recovers once the file is
//! restored.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use dv_bench::queries::ipars_queries;
use dv_core::{ExecMode, QueryOptions, Virtualizer};
use dv_datagen::{ipars, IparsConfig, IparsLayout};
use dv_descriptor::ast::{DataAst, DatasetAst};
use dv_descriptor::{codec, CodecKind};
use dv_integration::scratch;

fn cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 30, grid_per_dir: 40, dirs: 2, nodes: 2, seed: 53 }
}

fn build(descriptor: &str, base: &Path) -> Virtualizer {
    Virtualizer::builder(descriptor).storage_base(base).max_intra_node_threads(8).build().unwrap()
}

fn opts(threads: usize, exec: ExecMode, no_prune: bool) -> QueryOptions {
    QueryOptions { intra_node_threads: threads, exec, no_prune, ..QueryOptions::default() }
}

/// Rewrite an all-binary dataset in place so its file bindings cycle
/// through all three codecs (binary, csv, zstd), re-encoding each
/// non-affine file from its binary bytes. Returns the descriptor with
/// the `CODEC` clauses.
fn transcode_mixed(base: &Path, descriptor: &str) -> String {
    const KINDS: [CodecKind; 3] =
        [CodecKind::FixedBinary, CodecKind::DelimitedText, CodecKind::ZstdSegment];
    fn assign(ds: &mut DatasetAst, next: &mut usize) {
        if let DataAst::Files(bindings) = &mut ds.data {
            for b in bindings {
                b.codec = KINDS[*next % KINDS.len()];
                *next += 1;
            }
        }
        for c in &mut ds.children {
            assign(c, next);
        }
    }
    let mut ast = dv_descriptor::parse_descriptor(descriptor).unwrap();
    let mut next = 0usize;
    assign(&mut ast.layout, &mut next);
    assert!(next >= 3, "need at least 3 file bindings to exercise every codec, got {next}");

    let model = dv_descriptor::resolve(&ast).unwrap();
    for f in &model.files {
        if f.codec.is_affine() {
            continue;
        }
        let path = base.join(&model.nodes[f.node]).join(&f.rel_path);
        let logical = fs::read(&path).unwrap();
        let physical = codec::encode_logical(f.codec, f, &model.attr_types, &logical).unwrap();
        fs::write(&path, physical).unwrap();
    }
    dv_descriptor::render(&ast)
}

/// First data file of the descriptor, for fault injection.
fn one_data_file(base: &Path, descriptor: &str) -> PathBuf {
    let model = dv_descriptor::compile(descriptor).unwrap();
    let f = &model.files[0];
    base.join(&model.nodes[f.node]).join(&f.rel_path)
}

/// The bench query set over {binary, csv, zstd} on Layout I and
/// {binary, mixed-codec} on L0 (18-way fan-in, so the mix spreads all
/// three codecs over one virtual table): every combination of engine,
/// prune, and thread count returns exactly the row-at-a-time serial
/// oracle's rows over the all-binary encoding. `DV_MORSEL_JITTER`
/// shuffles morsel completion order, so reassembly is stressed too.
#[test]
fn codec_backends_bit_match_rowatatime_oracle() {
    let cfg = cfg();
    std::env::set_var("DV_MORSEL_JITTER", "2");

    let mut groups: Vec<(&str, Vec<(&str, Virtualizer)>)> = Vec::new();

    let mut uniform = Vec::new();
    for (tag, kind) in [
        ("binary", CodecKind::FixedBinary),
        ("csv", CodecKind::DelimitedText),
        ("zstd", CodecKind::ZstdSegment),
    ] {
        let base = scratch(&format!("codec-diff-{tag}"));
        let descriptor = ipars::generate_with_codec(&base, &cfg, IparsLayout::I, kind).unwrap();
        uniform.push((tag, build(&descriptor, &base)));
    }
    groups.push(("layout-I", uniform));

    let base = scratch("codec-diff-mixed-bin");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
    let bin = build(&descriptor, &base);
    let mixed_base = scratch("codec-diff-mixed");
    let mixed_bin = ipars::generate(&mixed_base, &cfg, IparsLayout::L0).unwrap();
    let mixed = transcode_mixed(&mixed_base, &mixed_bin);
    groups.push(("l0", vec![("binary", bin), ("mixed", build(&mixed, &mixed_base))]));

    for (group, variants) in &groups {
        for q in ipars_queries("IparsData", cfg.time_steps) {
            // The trusted oracle: the all-binary variant, serial,
            // row-at-a-time.
            let (oracle, _) =
                variants[0].1.query_with(&q.sql, &opts(1, ExecMode::RowAtATime, false)).unwrap();
            for (tag, v) in variants {
                for exec in [ExecMode::Columnar, ExecMode::RowAtATime] {
                    for no_prune in [false, true] {
                        for threads in [1usize, 8] {
                            let (tables, _) =
                                v.query_with(&q.sql, &opts(threads, exec, no_prune)).unwrap();
                            assert_eq!(
                                tables[0].rows, oracle[0].rows,
                                "{group}/{tag} q{} ({}) {exec:?} no_prune={no_prune} \
                                 threads={threads}: diverged from binary oracle",
                                q.no, q.what
                            );
                        }
                    }
                }
            }
        }
    }
    std::env::remove_var("DV_MORSEL_JITTER");
}

/// The acceptance counter: a repeated query over a zstd dataset is
/// served from the segment cache's *decompressed* bytes — the warm run
/// performs zero frame decompressions.
#[test]
fn warm_zstd_reads_skip_redecompression() {
    let base = scratch("codec-diff-warm");
    let descriptor =
        ipars::generate_with_codec(&base, &cfg(), IparsLayout::I, CodecKind::ZstdSegment).unwrap();
    let v = build(&descriptor, &base);
    let sql = "SELECT * FROM IparsData";

    let (cold_t, cold) = v.query_with(sql, &QueryOptions::default()).unwrap();
    let (warm_t, warm) = v.query_with(sql, &QueryOptions::default()).unwrap();
    assert_eq!(cold_t[0].rows, warm_t[0].rows);
    assert!(cold.io.decode_calls > 0, "cold run must decompress");
    assert!(cold.io.decode_bytes > 0);
    assert_eq!(warm.io.decode_calls, 0, "warm run re-decompressed a cached segment");
    assert_eq!(warm.io.decode_bytes, 0);
    assert!(warm.io.cache_hit_rate() > 0.9, "hit rate {}", warm.io.cache_hit_rate());
}

/// Truncating a CSV file mid-record-stream fails the query with a
/// clean `DvError` naming the truncation — no panic — and releases the
/// single admission slot: once the file is restored, the same server
/// answers correctly again.
#[test]
fn truncated_csv_is_clean_error_and_releases_slot() {
    let cfg = cfg();
    let base = scratch("codec-diff-trunc-csv");
    let descriptor =
        ipars::generate_with_codec(&base, &cfg, IparsLayout::I, CodecKind::DelimitedText).unwrap();
    let v =
        Virtualizer::builder(&descriptor).storage_base(&base).max_concurrent(1).build().unwrap();
    let sql = "SELECT * FROM IparsData";
    let (full, _) = v.query(sql).unwrap();

    let victim = one_data_file(&base, &descriptor);
    let original = fs::read(&victim).unwrap();
    let kept: String = String::from_utf8(original.clone())
        .unwrap()
        .lines()
        .take(2)
        .map(|l| format!("{l}\n"))
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    fs::write(&victim, kept).unwrap();

    let err = v.query(sql).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("truncated"), "error must name the truncation: {msg}");

    // Slot released (max_concurrent = 1) and no stale cache: restoring
    // the file makes the very next query succeed with the full rows.
    std::thread::sleep(Duration::from_millis(20));
    fs::write(&victim, &original).unwrap();
    let (t, _) = v.query(sql).unwrap();
    assert_eq!(t.rows, full.rows, "post-restore result must match the original");
}

/// Corrupting a zstd frame (stomped magic) likewise fails cleanly,
/// releases the slot, and recovers on restore.
#[test]
fn corrupted_zstd_frame_is_clean_error_and_releases_slot() {
    let cfg = cfg();
    let base = scratch("codec-diff-corrupt-zstd");
    let descriptor =
        ipars::generate_with_codec(&base, &cfg, IparsLayout::I, CodecKind::ZstdSegment).unwrap();
    let v =
        Virtualizer::builder(&descriptor).storage_base(&base).max_concurrent(1).build().unwrap();
    let sql = "SELECT * FROM IparsData";
    let (full, _) = v.query(sql).unwrap();

    let victim = one_data_file(&base, &descriptor);
    let original = fs::read(&victim).unwrap();
    let mut bad = original.clone();
    bad[0] ^= 0xFF;
    std::thread::sleep(Duration::from_millis(20));
    fs::write(&victim, &bad).unwrap();

    let err = v.query(sql).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("zstd"), "error must name the codec: {msg}");

    std::thread::sleep(Duration::from_millis(20));
    fs::write(&victim, &original).unwrap();
    let (t, _) = v.query(sql).unwrap();
    assert_eq!(t.rows, full.rows, "post-restore result must match the original");
}
