//! Differential tests for static partition pruning: for random
//! predicates (including UDF filters and NaN-laden float columns) the
//! pruned execution must be bit-identical to the unpruned one
//! (`QueryOptions::no_prune`) and to the row-at-a-time oracle. This is
//! the empirical half of dv-prune's soundness argument: the abstract
//! interpreter may only drop chunks no row of which can qualify.

use dv_core::{ExecMode, QueryOptions, Virtualizer};
use dv_datagen::{ipars, IparsConfig, IparsLayout};
use dv_integration::scratch;
use dv_types::Table;

fn ipars_cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 40, grid_per_dir: 50, dirs: 2, nodes: 2, seed: 91 }
}

fn run(v: &Virtualizer, sql: &str, exec: ExecMode, no_prune: bool) -> (Table, dv_core::QueryStats) {
    let opts = QueryOptions { exec, no_prune, ..Default::default() };
    let (mut tables, stats) = v.query_with(sql, &opts).unwrap();
    (tables.remove(0), stats)
}

/// Pruned == unpruned == row-at-a-time, and pruning never invents or
/// loses a row, across hand-picked prunable/unprunable predicates.
#[test]
fn fixed_queries_pruned_equals_unpruned() {
    let cfg = ipars_cfg();
    let base = scratch("prunediff-l0");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();

    let queries = [
        // Selective TIME window: most chunks statically empty.
        "SELECT SOIL FROM IparsData WHERE TIME <= 4",
        // Arithmetic over TIME: beyond range analysis, decided by the
        // abstract interpreter.
        "SELECT SOIL, TIME FROM IparsData WHERE TIME * 10 <= 40",
        // Tautology: every chunk provably full, filter skipped.
        "SELECT REL, TIME FROM IparsData WHERE TIME >= 1",
        // Contradiction: everything pruned, zero rows.
        "SELECT SOIL FROM IparsData WHERE TIME > 1000",
        // Stored attribute: nothing decidable, nothing pruned.
        "SELECT SOIL FROM IparsData WHERE SOIL > 0.5",
        // Mixed: implicit window AND stored comparison.
        "SELECT SOIL, TIME FROM IparsData WHERE TIME <= 10 AND SOIL > 0.25",
        // UDF: opaque, must force Unknown everywhere.
        "SELECT TIME FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) < 30.0",
        // Negation + disjunction over the implicit window.
        "SELECT TIME, SOIL FROM IparsData WHERE NOT (TIME < 5 OR TIME > 35)",
    ];
    for sql in queries {
        let (pruned, ps) = run(&v, sql, ExecMode::Columnar, false);
        let (unpruned, us) = run(&v, sql, ExecMode::Columnar, true);
        let (row, _) = run(&v, sql, ExecMode::RowAtATime, false);
        assert!(
            pruned.same_rows(&unpruned),
            "{sql}: pruned {} vs unpruned {}",
            pruned.len(),
            unpruned.len()
        );
        assert!(pruned.same_rows(&row), "{sql}: pruned vs row oracle");
        assert_eq!(us.groups_pruned, 0, "{sql}: no_prune must not prune");
        assert!(
            ps.groups_pruned + ps.groups_full + ps.groups_total >= us.groups_total,
            "{sql}: certificate accounting"
        );
    }

    // The arithmetic window must actually prune: range analysis cannot
    // see through `TIME * 10`, so those chunks reach the abstract
    // interpreter, which must drop them. (The plain `TIME <= 4` window
    // is already narrowed by range analysis before pruning runs; its
    // survivors are marked provably full instead.)
    let (_, s) = run(
        &v,
        "SELECT SOIL, TIME FROM IparsData WHERE TIME * 10 <= 40",
        ExecMode::Columnar,
        false,
    );
    assert!(s.groups_pruned > 0, "arith TIME window pruned nothing: {s:?}");
    assert!(s.bytes_avoided > 0);
    let (_, s) = run(&v, "SELECT SOIL FROM IparsData WHERE TIME <= 4", ExecMode::Columnar, false);
    assert_eq!(s.groups_full, s.groups_total, "range-narrowed survivors should be full: {s:?}");
    let (_, s) = run(
        &v,
        "SELECT TIME FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) < 30.0",
        ExecMode::Columnar,
        false,
    );
    assert_eq!(s.groups_pruned, 0, "UDF predicate must block pruning: {s:?}");
    assert_eq!(s.groups_full, 0);
}

/// A float column seeded with NaNs: IEEE comparisons are false on NaN,
/// interval hulls cannot represent that, so the evaluator must degrade
/// to Unknown and pruned results must still match exactly — including
/// predicates that *keep* the NaN rows via NOT.
#[test]
fn nan_columns_never_mispredict() {
    let base = scratch("prunediff-nan");
    let descriptor = r#"
[S]
REL = int
TIME = int
F = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATASET "leaf" {
    DATASPACE { LOOP TIME 1:8:1 { F } }
    DATA { DIR[0]/f$REL.dat REL = 0:1:1 }
  }
  DATA { DATASET leaf }
}
"#;
    // f0: alternating finite / NaN; f1: all finite.
    std::fs::create_dir_all(base.join("n0/d")).unwrap();
    let mut f0 = Vec::new();
    for t in 0..8u32 {
        let x: f32 = if t % 2 == 0 { t as f32 / 10.0 } else { f32::NAN };
        f0.extend_from_slice(&x.to_le_bytes());
    }
    std::fs::write(base.join("n0/d/f0.dat"), &f0).unwrap();
    let f1: Vec<u8> = (0..8u32).flat_map(|t| (t as f32 / 10.0 + 0.05).to_le_bytes()).collect();
    std::fs::write(base.join("n0/d/f1.dat"), &f1).unwrap();

    let v = Virtualizer::builder(descriptor).storage_base(&base).build().unwrap();
    let queries = [
        "SELECT TIME, F FROM D WHERE F > 0.2",
        // NOT keeps the NaN rows (NaN > 0.2 is false, negated true is
        // the trap — SQL three-valued NOT must agree either way).
        "SELECT TIME, F FROM D WHERE NOT (F > 0.2)",
        "SELECT TIME, F FROM D WHERE TIME <= 3 AND F < 0.6",
        "SELECT TIME, F FROM D WHERE F = F",
        // Prunable window over a NaN-bearing file.
        "SELECT TIME, F FROM D WHERE TIME > 100",
    ];
    for sql in queries {
        let (pruned, _) = run(&v, sql, ExecMode::Columnar, false);
        let (unpruned, _) = run(&v, sql, ExecMode::Columnar, true);
        let (row, _) = run(&v, sql, ExecMode::RowAtATime, false);
        assert!(pruned.same_rows(&unpruned), "{sql}: pruned vs unpruned");
        assert!(pruned.same_rows(&row), "{sql}: pruned vs row oracle");
    }
    // Sanity: the stored column really is undecidable — a comparison
    // on F alone must not mark chunks full or empty.
    let (_, s) = run(&v, "SELECT F FROM D WHERE F > 0.2", ExecMode::Columnar, false);
    assert_eq!(s.groups_pruned, 0);
    assert_eq!(s.groups_full, 0);
}

/// Random descriptors (loop bounds, file counts) x random predicates:
/// pruned execution is bit-identical to unpruned on both exec paths.
mod random {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    #[derive(Debug, Clone)]
    struct Spec {
        time_lo: i64,
        time_width: i64,
        arith: bool,
        rel_eq: Option<i64>,
        soil_gt: Option<f64>,
        speed: bool,
        negate: bool,
    }

    fn arb_spec() -> impl Strategy<Value = Spec> {
        (
            -5i64..45,
            0i64..15,
            any::<bool>(),
            proptest::option::of(0i64..2),
            proptest::option::of(0.0f64..1.0),
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(time_lo, time_width, arith, rel_eq, soil_gt, speed, negate)| {
                Spec { time_lo, time_width, arith, rel_eq, soil_gt, speed, negate }
            })
    }

    fn spec_sql(spec: &Spec) -> String {
        let (tlo, thi) = (spec.time_lo, spec.time_lo + spec.time_width);
        let time = if spec.arith {
            // Arithmetic form of the same window: only the abstract
            // interpreter can see through it.
            format!("TIME * 3 >= {} AND TIME * 3 <= {}", tlo * 3, thi * 3)
        } else {
            format!("TIME >= {tlo} AND TIME <= {thi}")
        };
        let mut conjuncts = vec![if spec.negate { format!("NOT (NOT ({time}))") } else { time }];
        if let Some(r) = spec.rel_eq {
            conjuncts.push(format!("REL = {r}"));
        }
        if let Some(s) = spec.soil_gt {
            conjuncts.push(format!("SOIL > {s:.3}"));
        }
        if spec.speed {
            conjuncts.push("SPEED(OILVX, OILVY, OILVZ) < 40.0".to_string());
        }
        format!("SELECT REL, TIME, SOIL FROM IparsData WHERE {}", conjuncts.join(" AND "))
    }

    fn shared_virtualizer() -> &'static Virtualizer {
        static V: OnceLock<Virtualizer> = OnceLock::new();
        V.get_or_init(|| {
            let cfg = ipars_cfg();
            let base = scratch("prunediff-prop");
            let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
            Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn pruned_equals_unpruned_on_random_predicates(spec in arb_spec()) {
            let v = shared_virtualizer();
            let sql = spec_sql(&spec);
            let (pruned, ps) = run(v, &sql, ExecMode::Columnar, false);
            let (unpruned, us) = run(v, &sql, ExecMode::Columnar, true);
            let (row, _) = run(v, &sql, ExecMode::RowAtATime, false);
            prop_assert!(
                pruned.same_rows(&unpruned),
                "{sql}: pruned {} rows vs unpruned {} rows",
                pruned.len(),
                unpruned.len()
            );
            prop_assert!(pruned.same_rows(&row), "{sql}: pruned vs row oracle");
            // A UDF conjunct poisons decidability of the conjunction's
            // True side only; Empty pruning may still fire via TIME.
            prop_assert_eq!(us.groups_pruned, 0);
            prop_assert!(ps.groups_pruned <= ps.groups_total);
        }
    }
}
