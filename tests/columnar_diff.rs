//! Differential tests for the columnar block pipeline: for every
//! benchmark query (the fig7/fig8 sets in `dv_bench::queries`), the
//! columnar path, the row-at-a-time path, and the hand-written
//! baselines must return identical row multisets — plus a property
//! test over random predicates and projections.

use dv_bench::queries::{ipars_queries, titan_queries};
use dv_core::{ExecMode, QueryOptions, Virtualizer};
use dv_datagen::{ipars, titan, IparsConfig, IparsLayout, TitanConfig};
use dv_handwritten::{HandIparsL0, HandTitan};
use dv_integration::scratch;
use dv_sql::{bind, parse, UdfRegistry};
use dv_types::Table;

fn ipars_cfg() -> IparsConfig {
    // time_steps must stay well above 20 so the bench queries' TIME
    // windows (t_max/2 .. +t_max/10 and +t_max/20) select real rows.
    IparsConfig { realizations: 2, time_steps: 40, grid_per_dir: 50, dirs: 2, nodes: 2, seed: 77 }
}

fn run(v: &Virtualizer, sql: &str, exec: ExecMode) -> Table {
    let opts = QueryOptions { exec, ..Default::default() };
    let (mut tables, _) = v.query_with(sql, &opts).unwrap();
    tables.remove(0)
}

/// Columnar == row-at-a-time == hand-written, on the original L0
/// layout, across the whole fig8 Ipars query set.
#[test]
fn ipars_bench_queries_columnar_row_handwritten() {
    let cfg = ipars_cfg();
    let base = scratch("coldiff-l0");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let hand = HandIparsL0::new(base, cfg.clone(), UdfRegistry::with_builtins());

    for q in ipars_queries("IparsData", cfg.time_steps) {
        let col = run(&v, &q.sql, ExecMode::Columnar);
        let row = run(&v, &q.sql, ExecMode::RowAtATime);
        assert!(col.same_rows(&row), "q{} ({}): columnar vs row", q.no, q.what);

        let bq = bind(&parse(&q.sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let (hand_t, _) = hand.execute(&bq).unwrap();
        assert!(col.same_rows(&hand_t), "q{} ({}): columnar vs handwritten", q.no, q.what);
        assert!(!col.is_empty() || q.no == 0, "q{} selected no rows — degenerate diff", q.no);
    }
}

/// The two execution modes agree on every Ipars layout, not just L0
/// (each layout drives a different extractor shape: aligned multi-file
/// reads, single-file strides, chunked groups).
#[test]
fn ipars_bench_queries_all_layouts() {
    let cfg = ipars_cfg();
    for layout in IparsLayout::all() {
        let base = scratch(&format!("coldiff-{}", layout.tag()));
        let descriptor = ipars::generate(&base, &cfg, layout).unwrap();
        let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
        for q in ipars_queries("IparsData", cfg.time_steps) {
            let col = run(&v, &q.sql, ExecMode::Columnar);
            let row = run(&v, &q.sql, ExecMode::RowAtATime);
            assert!(
                col.same_rows(&row),
                "{} q{} ({}): columnar {} rows vs row {} rows",
                layout.label(),
                q.no,
                q.what,
                col.len(),
                row.len()
            );
        }
    }
}

/// Titan (chunked + R-tree pruned): columnar == row == hand-written
/// across the fig7 query set.
#[test]
fn titan_bench_queries_columnar_row_handwritten() {
    let cfg = TitanConfig { points: 2000, tiles: (3, 3, 2), nodes: 2, seed: 17 };
    let base = scratch("coldiff-titan");
    let descriptor = titan::generate(&base, &cfg).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let hand = HandTitan::new(base, &cfg, UdfRegistry::with_builtins()).unwrap();

    for q in titan_queries("TitanData") {
        let col = run(&v, &q.sql, ExecMode::Columnar);
        let row = run(&v, &q.sql, ExecMode::RowAtATime);
        assert!(col.same_rows(&row), "q{} ({}): columnar vs row", q.no, q.what);

        let bq = bind(&parse(&q.sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let (hand_t, _) = hand.execute(&bq).unwrap();
        assert!(col.same_rows(&hand_t), "q{} ({}): columnar vs handwritten", q.no, q.what);
    }
}

/// Partitioned delivery: the columnar path's per-processor tables
/// union to exactly the row path's single-client result, for every
/// partitioning strategy.
#[test]
fn partitioned_columnar_unions_to_row_result() {
    let cfg = ipars_cfg();
    let base = scratch("coldiff-part");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::II).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let sql = "SELECT TIME, SOIL FROM IparsData WHERE SOIL > 0.2";

    let single = run(&v, sql, ExecMode::RowAtATime);
    for partition in [
        dv_core::PartitionStrategy::RoundRobin,
        dv_core::PartitionStrategy::HashAttr { position: 0 },
        dv_core::PartitionStrategy::RangeAttr { position: 1, bounds: vec![0.4, 0.7] },
    ] {
        let opts = QueryOptions {
            client_processors: 3,
            partition: partition.clone(),
            exec: ExecMode::Columnar,
            ..Default::default()
        };
        let (tables, _) = v.query_with(sql, &opts).unwrap();
        assert_eq!(tables.len(), 3);
        let mut merged = Table::empty(tables[0].schema.clone());
        for t in tables {
            merged.rows.extend(t.rows);
        }
        assert!(merged.same_rows(&single), "{partition:?}: partitioned union diverges");
    }
}

/// Random predicates and projections: the columnar evaluator (bitmap
/// kernels + UDF row-fallback) must agree with the row evaluator on
/// every generated query.
mod random_queries {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    #[derive(Debug, Clone)]
    struct Spec {
        time_lo: i64,
        time_width: i64,
        soil_gt: Option<f64>,
        rel_in: Option<Vec<i64>>,
        sgas_between: Option<(f64, f64)>,
        speed_lt: Option<f64>,
        negate_time: bool,
        or_soil: bool,
        projection: usize,
    }

    fn arb_spec() -> impl Strategy<Value = Spec> {
        (
            (
                0i64..40,
                0i64..12,
                proptest::option::of(0.0f64..1.0),
                proptest::option::of(proptest::collection::vec(0i64..2, 1..3)),
                proptest::option::of((0.0f64..0.5, 0.5f64..1.0)),
            ),
            (proptest::option::of(0.0f64..60.0), any::<bool>(), any::<bool>(), 0usize..4),
        )
            .prop_map(
                |(
                    (time_lo, time_width, soil_gt, rel_in, sgas_between),
                    (speed_lt, negate_time, or_soil, projection),
                )| {
                    Spec {
                        time_lo,
                        time_width,
                        soil_gt,
                        rel_in,
                        sgas_between,
                        speed_lt,
                        negate_time,
                        or_soil,
                        projection,
                    }
                },
            )
    }

    fn spec_sql(spec: &Spec) -> String {
        let (tlo, thi) = (spec.time_lo, spec.time_lo + spec.time_width);
        let time = if spec.negate_time {
            format!("NOT (TIME < {tlo} OR TIME > {thi})")
        } else {
            format!("TIME >= {tlo} AND TIME <= {thi}")
        };
        let mut conjuncts = vec![time];
        if let Some(s) = spec.soil_gt {
            if spec.or_soil {
                conjuncts.push(format!("(SOIL > {s:.3} OR SOIL < {:.3})", s / 4.0));
            } else {
                conjuncts.push(format!("SOIL > {s:.3}"));
            }
        }
        if let Some(rels) = &spec.rel_in {
            let list: Vec<String> = rels.iter().map(|r| r.to_string()).collect();
            conjuncts.push(format!("REL IN ({})", list.join(", ")));
        }
        if let Some((lo, hi)) = spec.sgas_between {
            conjuncts.push(format!("SGAS BETWEEN {lo:.3} AND {hi:.3}"));
        }
        if let Some(c) = spec.speed_lt {
            conjuncts.push(format!("SPEED(OILVX, OILVY, OILVZ) < {c:.2}"));
        }
        let select = match spec.projection {
            0 => "*",
            1 => "REL, TIME, SOIL",
            2 => "SOIL, SOIL, TIME",
            _ => "X, Y, Z, SGAS",
        };
        format!("SELECT {select} FROM IparsData WHERE {}", conjuncts.join(" AND "))
    }

    fn shared_virtualizer() -> &'static Virtualizer {
        static V: OnceLock<Virtualizer> = OnceLock::new();
        V.get_or_init(|| {
            let cfg = ipars_cfg();
            let base = scratch("coldiff-prop");
            let descriptor = ipars::generate(&base, &cfg, IparsLayout::V).unwrap();
            Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn columnar_equals_row_on_random_queries(spec in arb_spec()) {
            let v = shared_virtualizer();
            let sql = spec_sql(&spec);
            let col = run(v, &sql, ExecMode::Columnar);
            let row = run(v, &sql, ExecMode::RowAtATime);
            prop_assert!(
                col.same_rows(&row),
                "{sql}: columnar {} rows vs row {} rows",
                col.len(),
                row.len()
            );
        }
    }
}
