//! Three-way equivalence: for the same logical dataset and queries,
//! the **generated** virtualization path, the **hand-written**
//! extractors, and the **minidb** (load-into-a-DBMS) path must return
//! identical row multisets — and all must match the analytic oracle.

use dv_datagen::{ipars, titan, IparsConfig, IparsLayout, TitanConfig};
use dv_handwritten::{HandIparsL0, HandTitan};
use dv_integration::{ipars_oracle, ipars_virtualizer, scratch};
use dv_minidb::MiniDb;
use dv_sql::{bind, parse, UdfRegistry};
use dv_types::Table;

fn ipars_cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 6, grid_per_dir: 25, dirs: 2, nodes: 2, seed: 31 }
}

const IPARS_QUERIES: [&str; 6] = [
    "SELECT * FROM IparsData",
    "SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 4",
    "SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 4 AND SOIL > 0.7",
    "SELECT REL, TIME, SOIL FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) < 30.0",
    "SELECT X, Y, Z FROM IparsData WHERE REL IN (1) AND TIME = 3",
    "SELECT SOIL, SGAS FROM IparsData WHERE NOT (TIME < 3 OR TIME > 4) AND SGAS <= 0.5",
];

#[test]
fn generated_equals_oracle_for_every_layout_and_query() {
    let cfg = ipars_cfg();
    // Oracle per query, built once.
    let probe = ipars_virtualizer("oracleprobe", &cfg, IparsLayout::I);
    let schema = probe.schema().clone();
    let oracles: Vec<Table> = IPARS_QUERIES
        .iter()
        .map(|sql| {
            // Evaluate via the bound predicate itself — independent of
            // the storage path (pure in-memory evaluation).
            let udfs = UdfRegistry::with_builtins();
            let b = bind(&parse(sql).unwrap(), &schema, &udfs).unwrap();
            let working: Vec<usize> = (0..schema.len()).collect();
            let cx = dv_sql::eval::EvalContext::new(schema.len(), &working, &udfs);
            let names: Vec<&str> =
                b.projection.iter().map(|&i| schema.attr_at(i).name.as_str()).collect();
            ipars_oracle(
                &cfg,
                &schema,
                |row| b.predicate.as_ref().map(|p| cx.eval(p, row)).unwrap_or(true),
                &names,
            )
        })
        .collect();

    for layout in IparsLayout::all() {
        let v = ipars_virtualizer("equiv", &cfg, layout);
        for (sql, oracle) in IPARS_QUERIES.iter().zip(&oracles) {
            let (table, _) = v.query(sql).unwrap();
            assert!(
                table.same_rows(oracle),
                "{} / {sql}: {} rows vs oracle {}",
                layout.label(),
                table.len(),
                oracle.len()
            );
        }
    }
}

#[test]
fn generated_equals_handwritten_l0() {
    let cfg = ipars_cfg();
    let base = scratch("hand-l0");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
    let v = dv_core::Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let hand = HandIparsL0::new(base, cfg, UdfRegistry::with_builtins());
    for sql in IPARS_QUERIES {
        let bq = bind(&parse(sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let (hand_t, _) = hand.execute(&bq).unwrap();
        let (gen_t, _) = v.query(sql).unwrap();
        assert!(hand_t.same_rows(&gen_t), "{sql}");
    }
}

#[test]
fn generated_equals_minidb() {
    let cfg = ipars_cfg();
    let v = ipars_virtualizer("minidb", &cfg, IparsLayout::V);
    let dbdir = scratch("minidb-db");
    let mut db = MiniDb::open(&dbdir, UdfRegistry::with_builtins()).unwrap();
    // "Load the data into the DBMS" — schema name must match FROM.
    let mut schema = v.schema().clone();
    schema = dv_types::Schema::new("IPARSDATA", schema.attributes().to_vec()).unwrap();
    db.load_table(&schema, cfg.all_rows()).unwrap();
    db.create_index("IPARSDATA", "TIME").unwrap();

    for sql in IPARS_QUERIES {
        let (gen_t, _) = v.query(sql).unwrap();
        let (db_t, _) = db.query(&sql.replace("IparsData", "IPARSDATA")).unwrap();
        assert!(
            gen_t.same_rows(&db_t),
            "{sql}: generated {} vs minidb {}",
            gen_t.len(),
            db_t.len()
        );
    }
}

#[test]
fn titan_three_way() {
    let cfg = TitanConfig { points: 2000, tiles: (3, 3, 2), nodes: 2, seed: 17 };
    let base = scratch("titan3");
    let descriptor = titan::generate(&base, &cfg).unwrap();
    let v = dv_core::Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let hand = HandTitan::new(base, &cfg, UdfRegistry::with_builtins()).unwrap();

    let dbdir = scratch("titan3-db");
    let mut db = MiniDb::open(&dbdir, UdfRegistry::with_builtins()).unwrap();
    let schema = dv_types::Schema::new("TITANDATA", v.schema().attributes().to_vec()).unwrap();
    db.load_table(&schema, cfg.all_rows()).unwrap();
    db.create_index("TITANDATA", "X").unwrap();
    db.create_index("TITANDATA", "S1").unwrap();

    let queries = [
        "SELECT * FROM TitanData",
        "SELECT * FROM TitanData WHERE X >= 1000 AND X <= 20000 AND Y >= 0 AND Y <= 30000 \
         AND Z >= 100 AND Z <= 400",
        "SELECT * FROM TitanData WHERE S1 < 0.01",
        "SELECT X, S1 FROM TitanData WHERE S1 < 0.5",
        "SELECT * FROM TitanData WHERE DISTANCE(X, Y, Z) < 15000.0",
    ];
    for sql in queries {
        let bq = bind(&parse(sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let (hand_t, _) = hand.execute(&bq).unwrap();
        let (gen_t, _) = v.query(sql).unwrap();
        let (db_t, _) = db.query(&sql.replace("TitanData", "TITANDATA")).unwrap();
        assert!(gen_t.same_rows(&hand_t), "{sql}: generated vs hand");
        assert!(gen_t.same_rows(&db_t), "{sql}: generated vs minidb");
    }
}

#[test]
fn partitioned_results_union_to_oracle() {
    let cfg = ipars_cfg();
    let v = ipars_virtualizer("partunion", &cfg, IparsLayout::II);
    let opts = dv_core::QueryOptions {
        client_processors: 3,
        partition: dv_core::PartitionStrategy::HashAttr { position: 0 },
        ..Default::default()
    };
    let sql = "SELECT TIME, SOIL FROM IparsData WHERE SOIL > 0.2";
    let (tables, _) = v.query_with(sql, &opts).unwrap();
    let mut merged = Table::empty(tables[0].schema.clone());
    for t in tables {
        merged.rows.extend(t.rows);
    }
    let (single, _) = v.query(sql).unwrap();
    assert!(merged.same_rows(&single));
}
