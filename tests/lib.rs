//! Shared helpers for the cross-crate integration tests.

use std::path::PathBuf;

use dv_core::Virtualizer;
use dv_datagen::{ipars, IparsConfig, IparsLayout};
use dv_types::{Schema, Table, Value};

/// Fresh scratch directory unique to a test.
pub fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dv-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Generate an Ipars dataset and build a virtualizer over it.
pub fn ipars_virtualizer(tag: &str, cfg: &IparsConfig, layout: IparsLayout) -> Virtualizer {
    let base = scratch(&format!("{tag}-{}", layout.tag()));
    let descriptor = ipars::generate(&base, cfg, layout).expect("generate");
    Virtualizer::builder(&descriptor).storage_base(&base).build().expect("compile")
}

/// Evaluate a predicate + projection over the logical row set directly
/// (the trusted oracle).
pub fn ipars_oracle(
    cfg: &IparsConfig,
    schema: &Schema,
    keep: impl Fn(&[Value]) -> bool,
    project: &[&str],
) -> Table {
    let idx: Vec<usize> = project.iter().map(|p| schema.index_of(p).unwrap()).collect();
    let mut t = Table::empty(schema.project(&idx));
    for row in cfg.all_rows() {
        if keep(&row) {
            t.rows.push(idx.iter().map(|&i| row[i]).collect());
        }
    }
    t
}
