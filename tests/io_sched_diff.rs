//! Differential tests for the I/O scheduler: every knob combination
//! (coalescing gap, working-set grouping, readahead, segment cache)
//! must return exactly the rows of the scheduler-off path and the
//! hand-written baselines, across all Ipars layouts, Titan, and
//! proptest-generated queries — plus cache-invalidation tests proving
//! a rewritten or truncated file yields fresh reads, never stale
//! cached bytes.

use dv_bench::queries::{ipars_queries, titan_queries};
use dv_core::{IoOptions, QueryOptions, Virtualizer};
use dv_datagen::{ipars, titan, IparsConfig, IparsLayout, TitanConfig};
use dv_handwritten::{HandIparsL0, HandTitan};
use dv_integration::scratch;
use dv_sql::{bind, parse, UdfRegistry};
use dv_types::Table;

fn ipars_cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 40, grid_per_dir: 50, dirs: 2, nodes: 2, seed: 77 }
}

/// The knob matrix: scheduler off, coalesce-only (two gaps), tiny
/// working sets with readahead (forces real prefetch traffic), cache
/// without readahead, and everything on.
fn knob_combos() -> Vec<(&'static str, IoOptions)> {
    vec![
        ("off", IoOptions::disabled()),
        ("coalesce", IoOptions { readahead: false, cache_bytes: 0, ..IoOptions::default() }),
        (
            "coalesce-gap0",
            IoOptions { readahead: false, cache_bytes: 0, coalesce_gap: 0, ..IoOptions::default() },
        ),
        (
            "readahead",
            IoOptions {
                cache_bytes: 0,
                group_bytes: 16 * 1024,
                prefetch_depth: 1,
                ..IoOptions::default()
            },
        ),
        ("cache", IoOptions { readahead: false, ..IoOptions::default() }),
        ("full", IoOptions { group_bytes: 64 * 1024, ..IoOptions::default() }),
    ]
}

fn run_io(v: &Virtualizer, sql: &str, io: &IoOptions) -> Table {
    let opts = QueryOptions { io: io.clone(), ..Default::default() };
    let (mut tables, _) = v.query_with(sql, &opts).unwrap();
    tables.remove(0)
}

/// All knob combinations == scheduler off == hand-written, across the
/// fig8 Ipars query set on the original L0 layout (m=18 fan-in).
#[test]
fn ipars_l0_all_knobs_match_handwritten() {
    let cfg = ipars_cfg();
    let base = scratch("iodiff-l0");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let hand = HandIparsL0::new(base, cfg.clone(), UdfRegistry::with_builtins());

    for q in ipars_queries("IparsData", cfg.time_steps) {
        let off = run_io(&v, &q.sql, &IoOptions::disabled());
        let bq = bind(&parse(&q.sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let (hand_t, _) = hand.execute(&bq).unwrap();
        assert!(off.same_rows(&hand_t), "q{} ({}): scheduler-off vs handwritten", q.no, q.what);
        for (name, io) in knob_combos() {
            let on = run_io(&v, &q.sql, &io);
            assert!(
                on.same_rows(&off),
                "q{} ({}) knob `{name}`: {} rows vs {} rows off",
                q.no,
                q.what,
                on.len(),
                off.len()
            );
        }
    }
}

/// Every Ipars layout agrees across the knob matrix (each layout
/// stresses a different run shape: vertical fragments, interleaved
/// strides, chunked groups).
#[test]
fn ipars_all_layouts_all_knobs() {
    let cfg = ipars_cfg();
    for layout in IparsLayout::all() {
        let base = scratch(&format!("iodiff-{}", layout.tag()));
        let descriptor = ipars::generate(&base, &cfg, layout).unwrap();
        let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
        for q in ipars_queries("IparsData", cfg.time_steps) {
            let off = run_io(&v, &q.sql, &IoOptions::disabled());
            for (name, io) in knob_combos() {
                let on = run_io(&v, &q.sql, &io);
                assert!(
                    on.same_rows(&off),
                    "{} q{} ({}) knob `{name}`: {} rows vs {} rows off",
                    layout.label(),
                    q.no,
                    q.what,
                    on.len(),
                    off.len()
                );
            }
        }
    }
}

/// Titan (chunked + R-tree pruned) agrees across the knob matrix and
/// with the hand-written baseline.
#[test]
fn titan_all_knobs_match_handwritten() {
    let cfg = TitanConfig { points: 2000, tiles: (3, 3, 2), nodes: 2, seed: 17 };
    let base = scratch("iodiff-titan");
    let descriptor = titan::generate(&base, &cfg).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let hand = HandTitan::new(base, &cfg, UdfRegistry::with_builtins()).unwrap();

    for q in titan_queries("TitanData") {
        let off = run_io(&v, &q.sql, &IoOptions::disabled());
        let bq = bind(&parse(&q.sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let (hand_t, _) = hand.execute(&bq).unwrap();
        assert!(off.same_rows(&hand_t), "q{} ({}): scheduler-off vs handwritten", q.no, q.what);
        for (name, io) in knob_combos() {
            let on = run_io(&v, &q.sql, &io);
            assert!(on.same_rows(&off), "q{} ({}) knob `{name}`", q.no, q.what);
        }
    }
}

/// The scheduler's counters behave as designed on L0: coalescing
/// merges the per-time-step vertical-fragment runs into far fewer
/// syscalls, and a repeated query is served almost entirely from the
/// segment cache.
#[test]
fn l0_counters_show_coalescing_and_warm_cache() {
    let cfg = ipars_cfg();
    let base = scratch("iodiff-counters");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let sql = "SELECT * FROM IparsData";

    let (_, off) = v
        .query_with(sql, &QueryOptions { io: IoOptions::disabled(), ..Default::default() })
        .unwrap();
    let (_, cold) = v.query_with(sql, &QueryOptions::default()).unwrap();
    let (_, warm) = v.query_with(sql, &QueryOptions::default()).unwrap();

    assert!(off.io.read_syscalls > 0);
    assert!(
        cold.io.read_syscalls * 5 <= off.io.read_syscalls,
        "coalescing must cut syscalls >= 5x on L0: {} vs {}",
        cold.io.read_syscalls,
        off.io.read_syscalls
    );
    assert!(cold.io.coalesce_ratio() >= 5.0, "ratio {}", cold.io.coalesce_ratio());
    assert_eq!(cold.io.bytes_used, off.io.bytes_used);
    // The warm run re-reads (almost) nothing.
    assert!(
        warm.io.bytes_issued * 10 <= cold.io.bytes_issued.max(1),
        "warm run must issue <= 10% of cold bytes: {} vs {}",
        warm.io.bytes_issued,
        cold.io.bytes_issued
    );
    assert!(warm.io.cache_hit_rate() > 0.9, "hit rate {}", warm.io.cache_hit_rate());
    // Both scheduled runs decode the same logical bytes.
    assert_eq!(warm.bytes_read, cold.bytes_read);
}

/// Rewriting a data file in place (fresh mtime, same length) must
/// invalidate its cached segments: the same server answers the second
/// query from the new bytes.
#[test]
fn cache_invalidation_on_rewrite() {
    let cfg_a = ipars_cfg();
    let cfg_b = IparsConfig { seed: 4242, ..cfg_a.clone() };
    let base = scratch("iodiff-rewrite");
    let descriptor = ipars::generate(&base, &cfg_a, IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let sql = "SELECT * FROM IparsData WHERE TIME <= 5";

    let (t1, _) = v.query(sql).unwrap();
    // Rewrite every data file in place with different values (the
    // sleep guarantees a distinct mtime even on coarse filesystems).
    std::thread::sleep(std::time::Duration::from_millis(20));
    ipars::generate(&base, &cfg_b, IparsLayout::L0).unwrap();

    let (t2, stats2) = v.query(sql).unwrap();
    assert!(!t1.same_rows(&t2), "rewritten data must change the result");
    assert_eq!(stats2.io.cache_hit_bytes, 0, "no stale segment may be served");

    // A fresh server over the rewritten files agrees.
    let v_fresh = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let (t_fresh, _) = v_fresh.query(sql).unwrap();
    assert!(t2.same_rows(&t_fresh), "post-rewrite result must match a cold server");
}

/// Truncating a file after it was cached must surface as an I/O
/// error on the next query, not a stale success.
#[test]
fn cache_invalidation_on_truncate() {
    let cfg = ipars_cfg();
    let base = scratch("iodiff-trunc");
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let sql = "SELECT * FROM IparsData";

    v.query(sql).unwrap();
    // Truncate one vertical-fragment file to half its size.
    let victim = walk_one_data_file(&base);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    let err = v.query(sql);
    assert!(
        err.is_err(),
        "query over a truncated file must fail, got {:?}",
        err.map(|r| r.0.len())
    );
}

/// First regular file below `base` (the datasets are generated, so
/// any data file works as a truncation victim).
fn walk_one_data_file(base: &std::path::Path) -> std::path::PathBuf {
    let mut stack = vec![base.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> =
            std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.metadata().map(|m| m.len() > 64).unwrap_or(false) {
                return p;
            }
        }
    }
    panic!("no data file found under {}", base.display());
}

/// Random predicates and projections: the full scheduler must agree
/// with the scheduler-off path on every generated query.
mod random_queries {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    #[derive(Debug, Clone)]
    struct Spec {
        time_lo: i64,
        time_width: i64,
        soil_gt: Option<f64>,
        rel: Option<i64>,
        projection: usize,
        knob: usize,
    }

    fn arb_spec() -> impl Strategy<Value = Spec> {
        (
            0i64..40,
            0i64..12,
            proptest::option::of(0.0f64..1.0),
            proptest::option::of(0i64..2),
            0usize..4,
            0usize..6,
        )
            .prop_map(|(time_lo, time_width, soil_gt, rel, projection, knob)| Spec {
                time_lo,
                time_width,
                soil_gt,
                rel,
                projection,
                knob,
            })
    }

    fn spec_sql(spec: &Spec) -> String {
        let (tlo, thi) = (spec.time_lo, spec.time_lo + spec.time_width);
        let mut conjuncts = vec![format!("TIME >= {tlo} AND TIME <= {thi}")];
        if let Some(s) = spec.soil_gt {
            conjuncts.push(format!("SOIL > {s:.3}"));
        }
        if let Some(r) = spec.rel {
            conjuncts.push(format!("REL = {r}"));
        }
        let select = match spec.projection {
            0 => "*",
            1 => "REL, TIME, SOIL",
            2 => "SOIL, SOIL, TIME",
            _ => "X, Y, Z, SGAS",
        };
        format!("SELECT {select} FROM IparsData WHERE {}", conjuncts.join(" AND "))
    }

    fn shared_virtualizer() -> &'static Virtualizer {
        static V: OnceLock<Virtualizer> = OnceLock::new();
        V.get_or_init(|| {
            let cfg = ipars_cfg();
            let base = scratch("iodiff-prop");
            let descriptor = ipars::generate(&base, &cfg, IparsLayout::III).unwrap();
            Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn scheduler_equals_direct_on_random_queries(spec in arb_spec()) {
            let v = shared_virtualizer();
            let sql = spec_sql(&spec);
            let (name, io) = knob_combos().swap_remove(spec.knob);
            let on = run_io(v, &sql, &io);
            let off = run_io(v, &sql, &IoOptions::disabled());
            prop_assert!(
                on.same_rows(&off),
                "{sql} knob `{name}`: {} rows vs {} rows off",
                on.len(),
                off.len()
            );
        }
    }
}
