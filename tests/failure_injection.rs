//! Failure injection: missing files, truncated files, corrupt
//! indexes, and descriptor/data mismatches must surface as errors —
//! never as silently wrong answers.

use dv_core::Virtualizer;
use dv_datagen::{ipars, titan, IparsConfig, IparsLayout, TitanConfig};
use dv_integration::scratch;

#[test]
fn missing_data_file_fails_query_not_build() {
    let base = scratch("missing-file");
    let cfg = IparsConfig::tiny();
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
    std::fs::remove_file(base.join("osu0/ipars.l0.d0/soil.r0.dat")).unwrap();
    // Compilation is metadata-only and succeeds.
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    // Queries touching the file fail with an I/O error naming it.
    let err = v.query("SELECT * FROM IparsData").unwrap_err().to_string();
    assert!(err.contains("soil.r0.dat"), "{err}");
    // Queries pruned away from it still work.
    let (t, _) = v.query("SELECT * FROM IparsData WHERE REL = 1").unwrap();
    assert_eq!(t.len() as u64, cfg.rows() / 2);
}

#[test]
fn truncated_data_file_is_io_error() {
    let base = scratch("truncated");
    let cfg = IparsConfig::tiny();
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::I).unwrap();
    let path = base.join("osu1/ipars.l1.d1/all.dat");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    assert!(v.query("SELECT * FROM IparsData").is_err());
    // The intact node's data is still fully queryable... but a full
    // scan must NOT return partial results silently.
    let err = v.query("SELECT * FROM IparsData").unwrap_err();
    assert!(matches!(err, dv_core::DvError::Io { .. }));
}

#[test]
fn corrupt_chunk_index_fails_compile() {
    let base = scratch("badidx");
    let cfg = TitanConfig::tiny();
    let descriptor = titan::generate(&base, &cfg).unwrap();
    std::fs::write(base.join("tnode0/titan/titan.idx"), b"garbage").unwrap();
    let err = Virtualizer::builder(&descriptor).storage_base(&base).build();
    assert!(err.is_err());
}

#[test]
fn descriptor_data_mismatch_detected_at_read() {
    // Descriptor promises 2× the time steps the files contain: the
    // extractor's exact reads run past EOF and error.
    let base = scratch("mismatch");
    let cfg = IparsConfig::tiny();
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::I).unwrap();
    let lying = descriptor.replace("LOOP TIME 1:3:1", "LOOP TIME 1:6:1");
    let v = Virtualizer::builder(&lying).storage_base(&base).build().unwrap();
    assert!(v.query("SELECT * FROM IparsData").is_err());
    // A query confined to the truly existing region still succeeds.
    let (t, _) = v.query("SELECT * FROM IparsData WHERE TIME <= 1 AND REL = 0").unwrap();
    assert_eq!(t.len(), cfg.grid_per_dir * cfg.dirs);
}

#[test]
fn wrong_storage_base_is_clean_error() {
    let base = scratch("wrongbase");
    let cfg = IparsConfig::tiny();
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::V).unwrap();
    let v =
        Virtualizer::builder(&descriptor).storage_base(base.join("nonexistent")).build().unwrap();
    let err = v.query("SELECT * FROM IparsData").unwrap_err();
    assert!(matches!(err, dv_core::DvError::Io { .. }));
}

#[test]
fn unknown_attribute_and_dataset_errors() {
    let base = scratch("binderr");
    let cfg = IparsConfig::tiny();
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::V).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let e = v.query("SELECT NOPE FROM IparsData").unwrap_err().to_string();
    assert!(e.contains("NOPE"), "{e}");
    let e = v.query("SELECT * FROM OtherTable").unwrap_err().to_string();
    assert!(e.contains("OtherTable"), "{e}");
    let e = v.query("SELECT * FROM IparsData WHERE FROB(SOIL) > 1").unwrap_err().to_string();
    assert!(e.contains("FROB"), "{e}");
}

#[test]
fn contradictory_predicate_returns_empty() {
    let base = scratch("contradict");
    let cfg = IparsConfig::tiny();
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::III).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let (t, stats) = v.query("SELECT * FROM IparsData WHERE TIME > 2 AND TIME < 2").unwrap();
    assert!(t.is_empty());
    assert_eq!(stats.bytes_read, 0, "contradiction must not read anything");
}

#[test]
fn verify_files_reports_all_issue_kinds() {
    // Clean dataset verifies clean.
    let base = scratch("verify");
    let cfg = IparsConfig::tiny();
    let descriptor = ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    assert!(v.verify_files().is_empty());

    // Missing file.
    std::fs::remove_file(base.join("osu0/ipars.l0.d0/sgas.r1.dat")).unwrap();
    // Truncated file.
    let coords = base.join("osu1/ipars.l0.d1/COORDS");
    let bytes = std::fs::read(&coords).unwrap();
    std::fs::write(&coords, &bytes[..bytes.len() - 4]).unwrap();

    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let issues = v.verify_files();
    assert_eq!(issues.len(), 2, "{issues:?}");
    assert!(issues.iter().any(|i| matches!(i, dv_core::FileIssue::Missing { .. })));
    assert!(issues
        .iter()
        .any(|i| matches!(i, dv_core::FileIssue::SizeMismatch { expected, actual, .. }
            if expected - 4 == *actual)));
}

#[test]
fn verify_files_detects_chunk_overrun() {
    let base = scratch("verify-chunk");
    let cfg = TitanConfig::tiny();
    let descriptor = titan::generate(&base, &cfg).unwrap();
    let data = base.join("tnode0/titan/titan.dat");
    let bytes = std::fs::read(&data).unwrap();
    std::fs::write(&data, &bytes[..bytes.len() - 64]).unwrap();
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();
    let issues = v.verify_files();
    assert_eq!(issues.len(), 1);
    assert!(matches!(issues[0], dv_core::FileIssue::ChunkBeyondEof { .. }));
    // Display is human-readable.
    assert!(issues[0].to_string().contains("overruns"));
}
