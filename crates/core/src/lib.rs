//! # dv-core — automatic data virtualization
//!
//! The public façade of `datavirt`, a Rust reproduction of
//! *"An Approach for Automatic Data Virtualization"* (Weng, Agrawal,
//! Catalyurek, Kurc, Narayanan, Saltz — HPDC 2004).
//!
//! Given a **meta-data descriptor** (schema + storage + layout of a
//! flat-file scientific dataset), a [`Virtualizer`] compiles the
//! descriptor once and then answers **SQL subset queries**
//! (`SELECT`/`WHERE` with ranges, `IN` lists and user-defined filter
//! functions) as if the dataset were a relational table — without
//! loading or converting any data.
//!
//! ```no_run
//! use dv_core::Virtualizer;
//!
//! let descriptor = std::fs::read_to_string("ipars.desc").unwrap();
//! let v = Virtualizer::builder(&descriptor)
//!     .storage_base("/data")          // node dirs live under /data/<node>
//!     .udf("SPEED", Some(3), |a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
//!     .build()
//!     .unwrap();
//!
//! let (table, stats) = v
//!     .query("SELECT * FROM IparsData WHERE TIME >= 1000 AND TIME <= 1100 AND SOIL > 0.7")
//!     .unwrap();
//! println!("{table}");
//! println!("read {} bytes in {:?}", stats.bytes_read, stats.total_time());
//! ```
//!
//! Lower layers are re-exported for advanced use: descriptor model
//! inspection ([`dv_descriptor`]), plan inspection and rendering
//! ([`dv_layout`]), and the STORM-style runtime ([`dv_storm`]).

use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use dv_descriptor::DatasetModel;
pub use dv_layout::{
    Certificate, CompiledDataset, CostBound, CostParams, CostReport, FileIssue, QueryPlan,
};
pub use dv_lint::{CostBudgets, LinkBudget, VerifyReport};
pub use dv_sql::{BoundQuery, UdfRegistry};
pub use dv_storm::{
    BandwidthModel, CancelReason, CancelToken, ExecMode, IoOptions, IoSnapshot, PartitionStrategy,
    QueryId, QueryOptions, QueryService, QueryStats, ServiceConfig, SessionHandle, StormServer,
    SubmitOptions,
};
pub use dv_types::{DvError, Result, Row, Schema, Table, Value};

/// Builder for a [`Virtualizer`].
pub struct VirtualizerBuilder {
    descriptor: String,
    storage_base: Option<PathBuf>,
    explicit_roots: Option<Vec<PathBuf>>,
    udfs: UdfRegistry,
    verify: bool,
    service: ServiceConfig,
}

impl VirtualizerBuilder {
    /// Map every cluster node name `n` to `<base>/<n>` (the layout the
    /// generators and most deployments use).
    pub fn storage_base(mut self, base: impl AsRef<Path>) -> Self {
        self.storage_base = Some(base.as_ref().to_path_buf());
        self
    }

    /// Explicit per-node storage roots (`roots[i]` hosts node `i`).
    pub fn storage_roots(mut self, roots: Vec<PathBuf>) -> Self {
        self.explicit_roots = Some(roots);
        self
    }

    /// Register a user-defined filter function.
    pub fn udf(
        mut self,
        name: &str,
        arity: Option<usize>,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.udfs.register(name, arity, f);
        self
    }

    /// Register a UDF together with implicit argument attributes for
    /// bare calls like `Speed()`.
    pub fn udf_with_implicit_args(
        mut self,
        name: &str,
        arity: Option<usize>,
        implicit_args: Vec<String>,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.udfs.register_with_implicit_args(name, arity, implicit_args, f);
        self
    }

    /// Run (or skip) the `dv-verify` semantic pass at build time.
    /// Enabled by default: a descriptor whose extent maps are proved
    /// overlap-free, in-bounds and aligned earns a
    /// [`Certificate::Safe`], which lets the extractor use the
    /// unchecked columnar decode path.
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// How many queries the service admits at once (default 4, clamped
    /// to at least 1); the rest queue priority-then-FIFO.
    pub fn max_concurrent(mut self, limit: usize) -> Self {
        self.service.max_concurrent = limit;
        self
    }

    /// Server-wide ceiling on per-query intra-node worker threads
    /// (default: the host's available parallelism). Per-query
    /// `QueryOptions::intra_node_threads` requests above this are
    /// clamped at execution time.
    pub fn max_intra_node_threads(mut self, limit: usize) -> Self {
        self.service.max_intra_node_threads = limit.max(1);
        self
    }

    /// Cost-based admission byte budget: reject any query whose static
    /// planned byte bound exceeds `bytes` with a DV401-coded error,
    /// before any fragment runs. Unset by default.
    pub fn max_plan_bytes(mut self, bytes: u64) -> Self {
        self.service.max_plan_bytes = Some(bytes);
        self
    }

    /// Cost-based admission group-memory budget: reject any query
    /// whose static absorber group-state bound exceeds `bytes` with a
    /// DV404-coded error. Unset by default.
    pub fn max_group_memory(mut self, bytes: u64) -> Self {
        self.service.max_group_memory = Some(bytes);
        self
    }

    /// Compile the descriptor and start the per-node services.
    pub fn build(self) -> Result<Virtualizer> {
        let model = Arc::new(dv_descriptor::compile(&self.descriptor)?);
        let roots = match (self.explicit_roots, self.storage_base) {
            (Some(roots), _) => roots,
            (None, Some(base)) => model.nodes.iter().map(|n| base.join(n)).collect(),
            (None, None) => {
                return Err(DvError::Runtime(
                    "set storage_base(...) or storage_roots(...) before build()".into(),
                ))
            }
        };
        let compiled = Arc::new(CompiledDataset::compile(model, roots)?);
        if self.verify {
            if let Ok(ast) = dv_descriptor::parse_descriptor(&self.descriptor) {
                let m = &compiled.model;
                let mut sizes = dv_lint::verify::ObservedSizes::new();
                for f in &m.files {
                    // Missing files leave no entry, which keeps the
                    // bounds property unproven (never falsely safe).
                    if let Ok(md) = std::fs::metadata(compiled.file_path(f.id)) {
                        sizes.insert((m.nodes[f.node].clone(), f.rel_path.clone()), md.len());
                    }
                }
                let report = dv_lint::verify_ast(&ast, Some(m), Some(&sizes));
                compiled.set_certificate(report.certificate());
            }
        }
        let server = StormServer::with_config(compiled, self.udfs, self.service);
        Ok(Virtualizer { server })
    }
}

/// A compiled, queryable virtual table over flat-file data.
pub struct Virtualizer {
    server: StormServer,
}

impl Virtualizer {
    /// Start building a virtualizer from descriptor text. `SPEED` and
    /// `DISTANCE` (the paper's example filters) are pre-registered.
    pub fn builder(descriptor: &str) -> VirtualizerBuilder {
        VirtualizerBuilder {
            descriptor: descriptor.to_string(),
            storage_base: None,
            explicit_roots: None,
            udfs: UdfRegistry::with_builtins(),
            verify: true,
            service: ServiceConfig::default(),
        }
    }

    /// The virtual table's schema.
    pub fn schema(&self) -> &Schema {
        &self.server.model().schema
    }

    /// The resolved dataset model (files, implicit extents, layouts).
    pub fn model(&self) -> &DatasetModel {
        self.server.model()
    }

    /// Execute a query for a single local client.
    pub fn query(&self, sql: &str) -> Result<(Table, QueryStats)> {
        self.server.execute_table(sql)
    }

    /// Execute with full options (partitioning, remote-client
    /// bandwidth, intra-node threads).
    pub fn query_with(&self, sql: &str, opts: &QueryOptions) -> Result<(Vec<Table>, QueryStats)> {
        self.server.execute(sql, opts)
    }

    /// Execute a single-table query that is aborted mid-scan once
    /// `timeout` elapses (including time spent queued for admission).
    pub fn query_with_timeout(
        &self,
        sql: &str,
        timeout: std::time::Duration,
    ) -> Result<(Table, QueryStats)> {
        let sub = SubmitOptions { timeout: Some(timeout), ..SubmitOptions::default() };
        let (mut tables, stats) =
            self.server.service().execute_with(sql, &QueryOptions::default(), &sub)?;
        match tables.pop() {
            Some(table) => Ok((table, stats)),
            None => Err(DvError::Runtime(
                "query produced no client partitions (zero processors configured)".into(),
            )),
        }
    }

    /// Submit a query as a background session: returns a
    /// [`SessionHandle`] whose `wait()` yields the result and whose
    /// drop (without waiting) cancels the query. The session queues
    /// under the service's admission limit.
    pub fn submit(
        &self,
        sql: &str,
        opts: &QueryOptions,
        sub: &SubmitOptions,
    ) -> Result<SessionHandle> {
        self.server.service().submit(sql, opts, sub)
    }

    /// The query service plane: sessions, admission introspection,
    /// cancellation by [`QueryId`].
    pub fn service(&self) -> &QueryService {
        self.server.service()
    }

    /// Render the generated index/extractor functions as source text
    /// (what the paper's compiler would have emitted as C++).
    pub fn render_generated_code(&self) -> String {
        dv_layout::codegen::render_compiled(self.server.compiled())
    }

    /// Render the AFC schedule of a query (debugging / inspection),
    /// followed by the plan's static resource bounds (dv-cost).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let bq = self.server.bind_sql(sql)?;
        let plan = self.server.compiled().plan_query(&bq)?;
        let mut out = dv_layout::codegen::render_plan(self.server.compiled(), &plan);
        let report = CostReport::analyze(
            &plan,
            &CostParams::new(&IoOptions::default(), 1, bq.predicate.is_some()),
        );
        out.push_str("// ---- static cost bounds (dv-cost) ----\n");
        for line in report.to_string().lines() {
            out.push_str("// ");
            out.push_str(line);
            out.push('\n');
        }
        Ok(out)
    }

    /// The static [`CostReport`] of a query's plan: guaranteed upper
    /// bounds on rows, bytes, syscalls, mover wire bytes and absorber
    /// memory, derived without touching any data.
    pub fn cost_report(&self, sql: &str) -> Result<CostReport> {
        let bq = self.server.bind_sql(sql)?;
        let plan = self.server.compiled().plan_query(&bq)?;
        Ok(CostReport::analyze(
            &plan,
            &CostParams::new(&IoOptions::default(), 1, bq.predicate.is_some()),
        ))
    }

    /// Validate the descriptor against the files on disk; returns all
    /// discrepancies (missing files, size mismatches, chunk overruns).
    pub fn verify_files(&self) -> Vec<FileIssue> {
        self.server.compiled().verify_files()
    }

    /// The verification certificate computed at build time (or
    /// [`Certificate::Unverified`] when verification was disabled).
    pub fn certificate(&self) -> Certificate {
        self.server.compiled().certificate()
    }

    /// Access the underlying STORM server (advanced use).
    pub fn server(&self) -> &StormServer {
        &self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_datagen::{ipars, IparsConfig, IparsLayout};
    use std::time::Duration;

    fn setup(tag: &str) -> (PathBuf, String) {
        let base = std::env::temp_dir().join(format!("dv-core-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let cfg = IparsConfig::tiny();
        let desc = ipars::generate(&base, &cfg, IparsLayout::V).unwrap();
        (base, desc)
    }

    #[test]
    fn end_to_end_facade() {
        let (base, desc) = setup("e2e");
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        assert_eq!(v.schema().len(), 22);
        let (table, stats) =
            v.query("SELECT REL, TIME, SOIL FROM IparsData WHERE SOIL > 0.5").unwrap();
        assert!(stats.rows_scanned > 0);
        assert!(table.len() < stats.rows_scanned as usize);
        for row in &table.rows {
            assert!(row[2].as_f64() > 0.5);
        }
    }

    #[test]
    fn builder_requires_storage() {
        let (_base, desc) = setup("nostorage");
        assert!(Virtualizer::builder(&desc).build().is_err());
    }

    #[test]
    fn custom_udf() {
        let (base, desc) = setup("udf");
        let v = Virtualizer::builder(&desc)
            .storage_base(&base)
            .udf("HALF", Some(1), |a| a[0] / 2.0)
            .build()
            .unwrap();
        let (table, _) = v.query("SELECT SOIL FROM IparsData WHERE HALF(SOIL) > 0.25").unwrap();
        for row in &table.rows {
            assert!(row[0].as_f64() > 0.5);
        }
    }

    #[test]
    fn explain_and_codegen_render() {
        let (base, desc) = setup("explain");
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let code = v.render_generated_code();
        assert!(code.contains("index_function"));
        let plan = v.explain("SELECT * FROM IparsData WHERE TIME = 1").unwrap();
        assert!(plan.contains("working row"));
        assert!(plan.contains("static cost bounds (dv-cost)"));
        assert!(plan.contains("rows scanned"));
    }

    #[test]
    fn cost_report_bounds_hold_and_budgets_reject() {
        let (base, desc) = setup("cost");
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let sql = "SELECT REL, TIME, SOIL FROM IparsData WHERE SOIL > 0.5";
        let report = v.cost_report(sql).unwrap();
        let (_, stats) = v.query(sql).unwrap();
        assert_eq!(stats.rows_scanned, report.rows_scanned.hi);
        assert_eq!(stats.bytes_read, report.bytes_read.hi);
        assert!(stats.rows_selected <= report.rows_selected.hi);
        // An impossible byte budget rejects the same query at
        // admission with a DV-coded error.
        let tight =
            Virtualizer::builder(&desc).storage_base(&base).max_plan_bytes(1).build().unwrap();
        let err = tight.query(sql).unwrap_err();
        assert!(err.is_cost_rejected(), "{err}");
    }

    #[test]
    fn bad_descriptor_reported() {
        let err = Virtualizer::builder("not a descriptor").storage_base("/tmp").build();
        assert!(err.is_err());
    }

    #[test]
    fn build_verifies_and_certifies() {
        let (base, desc) = setup("certify");
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        assert_eq!(v.certificate(), Certificate::Safe);
        assert!(v.render_generated_code().contains("certificate: safe"));
        // Queries still answer correctly through the unchecked path.
        let (table, _) = v.query("SELECT REL, TIME FROM IparsData WHERE TIME = 1").unwrap();
        assert!(!table.rows.is_empty());
        // Opting out of verification leaves the checked path in place.
        let v = Virtualizer::builder(&desc).storage_base(&base).verify(false).build().unwrap();
        assert_eq!(v.certificate(), Certificate::Unverified);
    }

    #[test]
    fn session_submit_wait_and_timeout() {
        let (base, desc) = setup("session");
        let v = Virtualizer::builder(&desc).storage_base(&base).max_concurrent(2).build().unwrap();
        assert_eq!(v.service().max_concurrent(), 2);
        // A background session resolves to the same rows as the
        // synchronous path.
        let (direct, _) = v.query("SELECT REL, TIME FROM IparsData WHERE TIME = 1").unwrap();
        let handle = v
            .submit(
                "SELECT REL, TIME FROM IparsData WHERE TIME = 1",
                &QueryOptions::default(),
                &SubmitOptions::default(),
            )
            .unwrap();
        let (mut tables, stats) = handle.wait().unwrap();
        assert_eq!(tables.pop().unwrap().rows, direct.rows);
        assert!(stats.query_id > 0);
        // A generous timeout leaves the query unaffected.
        let (table, _) = v
            .query_with_timeout(
                "SELECT REL, TIME FROM IparsData WHERE TIME = 1",
                Duration::from_secs(60),
            )
            .unwrap();
        assert_eq!(table.rows, direct.rows);
        // All slots are free again afterwards.
        assert_eq!(v.service().running(), 0);
    }

    #[test]
    fn truncated_file_refutes_certificate() {
        let (base, desc) = setup("refute");
        // Chop bytes off one data file: verification must refuse the
        // Safe certificate and fall back to checked decode.
        let victim = walkdir_first_data(&base);
        let len = std::fs::metadata(&victim).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&victim).unwrap();
        f.set_len(len - 3).unwrap();
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        assert_eq!(v.certificate(), Certificate::Refuted);
    }

    fn walkdir_first_data(base: &Path) -> PathBuf {
        fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
            for e in std::fs::read_dir(dir).unwrap().flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, out);
                } else if p.extension().is_some_and(|e| e == "dat") {
                    out.push(p);
                }
            }
        }
        let mut found = Vec::new();
        walk(base, &mut found);
        found.sort();
        found.into_iter().next().expect("generated dataset has a .dat file")
    }
}
