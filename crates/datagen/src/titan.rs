//! Titan satellite dataset generator.
//!
//! Models AVHRR-style satellite sweeps (paper §2.2): each record is a
//! measurement `(X, Y, Z, S1..S5)` — two spatial coordinates, one time
//! coordinate, five sensor values. Records are partitioned into
//! spatial-temporal chunks; a binary chunk index (the paper's spatial
//! index) stores each chunk's bounding box, byte offset and row count.
//!
//! Query-relevant value shapes:
//! * `X`, `Y` ∈ [0, 60000], `Z` ∈ [0, 600] — so the paper's Figure 7
//!   box `X,Y ∈ [0,10000], Z ∈ [0,100]` selects a small fraction;
//! * `S1` ∈ [0, 1) uniform — `S1 < 0.01` is the selective indexed
//!   query PostgreSQL wins, `S1 < 0.5` the unselective one it loses.

use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use dv_index::{write_chunk_index, ChunkIndexEntry};
use dv_types::{DvError, Result, Value};

use crate::hash::{combine, uniform};

/// Spatial/temporal domain bounds.
pub const X_MAX: i32 = 60_000;
/// See [`X_MAX`].
pub const Y_MAX: i32 = 60_000;
/// Time domain bound.
pub const Z_MAX: i32 = 600;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TitanConfig {
    /// Total number of records across all nodes.
    pub points: usize,
    /// Chunk grid resolution along X, Y and Z.
    pub tiles: (usize, usize, usize),
    /// Number of cluster nodes (chunks are distributed round-robin).
    pub nodes: usize,
    /// Value-derivation seed.
    pub seed: u64,
}

impl TitanConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> TitanConfig {
        TitanConfig { points: 500, tiles: (4, 4, 2), nodes: 1, seed: 11 }
    }

    /// Record width in bytes: 3 × i32 + 5 × f32.
    pub fn record_bytes() -> u64 {
        32
    }

    /// Logical record `i` (0-based): coordinates and sensor values as
    /// a pure function of `i`.
    pub fn record(&self, i: u64) -> (i32, i32, i32, [f32; 5]) {
        let hx = combine(self.seed, i, 1, 0, 0);
        let hy = combine(self.seed, i, 2, 0, 0);
        let hz = combine(self.seed, i, 3, 0, 0);
        let x = uniform(hx, 0.0, X_MAX as f64) as i32;
        let y = uniform(hy, 0.0, Y_MAX as f64) as i32;
        let z = uniform(hz, 0.0, Z_MAX as f64) as i32;
        let mut s = [0f32; 5];
        for (k, slot) in s.iter_mut().enumerate() {
            *slot = uniform(combine(self.seed, i, 4, k as u64, 0), 0.0, 1.0) as f32;
        }
        // S1 drifts with acquisition order (instrument calibration
        // drift, §2.2): values cluster physically, which is what makes
        // a DBMS B+tree index scan on S1 touch few pages (the paper's
        // query 4 scenario). Distribution stays uniform on [0, 1).
        let drift = i as f64 / self.points.max(1) as f64;
        let jitter = uniform(combine(self.seed, i, 9, 0, 0), -0.005, 0.005);
        s[0] = (drift + jitter).clamp(0.0, 0.9999999) as f32;
        (x, y, z, s)
    }

    /// Full logical row of record `i` in schema order.
    pub fn row_at(&self, i: u64) -> Vec<Value> {
        let (x, y, z, s) = self.record(i);
        let mut row = Vec::with_capacity(8);
        row.push(Value::Int(x));
        row.push(Value::Int(y));
        row.push(Value::Int(z));
        for v in s {
            row.push(Value::Float(v));
        }
        row
    }

    /// Iterate all logical rows.
    pub fn all_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.points as u64).map(|i| self.row_at(i))
    }

    /// Tile ordinal of a record.
    fn tile_of(&self, x: i32, y: i32, z: i32) -> usize {
        let (tx, ty, tz) = self.tiles;
        let ix = ((x as usize * tx) / (X_MAX as usize + 1)).min(tx - 1);
        let iy = ((y as usize * ty) / (Y_MAX as usize + 1)).min(ty - 1);
        let iz = ((z as usize * tz) / (Z_MAX as usize + 1)).min(tz - 1);
        (iz * ty + iy) * tx + ix
    }

    /// Schema component.
    pub fn schema_text(&self) -> String {
        let mut s = String::from("[TITAN]\nX = int\nY = int\nZ = int\n");
        for k in 1..=5 {
            let _ = writeln!(s, "S{k} = float");
        }
        s
    }
}

/// Generate the Titan dataset under `base` and return the descriptor
/// text. Each node gets `titan.dat` + `titan.idx` in
/// `base/tnode<n>/titan/`.
pub fn generate(base: &Path, cfg: &TitanConfig) -> Result<String> {
    let (tx, ty, tz) = cfg.tiles;
    let tile_count = tx * ty * tz;

    // Bucket record ids per tile (records within a tile stay in id
    // order — satellite sweeps are time-ordered within a region).
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); tile_count];
    for i in 0..cfg.points as u64 {
        let (x, y, z, _) = cfg.record(i);
        buckets[cfg.tile_of(x, y, z)].push(i);
    }

    // Distribute tiles round-robin over nodes and write per-node data
    // + index files.
    for node in 0..cfg.nodes {
        let dir = base.join(format!("tnode{node}")).join("titan");
        fs::create_dir_all(&dir).map_err(|e| DvError::io(dir.display().to_string(), e))?;
        let data_path = dir.join("titan.dat");
        let mut w = BufWriter::new(
            File::create(&data_path)
                .map_err(|e| DvError::io(data_path.display().to_string(), e))?,
        );
        let mut entries: Vec<ChunkIndexEntry> = Vec::new();
        let mut offset = 0u64;
        for (tile, ids) in buckets.iter().enumerate() {
            if tile % cfg.nodes != node || ids.is_empty() {
                continue;
            }
            let mut bounds = [(f64::INFINITY, f64::NEG_INFINITY); 3];
            for &i in ids {
                let (x, y, z, s) = cfg.record(i);
                for (d, v) in [(0, x), (1, y), (2, z)] {
                    bounds[d].0 = bounds[d].0.min(v as f64);
                    bounds[d].1 = bounds[d].1.max(v as f64);
                }
                w.write_all(&x.to_le_bytes())
                    .and_then(|_| w.write_all(&y.to_le_bytes()))
                    .and_then(|_| w.write_all(&z.to_le_bytes()))
                    .map_err(|e| DvError::io(data_path.display().to_string(), e))?;
                for v in s {
                    w.write_all(&v.to_le_bytes())
                        .map_err(|e| DvError::io(data_path.display().to_string(), e))?;
                }
            }
            entries.push(ChunkIndexEntry {
                bounds: bounds.to_vec(),
                offset,
                rows: ids.len() as u64,
            });
            offset += ids.len() as u64 * TitanConfig::record_bytes();
        }
        w.flush().map_err(|e| DvError::io(data_path.display().to_string(), e))?;
        write_chunk_index(&dir.join("titan.idx"), 3, &entries)?;
    }
    Ok(descriptor(cfg))
}

/// Descriptor text for the generated dataset.
pub fn descriptor(cfg: &TitanConfig) -> String {
    let d_hi = cfg.nodes - 1;
    let mut s = cfg.schema_text();
    s.push('\n');
    s.push_str("[TitanData]\nDatasetDescription = TITAN\n");
    for n in 0..cfg.nodes {
        let _ = writeln!(s, "DIR[{n}] = tnode{n}/titan");
    }
    s.push('\n');
    let _ = writeln!(s, "DATASET \"TitanData\" {{");
    let _ = writeln!(s, "  DATATYPE {{ TITAN }}");
    let _ = writeln!(s, "  DATAINDEX {{ X Y Z }}");
    let _ = writeln!(s, "  DATA {{ DATASET chunks }}");
    let _ = writeln!(s, "  DATASET \"chunks\" {{");
    let _ = writeln!(
        s,
        "    DATASPACE {{ CHUNKED INDEXFILE \"DIR[$DIRID]/titan.idx\" {{ X Y Z S1 S2 S3 S4 S5 }} }}"
    );
    let _ = writeln!(s, "    DATA {{ DIR[$DIRID]/titan.dat DIRID = 0:{d_hi}:1 }}");
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_index::read_chunk_index;

    fn tmpbase(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dv-titan-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn records_deterministic_in_domain() {
        let cfg = TitanConfig::tiny();
        let (x, y, z, s) = cfg.record(123);
        assert_eq!((x, y, z, s), cfg.record(123));
        assert!((0..=X_MAX).contains(&x));
        assert!((0..=Y_MAX).contains(&y));
        assert!((0..=Z_MAX).contains(&z));
        for v in s {
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn descriptor_compiles() {
        let cfg = TitanConfig { nodes: 3, ..TitanConfig::tiny() };
        let model = dv_descriptor::compile(&descriptor(&cfg)).unwrap();
        assert_eq!(model.schema.len(), 8);
        assert_eq!(model.node_count(), 3);
        assert_eq!(model.files.len(), 3);
        assert!(model.files.iter().all(|f| f.is_chunked()));
        assert_eq!(model.index_attrs, vec!["X", "Y", "Z"]);
    }

    #[test]
    fn generated_chunks_cover_all_points() {
        let cfg = TitanConfig::tiny();
        let base = tmpbase("cover");
        generate(&base, &cfg).unwrap();
        let (dims, entries) = read_chunk_index(&base.join("tnode0/titan/titan.idx")).unwrap();
        assert_eq!(dims, 3);
        let total: u64 = entries.iter().map(|e| e.rows).sum();
        assert_eq!(total, cfg.points as u64);
        // Offsets are dense and ordered.
        let mut expect = 0u64;
        for e in &entries {
            assert_eq!(e.offset, expect);
            expect += e.rows * TitanConfig::record_bytes();
        }
        // Data file length matches.
        let len = std::fs::metadata(base.join("tnode0/titan/titan.dat")).unwrap().len();
        assert_eq!(len, expect);
    }

    #[test]
    fn chunk_bounds_contain_their_records() {
        let cfg = TitanConfig::tiny();
        let base = tmpbase("bounds");
        generate(&base, &cfg).unwrap();
        let (_, entries) = read_chunk_index(&base.join("tnode0/titan/titan.idx")).unwrap();
        let data = std::fs::read(base.join("tnode0/titan/titan.dat")).unwrap();
        for e in &entries {
            for r in 0..e.rows {
                let at = (e.offset + r * TitanConfig::record_bytes()) as usize;
                let x = i32::from_le_bytes(data[at..at + 4].try_into().unwrap()) as f64;
                let y = i32::from_le_bytes(data[at + 4..at + 8].try_into().unwrap()) as f64;
                let z = i32::from_le_bytes(data[at + 8..at + 12].try_into().unwrap()) as f64;
                assert!(x >= e.bounds[0].0 && x <= e.bounds[0].1);
                assert!(y >= e.bounds[1].0 && y <= e.bounds[1].1);
                assert!(z >= e.bounds[2].0 && z <= e.bounds[2].1);
            }
        }
    }

    #[test]
    fn multi_node_split_preserves_total() {
        let cfg = TitanConfig { nodes: 2, ..TitanConfig::tiny() };
        let base = tmpbase("multi");
        generate(&base, &cfg).unwrap();
        let mut total = 0u64;
        for n in 0..2 {
            let (_, entries) =
                read_chunk_index(&base.join(format!("tnode{n}/titan/titan.idx"))).unwrap();
            total += entries.iter().map(|e| e.rows).sum::<u64>();
        }
        assert_eq!(total, cfg.points as u64);
    }

    #[test]
    fn tile_of_stays_in_range() {
        let cfg = TitanConfig::tiny();
        for i in 0..2000u64 {
            let (x, y, z, _) = cfg.record(i);
            let t = cfg.tile_of(x, y, z);
            assert!(t < 4 * 4 * 2);
        }
    }
}
