//! Deterministic value derivation.
//!
//! Every synthetic cell value is `h(seed, key...)` for a fixed mixing
//! function, so a value depends only on its logical coordinates —
//! never on generation order or layout. This is what lets seven
//! different physical layouts hold byte-identical logical tables.

/// splitmix64 finalizer — a fast, well-distributed 64-bit mixer.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine a seed and up to four coordinates into one hash.
#[inline]
pub fn combine(seed: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut h = mix(seed ^ 0xD1B5_4A32_D192_ED03);
    h = mix(h ^ a);
    h = mix(h ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h = mix(h ^ c.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    h = mix(h ^ d.wrapping_mul(0x1656_67B1_9E37_79F9));
    h
}

/// Uniform value in `[0, 1)` derived from a hash.
#[inline]
pub fn unit(h: u64) -> f64 {
    // 53 high bits → [0,1) double.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform value in `[lo, hi)`.
#[inline]
pub fn uniform(h: u64, lo: f64, hi: f64) -> f64 {
    lo + unit(h) * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(42), mix(43));
        // Nearby inputs differ in many bits.
        let a = mix(1000);
        let b = mix(1001);
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn unit_in_range() {
        for i in 0..10_000u64 {
            let u = unit(mix(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| unit(mix(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn combine_order_sensitivity() {
        assert_ne!(combine(1, 2, 3, 4, 5), combine(1, 3, 2, 4, 5));
        assert_ne!(combine(1, 2, 3, 4, 5), combine(2, 2, 3, 4, 5));
    }

    #[test]
    fn uniform_respects_bounds() {
        for i in 0..1000u64 {
            let v = uniform(mix(i), -50.0, 50.0);
            assert!((-50.0..50.0).contains(&v));
        }
    }
}
