//! IPARS oil-reservoir dataset generator — all seven layouts of the
//! paper's Figure 9 experiment, with matching descriptors.
//!
//! The logical table is fixed by the configuration: `R` realizations ×
//! `T` time-steps × (`D` directories × `G` grid points). Attributes:
//!
//! * `REL` (short), `TIME` (int) — dimensional, often implicit;
//! * `X, Y, Z` (float) — grid coordinates, stored once per grid point;
//! * 17 per-cell variables (float): saturations (`SOIL`, `SGAS`,
//!   `SWAT`), phase velocities (`OILVX..WATVZ`), pressures
//!   (`POIL/PGAS/PWAT`), concentrations (`COIL/CGAS`) — matching the
//!   paper's "value of seventeen separate variables ... for each cell"
//!   (§2.2).
//!
//! Layouts (paper §5):
//!
//! * **L0** — the original application layout: every attribute in a
//!   different file (COORDS + 17 variable files per realization; the
//!   paper's "18 different files per aligned file chunk");
//! * **I**  — one file per directory, tuples as records, time-major;
//! * **II** — one file, each time-step a chunk, variables as arrays;
//! * **III**— one file per (realization, time-step), records;
//! * **IV** — one file per (realization, time-step), arrays;
//! * **V**  — 7 files: coordinates + 17 variables split 3/3/3/3/3/2,
//!   records;
//! * **VI** — same 7 files, variables as arrays.

use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use dv_descriptor::ast::{DataAst, DatasetAst};
use dv_descriptor::{codec, CodecKind};
use dv_types::{DvError, Result, Value};

use crate::hash::{combine, uniform};

/// The 17 per-cell variables, in schema order after X/Y/Z.
pub const VARS: [&str; 17] = [
    "SOIL", "SGAS", "SWAT", "OILVX", "OILVY", "OILVZ", "GASVX", "GASVY", "GASVZ", "WATVX", "WATVY",
    "WATVZ", "POIL", "PGAS", "PWAT", "COIL", "CGAS",
];

/// Variable groups for layouts V/VI (3+3+3+3+3+2).
pub const VAR_GROUPS: [&[usize]; 6] =
    [&[0, 1, 2], &[3, 4, 5], &[6, 7, 8], &[9, 10, 11], &[12, 13, 14], &[15, 16]];

/// Physical layout to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IparsLayout {
    /// Original: every attribute in a different file.
    L0,
    /// One file, records, time-sorted.
    I,
    /// One file, per-time chunks, variables as arrays.
    II,
    /// One file per time-step, records.
    III,
    /// One file per time-step, variables as arrays.
    IV,
    /// Seven files (coords + 6 variable groups), records.
    V,
    /// Seven files, variables as arrays.
    VI,
}

impl IparsLayout {
    /// All layouts in the order Figure 9 charts them.
    pub fn all() -> [IparsLayout; 7] {
        [
            IparsLayout::L0,
            IparsLayout::I,
            IparsLayout::II,
            IparsLayout::III,
            IparsLayout::IV,
            IparsLayout::V,
            IparsLayout::VI,
        ]
    }

    /// Short tag used in directory names and chart labels.
    pub fn tag(self) -> &'static str {
        match self {
            IparsLayout::L0 => "l0",
            IparsLayout::I => "l1",
            IparsLayout::II => "l2",
            IparsLayout::III => "l3",
            IparsLayout::IV => "l4",
            IparsLayout::V => "l5",
            IparsLayout::VI => "l6",
        }
    }

    /// Label as the paper writes it.
    pub fn label(self) -> &'static str {
        match self {
            IparsLayout::L0 => "L0",
            IparsLayout::I => "Layout I",
            IparsLayout::II => "Layout II",
            IparsLayout::III => "Layout III",
            IparsLayout::IV => "Layout IV",
            IparsLayout::V => "Layout V",
            IparsLayout::VI => "Layout VI",
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct IparsConfig {
    /// Number of realizations (`REL` values `0..R`).
    pub realizations: usize,
    /// Number of time-steps (`TIME` values `1..=T`).
    pub time_steps: usize,
    /// Grid points per directory.
    pub grid_per_dir: usize,
    /// Number of directories (grid partitions).
    pub dirs: usize,
    /// Number of cluster nodes; directory `d` lives on node
    /// `d % nodes`.
    pub nodes: usize,
    /// Value-derivation seed.
    pub seed: u64,
}

impl IparsConfig {
    /// A tiny configuration for unit tests (48 logical rows).
    pub fn tiny() -> IparsConfig {
        IparsConfig { realizations: 2, time_steps: 3, grid_per_dir: 4, dirs: 2, nodes: 2, seed: 7 }
    }

    /// Total logical rows of the virtual table.
    pub fn rows(&self) -> u64 {
        (self.realizations * self.time_steps * self.grid_per_dir * self.dirs) as u64
    }

    /// Bytes of one full logical row (2 + 4 + 20×4).
    pub fn row_bytes(&self) -> u64 {
        86
    }

    /// Grid coordinates of global (1-based) grid point `g`: points are
    /// laid out on a 50×50×∞ lattice.
    pub fn coord(g: u64) -> (f32, f32, f32) {
        let i = g - 1;
        ((i % 50) as f32, ((i / 50) % 50) as f32, (i / 2500) as f32)
    }

    /// Value of variable `var` (index into [`VARS`]) at
    /// `(rel, time, g)`. Pure function of coordinates:
    /// saturations ∈ [0,1), velocities ∈ [-50,50), pressures ∈
    /// [0,10000), concentrations ∈ [0,1).
    pub fn var_value(&self, rel: u64, time: u64, g: u64, var: usize) -> f32 {
        let h = combine(self.seed, rel, time, g, var as u64);
        let v = match var {
            0..=2 => uniform(h, 0.0, 1.0),
            3..=11 => uniform(h, -50.0, 50.0),
            12..=14 => uniform(h, 0.0, 10_000.0),
            _ => uniform(h, 0.0, 1.0),
        };
        v as f32
    }

    /// The full logical row at `(rel, time, g)` in schema order.
    pub fn row_at(&self, rel: u64, time: u64, g: u64) -> Vec<Value> {
        let (x, y, z) = Self::coord(g);
        let mut row = Vec::with_capacity(22);
        row.push(Value::Short(rel as i16));
        row.push(Value::Int(time as i32));
        row.push(Value::Float(x));
        row.push(Value::Float(y));
        row.push(Value::Float(z));
        for v in 0..VARS.len() {
            row.push(Value::Float(self.var_value(rel, time, g, v)));
        }
        row
    }

    /// Iterate every logical row (REL-major, then TIME, then grid).
    pub fn all_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        let total_grid = (self.grid_per_dir * self.dirs) as u64;
        (0..self.realizations as u64).flat_map(move |rel| {
            (1..=self.time_steps as u64)
                .flat_map(move |t| (1..=total_grid).map(move |g| self.row_at(rel, t, g)))
        })
    }

    /// The schema component shared by all layouts.
    pub fn schema_text(&self) -> String {
        let mut s =
            String::from("[IPARS]\nREL = short int\nTIME = int\nX = float\nY = float\nZ = float\n");
        for v in VARS {
            let _ = writeln!(s, "{v} = float");
        }
        s
    }

    fn node_of(&self, dir: usize) -> usize {
        dir % self.nodes
    }

    /// Storage component for a layout.
    fn storage_text(&self, tag: &str) -> String {
        let mut s = String::from("[IparsData]\nDatasetDescription = IPARS\n");
        for d in 0..self.dirs {
            let _ = writeln!(s, "DIR[{d}] = osu{}/ipars.{tag}.d{d}", self.node_of(d));
        }
        s
    }

    fn grid_bounds(&self) -> String {
        let g = self.grid_per_dir;
        format!("($DIRID*{g}+1):(($DIRID+1)*{g}):1")
    }
}

/// One directory's writer context.
struct DirCtx {
    path: std::path::PathBuf,
    g_lo: u64,
    g_hi: u64,
}

/// Generate the dataset in `layout` under `base` and return the
/// descriptor text. Files land in `base/osu<node>/ipars.<tag>.d<dir>/`.
pub fn generate(base: &Path, cfg: &IparsConfig, layout: IparsLayout) -> Result<String> {
    if !cfg.dirs.is_multiple_of(cfg.nodes) {
        return Err(DvError::Runtime(format!(
            "ipars: dirs ({}) must be a multiple of nodes ({})",
            cfg.dirs, cfg.nodes
        )));
    }
    let tag = layout.tag();
    let mut dirs = Vec::with_capacity(cfg.dirs);
    for d in 0..cfg.dirs {
        let path = base.join(format!("osu{}", cfg.node_of(d))).join(format!("ipars.{tag}.d{d}"));
        fs::create_dir_all(&path).map_err(|e| DvError::io(path.display().to_string(), e))?;
        dirs.push(DirCtx {
            path,
            g_lo: (d * cfg.grid_per_dir) as u64 + 1,
            g_hi: ((d + 1) * cfg.grid_per_dir) as u64,
        });
    }
    match layout {
        IparsLayout::L0 => gen_l0(cfg, &dirs)?,
        IparsLayout::I => gen_record_single(cfg, &dirs)?,
        IparsLayout::II => gen_array_single(cfg, &dirs)?,
        IparsLayout::III => gen_per_time(cfg, &dirs, false)?,
        IparsLayout::IV => gen_per_time(cfg, &dirs, true)?,
        IparsLayout::V => gen_grouped(cfg, &dirs, false)?,
        IparsLayout::VI => gen_grouped(cfg, &dirs, true)?,
    }
    Ok(descriptor(cfg, layout))
}

/// Like [`generate`], then re-encode every file with `kind` (CSV text
/// or zstd-compressed) and return descriptor text carrying the
/// matching `CODEC` clauses. The logical content is identical to the
/// binary layout from the same seed: decoding any emitted file yields
/// the binary emitter's bytes exactly.
pub fn generate_with_codec(
    base: &Path,
    cfg: &IparsConfig,
    layout: IparsLayout,
    kind: CodecKind,
) -> Result<String> {
    let text = generate(base, cfg, layout)?;
    if kind.is_affine() {
        return Ok(text);
    }
    let mut ast = dv_descriptor::parse_descriptor(&text)?;
    set_codec(&mut ast.layout, kind);
    let text = dv_descriptor::render(&ast);
    let model = dv_descriptor::resolve(&ast)?;
    for f in &model.files {
        let path = base.join(&model.nodes[f.node]).join(&f.rel_path);
        let logical = fs::read(&path).map_err(|e| DvError::io(path.display().to_string(), e))?;
        let physical = codec::encode_logical(f.codec, f, &model.attr_types, &logical)?;
        fs::write(&path, physical).map_err(|e| DvError::io(path.display().to_string(), e))?;
    }
    Ok(text)
}

fn set_codec(ds: &mut DatasetAst, kind: CodecKind) {
    if let DataAst::Files(bindings) = &mut ds.data {
        for b in bindings {
            b.codec = kind;
        }
    }
    for c in &mut ds.children {
        set_codec(c, kind);
    }
}

struct W(BufWriter<File>);

impl W {
    fn create(path: &Path) -> Result<W> {
        Ok(W(BufWriter::new(
            File::create(path).map_err(|e| DvError::io(path.display().to_string(), e))?,
        )))
    }
    #[inline]
    fn f32(&mut self, v: f32) -> Result<()> {
        self.0.write_all(&v.to_le_bytes()).map_err(|e| DvError::io("<ipars>", e))
    }
    fn done(mut self) -> Result<()> {
        self.0.flush().map_err(|e| DvError::io("<ipars>", e))
    }
}

/// L0: COORDS + one file per (variable, realization).
fn gen_l0(cfg: &IparsConfig, dirs: &[DirCtx]) -> Result<()> {
    for d in dirs {
        let mut w = W::create(&d.path.join("COORDS"))?;
        for g in d.g_lo..=d.g_hi {
            let (x, y, z) = IparsConfig::coord(g);
            w.f32(x)?;
            w.f32(y)?;
            w.f32(z)?;
        }
        w.done()?;
        for (vi, vname) in VARS.iter().enumerate() {
            for rel in 0..cfg.realizations as u64 {
                let name = format!("{}.r{rel}.dat", vname.to_ascii_lowercase());
                let mut w = W::create(&d.path.join(name))?;
                for t in 1..=cfg.time_steps as u64 {
                    for g in d.g_lo..=d.g_hi {
                        w.f32(cfg.var_value(rel, t, g, vi))?;
                    }
                }
                w.done()?;
            }
        }
    }
    Ok(())
}

/// Layout I: one file per dir, full records, REL/TIME implicit.
fn gen_record_single(cfg: &IparsConfig, dirs: &[DirCtx]) -> Result<()> {
    for d in dirs {
        let mut w = W::create(&d.path.join("all.dat"))?;
        for rel in 0..cfg.realizations as u64 {
            for t in 1..=cfg.time_steps as u64 {
                for g in d.g_lo..=d.g_hi {
                    let (x, y, z) = IparsConfig::coord(g);
                    w.f32(x)?;
                    w.f32(y)?;
                    w.f32(z)?;
                    for vi in 0..VARS.len() {
                        w.f32(cfg.var_value(rel, t, g, vi))?;
                    }
                }
            }
        }
        w.done()?;
    }
    Ok(())
}

/// Layout II: one file per dir, per-(rel,time) chunks of per-variable
/// arrays.
fn gen_array_single(cfg: &IparsConfig, dirs: &[DirCtx]) -> Result<()> {
    for d in dirs {
        let mut w = W::create(&d.path.join("all.dat"))?;
        for rel in 0..cfg.realizations as u64 {
            for t in 1..=cfg.time_steps as u64 {
                for g in d.g_lo..=d.g_hi {
                    w.f32(IparsConfig::coord(g).0)?;
                }
                for g in d.g_lo..=d.g_hi {
                    w.f32(IparsConfig::coord(g).1)?;
                }
                for g in d.g_lo..=d.g_hi {
                    w.f32(IparsConfig::coord(g).2)?;
                }
                for vi in 0..VARS.len() {
                    for g in d.g_lo..=d.g_hi {
                        w.f32(cfg.var_value(rel, t, g, vi))?;
                    }
                }
            }
        }
        w.done()?;
    }
    Ok(())
}

/// Layouts III/IV: one file per (rel, time); records or arrays.
fn gen_per_time(cfg: &IparsConfig, dirs: &[DirCtx], arrays: bool) -> Result<()> {
    for d in dirs {
        for rel in 0..cfg.realizations as u64 {
            for t in 1..=cfg.time_steps as u64 {
                let mut w = W::create(&d.path.join(format!("r{rel}.t{t}.dat")))?;
                if arrays {
                    for g in d.g_lo..=d.g_hi {
                        w.f32(IparsConfig::coord(g).0)?;
                    }
                    for g in d.g_lo..=d.g_hi {
                        w.f32(IparsConfig::coord(g).1)?;
                    }
                    for g in d.g_lo..=d.g_hi {
                        w.f32(IparsConfig::coord(g).2)?;
                    }
                    for vi in 0..VARS.len() {
                        for g in d.g_lo..=d.g_hi {
                            w.f32(cfg.var_value(rel, t, g, vi))?;
                        }
                    }
                } else {
                    for g in d.g_lo..=d.g_hi {
                        let (x, y, z) = IparsConfig::coord(g);
                        w.f32(x)?;
                        w.f32(y)?;
                        w.f32(z)?;
                        for vi in 0..VARS.len() {
                            w.f32(cfg.var_value(rel, t, g, vi))?;
                        }
                    }
                }
                w.done()?;
            }
        }
    }
    Ok(())
}

/// Layouts V/VI: COORDS + 6 variable-group files.
fn gen_grouped(cfg: &IparsConfig, dirs: &[DirCtx], arrays: bool) -> Result<()> {
    for d in dirs {
        let mut w = W::create(&d.path.join("COORDS"))?;
        for g in d.g_lo..=d.g_hi {
            let (x, y, z) = IparsConfig::coord(g);
            w.f32(x)?;
            w.f32(y)?;
            w.f32(z)?;
        }
        w.done()?;
        for (gi, group) in VAR_GROUPS.iter().enumerate() {
            let mut w = W::create(&d.path.join(format!("grp{gi}.dat")))?;
            for rel in 0..cfg.realizations as u64 {
                for t in 1..=cfg.time_steps as u64 {
                    if arrays {
                        for &vi in group.iter() {
                            for g in d.g_lo..=d.g_hi {
                                w.f32(cfg.var_value(rel, t, g, vi))?;
                            }
                        }
                    } else {
                        for g in d.g_lo..=d.g_hi {
                            for &vi in group.iter() {
                                w.f32(cfg.var_value(rel, t, g, vi))?;
                            }
                        }
                    }
                }
            }
            w.done()?;
        }
    }
    Ok(())
}

/// Build the descriptor text for a layout.
pub fn descriptor(cfg: &IparsConfig, layout: IparsLayout) -> String {
    let tag = layout.tag();
    let r_hi = cfg.realizations - 1;
    let t_hi = cfg.time_steps;
    let d_hi = cfg.dirs - 1;
    let gb = cfg.grid_bounds();
    let all_vars = VARS.join(" ");

    let mut s = cfg.schema_text();
    s.push('\n');
    s.push_str(&cfg.storage_text(tag));
    s.push('\n');
    let _ = writeln!(s, "DATASET \"IparsData\" {{");
    let _ = writeln!(s, "  DATATYPE {{ IPARS }}");
    let _ = writeln!(s, "  DATAINDEX {{ REL TIME }}");
    match layout {
        IparsLayout::L0 => {
            let mut names = vec!["coords".to_string()];
            names.extend(VARS.iter().map(|v| format!("var_{}", v.to_ascii_lowercase())));
            let list: Vec<String> = names.iter().map(|n| format!("DATASET {n}")).collect();
            let _ = writeln!(s, "  DATA {{ {} }}", list.join(" "));
            let _ = writeln!(s, "  DATASET \"coords\" {{");
            let _ = writeln!(s, "    DATASPACE {{ LOOP GRID {gb} {{ X Y Z }} }}");
            let _ = writeln!(s, "    DATA {{ DIR[$DIRID]/COORDS DIRID = 0:{d_hi}:1 }}");
            let _ = writeln!(s, "  }}");
            for v in VARS {
                let lower = v.to_ascii_lowercase();
                let _ = writeln!(s, "  DATASET \"var_{lower}\" {{");
                let _ = writeln!(
                    s,
                    "    DATASPACE {{ LOOP TIME 1:{t_hi}:1 {{ LOOP GRID {gb} {{ {v} }} }} }}"
                );
                let _ = writeln!(
                    s,
                    "    DATA {{ DIR[$DIRID]/{lower}.r$REL.dat REL = 0:{r_hi}:1 DIRID = 0:{d_hi}:1 }}"
                );
                let _ = writeln!(s, "  }}");
            }
        }
        IparsLayout::I => {
            let _ = writeln!(s, "  DATA {{ DATASET all }}");
            let _ = writeln!(s, "  DATASET \"all\" {{");
            let _ = writeln!(
                s,
                "    DATASPACE {{ LOOP REL 0:{r_hi}:1 {{ LOOP TIME 1:{t_hi}:1 {{ LOOP GRID {gb} {{ X Y Z {all_vars} }} }} }} }}"
            );
            let _ = writeln!(s, "    DATA {{ DIR[$DIRID]/all.dat DIRID = 0:{d_hi}:1 }}");
            let _ = writeln!(s, "  }}");
        }
        IparsLayout::II => {
            let arrays: Vec<String> = ["X", "Y", "Z"]
                .iter()
                .copied()
                .chain(VARS)
                .map(|v| format!("LOOP GRID {gb} {{ {v} }}"))
                .collect();
            let _ = writeln!(s, "  DATA {{ DATASET all }}");
            let _ = writeln!(s, "  DATASET \"all\" {{");
            let _ = writeln!(
                s,
                "    DATASPACE {{ LOOP REL 0:{r_hi}:1 {{ LOOP TIME 1:{t_hi}:1 {{ {} }} }} }}",
                arrays.join(" ")
            );
            let _ = writeln!(s, "    DATA {{ DIR[$DIRID]/all.dat DIRID = 0:{d_hi}:1 }}");
            let _ = writeln!(s, "  }}");
        }
        IparsLayout::III | IparsLayout::IV => {
            let body = if layout == IparsLayout::III {
                format!("LOOP GRID {gb} {{ X Y Z {all_vars} }}")
            } else {
                let arrays: Vec<String> = ["X", "Y", "Z"]
                    .iter()
                    .copied()
                    .chain(VARS)
                    .map(|v| format!("LOOP GRID {gb} {{ {v} }}"))
                    .collect();
                arrays.join(" ")
            };
            let _ = writeln!(s, "  DATA {{ DATASET steps }}");
            let _ = writeln!(s, "  DATASET \"steps\" {{");
            let _ = writeln!(s, "    DATASPACE {{ {body} }}");
            let _ = writeln!(
                s,
                "    DATA {{ DIR[$DIRID]/r$REL.t$TIME.dat REL = 0:{r_hi}:1 TIME = 1:{t_hi}:1 DIRID = 0:{d_hi}:1 }}"
            );
            let _ = writeln!(s, "  }}");
        }
        IparsLayout::V | IparsLayout::VI => {
            let mut names = vec!["coords".to_string()];
            names.extend((0..VAR_GROUPS.len()).map(|i| format!("grp{i}")));
            let list: Vec<String> = names.iter().map(|n| format!("DATASET {n}")).collect();
            let _ = writeln!(s, "  DATA {{ {} }}", list.join(" "));
            let _ = writeln!(s, "  DATASET \"coords\" {{");
            let _ = writeln!(s, "    DATASPACE {{ LOOP GRID {gb} {{ X Y Z }} }}");
            let _ = writeln!(s, "    DATA {{ DIR[$DIRID]/COORDS DIRID = 0:{d_hi}:1 }}");
            let _ = writeln!(s, "  }}");
            for (gi, group) in VAR_GROUPS.iter().enumerate() {
                let vars: Vec<&str> = group.iter().map(|&vi| VARS[vi]).collect();
                let body = if layout == IparsLayout::V {
                    format!("LOOP GRID {gb} {{ {} }}", vars.join(" "))
                } else {
                    let arrays: Vec<String> =
                        vars.iter().map(|v| format!("LOOP GRID {gb} {{ {v} }}")).collect();
                    arrays.join(" ")
                };
                let _ = writeln!(s, "  DATASET \"grp{gi}\" {{");
                let _ = writeln!(
                    s,
                    "    DATASPACE {{ LOOP REL 0:{r_hi}:1 {{ LOOP TIME 1:{t_hi}:1 {{ {body} }} }} }}"
                );
                let _ = writeln!(s, "    DATA {{ DIR[$DIRID]/grp{gi}.dat DIRID = 0:{d_hi}:1 }}");
                let _ = writeln!(s, "  }}");
            }
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_row_count() {
        let cfg = IparsConfig::tiny();
        assert_eq!(cfg.rows(), 48);
        assert_eq!(cfg.all_rows().count(), 48);
    }

    #[test]
    fn values_deterministic_and_in_range() {
        let cfg = IparsConfig::tiny();
        let a = cfg.var_value(1, 2, 3, 0);
        let b = cfg.var_value(1, 2, 3, 0);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a)); // SOIL is a saturation
        let v = cfg.var_value(0, 1, 1, 3); // OILVX is a velocity
        assert!((-50.0..50.0).contains(&v));
        let p = cfg.var_value(0, 1, 1, 12); // POIL is a pressure
        assert!((0.0..10_000.0).contains(&p));
    }

    #[test]
    fn row_at_matches_parts() {
        let cfg = IparsConfig::tiny();
        let row = cfg.row_at(1, 2, 5);
        assert_eq!(row.len(), 22);
        assert_eq!(row[0], Value::Short(1));
        assert_eq!(row[1], Value::Int(2));
        let (x, _, _) = IparsConfig::coord(5);
        assert_eq!(row[2], Value::Float(x));
        assert_eq!(row[5], Value::Float(cfg.var_value(1, 2, 5, 0)));
    }

    #[test]
    fn descriptors_compile_for_all_layouts() {
        let cfg = IparsConfig::tiny();
        for layout in IparsLayout::all() {
            let text = descriptor(&cfg, layout);
            let model = dv_descriptor::compile(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", layout.label()));
            assert_eq!(model.schema.len(), 22, "{}", layout.label());
            assert_eq!(model.node_count(), 2, "{}", layout.label());
            let expected_files = match layout {
                IparsLayout::L0 => 2 * (1 + 17 * 2),
                IparsLayout::I | IparsLayout::II => 2,
                IparsLayout::III | IparsLayout::IV => 2 * 2 * 3,
                IparsLayout::V | IparsLayout::VI => 2 * 7,
            };
            assert_eq!(model.files.len(), expected_files, "{}", layout.label());
        }
    }

    #[test]
    fn generated_file_sizes_match_descriptor() {
        let base = std::env::temp_dir().join(format!("dv-ipars-size-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let cfg = IparsConfig::tiny();
        for layout in IparsLayout::all() {
            let text = generate(&base, &cfg, layout).unwrap();
            let model = dv_descriptor::compile(&text).unwrap();
            for f in &model.files {
                let path = base.join(&model.nodes[f.node]).join(&f.rel_path);
                let actual = std::fs::metadata(&path)
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
                    .len();
                let expected = f.expected_size(&model.attr_sizes).unwrap();
                assert_eq!(actual, expected, "{} {}", layout.label(), f.rel_path);
            }
        }
    }

    #[test]
    fn codec_reencoding_is_lossless() {
        // binary == text == compressed: from one seed, decoding any
        // CSV or zstd emission reproduces the binary emitter's bytes.
        let cfg = IparsConfig::tiny();
        let pid = std::process::id();
        let bin_base = std::env::temp_dir().join(format!("dv-ipars-codec-bin-{pid}"));
        let _ = std::fs::remove_dir_all(&bin_base);
        for layout in [IparsLayout::I, IparsLayout::V] {
            let bin_text = generate(&bin_base, &cfg, layout).unwrap();
            let bin_model = dv_descriptor::compile(&bin_text).unwrap();
            for kind in [CodecKind::DelimitedText, CodecKind::ZstdSegment] {
                let base = std::env::temp_dir().join(format!(
                    "dv-ipars-codec-{}-{}-{pid}",
                    layout.tag(),
                    kind
                ));
                let _ = std::fs::remove_dir_all(&base);
                let text = generate_with_codec(&base, &cfg, layout, kind).unwrap();
                assert!(text.contains(&format!("CODEC {kind}")), "{text}");
                let model = dv_descriptor::compile(&text).unwrap();
                assert_eq!(model.files.len(), bin_model.files.len());
                for (f, bf) in model.files.iter().zip(&bin_model.files) {
                    assert_eq!(f.codec, kind);
                    let bin_path = bin_base.join(&bin_model.nodes[bf.node]).join(&bf.rel_path);
                    let reference = std::fs::read(&bin_path).unwrap();
                    let path = base.join(&model.nodes[f.node]).join(&f.rel_path);
                    let physical = std::fs::read(&path).unwrap();
                    assert_ne!(physical, reference, "{} must be re-encoded", f.rel_path);
                    let decoded =
                        codec::decode_physical(f.codec, f, &model.attr_types, &physical).unwrap();
                    assert_eq!(decoded, reference, "{} {kind}", f.rel_path);
                }
            }
        }
    }

    #[test]
    fn binary_codec_passthrough_keeps_descriptor() {
        let cfg = IparsConfig::tiny();
        let base =
            std::env::temp_dir().join(format!("dv-ipars-codec-passthrough-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let text =
            generate_with_codec(&base, &cfg, IparsLayout::I, CodecKind::FixedBinary).unwrap();
        assert!(!text.contains("CODEC"), "{text}");
    }

    #[test]
    fn dirs_must_divide_nodes() {
        let mut cfg = IparsConfig::tiny();
        cfg.dirs = 3;
        cfg.nodes = 2;
        let base = std::env::temp_dir().join("dv-ipars-baddirs");
        assert!(generate(&base, &cfg, IparsLayout::I).is_err());
    }
}
