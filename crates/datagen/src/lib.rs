//! # dv-datagen
//!
//! Synthetic datasets shaped like the paper's two applications:
//!
//! * [`ipars`] — oil-reservoir simulation output (IPARS): `R`
//!   realizations × `T` time-steps × `G` grid points per directory,
//!   17 per-cell variables plus explicit X/Y/Z coordinates, written in
//!   the original layout **L0** and the paper's alternative layouts
//!   **I–VI** (Figure 9), each with its matching meta-data descriptor;
//! * [`titan`] — satellite sensor sweeps (Titan): records of
//!   `(X, Y, Z, S1..S5)` partitioned into spatial-temporal chunks with
//!   a binary chunk index (the paper's spatial index).
//!
//! All values are **pure functions of their logical coordinates**
//! (splitmix-style hashing), so any two layouts of the same
//! configuration contain identical logical tables — the property the
//! layout-equivalence tests and the hand-written-baseline comparisons
//! rely on — and generation order never matters.

pub mod hash;
pub mod ipars;
pub mod titan;

pub use ipars::{IparsConfig, IparsLayout};
pub use titan::TitanConfig;
