//! Minimal argument parsing for the `datavirt` binary (no external
//! dependencies; the option surface is small and stable).

use std::collections::HashMap;

/// Parsed command line: subcommand, positional arguments, `--flag
/// value` options and bare `--switch`es.
#[derive(Debug, Default, PartialEq)]
pub struct Args {
    pub command: String,
    pub positionals: Vec<String>,
    pub options: HashMap<String, String>,
    pub switches: Vec<String>,
}

/// Options that take a value (everything else starting with `--` is a
/// switch).
const VALUED: [&str; 15] = [
    "base",
    "format",
    "limit",
    "out",
    "scale",
    "layout",
    "workload",
    "timeout",
    "max-concurrent",
    "threads",
    "morsel-bytes",
    "byte-budget",
    "group-memory-budget",
    "link-bytes-per-sec",
    "link-deadline",
];

/// Parse raw arguments (excluding argv[0]).
pub fn parse(raw: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = raw.iter().peekable();
    match it.next() {
        Some(cmd) if !cmd.starts_with('-') => args.command = cmd.clone(),
        Some(other) => return Err(format!("expected a subcommand, found `{other}`")),
        None => return Err("no subcommand given".into()),
    }
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if VALUED.contains(&name) {
                let value = it.next().ok_or_else(|| format!("--{name} requires a value"))?.clone();
                args.options.insert(name.to_string(), value);
            } else {
                args.switches.push(name.to_string());
            }
        } else {
            args.positionals.push(a.clone());
        }
    }
    Ok(args)
}

impl Args {
    /// Required positional argument by index.
    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positionals
            .get(idx)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing {what} argument"))
    }

    /// Required `--name value` option.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.options
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// Optional option with a default.
    pub fn option_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.options.get(name).map(|s| s.as_str()).unwrap_or(default)
    }

    /// True when `--name` was given as a switch.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_command() {
        let a = parse(&sv(&[
            "query",
            "ipars.desc",
            "--base",
            "/data",
            "SELECT * FROM T",
            "--format",
            "csv",
            "--stats",
        ]))
        .unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.positionals, vec!["ipars.desc", "SELECT * FROM T"]);
        assert_eq!(a.required("base").unwrap(), "/data");
        assert_eq!(a.option_or("format", "table"), "csv");
        assert!(a.has("stats"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn parses_serve_options() {
        let a = parse(&sv(&[
            "serve",
            "ipars.desc",
            "--base",
            "/data",
            "--workload",
            "queries.sql",
            "--max-concurrent",
            "8",
            "--timeout",
            "2s",
        ]))
        .unwrap();
        assert_eq!(a.command, "serve");
        assert_eq!(a.required("workload").unwrap(), "queries.sql");
        assert_eq!(a.option_or("max-concurrent", "4"), "8");
        assert_eq!(a.option_or("timeout", ""), "2s");
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&sv(&["query", "--base"])).is_err());
    }

    #[test]
    fn missing_subcommand_is_error() {
        assert!(parse(&sv(&[])).is_err());
        assert!(parse(&sv(&["--base", "x"])).is_err());
    }

    #[test]
    fn accessor_errors() {
        let a = parse(&sv(&["fmt"])).unwrap();
        assert!(a.positional(0, "descriptor").is_err());
        assert!(a.required("base").is_err());
    }
}
