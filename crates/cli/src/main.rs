//! `datavirt` — command-line front end for automatic data
//! virtualization.
//!
//! ```text
//! datavirt schema   <descriptor>                      show the virtual table + file inventory
//! datavirt fmt      <descriptor>                      print the canonical descriptor form
//! datavirt validate <descriptor> --base <dir>         check files against the descriptor
//! datavirt lint     <descriptor> [<SQL>]              static analysis: DV0xx/DV1xx diagnostics
//! datavirt verify   <descriptor> [<SQL>]              semantic verification: DV2xx refutations + certificate
//! datavirt cost     <descriptor> <SQL>                static resource bounds + DV4xx budget checks
//! datavirt query    <descriptor> --base <dir> <SQL>   run a query  [--format table|csv] [--limit N] [--stats] [--timeout D] [--no-prune] [--no-agg-pushdown]
//! datavirt serve    <descriptor> --base <dir> --workload <file>   run a query workload concurrently
//! datavirt explain  <descriptor> --base <dir> <SQL>   show the AFC schedule
//! datavirt codegen  <descriptor> --base <dir>         render the generated index/extractor functions
//! datavirt generate ipars|titan --out <dir> [--layout l0..l6] [--scale N]
//! ```
//!
//! `serve` drives the query service plane: every line of the workload
//! file is submitted as a concurrent session, admitted under
//! `--max-concurrent` slots, each aborted mid-scan once `--timeout`
//! (e.g. `500ms`, `2s`) elapses.
//!
//! `query` and `explain` accept `--deny-warnings` to refuse execution
//! when the lint or verify passes report anything; `lint
//! --deny-warnings` turns warnings into a failing exit code (for CI).
//! `lint` and `verify` accept `--format json` (one shared schema) and
//! `--format sarif` for code-scanning upload. When a SQL argument is
//! given, `lint` also runs the static prune pass (DV301–DV305): the
//! WHERE clause abstract-interpreted over the descriptor's extents,
//! and the static cost pass (DV401–DV405): guaranteed resource bounds
//! checked against `--byte-budget`, `--group-memory-budget` and
//! `--link-bytes-per-sec`/`--link-deadline`. `cost` prints the full
//! bound report; the same budget flags on `query` configure
//! cost-based admission (statically over-budget queries are rejected
//! with a DV-coded error before any fragment runs).

mod args;

use std::process::ExitCode;

use dv_core::Virtualizer;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print!("{}", USAGE);
        return ExitCode::SUCCESS;
    }
    let parsed = match args::parse(&raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&parsed) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
datavirt — automatic data virtualization for flat-file scientific data

USAGE:
  datavirt schema   <descriptor>
  datavirt fmt      <descriptor>
  datavirt validate <descriptor> --base <dir>
  datavirt lint     <descriptor> [\"<SQL>\"] [--format human|json|sarif] [--deny-warnings] [--byte-budget <B>] [--group-memory-budget <B>] [--link-bytes-per-sec <B> --link-deadline <dur>]
  datavirt verify   <descriptor> [\"<SQL>\"] [--base <dir>] [--format human|json|sarif] [--deny-warnings]
  datavirt cost     <descriptor> \"<SQL>\" [--byte-budget <B>] [--group-memory-budget <B>] [--link-bytes-per-sec <B> --link-deadline <dur>] [--deny-warnings]
  datavirt query    <descriptor> --base <dir> \"<SQL>\" [--format table|csv] [--limit N] [--stats] [--timeout <dur>] [--threads <N>] [--morsel-bytes <B>] [--byte-budget <B>] [--group-memory-budget <B>] [--no-prune] [--no-agg-pushdown] [--deny-warnings]
  datavirt serve    <descriptor> --base <dir> --workload <file> [--max-concurrent <N>] [--timeout <dur>] [--threads <N>] [--morsel-bytes <B>]
  datavirt explain  <descriptor> --base <dir> \"<SQL>\" [--deny-warnings]
  datavirt codegen  <descriptor> --base <dir>
  datavirt generate <ipars|titan> --out <dir> [--layout <l0..l6>] [--scale <1..>]
";

fn run(a: &args::Args) -> Result<ExitCode, String> {
    match a.command.as_str() {
        "schema" => cmd_schema(a),
        "fmt" => cmd_fmt(a),
        "validate" => cmd_validate(a),
        "lint" => cmd_lint(a),
        "verify" => cmd_verify(a),
        "cost" => cmd_cost(a),
        "query" => cmd_query(a),
        "serve" => cmd_serve(a),
        "explain" => cmd_explain(a),
        "codegen" => cmd_codegen(a),
        "generate" => cmd_generate(a),
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

fn read_descriptor(a: &args::Args) -> Result<String, String> {
    let path = a.positional(0, "descriptor")?;
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn virtualizer(a: &args::Args) -> Result<Virtualizer, String> {
    let text = read_descriptor(a)?;
    let base = a.required("base")?;
    let mut builder = Virtualizer::builder(&text).storage_base(base);
    if let Some(limit) = a.options.get("max-concurrent") {
        let limit: usize =
            limit.parse().map_err(|_| "--max-concurrent must be an integer".to_string())?;
        builder = builder.max_concurrent(limit);
    }
    // An explicit --threads also raises the server-side ceiling so the
    // per-query request is honored as given.
    if let Some(t) = a.options.get("threads") {
        let t: usize = t.parse().map_err(|_| "--threads must be an integer".to_string())?;
        builder = builder.max_intra_node_threads(t.max(1));
    }
    // Budget flags configure cost-based admission: statically
    // over-budget queries are rejected with a DV-coded error.
    if let Some(b) = a.options.get("byte-budget") {
        let b: u64 = b.parse().map_err(|_| "--byte-budget must be an integer".to_string())?;
        builder = builder.max_plan_bytes(b);
    }
    if let Some(b) = a.options.get("group-memory-budget") {
        let b: u64 =
            b.parse().map_err(|_| "--group-memory-budget must be an integer".to_string())?;
        builder = builder.max_group_memory(b);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Static-analysis budgets from the `--byte-budget`,
/// `--group-memory-budget` and `--link-*` flags (the dv-cost DV401,
/// DV403 and DV404 checks).
fn cost_budgets(a: &args::Args) -> Result<dv_lint::CostBudgets, String> {
    let mut budgets = dv_lint::CostBudgets::default();
    if let Some(b) = a.options.get("byte-budget") {
        budgets.max_plan_bytes =
            Some(b.parse().map_err(|_| "--byte-budget must be an integer".to_string())?);
    }
    if let Some(b) = a.options.get("group-memory-budget") {
        budgets.max_group_memory =
            Some(b.parse().map_err(|_| "--group-memory-budget must be an integer".to_string())?);
    }
    match (a.options.get("link-bytes-per-sec"), a.options.get("link-deadline")) {
        (Some(bps), Some(deadline)) => {
            let bytes_per_sec: f64 =
                bps.parse().map_err(|_| "--link-bytes-per-sec must be a number".to_string())?;
            if bytes_per_sec <= 0.0 || !bytes_per_sec.is_finite() {
                return Err("--link-bytes-per-sec must be positive".to_string());
            }
            budgets.link =
                Some(dv_lint::LinkBudget { bytes_per_sec, deadline: parse_duration(deadline)? });
        }
        (None, None) => {}
        _ => {
            return Err(
                "--link-bytes-per-sec and --link-deadline must be given together".to_string()
            )
        }
    }
    Ok(budgets)
}

/// Per-query execution options from `--threads` (intra-node worker
/// pool size, default: available parallelism) and `--morsel-bytes`
/// (morsel size target, 0 = adaptive).
fn query_options(a: &args::Args) -> Result<dv_core::QueryOptions, String> {
    let mut opts = dv_core::QueryOptions::default();
    if let Some(t) = a.options.get("threads") {
        opts.intra_node_threads =
            t.parse().map_err(|_| "--threads must be an integer".to_string())?;
        if opts.intra_node_threads == 0 {
            return Err("--threads must be >= 1".to_string());
        }
    }
    if let Some(b) = a.options.get("morsel-bytes") {
        opts.morsel_bytes = b
            .parse()
            .map_err(|_| "--morsel-bytes must be an integer (0 = adaptive)".to_string())?;
    }
    if a.has("no-prune") {
        opts.no_prune = true;
    }
    if a.has("no-agg-pushdown") {
        opts.no_agg_pushdown = true;
    }
    Ok(opts)
}

/// Parse a duration like `500ms`, `2s`, or a bare number of seconds.
fn parse_duration(text: &str) -> Result<std::time::Duration, String> {
    let (number, scale) = match text.strip_suffix("ms") {
        Some(n) => (n, 1e-3),
        None => (text.strip_suffix('s').unwrap_or(text), 1.0),
    };
    let value: f64 = number
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration `{text}` (use e.g. 500ms, 2s, 1.5)"))?;
    if value < 0.0 || !value.is_finite() {
        return Err(format!("invalid duration `{text}`"));
    }
    Ok(std::time::Duration::from_secs_f64(value * scale))
}

fn cmd_schema(a: &args::Args) -> Result<ExitCode, String> {
    let text = read_descriptor(a)?;
    let model = dv_descriptor::compile(&text).map_err(|e| e.to_string())?;
    println!("dataset  : {}", model.dataset_name);
    println!("schema   : {}", model.schema.name);
    println!("indexed  : {}", model.index_attrs.join(", "));
    println!("nodes    : {}", model.nodes.join(", "));
    println!("files    : {}", model.files.len());
    println!();
    println!("{:<12}type", "attribute");
    for attr in model.schema.attributes() {
        println!("{:<12}{}", attr.name, attr.dtype);
    }
    println!();
    // Per-leaf-dataset file summary.
    let mut by_dataset: Vec<(String, usize, u64)> = Vec::new();
    for f in &model.files {
        let size = f.expected_size(&model.attr_sizes).unwrap_or(0);
        match by_dataset.iter_mut().find(|(n, _, _)| *n == f.dataset) {
            Some((_, count, bytes)) => {
                *count += 1;
                *bytes += size;
            }
            None => by_dataset.push((f.dataset.clone(), 1, size)),
        }
    }
    println!("{:<16}{:>8}{:>16}", "leaf dataset", "files", "bytes");
    for (name, count, bytes) in by_dataset {
        let shown = if bytes == 0 { "(chunked)".to_string() } else { bytes.to_string() };
        println!("{name:<16}{count:>8}{shown:>16}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_fmt(a: &args::Args) -> Result<ExitCode, String> {
    let text = read_descriptor(a)?;
    let ast = dv_descriptor::parse_descriptor(&text).map_err(|e| e.to_string())?;
    print!("{}", dv_descriptor::render(&ast));
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(a: &args::Args) -> Result<ExitCode, String> {
    let v = virtualizer(a)?;
    let issues = v.verify_files();
    if issues.is_empty() {
        println!(
            "ok: {} files on {} node(s) match the descriptor",
            v.model().files.len(),
            v.model().node_count()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for issue in &issues {
            eprintln!("{issue}");
        }
        eprintln!("{} issue(s) found", issues.len());
        Ok(ExitCode::FAILURE)
    }
}

/// Collect every lint diagnostic for the descriptor (and SQL, when
/// given), kept separate per source so output formats can resolve
/// spans against the right text.
fn collect_lints(
    text: &str,
    sql: Option<&str>,
    budgets: &dv_lint::CostBudgets,
) -> Result<(Vec<dv_lint::Diagnostic>, Vec<dv_lint::Diagnostic>), String> {
    let diags = dv_lint::lint_descriptor(text).map_err(|e| e.to_string())?;
    let qdiags = match sql {
        Some(sql) => {
            let model = dv_descriptor::compile(text).map_err(|e| e.to_string())?;
            let udfs = dv_sql::UdfRegistry::with_builtins();
            let mut q = dv_lint::lint_query(&model, sql, &udfs).map_err(|e| e.to_string())?;
            q.extend(dv_lint::prune_query(&model, sql, &udfs).map_err(|e| e.to_string())?);
            q.extend(dv_lint::cost_query(&model, sql, &udfs, budgets).map_err(|e| e.to_string())?);
            q.sort_by_key(|d| (d.span.start, d.code));
            q
        }
        None => Vec::new(),
    };
    Ok((diags, qdiags))
}

fn render_mixed(
    desc_diags: &[dv_lint::Diagnostic],
    text: &str,
    origin: &str,
    query_diags: &[dv_lint::Diagnostic],
    sql: Option<&str>,
) -> String {
    let mut rendered: Vec<String> = desc_diags.iter().map(|d| d.render(text, origin)).collect();
    if let Some(sql) = sql {
        rendered.extend(query_diags.iter().map(|d| d.render(sql, "<query>")));
    }
    rendered.join("\n")
}

fn cmd_lint(a: &args::Args) -> Result<ExitCode, String> {
    let path = a.positional(0, "descriptor")?.to_string();
    let text = read_descriptor(a)?;
    let sql = a.positionals.get(1).map(|s| s.as_str());
    let (diags, qdiags) = collect_lints(&text, sql, &cost_budgets(a)?)?;
    let total = diags.len() + qdiags.len();
    let errors =
        diags.iter().chain(&qdiags).filter(|d| d.severity == dv_lint::Severity::Error).count();
    let notes =
        diags.iter().chain(&qdiags).filter(|d| d.severity == dv_lint::Severity::Note).count();
    // Notes are informational (e.g. the DV304 prune summary): they
    // never count against --deny-warnings.
    let warnings = total - errors - notes;
    match a.option_or("format", "human") {
        "human" => {
            if total == 0 {
                println!("ok: no diagnostics");
            } else {
                print!("{}", render_mixed(&diags, &text, &path, &qdiags, sql));
                println!("\n{warnings} warning(s), {errors} error(s)");
            }
        }
        "json" => {
            let emitted: Vec<dv_lint::Emitted> = diags
                .iter()
                .map(|d| dv_lint::Emitted::new(d, &text, &path))
                .chain(
                    qdiags.iter().map(|d| dv_lint::Emitted::new(d, sql.unwrap_or(""), "<query>")),
                )
                .collect();
            print!("{}", dv_lint::verify::report::to_json(&emitted, None, &[]));
        }
        "sarif" => {
            let emitted: Vec<dv_lint::Emitted> = diags
                .iter()
                .map(|d| dv_lint::Emitted::new(d, &text, &path))
                .chain(
                    qdiags.iter().map(|d| dv_lint::Emitted::new(d, sql.unwrap_or(""), "<query>")),
                )
                .collect();
            print!("{}", dv_lint::verify::report::to_sarif(&emitted));
        }
        other => return Err(format!("unknown --format `{other}` (human|json|sarif)")),
    }
    if errors > 0 || (warnings > 0 && a.has("deny-warnings")) {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Observed file sizes for `verify --base`: stat every file the
/// resolved model names. Missing files simply leave no entry, which
/// keeps the bounds property unproven rather than falsely safe.
fn observed_sizes(text: &str, base: &str) -> Result<dv_lint::verify::ObservedSizes, String> {
    let model = dv_descriptor::compile(text).map_err(|e| e.to_string())?;
    let base = std::path::Path::new(base);
    let mut sizes = dv_lint::verify::ObservedSizes::new();
    for f in &model.files {
        let node = &model.nodes[f.node];
        if let Ok(md) = std::fs::metadata(base.join(node).join(&f.rel_path)) {
            sizes.insert((node.clone(), f.rel_path.clone()), md.len());
        }
    }
    Ok(sizes)
}

fn cmd_verify(a: &args::Args) -> Result<ExitCode, String> {
    let path = a.positional(0, "descriptor")?.to_string();
    let text = read_descriptor(a)?;
    let sql = a.positionals.get(1).map(|s| s.as_str());

    let sizes = match a.options.get("base") {
        Some(base) => Some(observed_sizes(&text, base)?),
        None => None,
    };
    let report = dv_lint::verify_descriptor(&text, sizes.as_ref()).map_err(|e| e.to_string())?;
    // The certificate covers the descriptor; query findings (DV205)
    // additionally gate the exit code.
    let certificate = report.certificate();
    let qfindings = match sql {
        Some(sql) => {
            let model = dv_descriptor::compile(&text).map_err(|e| e.to_string())?;
            let udfs = dv_sql::UdfRegistry::with_builtins();
            dv_lint::verify_query(&model, sql, &udfs).map_err(|e| e.to_string())?
        }
        None => Vec::new(),
    };

    let emitted: Vec<dv_lint::Emitted> = report
        .findings
        .iter()
        .map(|f| {
            dv_lint::Emitted::new(&f.diag, &text, &path)
                .with_counterexample(f.counterexample.as_ref())
        })
        .chain(qfindings.iter().map(|f| {
            dv_lint::Emitted::new(&f.diag, sql.unwrap_or(""), "<query>")
                .with_counterexample(f.counterexample.as_ref())
        }))
        .collect();

    match a.option_or("format", "human") {
        "human" => {
            let rendered: Vec<String> = report
                .findings
                .iter()
                .map(|f| f.diag.render(&text, &path))
                .chain(qfindings.iter().map(|f| f.diag.render(sql.unwrap_or(""), "<query>")))
                .collect();
            if !rendered.is_empty() {
                print!("{}", rendered.join("\n"));
                println!();
            }
            for reason in &report.unproven {
                println!("unproven: {reason}");
            }
            println!("certificate: {certificate}");
        }
        "json" => print!(
            "{}",
            dv_lint::verify::report::to_json(&emitted, Some(certificate), &report.unproven)
        ),
        "sarif" => print!("{}", dv_lint::verify::report::to_sarif(&emitted)),
        other => return Err(format!("unknown --format `{other}` (human|json|sarif)")),
    }

    let errors = emitted.iter().filter(|e| e.diag.severity == dv_lint::Severity::Error).count();
    let notes = emitted.iter().filter(|e| e.diag.severity == dv_lint::Severity::Note).count();
    let warnings = emitted.len() - errors - notes;
    if errors > 0 || (warnings > 0 && a.has("deny-warnings")) {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// `datavirt cost <descriptor> "<SQL>"` — print the plan's static
/// resource bounds (no data touched), then the DV4xx diagnostics for
/// whatever budgets were declared on the command line.
fn cmd_cost(a: &args::Args) -> Result<ExitCode, String> {
    let text = read_descriptor(a)?;
    let sql = a.positional(1, "SQL")?.to_string();
    let model = dv_descriptor::compile(&text).map_err(|e| e.to_string())?;
    let udfs = dv_sql::UdfRegistry::with_builtins();
    match dv_lint::cost::cost_report(&model, &sql, &udfs).map_err(|e| e.to_string())? {
        Some(report) => println!("{report}"),
        None => println!("cost bounds unavailable: chunked layouts need the on-disk chunk index"),
    }
    let budgets = cost_budgets(a)?;
    let diags = dv_lint::cost_query(&model, &sql, &udfs, &budgets).map_err(|e| e.to_string())?;
    let rendered: Vec<String> = diags.iter().map(|d| d.render(&sql, "<query>")).collect();
    if !rendered.is_empty() {
        println!();
        print!("{}", rendered.join("\n"));
    }
    let actionable = diags.iter().filter(|d| d.severity != dv_lint::Severity::Note).count();
    if actionable > 0 && a.has("deny-warnings") {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// `--deny-warnings` pre-flight for query/explain: refuse to run when
/// the lint or verify passes report anything about the descriptor or
/// the SQL.
fn preflight_lint(a: &args::Args, sql: &str) -> Result<(), String> {
    if !a.has("deny-warnings") {
        return Ok(());
    }
    let path = a.positional(0, "descriptor")?.to_string();
    let text = read_descriptor(a)?;
    let (mut diags, mut qdiags) = collect_lints(&text, Some(sql), &cost_budgets(a)?)?;
    let report = dv_lint::verify_descriptor(&text, None).map_err(|e| e.to_string())?;
    diags.extend(report.findings.into_iter().map(|f| f.diag));
    diags.sort_by_key(|d| (d.span.start, d.code));
    if let Ok(model) = dv_descriptor::compile(&text) {
        let udfs = dv_sql::UdfRegistry::with_builtins();
        let qf = dv_lint::verify_query(&model, sql, &udfs).map_err(|e| e.to_string())?;
        qdiags.extend(qf.into_iter().map(|f| f.diag));
        qdiags.sort_by_key(|d| (d.span.start, d.code));
    }
    // Notes (e.g. the DV304 prune summary) are informational and must
    // not stop a query under --deny-warnings.
    diags.retain(|d| d.severity != dv_lint::Severity::Note);
    qdiags.retain(|d| d.severity != dv_lint::Severity::Note);
    let total = diags.len() + qdiags.len();
    if total == 0 {
        return Ok(());
    }
    let rendered = render_mixed(&diags, &text, &path, &qdiags, Some(sql));
    Err(format!("{rendered}\nrefusing to run: {total} diagnostic(s) with --deny-warnings"))
}

fn cmd_query(a: &args::Args) -> Result<ExitCode, String> {
    let sql = a.positional(1, "SQL")?.to_string();
    preflight_lint(a, &sql)?;
    let v = virtualizer(a)?;
    let sql = sql.as_str();
    let limit: usize =
        a.option_or("limit", "0").parse().map_err(|_| "--limit must be an integer".to_string())?;
    let opts = query_options(a)?;
    let timeout = match a.options.get("timeout") {
        Some(t) => Some(parse_duration(t)?),
        None => None,
    };
    let sub = dv_core::SubmitOptions { timeout, ..dv_core::SubmitOptions::default() };
    let (mut tables, stats) =
        v.service().execute_with(sql, &opts, &sub).map_err(|e| e.to_string())?;
    let table = tables.pop().ok_or_else(|| "query produced no client partitions".to_string())?;
    match a.option_or("format", "table") {
        "csv" => {
            let names: Vec<&str> =
                table.schema.attributes().iter().map(|c| c.name.as_str()).collect();
            println!("{}", names.join(","));
            for row in limited(&table.rows, limit) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join(","));
            }
        }
        "table" => {
            let names: Vec<&str> =
                table.schema.attributes().iter().map(|c| c.name.as_str()).collect();
            println!("{}", names.join(" | "));
            for row in limited(&table.rows, limit) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join(" | "));
            }
            if limit != 0 && table.rows.len() > limit {
                println!("... ({} rows total)", table.rows.len());
            }
        }
        other => return Err(format!("unknown --format `{other}` (table|csv)")),
    }
    if a.has("stats") {
        eprintln!(
            "rows: {} selected / {} scanned; bytes read: {}; AFCs: {}; plan: {:?}; exec: {:?}",
            stats.rows_selected,
            stats.rows_scanned,
            stats.bytes_read,
            stats.afcs,
            stats.plan_time,
            stats.exec_time
        );
        eprintln!(
            "prune: {} of {} groups statically empty; {} provably full (filter skipped); bytes avoided: {}",
            stats.groups_pruned, stats.groups_total, stats.groups_full, stats.bytes_avoided,
        );
        eprintln!(
            "io: {} read syscalls; coalesce ratio: {:.1}; bytes issued/used: {}/{}; cache hit: {:.0}% ({} hit / {} miss bytes); prefetch: {} hits, {} waits ({:?})",
            stats.io.read_syscalls,
            stats.io.coalesce_ratio(),
            stats.io.bytes_issued,
            stats.io.bytes_used,
            stats.io.cache_hit_rate() * 100.0,
            stats.io.cache_hit_bytes,
            stats.io.cache_miss_bytes,
            stats.io.prefetch_hits,
            stats.io.prefetch_waits,
            stats.io.prefetch_wait,
        );
        eprintln!(
            "morsels: {} planned, {} stolen; workers: {}; per-worker bytes: {}..{}; pool wait: {:?}",
            stats.morsels.planned,
            stats.morsels.stolen,
            stats.morsels.workers,
            stats.morsels.worker_bytes_min,
            stats.morsels.worker_bytes_max,
            stats.morsels.pool_wait,
        );
        eprintln!(
            "mover: {} sends, {} blocked; peak reorder buffer: {} blocks",
            stats.mover.sends, stats.mover.blocked_sends, stats.mover.peak_buffered_blocks
        );
        if stats.mover.agg_blocks > 0 {
            let reduction = stats
                .mover
                .agg_reduction()
                .map(|r| format!("{r:.1}x reduction"))
                .unwrap_or_else(|| "no groups".to_string());
            eprintln!(
                "agg pushdown: {} partial blocks; {} rows folded -> {} group entries shipped ({reduction})",
                stats.mover.agg_blocks, stats.mover.agg_rows_in, stats.mover.agg_groups_out,
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn limited(rows: &[dv_core::Row], limit: usize) -> &[dv_core::Row] {
    if limit == 0 || rows.len() <= limit {
        rows
    } else {
        &rows[..limit]
    }
}

/// Run a workload file (one SQL query per line; `#` comments and
/// blank lines ignored) as concurrent sessions through the query
/// service, printing one result line per query and a throughput
/// summary. Fails if any query failed.
fn cmd_serve(a: &args::Args) -> Result<ExitCode, String> {
    let workload_path = a.required("workload")?.to_string();
    let workload = std::fs::read_to_string(&workload_path)
        .map_err(|e| format!("cannot read {workload_path}: {e}"))?;
    let queries: Vec<String> = workload
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    if queries.is_empty() {
        return Err(format!("{workload_path} contains no queries"));
    }
    let timeout = match a.options.get("timeout") {
        Some(t) => Some(parse_duration(t)?),
        None => None,
    };
    let v = virtualizer(a)?;
    let sub = dv_core::SubmitOptions { timeout, ..dv_core::SubmitOptions::default() };
    let opts = query_options(a)?;

    // Submit everything up front: the service queues what the
    // admission limit does not immediately admit.
    let start = std::time::Instant::now();
    let sessions: Vec<(String, Result<dv_core::SessionHandle, String>)> = queries
        .iter()
        .map(|sql| (sql.clone(), v.submit(sql, &opts, &sub).map_err(|e| e.to_string())))
        .collect();
    let mut failures = 0usize;
    for (sql, session) in sessions {
        let shown: String = if sql.len() > 48 { format!("{}...", &sql[..45]) } else { sql.clone() };
        match session.and_then(|h| {
            let id = h.id();
            h.wait().map(|r| (id, r)).map_err(|e| e.to_string())
        }) {
            Ok((id, (tables, stats))) => {
                let rows: usize = tables.iter().map(|t| t.len()).sum();
                println!(
                    "{id}  ok    {rows} rows  exec {:?}  queued {:?}  {shown}",
                    stats.exec_time, stats.queue_wait
                );
            }
            Err(e) => {
                failures += 1;
                println!("-   error {e}  {shown}");
            }
        }
    }
    let elapsed = start.elapsed();
    println!(
        "{} quer(ies), {} failed, in {:?} ({:.1} queries/s, {} admission slot(s))",
        queries.len(),
        failures,
        elapsed,
        queries.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        v.service().max_concurrent(),
    );
    Ok(if failures == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_explain(a: &args::Args) -> Result<ExitCode, String> {
    let sql = a.positional(1, "SQL")?.to_string();
    preflight_lint(a, &sql)?;
    let v = virtualizer(a)?;
    print!("{}", v.explain(&sql).map_err(|e| e.to_string())?);
    Ok(ExitCode::SUCCESS)
}

fn cmd_codegen(a: &args::Args) -> Result<ExitCode, String> {
    let v = virtualizer(a)?;
    print!("{}", v.render_generated_code());
    Ok(ExitCode::SUCCESS)
}

fn cmd_generate(a: &args::Args) -> Result<ExitCode, String> {
    let kind = a.positional(0, "dataset kind (ipars|titan)")?;
    let out = std::path::PathBuf::from(a.required("out")?);
    let scale: usize =
        a.option_or("scale", "1").parse().map_err(|_| "--scale must be an integer".to_string())?;
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    match kind {
        "ipars" => {
            let layout = match a.option_or("layout", "l0") {
                "l0" => dv_datagen::IparsLayout::L0,
                "l1" => dv_datagen::IparsLayout::I,
                "l2" => dv_datagen::IparsLayout::II,
                "l3" => dv_datagen::IparsLayout::III,
                "l4" => dv_datagen::IparsLayout::IV,
                "l5" => dv_datagen::IparsLayout::V,
                "l6" => dv_datagen::IparsLayout::VI,
                other => return Err(format!("unknown --layout `{other}` (l0..l6)")),
            };
            let cfg = dv_datagen::IparsConfig {
                realizations: 4,
                time_steps: 50,
                grid_per_dir: 250 * scale,
                dirs: 4,
                nodes: 4,
                seed: 42,
            };
            let descriptor =
                dv_datagen::ipars::generate(&out, &cfg, layout).map_err(|e| e.to_string())?;
            let desc_path = out.join("ipars.desc");
            std::fs::write(&desc_path, &descriptor).map_err(|e| e.to_string())?;
            println!(
                "generated {} rows ({} layout) under {}; descriptor: {}",
                cfg.rows(),
                layout.label(),
                out.display(),
                desc_path.display()
            );
        }
        "titan" => {
            let cfg = dv_datagen::TitanConfig {
                points: 100_000 * scale,
                tiles: (8, 8, 4),
                nodes: 1,
                seed: 42,
            };
            let descriptor = dv_datagen::titan::generate(&out, &cfg).map_err(|e| e.to_string())?;
            let desc_path = out.join("titan.desc");
            std::fs::write(&desc_path, &descriptor).map_err(|e| e.to_string())?;
            println!(
                "generated {} measurements under {}; descriptor: {}",
                cfg.points,
                out.display(),
                desc_path.display()
            );
        }
        other => return Err(format!("unknown dataset kind `{other}` (ipars|titan)")),
    }
    Ok(ExitCode::SUCCESS)
}
