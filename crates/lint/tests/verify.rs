//! Golden-file tests for the `dv-verify` semantic pass: every DV2xx
//! code has a fixture descriptor (or query) that it refutes with a
//! spanned diagnostic carrying a concrete counterexample, and every
//! shipped example descriptor verifies clean.
//!
//! Regenerate the golden files with `BLESS=1 cargo test -p dv-lint`.

use std::fs;
use std::path::PathBuf;

use dv_layout::Certificate;
use dv_lint::verify::ObservedSizes;
use dv_lint::{verify_descriptor, verify_query, Code, Finding};
use dv_sql::UdfRegistry;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn check_golden(rendered: &str, expected_file: &str) {
    let path = fixture(expected_file);
    if std::env::var_os("BLESS").is_some() {
        fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {path:?}; run with BLESS=1 to create"));
    assert_eq!(rendered, expected, "rendered diagnostics diverge from {expected_file}");
}

fn render(findings: &[Finding], text: &str, origin: &str) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.diag.render(text, origin));
        if let Some(ce) = &f.counterexample {
            let idx: Vec<String> = ce.indices.iter().map(|(v, x)| format!("{v}={x}")).collect();
            out.push_str(&format!(
                "   = counterexample: file `{}`{}{}, bytes {}..{}\n",
                ce.file,
                if idx.is_empty() { "" } else { ", " },
                idx.join(", "),
                ce.byte_lo,
                ce.byte_hi
            ));
        }
    }
    out
}

fn run(name: &str, sizes: Option<&ObservedSizes>) -> (dv_lint::VerifyReport, String) {
    let text = fs::read_to_string(fixture(&format!("{name}.desc"))).unwrap();
    let report = verify_descriptor(&text, sizes).unwrap();
    let rendered = render(&report.findings, &text, &format!("{name}.desc"));
    (report, rendered)
}

fn codes(report: &dv_lint::VerifyReport) -> Vec<Code> {
    let mut out: Vec<Code> = report.findings.iter().map(|f| f.diag.code).collect();
    out.dedup();
    out
}

#[test]
fn dv201_overlapping_data_items() {
    let (report, rendered) = run("dv201", None);
    assert_eq!(codes(&report), [Code::Dv201], "{rendered}");
    assert_eq!(report.certificate(), Certificate::Refuted);
    let ce = report.findings[0].counterexample.as_ref().expect("counterexample");
    assert_eq!(ce.file, "d/f.dat");
    check_golden(&rendered, "dv201.expected");
}

#[test]
fn dv202_out_of_bounds_access() {
    // The layout implies 5 records x 4 bytes = 20, but the observed
    // file holds only 18: record T=5 (bytes 16..20) runs past the end.
    let mut sizes = ObservedSizes::new();
    sizes.insert(("node0".to_string(), "d/f.dat".to_string()), 18);
    let (report, rendered) = run("dv202", Some(&sizes));
    assert_eq!(codes(&report), [Code::Dv202], "{rendered}");
    assert_eq!(report.certificate(), Certificate::Refuted);
    let ce = report.findings[0].counterexample.as_ref().expect("counterexample");
    assert_eq!(ce.file, "d/f.dat");
    assert_eq!(ce.indices, vec![("T".to_string(), 5)]);
    assert_eq!((ce.byte_lo, ce.byte_hi), (16, 20));
    check_golden(&rendered, "dv202.expected");
}

#[test]
fn dv202_exact_sizes_verify_safe() {
    let mut sizes = ObservedSizes::new();
    sizes.insert(("node0".to_string(), "d/f.dat".to_string()), 20);
    let (report, rendered) = run("dv202", Some(&sizes));
    assert!(report.findings.is_empty(), "{rendered}");
    assert_eq!(report.certificate(), Certificate::Safe);
}

#[test]
fn nonaffine_codec_demotes_certificate_to_unverified() {
    // Same layout and exact sizes that earn `Safe` above, but stored
    // as CSV: physical size is data-dependent, so byte bounds cannot
    // be checked and the certificate honestly degrades.
    let text = fs::read_to_string(fixture("dv202.desc")).unwrap();
    let csv = text.replace("DATA { DIR[0]/f.dat }", "DATA { DIR[0]/f.dat CODEC csv }");
    let mut sizes = ObservedSizes::new();
    // A physical size far from the 20-byte logical image must NOT be
    // reported: the bounds check is skipped for non-affine codecs.
    sizes.insert(("node0".to_string(), "d/f.dat".to_string()), 999);
    let report = verify_descriptor(&csv, Some(&sizes)).unwrap();
    let rendered = render(&report.findings, &csv, "dv202-csv.desc");
    assert!(report.findings.is_empty(), "{rendered}");
    assert_eq!(report.certificate(), Certificate::Unverified);
    assert!(
        report.unproven.iter().any(|r| r.contains("CODEC csv")),
        "unproven must name the codec: {:?}",
        report.unproven
    );
}

#[test]
fn dv203_misaligned_file_group() {
    let (report, rendered) = run("dv203", None);
    assert_eq!(codes(&report), [Code::Dv203], "{rendered}");
    assert_eq!(report.certificate(), Certificate::Refuted);
    let ce = report.findings[0].counterexample.as_ref().expect("counterexample");
    // Iteration 4 (T=5) exists only in B.dat: bytes 16..20.
    assert_eq!(ce.file, "d/B.dat");
    assert_eq!(ce.indices, vec![("T".to_string(), 5)]);
    assert_eq!((ce.byte_lo, ce.byte_hi), (16, 20));
    check_golden(&rendered, "dv203.expected");
}

#[test]
fn dv204_dead_dataspace_region() {
    let (report, rendered) = run("dv204", None);
    assert_eq!(codes(&report), [Code::Dv204], "{rendered}");
    // A warning, not an error — the layout wastes no bytes, it just
    // declares a region no record can reach.
    assert_eq!(report.errors(), 0);
    assert!(report.findings[0].counterexample.is_some());
    check_golden(&rendered, "dv204.expected");
}

#[test]
fn dv205_compile_time_empty_predicate() {
    let text = fs::read_to_string(fixture("query.desc")).unwrap();
    let model = dv_descriptor::compile(&text).unwrap();
    let sql = "SELECT X FROM D WHERE T > 1000";
    let findings = verify_query(&model, sql, &UdfRegistry::with_builtins()).unwrap();
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].diag.code, Code::Dv205);
    let rendered = render(&findings, sql, "<query>");
    check_golden(&rendered, "q_dv205.expected");
}

/// Every descriptor shipped under `examples/descriptors/` verifies
/// with no findings; non-CHUNKED layouts earn the Safe certificate.
#[test]
fn shipped_examples_verify_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/descriptors");
    let mut seen = 0;
    let mut entries: Vec<_> =
        fs::read_dir(&dir).expect("examples/descriptors exists").flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "desc") {
            continue;
        }
        seen += 1;
        let text = fs::read_to_string(&path).unwrap();
        let report = verify_descriptor(&text, None).unwrap();
        let rendered = render(&report.findings, &text, &path.display().to_string());
        assert!(report.findings.is_empty(), "{path:?} is not clean:\n{rendered}");
        if report.unproven.is_empty() {
            assert_eq!(report.certificate(), Certificate::Safe, "{path:?}");
        }
    }
    assert!(seen >= 8, "expected the shipped example descriptors, found {seen}");
}

/// Acceptance: every DV2xx refutation carries a real span and a
/// concrete counterexample (or, for DV204/DV205, at least a span).
#[test]
fn verify_codes_are_spanned_and_distinct() {
    let mut seen = Vec::new();
    for name in ["dv201", "dv203", "dv204"] {
        let (report, rendered) = run(name, None);
        assert!(!report.findings.is_empty(), "{name} produced nothing");
        for f in &report.findings {
            assert!(!f.diag.span.is_dummy(), "{name}: dummy span in:\n{rendered}");
        }
        seen.extend(codes(&report));
    }
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), 3, "expected 3 distinct codes, got {seen:?}");
}
