//! Golden-file tests: every lint code has a fixture descriptor (or
//! query) that triggers it, and the rendered diagnostics are compared
//! byte-for-byte against checked-in `.expected` files.
//!
//! Regenerate the golden files with `BLESS=1 cargo test -p dv-lint`.

use std::fs;
use std::path::PathBuf;

use dv_lint::{lint_descriptor, lint_query, render_all, Code, Diagnostic, Severity};
use dv_sql::UdfRegistry;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn check_golden(rendered: &str, expected_file: &str) {
    let path = fixture(expected_file);
    if std::env::var_os("BLESS").is_some() {
        fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {path:?}; run with BLESS=1 to create"));
    assert_eq!(rendered, expected, "rendered diagnostics diverge from {expected_file}");
}

fn run_descriptor(name: &str) -> (Vec<Diagnostic>, String) {
    let text = fs::read_to_string(fixture(&format!("{name}.desc"))).unwrap();
    let diags = lint_descriptor(&text).unwrap();
    let rendered = render_all(&diags, &text, &format!("{name}.desc"));
    (diags, rendered)
}

fn run_query(sql: &str) -> (Vec<Diagnostic>, String) {
    run_query_on("query", sql)
}

fn run_query_on(desc: &str, sql: &str) -> (Vec<Diagnostic>, String) {
    let text = fs::read_to_string(fixture(&format!("{desc}.desc"))).unwrap();
    let model = dv_descriptor::compile(&text).unwrap();
    let diags = lint_query(&model, sql, &UdfRegistry::with_builtins()).unwrap();
    let rendered = render_all(&diags, sql, "<query>");
    (diags, rendered)
}

fn codes(diags: &[Diagnostic]) -> Vec<Code> {
    let mut out: Vec<Code> = diags.iter().map(|d| d.code).collect();
    out.dedup();
    out
}

#[test]
fn clean_descriptor_has_no_diagnostics() {
    let (diags, rendered) = run_descriptor("clean");
    assert!(diags.is_empty(), "unexpected diagnostics:\n{rendered}");
}

#[test]
fn clean_query_has_no_diagnostics() {
    let (diags, rendered) = run_query("SELECT X FROM D WHERE T < 50");
    assert!(diags.is_empty(), "unexpected diagnostics:\n{rendered}");
}

#[test]
fn dv001_overlapping_loops() {
    let (diags, rendered) = run_descriptor("dv001");
    assert_eq!(codes(&diags), [Code::Dv001], "{rendered}");
    assert_eq!(diags.len(), 2, "shadowing + sibling overlap:\n{rendered}");
    check_golden(&rendered, "dv001.expected");
}

#[test]
fn dv002_duplicate_store() {
    let (diags, rendered) = run_descriptor("dv002");
    assert_eq!(codes(&diags), [Code::Dv002], "{rendered}");
    check_golden(&rendered, "dv002.expected");
}

#[test]
fn dv003_unbound_schema_attr() {
    let (diags, rendered) = run_descriptor("dv003");
    assert_eq!(codes(&diags), [Code::Dv003], "{rendered}");
    check_golden(&rendered, "dv003.expected");
}

#[test]
fn dv004_dead_datatype_attr() {
    let (diags, rendered) = run_descriptor("dv004");
    assert_eq!(codes(&diags), [Code::Dv004], "{rendered}");
    check_golden(&rendered, "dv004.expected");
}

#[test]
fn dv005_stored_and_implicit() {
    let (diags, rendered) = run_descriptor("dv005");
    assert_eq!(codes(&diags), [Code::Dv005], "{rendered}");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    check_golden(&rendered, "dv005.expected");
}

#[test]
fn dv006_degenerate_ranges() {
    let (diags, rendered) = run_descriptor("dv006");
    assert_eq!(codes(&diags), [Code::Dv006], "{rendered}");
    assert_eq!(diags.len(), 2, "empty range + zero step:\n{rendered}");
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    check_golden(&rendered, "dv006.expected");
}

#[test]
fn dv007_unreferenced_dir() {
    let (diags, rendered) = run_descriptor("dv007");
    assert_eq!(codes(&diags), [Code::Dv007], "{rendered}");
    check_golden(&rendered, "dv007.expected");
}

#[test]
fn dv008_row_count_mismatch() {
    let (diags, rendered) = run_descriptor("dv008");
    assert_eq!(codes(&diags), [Code::Dv008], "{rendered}");
    check_golden(&rendered, "dv008.expected");
}

#[test]
fn dv104_tiny_afc_runs() {
    let (diags, rendered) = run_descriptor("dv104");
    assert_eq!(codes(&diags), [Code::Dv104], "{rendered}");
    assert_eq!(diags.len(), 4, "one per grouped dataset:\n{rendered}");
    check_golden(&rendered, "dv104.expected");
}

#[test]
fn dv107_nonaffine_codec_on_safe_layout() {
    let (diags, rendered) = run_descriptor("dv107");
    assert_eq!(codes(&diags), [Code::Dv107], "{rendered}");
    assert_eq!(diags.len(), 1, "one note per non-affine binding:\n{rendered}");
    assert_eq!(diags[0].severity, Severity::Note, "{rendered}");
    check_golden(&rendered, "dv107.expected");
}

#[test]
fn dv107_quiet_when_layout_is_unverifiable_anyway() {
    // dv104's layout verifies, but a CHUNKED one does not — gate the
    // check on clean.desc with an unevaluable binding range instead.
    let text = fs::read_to_string(fixture("dv107.desc")).unwrap();
    let broken = text.replace("LOOP TIME 1:500:1", "LOOP TIME 1:$UNBOUND:1");
    let diags = lint_descriptor(&broken).unwrap();
    assert!(
        !diags.iter().any(|d| d.code == Code::Dv107),
        "DV107 must stay quiet when Safe was out of reach regardless of codec"
    );
}

#[test]
fn dv101_unsatisfiable_predicate() {
    let (diags, rendered) = run_query("SELECT X FROM D WHERE T > 10 AND T < 5");
    assert_eq!(codes(&diags), [Code::Dv101], "{rendered}");
    check_golden(&rendered, "q_unsat.expected");
}

#[test]
fn dv101_predicate_outside_extents() {
    let (diags, rendered) = run_query("SELECT X FROM D WHERE T > 1000");
    assert_eq!(codes(&diags), [Code::Dv101], "{rendered}");
    check_golden(&rendered, "q_nofile.expected");
}

#[test]
fn dv102_udf_over_index_attr() {
    // The guard conjunct keeps DV103 quiet so this exercises DV102 alone.
    let (diags, rendered) = run_query("SELECT X FROM D WHERE T < 50 AND DISTANCE(T, X, X) < 5");
    assert_eq!(codes(&diags), [Code::Dv102], "{rendered}");
    check_golden(&rendered, "q_udf.expected");
}

#[test]
fn dv103_unguarded_udf_filter() {
    // DISTANCE over non-index attrs only (no DV102), with no UDF-free
    // conjunct: the columnar engine row-falls-back on every block.
    let (diags, rendered) = run_query("SELECT X FROM D WHERE DISTANCE(X, X, X) < 5");
    assert_eq!(codes(&diags), [Code::Dv103], "{rendered}");
    check_golden(&rendered, "q_dv103.expected");
}

#[test]
fn dv106_group_by_pinned_coordinate() {
    // `prune.desc` pins REL = 0:0:1 — grouping by it puts every row in
    // one group, the aggregate-side analogue of DV305.
    let (diags, rendered) = run_query_on("prune", "SELECT REL, COUNT(T) FROM D GROUP BY REL");
    assert_eq!(codes(&diags), [Code::Dv106], "{rendered}");
    let d = &diags[0];
    let sql = "SELECT REL, COUNT(T) FROM D GROUP BY REL";
    assert_eq!(&sql[d.span.start..d.span.end], "REL", "{rendered}");
    assert!(d.span.start > sql.find("GROUP").unwrap(), "span anchors inside GROUP BY: {rendered}");
    check_golden(&rendered, "q_dv106_group.expected");
}

#[test]
fn dv106_avg_and_sum_over_pinned_coordinate() {
    let (diags, rendered) = run_query_on("prune", "SELECT AVG(REL), SUM(REL) FROM D WHERE T < 50");
    assert_eq!(codes(&diags), [Code::Dv106], "{rendered}");
    assert_eq!(diags.len(), 2, "one per degenerate call:\n{rendered}");
    check_golden(&rendered, "q_dv106_agg.expected");
}

#[test]
fn dv106_quiet_on_varying_keys_and_stored_args() {
    // T varies 1..100 and X is stored: grouping by T, MIN over the
    // pinned REL (order statistics are fine), and SUM over stored X
    // are all legitimate.
    let (diags, rendered) = run_query_on("prune", "SELECT T, MIN(REL), SUM(X) FROM D GROUP BY T");
    assert!(diags.is_empty(), "unexpected diagnostics:\n{rendered}");
}

#[test]
fn dv103_guarded_udf_filter_is_clean() {
    let (diags, rendered) = run_query("SELECT X FROM D WHERE X < 50 AND DISTANCE(X, X, X) < 5");
    assert!(diags.is_empty(), "unexpected diagnostics:\n{rendered}");
}

/// The acceptance bar: the lint suite distinguishes at least 9
/// descriptor codes, and every descriptor diagnostic carries a real
/// source span.
#[test]
fn descriptor_codes_are_spanned_and_distinct() {
    let mut seen = Vec::new();
    for name in ["dv001", "dv002", "dv003", "dv004", "dv005", "dv006", "dv007", "dv008", "dv104"] {
        let (diags, rendered) = run_descriptor(name);
        assert!(!diags.is_empty(), "{name} produced nothing");
        for d in &diags {
            assert!(!d.span.is_dummy(), "{name}: dummy span in:\n{rendered}");
        }
        seen.extend(codes(&diags));
    }
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), 9, "expected 9 distinct descriptor codes, got {seen:?}");
}

// ---------------------------------------------------------------------
// DV301–DV305: the static prune pass (`prune_query`), golden-tested the
// same way. The pass is separate from `lint_query` (the CLI merges
// them), so these fixtures exercise it in isolation.

fn run_prune(desc: &str, sql: &str) -> (Vec<Diagnostic>, String) {
    let text = fs::read_to_string(fixture(&format!("{desc}.desc"))).unwrap();
    let model = dv_descriptor::compile(&text).unwrap();
    let diags = dv_lint::prune_query(&model, sql, &UdfRegistry::with_builtins()).unwrap();
    let rendered = render_all(&diags, sql, "<query>");
    (diags, rendered)
}

#[test]
fn dv301_contradicted_extents() {
    let (diags, rendered) = run_prune("query", "SELECT X FROM D WHERE T > 1000");
    assert_eq!(codes(&diags), [Code::Dv301, Code::Dv304], "{rendered}");
    check_golden(&rendered, "q_dv301.expected");
}

#[test]
fn dv302_tautological_predicate() {
    let (diags, rendered) = run_prune("query", "SELECT X FROM D WHERE T >= 1");
    assert_eq!(codes(&diags), [Code::Dv302, Code::Dv304], "{rendered}");
    check_golden(&rendered, "q_dv302.expected");
}

#[test]
fn dv303_udf_blocks_pruning() {
    let (diags, rendered) = run_prune("query", "SELECT X FROM D WHERE SPEED(X, X, X) < 30.0");
    // The DV303 span points at the call site, past the WHERE keyword
    // the summary note anchors to.
    assert_eq!(codes(&diags), [Code::Dv304, Code::Dv303], "{rendered}");
    let d = diags.iter().find(|d| d.code == Code::Dv303).unwrap();
    let sql = "SELECT X FROM D WHERE SPEED(X, X, X) < 30.0";
    assert_eq!(&sql[d.span.start..d.span.end], "SPEED", "{rendered}");
    check_golden(&rendered, "q_dv303.expected");
}

#[test]
fn dv304_prune_summary_note() {
    let (diags, rendered) = run_prune("query", "SELECT X FROM D WHERE T < 50");
    assert_eq!(codes(&diags), [Code::Dv304], "{rendered}");
    assert!(diags.iter().all(|d| d.severity == Severity::Note), "{rendered}");
    check_golden(&rendered, "q_dv304.expected");
}

#[test]
fn dv305_never_varying_coordinate() {
    // `REL = 0:0:1` pins REL; the stored-attr conjunct keeps the whole
    // predicate undecidable so DV302 stays quiet and DV305 is isolated.
    let (diags, rendered) = run_prune("prune", "SELECT X FROM D WHERE REL = 0 AND X > 0.5");
    assert_eq!(codes(&diags), [Code::Dv304, Code::Dv305], "{rendered}");
    check_golden(&rendered, "q_dv305.expected");
}

#[test]
fn prune_codes_are_spanned_and_distinct() {
    let mut seen = Vec::new();
    for (desc, sql) in [
        ("query", "SELECT X FROM D WHERE T > 1000"),
        ("query", "SELECT X FROM D WHERE T >= 1"),
        ("query", "SELECT X FROM D WHERE SPEED(X, X, X) < 30.0"),
        ("prune", "SELECT X FROM D WHERE REL = 0 AND X > 0.5"),
    ] {
        let (diags, rendered) = run_prune(desc, sql);
        assert!(!diags.is_empty(), "{sql} produced nothing");
        for d in &diags {
            assert!(!d.span.is_dummy(), "{sql}: dummy span in:\n{rendered}");
        }
        seen.extend(codes(&diags));
    }
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), 5, "expected DV301–DV305, got {seen:?}");
}

// ---------------------------------------------------------------------
// DV401–DV405: the static cost pass (`cost_query`), golden-tested the
// same way. Budgets are supplied per test; DV405 (the bound summary
// note) fires on every boundable plan regardless of budgets.

fn run_cost(desc: &str, sql: &str, budgets: &dv_lint::CostBudgets) -> (Vec<Diagnostic>, String) {
    let text = fs::read_to_string(fixture(&format!("{desc}.desc"))).unwrap();
    let model = dv_descriptor::compile(&text).unwrap();
    let diags = dv_lint::cost_query(&model, sql, &UdfRegistry::with_builtins(), budgets).unwrap();
    let rendered = render_all(&diags, sql, "<query>");
    (diags, rendered)
}

#[test]
fn dv401_byte_budget_exceeded() {
    let budgets =
        dv_lint::CostBudgets { max_plan_bytes: Some(16), ..dv_lint::CostBudgets::default() };
    let (diags, rendered) = run_cost("query", "SELECT X FROM D WHERE T < 50", &budgets);
    assert_eq!(codes(&diags), [Code::Dv401, Code::Dv405], "{rendered}");
    check_golden(&rendered, "q_dv401.expected");
}

#[test]
fn dv402_udf_makes_cost_unboundable() {
    let (diags, rendered) = run_cost(
        "query",
        "SELECT X FROM D WHERE SPEED(X, X, X) < 30.0",
        &dv_lint::CostBudgets::default(),
    );
    let c = codes(&diags);
    assert!(c.contains(&Code::Dv402), "{rendered}");
    assert!(c.contains(&Code::Dv405), "{rendered}");
    let d = diags.iter().find(|d| d.code == Code::Dv402).unwrap();
    let sql = "SELECT X FROM D WHERE SPEED(X, X, X) < 30.0";
    assert_eq!(&sql[d.span.start..d.span.end], "SPEED", "{rendered}");
    check_golden(&rendered, "q_dv402.expected");
}

#[test]
fn dv403_link_deadline_exceeded() {
    let budgets = dv_lint::CostBudgets {
        link: Some(dv_lint::LinkBudget {
            bytes_per_sec: 1.0,
            deadline: std::time::Duration::from_millis(1),
        }),
        ..dv_lint::CostBudgets::default()
    };
    let (diags, rendered) = run_cost("query", "SELECT X FROM D WHERE T < 50", &budgets);
    assert_eq!(codes(&diags), [Code::Dv403, Code::Dv405], "{rendered}");
    check_golden(&rendered, "q_dv403.expected");
}

#[test]
fn dv404_group_memory_budget_exceeded() {
    // X is stored: its group cardinality is only bounded by the row
    // count, so a tiny memory budget must warn.
    let budgets =
        dv_lint::CostBudgets { max_group_memory: Some(64), ..dv_lint::CostBudgets::default() };
    let (diags, rendered) = run_cost("query", "SELECT X, COUNT(X) FROM D GROUP BY X", &budgets);
    assert_eq!(codes(&diags), [Code::Dv404, Code::Dv405], "{rendered}");
    check_golden(&rendered, "q_dv404.expected");
}

#[test]
fn dv405_cost_summary_note() {
    let (diags, rendered) =
        run_cost("query", "SELECT X FROM D WHERE T < 50", &dv_lint::CostBudgets::default());
    assert_eq!(codes(&diags), [Code::Dv405], "{rendered}");
    assert!(diags.iter().all(|d| d.severity == Severity::Note), "{rendered}");
    check_golden(&rendered, "q_dv405.expected");
}

#[test]
fn cost_codes_are_spanned_and_distinct() {
    let tight = dv_lint::CostBudgets {
        max_plan_bytes: Some(16),
        max_group_memory: Some(64),
        link: Some(dv_lint::LinkBudget {
            bytes_per_sec: 1.0,
            deadline: std::time::Duration::from_millis(1),
        }),
    };
    let mut seen = Vec::new();
    for sql in [
        "SELECT X FROM D WHERE T < 50",
        "SELECT X FROM D WHERE SPEED(X, X, X) < 30.0",
        "SELECT X, COUNT(X) FROM D GROUP BY X",
    ] {
        let (diags, rendered) = run_cost("query", sql, &tight);
        assert!(!diags.is_empty(), "{sql} produced nothing");
        for d in &diags {
            assert!(!d.span.is_dummy(), "{sql}: dummy span in:\n{rendered}");
        }
        seen.extend(codes(&diags));
    }
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), 5, "expected DV401–DV405, got {seen:?}");
}

/// Every shipped example descriptor is cost-clean (notes only) under
/// its canonical query and a generous shared budget — except
/// `ipars_dense.desc`, shipped intentionally grouping by a stored
/// attribute whose cardinality bound blows the memory budget (DV404).
#[test]
fn shipped_examples_cost_clean_except_dense() {
    let budgets = dv_lint::CostBudgets {
        max_plan_bytes: Some(1 << 30),
        max_group_memory: Some(64 * 1024),
        ..dv_lint::CostBudgets::default()
    };
    let canonical: &[(&str, &str)] = &[
        ("ipars_l0.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l1.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l2.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l3.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l4.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l5.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l6.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_csv.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_zstd.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("titan.desc", "SELECT S1 FROM TitanData WHERE X > 100"),
        ("ipars_pinned.desc", "SELECT SOIL FROM SnapData WHERE TIME = 5"),
        ("ipars_dense.desc", "SELECT BUCKET, AVG(SOIL) FROM DenseData GROUP BY BUCKET"),
    ];
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/descriptors");
    let mut entries: Vec<_> = fs::read_dir(&dir).unwrap().flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "desc") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let (_, sql) = canonical
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{name}: add a canonical cost query for this new example"));
        let text = fs::read_to_string(&path).unwrap();
        let model = dv_descriptor::compile(&text).unwrap();
        let diags =
            dv_lint::cost_query(&model, sql, &UdfRegistry::with_builtins(), &budgets).unwrap();
        let rendered = render_all(&diags, sql, "<query>");
        if name == "ipars_dense.desc" {
            assert!(codes(&diags).contains(&Code::Dv404), "{name}: expected DV404:\n{rendered}");
        } else {
            assert!(
                diags.iter().all(|d| d.severity == Severity::Note),
                "{name} is not cost-clean:\n{rendered}"
            );
        }
    }
}

/// Every shipped example descriptor stays DV30x-clean under its
/// canonical query — except `ipars_pinned.desc`, shipped intentionally
/// contradictory: its pinned TIME makes the canonical query statically
/// empty (DV301) over a never-varying coordinate (DV305).
#[test]
fn shipped_examples_prune_clean_except_pinned() {
    let canonical: &[(&str, &str)] = &[
        ("ipars_l0.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l1.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l2.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l3.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l4.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l5.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_l6.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_csv.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("ipars_zstd.desc", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("titan.desc", "SELECT S1 FROM TitanData WHERE X > 100"),
        ("ipars_pinned.desc", "SELECT SOIL FROM SnapData WHERE TIME > 5"),
        ("ipars_dense.desc", "SELECT SOIL FROM DenseData WHERE TIME >= 10 AND TIME <= 20"),
    ];
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/descriptors");
    let mut entries: Vec<_> = fs::read_dir(&dir).unwrap().flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "desc") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let (_, sql) = canonical
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{name}: add a canonical query for this new example"));
        let text = fs::read_to_string(&path).unwrap();
        let model = dv_descriptor::compile(&text).unwrap();
        let diags = dv_lint::prune_query(&model, sql, &UdfRegistry::with_builtins()).unwrap();
        let rendered = render_all(&diags, sql, "<query>");
        if name == "ipars_pinned.desc" {
            let c = codes(&diags);
            assert!(c.contains(&Code::Dv301), "{name}: expected DV301:\n{rendered}");
            assert!(c.contains(&Code::Dv305), "{name}: expected DV305:\n{rendered}");
        } else {
            assert!(
                diags.iter().all(|d| d.severity == Severity::Note),
                "{name} is not DV30x-clean:\n{rendered}"
            );
        }
    }
}
