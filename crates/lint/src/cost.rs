//! Cost lints DV401–DV405: the dv-cost static resource-bound
//! analysis surfaced as spanned diagnostics.
//!
//! The pass compiles the descriptor model into the same plan objects
//! the runtime executes (pure layout math — no data needs to exist on
//! disk), derives the plan's guaranteed resource bounds with
//! [`dv_layout::CostReport`], and checks them against declared
//! [`CostBudgets`]:
//!
//! * **DV401** — the bytes-issued bound (after pruning and run
//!   coalescing) exceeds the declared byte budget.
//! * **DV402** — the cost is unboundable below a full scan: a UDF or
//!   non-finite constant blocks selectivity reasoning, so no budget
//!   tighter than the un-filtered plan can ever be proven. The
//!   blocking subexpression is spanned.
//! * **DV403** — the mover wire-byte bound cannot fit through the
//!   declared link model within its deadline.
//! * **DV404** — the group-cardinality bound (aggregation reduction
//!   bound) exceeds the declared memory budget.
//! * **DV405** — informational note naming the estimate-dominating
//!   stage (scan I/O vs. data movement) with the full bound summary.
//!
//! Descriptors with `CHUNKED` layouts need their on-disk chunk index
//! to plan, so the pass degrades to silence for them rather than
//! guessing.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use dv_descriptor::DatasetModel;
use dv_layout::{CompiledDataset, CostParams, CostReport};
use dv_sql::ternary::{prune_blockers, PruneBlocker};
use dv_sql::{bind, parse, UdfRegistry};
use dv_types::Result;

use crate::diag::{Code, Diagnostic};
use crate::prune::{span_of, where_span};

/// A declared link model for DV403: the bound mover payload must fit
/// through `bytes_per_sec` within `deadline`.
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    pub bytes_per_sec: f64,
    pub deadline: Duration,
}

/// Declared budgets the cost pass checks bounds against. All optional;
/// an empty default checks nothing and only emits DV402/DV405.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBudgets {
    /// Byte budget for DV401 (checked against the bytes-issued bound).
    pub max_plan_bytes: Option<u64>,
    /// Memory budget for DV404 (checked against the group-table
    /// bound of aggregate queries).
    pub max_group_memory: Option<u64>,
    /// Link model + deadline for DV403.
    pub link: Option<LinkBudget>,
}

/// Compile and plan `sql` against a resolved model with dummy storage
/// roots (layout math only — no data needs to exist on disk),
/// returning the plan plus the cost parameters [`cost_report`] would
/// analyze it with. Returns `Ok(None)` for `CHUNKED` descriptors,
/// whose plans need the on-disk chunk index. Exposed separately so the
/// cost bench can time the bound derivation apart from planning, which
/// the admission path gets for free.
pub fn cost_plan(
    model: &DatasetModel,
    sql: &str,
    udfs: &UdfRegistry,
) -> Result<Option<(dv_layout::QueryPlan, CostParams)>> {
    let query = parse(sql)?;
    let bound = bind(&query, &model.schema, udfs)?;
    if model.files.iter().any(|f| f.is_chunked()) {
        return Ok(None);
    }
    let roots: Vec<PathBuf> = (0..model.node_count()).map(|_| PathBuf::from("/dev/null")).collect();
    let compiled = match CompiledDataset::compile(Arc::new(model.clone()), roots) {
        Ok(c) => c,
        Err(_) => return Ok(None),
    };
    let plan = compiled.plan_query(&bound)?;
    let params = CostParams::new(&dv_layout::IoOptions::default(), 1, bound.predicate.is_some());
    Ok(Some((plan, params)))
}

/// Derive the static cost report of `sql` against a resolved model,
/// planning with dummy storage roots (layout math only). Returns
/// `Ok(None)` for `CHUNKED` descriptors, whose plans need the on-disk
/// chunk index.
pub fn cost_report(
    model: &DatasetModel,
    sql: &str,
    udfs: &UdfRegistry,
) -> Result<Option<CostReport>> {
    Ok(cost_plan(model, sql, udfs)?.map(|(plan, params)| CostReport::analyze(&plan, &params)))
}

/// Lint one SQL query's static cost against a resolved model and the
/// declared budgets. Parse and bind errors are returned as `Err`;
/// findings come back as diagnostics whose spans index into `sql`.
pub fn cost_query(
    model: &DatasetModel,
    sql: &str,
    udfs: &UdfRegistry,
    budgets: &CostBudgets,
) -> Result<Vec<Diagnostic>> {
    let query = parse(sql)?;
    let bound = bind(&query, &model.schema, udfs)?;
    let mut diags = Vec::new();
    let span = where_span(sql);

    // DV402: blockers make every bound degrade to the un-filtered
    // plan — selectivity reasoning is off the table. Spanned at the
    // blocking subexpression, independent of any budget.
    if let Some(pred) = &bound.predicate {
        for blocker in prune_blockers(pred) {
            let (bspan, what) = match blocker {
                PruneBlocker::Udf { slot } => {
                    let name = udfs.name_of(slot).to_string();
                    (span_of(sql, &name), format!("UDF `{name}` is opaque to interval analysis"))
                }
                PruneBlocker::NonFiniteConst => {
                    (span, "a non-finite constant defeats interval reasoning".to_string())
                }
            };
            diags.push(
                Diagnostic::new(
                    Code::Dv402,
                    bspan,
                    format!("cost is unboundable below a full scan: {what}"),
                )
                .with_help(
                    "the static bounds assume every chunk survives pruning and every row \
                     survives the filter; budgets are checked against the full-scan cost",
                ),
            );
        }
    }

    let Some(report) = cost_report(model, sql, udfs)? else {
        diags.sort_by_key(|d| (d.span.start, d.code));
        return Ok(diags);
    };

    // DV401: the plan's post-prune byte bound against the byte budget.
    // `bytes_read` is the exact planned payload; the issued-byte bound
    // (shown in the help) additionally carries coalescing slack.
    if let Some(budget) = budgets.max_plan_bytes {
        if report.bytes_read.hi > budget {
            diags.push(
                Diagnostic::new(
                    Code::Dv401,
                    span,
                    format!(
                        "plan reads {} bytes, exceeding the {budget}-byte budget",
                        report.bytes_read.hi
                    ),
                )
                .with_help(format!(
                    "bound after pruning and coalescing: bytes read {}, issued {}; tighten the \
                     predicate over indexed coordinates or raise the budget",
                    report.bytes_read, report.bytes_issued
                )),
            );
        }
    }

    // DV403: the mover payload bound against the link model.
    if let Some(link) = budgets.link {
        let seconds = report.mover_bytes.hi as f64 / link.bytes_per_sec;
        if seconds > link.deadline.as_secs_f64() {
            diags.push(
                Diagnostic::new(
                    Code::Dv403,
                    span,
                    format!(
                        "mover bound of {} bytes needs {seconds:.1}s on the declared link, \
                         past the {:.1}s deadline",
                        report.mover_bytes.hi,
                        link.deadline.as_secs_f64()
                    ),
                )
                .with_help("project fewer columns, aggregate node-side, or relax the deadline"),
            );
        }
    }

    // DV404: the aggregation group-table bound against the memory
    // budget (only meaningful when the query groups at all).
    if let Some(budget) = budgets.max_group_memory {
        let group_mem = report.group_memory_hi();
        if group_mem > budget {
            diags.push(
                Diagnostic::new(
                    Code::Dv404,
                    span,
                    format!(
                        "group-cardinality bound of {} entries may need {group_mem} bytes, \
                         exceeding the {budget}-byte memory budget",
                        report.agg_groups.hi
                    ),
                )
                .with_help(
                    "group by coordinates with smaller hulls (the bound is \
                     min(rows, product of per-key cardinalities)) or raise the budget",
                ),
            );
        }
    }

    // DV405 (note): which stage the static estimate says dominates.
    let scan = report.bytes_issued.hi;
    let mover = report.mover_bytes.hi;
    let (stage, detail) = if scan >= mover {
        (
            "scan I/O",
            format!("bytes issued {} vs mover {}", report.bytes_issued, report.mover_bytes),
        )
    } else {
        (
            "data movement",
            format!("mover {} vs bytes issued {}", report.mover_bytes, report.bytes_issued),
        )
    };
    diags.push(
        Diagnostic::new(Code::Dv405, span, format!("static cost: {stage} dominates ({detail})"))
            .with_help(format!(
                "full bounds — rows scanned {}, selected {}, syscalls {}, sends {}, \
             agg groups {}",
                report.rows_scanned,
                report.rows_selected,
                report.read_syscalls,
                report.mover_sends,
                report.agg_groups
            )),
    );

    diags.sort_by_key(|d| (d.span.start, d.code));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn model() -> DatasetModel {
        dv_descriptor::compile(
            r#"
[S]
REL = short int
TIME = int
SOIL = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATASET "leaf" {
    DATASPACE { LOOP TIME 1:50:1 { SOIL } }
    DATA { DIR[0]/f$REL.dat REL = 0:1:1 }
  }
  DATA { DATASET leaf }
}
"#,
        )
        .unwrap()
    }

    fn lint(sql: &str, budgets: &CostBudgets) -> Vec<Diagnostic> {
        cost_query(&model(), sql, &UdfRegistry::with_builtins(), budgets).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn summary_note_always_fires() {
        let diags = lint("SELECT SOIL FROM D", &CostBudgets::default());
        assert_eq!(codes(&diags), [Code::Dv405], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Note);
        assert!(diags[0].message.contains("scan I/O dominates"), "{diags:?}");
    }

    #[test]
    fn byte_budget_fires_dv401() {
        // Full scan: 2 files x 50 TIME steps x 4 bytes = 400 bytes.
        let tight = CostBudgets { max_plan_bytes: Some(64), ..Default::default() };
        let diags = lint("SELECT SOIL FROM D", &tight);
        assert!(codes(&diags).contains(&Code::Dv401), "{diags:?}");
        let roomy = CostBudgets { max_plan_bytes: Some(1 << 30), ..Default::default() };
        let diags = lint("SELECT SOIL FROM D", &roomy);
        assert!(!codes(&diags).contains(&Code::Dv401), "{diags:?}");
        // A pruning predicate shrinks the bound under the budget.
        let diags = lint("SELECT SOIL FROM D WHERE TIME = 1", &tight);
        assert!(!codes(&diags).contains(&Code::Dv401), "{diags:?}");
    }

    #[test]
    fn udf_fires_dv402_at_call_site() {
        let sql = "SELECT SOIL FROM D WHERE SPEED(SOIL, SOIL, SOIL) < 30.0";
        let diags = lint(sql, &CostBudgets::default());
        let d = diags.iter().find(|d| d.code == Code::Dv402).expect("DV402");
        assert!(d.message.contains("SPEED"), "{d:?}");
        assert_eq!(&sql[d.span.start..d.span.end], "SPEED");
    }

    #[test]
    fn slow_link_fires_dv403() {
        let slow = CostBudgets {
            link: Some(LinkBudget { bytes_per_sec: 10.0, deadline: Duration::from_secs(1) }),
            ..Default::default()
        };
        let diags = lint("SELECT SOIL FROM D", &slow);
        assert!(codes(&diags).contains(&Code::Dv403), "{diags:?}");
        let fast = CostBudgets {
            link: Some(LinkBudget { bytes_per_sec: 1e9, deadline: Duration::from_secs(1) }),
            ..Default::default()
        };
        let diags = lint("SELECT SOIL FROM D", &fast);
        assert!(!codes(&diags).contains(&Code::Dv403), "{diags:?}");
    }

    #[test]
    fn group_bound_fires_dv404_only_for_unbounded_keys() {
        let tiny = CostBudgets { max_group_memory: Some(128), ..Default::default() };
        // Grouping by a stored attribute: bound = rows, blows 128 B.
        let diags = lint("SELECT SOIL, COUNT(*) FROM D GROUP BY SOIL", &tiny);
        assert!(codes(&diags).contains(&Code::Dv404), "{diags:?}");
        // Grouping by the coordinate: bound = one group per AFC.
        let diags = lint("SELECT REL, COUNT(*) FROM D GROUP BY REL", &tiny);
        assert!(!codes(&diags).contains(&Code::Dv404), "{diags:?}");
        // No GROUP BY: never fires.
        let diags = lint("SELECT SOIL FROM D", &tiny);
        assert!(!codes(&diags).contains(&Code::Dv404), "{diags:?}");
    }

    #[test]
    fn chunked_models_stay_silent_except_blockers() {
        let m = model();
        // No chunked layout in the test model; simulate by asking for
        // a report and asserting it exists (the silence path is
        // covered by the titan golden fixture).
        let r = cost_report(&m, "SELECT SOIL FROM D", &UdfRegistry::with_builtins()).unwrap();
        assert!(r.is_some());
    }
}
