//! `dv-verify` — semantic verification of layout descriptors by
//! abstract interpretation over a symbolic affine/interval domain.
//!
//! Where `lint_descriptor` pattern-matches the AST for likely
//! mistakes, this pass *decides* four properties of the layout's
//! byte-extent maps and either proves them or refutes them with a
//! concrete counterexample (file, loop indices, byte range):
//!
//! 1. **No overlap** (DV201) — no two DATA items claim the same byte
//!    of one file.
//! 2. **In bounds** (DV202) — every access lands inside the declared
//!    or observed file size.
//! 3. **Alignment** (DV203) — every file of a query-time group yields
//!    the same `num_rows` per shared loop variable.
//! 4. **Liveness** (DV204) — no DATASPACE region is dead.
//!
//! [`verify_query`] additionally folds SQL range analysis against the
//! implicit-attribute loop bounds (DV205): predicates that are
//! satisfiable in isolation but provably empty against the layout.
//!
//! A descriptor with no refutations and no undecided properties earns
//! a [`dv_layout::Certificate::Safe`] certificate, which the executor
//! uses to skip per-record bounds re-checks in the columnar decode
//! hot loop; see `DESIGN.md` §9.

pub mod align;
pub mod domain;
pub mod extent;
pub mod overlap;
pub mod report;

use std::collections::HashMap;

use dv_descriptor::{parse_descriptor, resolve, DatasetModel};
use dv_sql::analysis::attribute_ranges;
use dv_sql::{bind, parse, UdfRegistry};
use dv_types::Result;

pub use report::{Counterexample, Emitted, Finding, VerifyReport};

use crate::diag::{Code, Diagnostic};

/// Observed file sizes keyed by `(node name, path relative to the
/// node's storage root)`.
pub type ObservedSizes = HashMap<(String, String), u64>;

/// Verify descriptor text. With `sizes`, bounds are checked against
/// the observed file sizes; without, against the declared
/// (layout-implied) sizes, which hold by construction.
pub fn verify_descriptor(text: &str, sizes: Option<&ObservedSizes>) -> Result<VerifyReport> {
    let ast = parse_descriptor(text)?;
    let resolved = resolve(&ast);
    let mut report = verify_ast(&ast, resolved.as_ref().ok(), sizes);
    if let Err(e) = &resolved {
        // The resolver refused the descriptor. If the verifier already
        // refuted it (overlap / dead region) the error is explained;
        // otherwise the model-level properties are undecidable.
        if report.errors() == 0 {
            report.unproven.push(format!("descriptor does not resolve: {e}"));
        }
    }
    Ok(report)
}

/// Verify a parsed descriptor against an optional resolved model.
pub fn verify_ast(
    ast: &dv_descriptor::ast::DescriptorAst,
    model: Option<&DatasetModel>,
    sizes: Option<&ObservedSizes>,
) -> VerifyReport {
    let mut elab = extent::elaborate(ast);
    let mut findings = extent::check_dead_regions(&elab.files);
    findings.extend(overlap::check_overlaps(&elab.files, &mut elab.unproven));
    if let Some(model) = model {
        if let Some(sizes) = sizes {
            findings.extend(extent::check_bounds(&elab.files, sizes, &mut elab.unproven));
        }
        findings.extend(align::check_alignment(model, &elab.files));
    }
    findings.sort_by_key(|f| (f.diag.span.start, f.diag.code));
    VerifyReport { findings, unproven: elab.unproven }
}

/// Span of the WHERE clause (or the whole query when there is none).
fn where_span(sql: &str) -> dv_types::Span {
    match sql.to_ascii_uppercase().find("WHERE") {
        Some(p) => dv_types::Span::new(p, sql.trim_end().len().max(p + 5)),
        None => dv_types::Span::new(0, sql.trim_end().len().max(1)),
    }
}

/// DV205: cross-check a query's derived attribute ranges against the
/// implicit-attribute extents of the layout. A predicate that can
/// never intersect any loop's value range is compile-time empty.
pub fn verify_query(model: &DatasetModel, sql: &str, udfs: &UdfRegistry) -> Result<Vec<Finding>> {
    let query = parse(sql)?;
    let bound = bind(&query, &model.schema, udfs)?;
    let mut findings = Vec::new();
    let Some(pred) = &bound.predicate else { return Ok(findings) };
    let span = where_span(sql);

    for (idx, set) in &attribute_ranges(pred) {
        let name = &model.schema.attr_at(*idx).name;
        if set.is_empty() {
            // Unsatisfiable regardless of the layout (DV101 covers the
            // lint view; the verifier refutes it outright).
            findings.push(Finding {
                diag: Diagnostic::new(
                    Code::Dv205,
                    span,
                    format!("predicate is provably empty: `{name}` is constrained to an empty set"),
                )
                .with_help("the WHERE clause contradicts itself; no row can ever satisfy it"),
                counterexample: None,
            });
            continue;
        }
        // Hull of the implicit extents of `name` across all files. An
        // attribute with no extents anywhere is stored data, whose
        // values the layout does not bound.
        let mut hull: Option<(i64, i64)> = None;
        for f in &model.files {
            if let Some(e) = f.extents.get(name) {
                let (lo, hi) = e.hull();
                hull = Some(match hull {
                    None => (lo, hi),
                    Some((l, h)) => (l.min(lo), h.max(hi)),
                });
            }
        }
        let Some((lo, hi)) = hull else { continue };
        if !set.overlaps_closed(lo as f64, hi as f64) {
            let want = set
                .bounds()
                .map(|(a, b)| format!("[{a}, {b}]"))
                .unwrap_or_else(|| "an empty set".to_string());
            findings.push(Finding {
                diag: Diagnostic::new(
                    Code::Dv205,
                    span,
                    format!(
                        "predicate is provably empty: it requires `{name}` within {want} but \
                         the layout's loop bounds imply {name} ∈ [{lo}, {hi}]"
                    ),
                )
                .with_help(format!(
                    "`{name}` is an implicit attribute: its values come from LOOP/binding \
                     ranges, so no stored file can ever satisfy this predicate"
                )),
                counterexample: None,
            });
        }
    }
    findings.sort_by_key(|f| (f.diag.span.start, f.diag.code));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_layout::Certificate;

    const CLEAN: &str = r#"
[S]
T = int
X = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATAINDEX { T }
  DATA { DATASET leaf }
  DATASET "leaf" {
    DATASPACE { LOOP T 1:100:1 { X } }
    DATA { DIR[0]/f$R R = 0:1:1 }
  }
}
"#;

    #[test]
    fn clean_descriptor_earns_safe() {
        let r = verify_descriptor(CLEAN, None).unwrap();
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.unproven.is_empty(), "{:?}", r.unproven);
        assert_eq!(r.certificate(), Certificate::Safe);
    }

    #[test]
    fn colliding_paths_refute_even_though_resolver_rejects() {
        let text = CLEAN.replace("DIR[0]/f$R", "DIR[0]/f");
        let r = verify_descriptor(&text, None).unwrap();
        assert_eq!(r.certificate(), Certificate::Refuted);
        assert!(r.findings.iter().any(|f| f.diag.code == Code::Dv201));
    }

    #[test]
    fn chunked_layout_is_unverified() {
        let text = CLEAN.replace(
            "DATASPACE { LOOP T 1:100:1 { X } }",
            "DATASPACE { CHUNKED INDEXFILE \"DIR[0]/idx\" { T X } }",
        );
        let r = verify_descriptor(&text, None).unwrap();
        assert_eq!(r.certificate(), Certificate::Unverified);
        assert!(!r.unproven.is_empty());
    }

    #[test]
    fn query_outside_loop_bounds_is_dv205() {
        let model = dv_descriptor::compile(CLEAN).unwrap();
        let udfs = UdfRegistry::new();
        let f = verify_query(&model, "SELECT X FROM D WHERE T > 1000", &udfs).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].diag.code, Code::Dv205);
        assert!(f[0].diag.message.contains("[1, 100]"), "{}", f[0].diag.message);
        // In-range predicates are clean.
        let f = verify_query(&model, "SELECT X FROM D WHERE T > 50", &udfs).unwrap();
        assert!(f.is_empty());
        // Stored (non-implicit) attributes are never bounded.
        let f = verify_query(&model, "SELECT X FROM D WHERE X > 1e30", &udfs).unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn self_contradictory_predicate_is_dv205() {
        let model = dv_descriptor::compile(CLEAN).unwrap();
        let udfs = UdfRegistry::new();
        let f = verify_query(&model, "SELECT X FROM D WHERE T > 10 AND T < 5", &udfs).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].diag.code, Code::Dv205);
    }
}
