//! DV201: proof or refutation that no two DATA items claim the same
//! byte of one file.
//!
//! Within a single elaborated file, sibling regions are disjoint by
//! construction (the elaboration cursor only moves forward), so the
//! only way to overlap is for two *bindings* (or two expansions of one
//! binding) to render the same path — the case the resolver rejects
//! with an unspanned "file produced twice" error. Here we instead
//! refute it with a spanned diagnostic carrying the first byte both
//! layouts claim.

use std::collections::BTreeMap;

use super::domain::Overlap;
use super::extent::PseudoFile;
use super::report::{Counterexample, Finding};
use crate::diag::{Code, Diagnostic};

/// Membership-test budget per file pair.
const OVERLAP_BUDGET: u64 = 100_000;

/// Check every pair of pseudo-files that lands on the same
/// `(node, path)` for claimed-byte overlap.
pub fn check_overlaps(files: &[PseudoFile], unproven: &mut Vec<String>) -> Vec<Finding> {
    let mut by_path: BTreeMap<(&str, &str), Vec<&PseudoFile>> = BTreeMap::new();
    for f in files {
        by_path.entry((f.node.as_str(), f.rel_path.as_str())).or_default().push(f);
    }
    let mut findings = Vec::new();
    for ((_, path), group) in by_path {
        if group.len() < 2 {
            continue;
        }
        for (i, a) in group.iter().enumerate() {
            for b in group.iter().skip(i + 1) {
                match witness(a, b) {
                    Some(Ok(f)) => findings.push(f),
                    Some(Err(reason)) => unproven.push(reason),
                    None => {
                        // Proven disjoint — but the same path holding
                        // two interleaved layouts is still beyond what
                        // the extractor models; report the collision
                        // as unproven rather than certify it.
                        unproven.push(format!(
                            "`{path}` is produced by two DATA items whose regions interleave \
                             without overlapping; the resolver rejects this layout"
                        ));
                    }
                }
            }
        }
    }
    findings
}

/// First overlapping byte between any live region of `a` and any of
/// `b`, as a finding. `None` = proven disjoint, `Some(Err)` = budget
/// or overflow stopped the proof.
fn witness(a: &PseudoFile, b: &PseudoFile) -> Option<Result<Finding, String>> {
    for ra in &a.regions {
        for rb in &b.regions {
            if ra.end().is_none() || rb.end().is_none() {
                return Some(Err(format!(
                    "overlap check for `{}`: extent arithmetic overflows u64",
                    a.rel_path
                )));
            }
            match ra.overlaps(rb, OVERLAP_BUDGET) {
                Overlap::Disjoint => continue,
                Overlap::Unknown => {
                    return Some(Err(format!(
                        "overlap check for `{}` exceeded its enumeration budget",
                        a.rel_path
                    )))
                }
                Overlap::Witness { byte, a_idx, b_idx } => {
                    let a_at = ra.assignment(&a_idx);
                    let b_at = rb.assignment(&b_idx);
                    let fmt = |assign: &[(String, i64)]| {
                        if assign.is_empty() {
                            String::new()
                        } else {
                            format!(
                                " at {}",
                                assign
                                    .iter()
                                    .map(|(v, x)| format!("{v}={x}"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        }
                    };
                    let off = ra.offset_of(&a_idx).unwrap_or(byte);
                    let diag = Diagnostic::new(
                        Code::Dv201,
                        b.binding_span,
                        format!(
                            "overlapping DATA items: datasets \"{}\" and \"{}\" both produce \
                             `{}`; byte {byte} belongs to record {{ {} }}{} and to record \
                             {{ {} }}{}",
                            a.dataset,
                            b.dataset,
                            a.rel_path,
                            ra.attrs.join(" "),
                            fmt(&a_at),
                            rb.attrs.join(" "),
                            fmt(&b_at),
                        ),
                    )
                    .with_help(
                        "two layouts would decode the same bytes as different records; make the \
                         file templates disjoint (e.g. include every binding variable in the \
                         name)",
                    );
                    return Some(Ok(Finding {
                        diag,
                        counterexample: Some(Counterexample {
                            file: a.rel_path.clone(),
                            indices: a_at,
                            byte_lo: off,
                            byte_hi: off + ra.row_bytes,
                        }),
                    }));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::extent::elaborate;
    use dv_descriptor::parse_descriptor;

    #[test]
    fn unused_binding_var_collides_paths() {
        // R never appears in the template, so both expansions render
        // the same path and their layouts overlap byte-for-byte.
        let text = r#"
[S]
T = int
X = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATA { DATASET leaf }
  DATASET "leaf" {
    DATASPACE { LOOP T 1:4:1 { X } }
    DATA { DIR[0]/f.dat R = 0:1:1 }
  }
}
"#;
        let ast = parse_descriptor(text).unwrap();
        let e = elaborate(&ast);
        assert_eq!(e.files.len(), 2);
        let mut unproven = Vec::new();
        let findings = check_overlaps(&e.files, &mut unproven);
        assert_eq!(findings.len(), 1, "{unproven:?}");
        let f = &findings[0];
        assert_eq!(f.diag.code, Code::Dv201);
        assert!(!f.diag.span.is_dummy());
        let ce = f.counterexample.as_ref().unwrap();
        assert_eq!(ce.file, "d/f.dat");
        assert_eq!(ce.byte_lo, 0);
        assert!(f.diag.message.contains("byte 0"), "{}", f.diag.message);
    }

    #[test]
    fn distinct_paths_are_clean() {
        let text = r#"
[S]
T = int
X = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATA { DATASET leaf }
  DATASET "leaf" {
    DATASPACE { LOOP T 1:4:1 { X } }
    DATA { DIR[0]/f$R R = 0:1:1 }
  }
}
"#;
        let ast = parse_descriptor(text).unwrap();
        let e = elaborate(&ast);
        let mut unproven = Vec::new();
        assert!(check_overlaps(&e.files, &mut unproven).is_empty());
        assert!(unproven.is_empty());
    }
}
