//! The symbolic affine/interval domain of the verifier.
//!
//! Every DATA item of a dense (non-`CHUNKED`) layout elaborates to an
//! [`AffineExtent`]: a closed-form byte-extent map
//!
//! ```text
//! offset(i_1, ..., i_n) = base + Σ i_j · stride_j        0 <= i_j < count_j
//! ```
//!
//! over the enclosing loop nest, describing `row_bytes`-wide records.
//! Because loop strides are *properly nested* — each loop's stride is
//! the byte size of its whole body, which contains everything the
//! inner dimensions can address — greedy per-dimension division is an
//! exact membership test, and lexicographic index order equals
//! ascending byte order. That is what lets the verifier prove or
//! refute overlap and bounds questions without enumerating records.
//!
//! All arithmetic is checked `u64`; overflow degrades a proof to
//! "unproven" rather than silently wrapping.

use dv_types::Span;

/// One loop dimension of an extent map, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    /// Loop variable (upper-cased).
    pub var: String,
    /// First value of the variable.
    pub lo: i64,
    /// Increment per iteration (>= 1 for live regions).
    pub step: i64,
    /// Number of iterations (0 marks a dead dimension).
    pub count: u64,
    /// Bytes between consecutive iterations — the byte size of the
    /// loop body, so strides are properly nested by construction.
    pub stride: u64,
    /// Span of the `LOOP var lo:hi:step` header.
    pub span: Span,
}

impl Dim {
    /// Variable value at iteration `idx`.
    pub fn value_at(&self, idx: u64) -> i64 {
        self.lo + self.step * idx as i64
    }
}

/// A closed-form byte-extent map for one stored record run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineExtent {
    /// Absolute byte offset of record (0, ..., 0).
    pub base: u64,
    /// Enclosing loop dimensions, outermost first. Strides are
    /// non-increasing and properly nested.
    pub dims: Vec<Dim>,
    /// Width of one record in bytes (> 0).
    pub row_bytes: u64,
    /// Attribute names of the record, for messages.
    pub attrs: Vec<String>,
    /// Span of the attribute run in the descriptor.
    pub span: Span,
}

/// Outcome of an overlap query between two extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Overlap {
    /// Proven: no byte is claimed by both extents.
    Disjoint,
    /// Refuted: `byte` lies in record `a_idx` of the first extent and
    /// record `b_idx` of the second.
    Witness { byte: u64, a_idx: Vec<u64>, b_idx: Vec<u64> },
    /// The enumeration budget ran out before either answer.
    Unknown,
}

impl AffineExtent {
    /// Total number of records (0 when any dimension is dead).
    pub fn rows(&self) -> u64 {
        self.dims.iter().fold(1u64, |acc, d| acc.saturating_mul(d.count))
    }

    /// True when some dimension iterates zero times.
    pub fn is_dead(&self) -> bool {
        self.dims.iter().any(|d| d.count == 0)
    }

    /// Byte offset of the record at `idx` (one index per dimension).
    pub fn offset_of(&self, idx: &[u64]) -> Option<u64> {
        let mut off = self.base;
        for (d, i) in self.dims.iter().zip(idx) {
            off = off.checked_add(i.checked_mul(d.stride)?)?;
        }
        Some(off)
    }

    /// One-past-the-end byte of the extent: the end of the last record.
    /// `None` for dead extents or on overflow.
    pub fn end(&self) -> Option<u64> {
        if self.is_dead() {
            return None;
        }
        let last: Vec<u64> = self.dims.iter().map(|d| d.count - 1).collect();
        self.offset_of(&last)?.checked_add(self.row_bytes)
    }

    /// Exact membership: which record (if any) contains `byte`?
    /// Valid because strides are properly nested: the greedy quotient
    /// per dimension is the only candidate index.
    pub fn record_containing(&self, byte: u64) -> Option<Vec<u64>> {
        if self.is_dead() || byte < self.base {
            return None;
        }
        let mut rel = byte - self.base;
        let mut idx = Vec::with_capacity(self.dims.len());
        for d in &self.dims {
            let i = rel / d.stride;
            if i >= d.count {
                return None;
            }
            rel -= i * d.stride;
            idx.push(i);
        }
        if rel < self.row_bytes {
            Some(idx)
        } else {
            None
        }
    }

    /// First record (in ascending byte order) whose *end* exceeds
    /// `limit` — the witness for an out-of-bounds refutation against a
    /// `limit`-byte file. `None` when every record fits.
    pub fn first_record_past(&self, limit: u64) -> Option<Vec<u64>> {
        if self.is_dead() {
            return None;
        }
        // record end > limit  <=>  offset >= limit + 1 - row_bytes.
        let t = (limit + 1).saturating_sub(self.row_bytes);
        if self.base >= t {
            return Some(vec![0; self.dims.len()]);
        }
        let mut target = t - self.base;
        // Max contribution of dimensions j.. for each suffix.
        let mut max_rest = vec![0u64; self.dims.len() + 1];
        for (j, d) in self.dims.iter().enumerate().rev() {
            max_rest[j] = max_rest[j + 1].checked_add((d.count - 1).checked_mul(d.stride)?)?;
        }
        let mut idx = Vec::with_capacity(self.dims.len());
        for (j, d) in self.dims.iter().enumerate() {
            // Smallest index such that the remaining dimensions can
            // still reach the target.
            let need = target.saturating_sub(max_rest[j + 1]);
            let i = need.div_ceil(d.stride);
            if i >= d.count {
                return None;
            }
            target = target.saturating_sub(i * d.stride);
            idx.push(i);
        }
        Some(idx)
    }

    /// Lexicographic successor of `idx` (ascending byte order). False
    /// when `idx` was the last record.
    pub fn next_index(&self, idx: &mut [u64]) -> bool {
        for j in (0..self.dims.len()).rev() {
            if idx[j] + 1 < self.dims[j].count {
                idx[j] += 1;
                for k in idx.iter_mut().skip(j + 1) {
                    *k = 0;
                }
                return true;
            }
        }
        false
    }

    /// Does any byte of this extent also belong to `other`? Walks this
    /// extent's records inside the hull intersection (ascending byte
    /// order) and membership-tests each byte against `other`, spending
    /// at most `budget` membership tests.
    pub fn overlaps(&self, other: &AffineExtent, mut budget: u64) -> Overlap {
        let (Some(a_end), Some(b_end)) = (self.end(), other.end()) else {
            // A dead extent claims no bytes; overflow is caught by the
            // caller via `end()` before reaching here.
            return Overlap::Disjoint;
        };
        let lo = self.base.max(other.base);
        let hi = a_end.min(b_end);
        if lo >= hi {
            return Overlap::Disjoint;
        }
        // First of our records that reaches past `lo`.
        let Some(mut idx) = self.first_record_past(lo) else {
            return Overlap::Disjoint;
        };
        loop {
            let Some(off) = self.offset_of(&idx) else { return Overlap::Unknown };
            if off >= hi {
                return Overlap::Disjoint;
            }
            for byte in off..off + self.row_bytes {
                if budget == 0 {
                    return Overlap::Unknown;
                }
                budget -= 1;
                if let Some(b_idx) = other.record_containing(byte) {
                    return Overlap::Witness { byte, a_idx: idx.clone(), b_idx };
                }
            }
            if !self.next_index(&mut idx) {
                return Overlap::Disjoint;
            }
        }
    }

    /// Variable assignment of the record at `idx`, for counterexample
    /// rendering.
    pub fn assignment(&self, idx: &[u64]) -> Vec<(String, i64)> {
        self.dims.iter().zip(idx).map(|(d, i)| (d.var.clone(), d.value_at(*i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// LOOP T 1:3:1 { LOOP G 0:1:1 { 8-byte record } }  at base 16.
    fn nest() -> AffineExtent {
        AffineExtent {
            base: 16,
            dims: vec![
                Dim { var: "T".into(), lo: 1, step: 1, count: 3, stride: 16, span: Span::DUMMY },
                Dim { var: "G".into(), lo: 0, step: 1, count: 2, stride: 8, span: Span::DUMMY },
            ],
            row_bytes: 8,
            attrs: vec!["V".into()],
            span: Span::DUMMY,
        }
    }

    #[test]
    fn offsets_and_end() {
        let e = nest();
        assert_eq!(e.rows(), 6);
        assert_eq!(e.offset_of(&[0, 0]), Some(16));
        assert_eq!(e.offset_of(&[2, 1]), Some(16 + 2 * 16 + 8));
        assert_eq!(e.end(), Some(16 + 2 * 16 + 8 + 8));
    }

    #[test]
    fn membership_is_exact() {
        let e = nest();
        assert_eq!(e.record_containing(15), None);
        assert_eq!(e.record_containing(16), Some(vec![0, 0]));
        assert_eq!(e.record_containing(23), Some(vec![0, 0]));
        assert_eq!(e.record_containing(24), Some(vec![0, 1]));
        assert_eq!(e.record_containing(e.end().unwrap()), None);
    }

    #[test]
    fn first_record_past_finds_oob_witness() {
        let e = nest();
        // A 40-byte file truncates record (T=2, G=1) at offset 40.
        assert_eq!(e.first_record_past(40), Some(vec![1, 1]));
        assert_eq!(e.offset_of(&[1, 1]), Some(40));
        // Everything fits in a file of exactly end() bytes.
        assert_eq!(e.first_record_past(e.end().unwrap()), None);
        // Even the first record does not fit in 17 bytes.
        assert_eq!(e.first_record_past(17), Some(vec![0, 0]));
    }

    #[test]
    fn interleaved_extents_do_not_overlap() {
        // Two 4-byte fields of a 8-byte record: A at offset 0, B at 4.
        let a = AffineExtent {
            base: 0,
            dims: vec![Dim {
                var: "T".into(),
                lo: 0,
                step: 1,
                count: 4,
                stride: 8,
                span: Span::DUMMY,
            }],
            row_bytes: 4,
            attrs: vec!["A".into()],
            span: Span::DUMMY,
        };
        let mut b = a.clone();
        b.base = 4;
        assert_eq!(a.overlaps(&b, 1000), Overlap::Disjoint);
        // Shift B to offset 2: every record straddles an A record.
        b.base = 2;
        match a.overlaps(&b, 1000) {
            Overlap::Witness { byte, a_idx, b_idx } => {
                assert_eq!(byte, 2);
                assert_eq!(a_idx, vec![0]);
                assert_eq!(b_idx, vec![0]);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn identical_extents_overlap_at_base() {
        let e = nest();
        match e.overlaps(&e.clone(), 1000) {
            Overlap::Witness { byte, .. } => assert_eq!(byte, 16),
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        let e = nest();
        let mut far = e.clone();
        far.base = 17; // interleaves oddly with e
        assert_eq!(e.overlaps(&far, 0), Overlap::Unknown);
    }

    #[test]
    fn assignment_maps_indices_to_values() {
        let e = nest();
        assert_eq!(e.assignment(&[2, 1]), vec![("T".to_string(), 3), ("G".to_string(), 1)]);
    }
}
