//! Verification findings, certificates, and the machine-readable
//! report serializers shared by `datavirt lint --format json` and
//! `datavirt verify --format json|sarif`.
//!
//! Serialization is hand-formatted (the workspace carries no JSON
//! dependency); [`json_escape`] covers the strings we emit.

use dv_layout::Certificate;

use crate::diag::{Diagnostic, Severity};

/// A concrete instantiation refuting a property: the file, the loop
/// indices, and the byte range of the offending record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// File path relative to the node's storage root.
    pub file: String,
    /// `(variable, value)` assignment selecting the record; empty for
    /// region-level witnesses.
    pub indices: Vec<(String, i64)>,
    /// Start byte of the refuting range.
    pub byte_lo: u64,
    /// End byte (exclusive); equal to `byte_lo` for empty regions.
    pub byte_hi: u64,
}

/// One verification finding: a diagnostic plus its counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub diag: Diagnostic,
    pub counterexample: Option<Counterexample>,
}

/// The verdict of a verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Refutations (and warnings), ordered by source position.
    pub findings: Vec<Finding>,
    /// Properties the verifier could not decide, with reasons. A
    /// non-empty list blocks the `Safe` certificate.
    pub unproven: Vec<String>,
}

impl VerifyReport {
    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.diag.severity == Severity::Error).count()
    }

    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.diag.severity == Severity::Warning).count()
    }

    /// The certificate this report earns: any error refutes; undecided
    /// properties leave the descriptor unverified; otherwise safe.
    pub fn certificate(&self) -> Certificate {
        if self.errors() > 0 {
            Certificate::Refuted
        } else if !self.unproven.is_empty() {
            Certificate::Unverified
        } else {
            Certificate::Safe
        }
    }
}

/// One diagnostic flattened for serialization: resolved position plus
/// an optional counterexample. Built by the caller so lint output
/// (no counterexamples, query or descriptor origin) and verify output
/// share one schema.
#[derive(Debug, Clone)]
pub struct Emitted<'a> {
    pub diag: &'a Diagnostic,
    pub counterexample: Option<&'a Counterexample>,
    /// Name of the source the span indexes into.
    pub origin: &'a str,
    pub line: usize,
    pub col: usize,
}

impl<'a> Emitted<'a> {
    /// Resolve a diagnostic's span against its source text.
    pub fn new(diag: &'a Diagnostic, source: &str, origin: &'a str) -> Emitted<'a> {
        let (line, col) = diag.span.line_col(source);
        Emitted { diag, counterexample: None, origin, line, col }
    }

    pub fn with_counterexample(mut self, ce: Option<&'a Counterexample>) -> Emitted<'a> {
        self.counterexample = ce;
        self
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_diag_json(out: &mut String, e: &Emitted<'_>, indent: &str) {
    out.push_str(&format!("{indent}{{\n"));
    out.push_str(&format!("{indent}  \"code\": \"{}\",\n", e.diag.code));
    out.push_str(&format!("{indent}  \"severity\": \"{}\",\n", e.diag.severity));
    out.push_str(&format!(
        "{indent}  \"origin\": \"{}\",\n{indent}  \"line\": {},\n{indent}  \"col\": {},\n",
        json_escape(e.origin),
        e.line,
        e.col
    ));
    out.push_str(&format!("{indent}  \"message\": \"{}\"", json_escape(&e.diag.message)));
    if let Some(h) = &e.diag.help {
        out.push_str(&format!(",\n{indent}  \"help\": \"{}\"", json_escape(h)));
    }
    if let Some(ce) = e.counterexample {
        out.push_str(&format!(",\n{indent}  \"counterexample\": {{\n"));
        out.push_str(&format!("{indent}    \"file\": \"{}\",\n", json_escape(&ce.file)));
        let idx = ce
            .indices
            .iter()
            .map(|(v, x)| format!("{{\"var\": \"{}\", \"value\": {x}}}", json_escape(v)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("{indent}    \"indices\": [{idx}],\n"));
        out.push_str(&format!(
            "{indent}    \"byte_lo\": {},\n{indent}    \"byte_hi\": {}\n{indent}  }}",
            ce.byte_lo, ce.byte_hi
        ));
    }
    out.push_str(&format!("\n{indent}}}"));
}

/// The one machine-readable schema for lint and verify output:
/// `{"tool", "certificate"?, "diagnostics": [...], "unproven": [...]}`.
pub fn to_json(
    items: &[Emitted<'_>],
    certificate: Option<Certificate>,
    unproven: &[String],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"dv-lint\",\n");
    if let Some(c) = certificate {
        out.push_str(&format!("  \"certificate\": \"{c}\",\n"));
    }
    out.push_str("  \"diagnostics\": [\n");
    for (i, e) in items.iter().enumerate() {
        push_diag_json(&mut out, e, "    ");
        if i + 1 < items.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"unproven\": [");
    let reasons =
        unproven.iter().map(|r| format!("\"{}\"", json_escape(r))).collect::<Vec<_>>().join(", ");
    out.push_str(&reasons);
    out.push_str("]\n}\n");
    out
}

/// Minimal SARIF 2.1.0 document: rules from the code registry, one
/// result per diagnostic.
pub fn to_sarif(items: &[Emitted<'_>]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"dv-lint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, info) in crate::CODE_REGISTRY.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            info.name,
            json_escape(info.summary),
            if i + 1 < crate::CODE_REGISTRY.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, e) in items.iter().enumerate() {
        let level = match e.diag.severity {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        let mut text = e.diag.message.clone();
        if let Some(ce) = e.counterexample {
            text.push_str(&format!(
                " [counterexample: file `{}` bytes {}..{}]",
                ce.file, ce.byte_lo, ce.byte_hi
            ));
        }
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", e.diag.code));
        out.push_str(&format!("          \"level\": \"{level}\",\n"));
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            json_escape(&text)
        ));
        out.push_str("          \"locations\": [\n");
        out.push_str("            {\"physicalLocation\": {\n");
        out.push_str(&format!(
            "              \"artifactLocation\": {{\"uri\": \"{}\"}},\n",
            json_escape(e.origin)
        ));
        out.push_str(&format!(
            "              \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n",
            e.line, e.col
        ));
        out.push_str("            }}\n          ]\n");
        out.push_str(&format!("        }}{}\n", if i + 1 < items.len() { "," } else { "" }));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use dv_types::Span;

    fn sample() -> (Diagnostic, Counterexample) {
        let d = Diagnostic::new(Code::Dv202, Span::new(5, 10), "record past \"EOF\"")
            .with_help("shorten it");
        let ce = Counterexample {
            file: "d/f0".into(),
            indices: vec![("T".into(), 3)],
            byte_lo: 16,
            byte_hi: 24,
        };
        (d, ce)
    }

    #[test]
    fn json_includes_counterexample_and_certificate() {
        let (d, ce) = sample();
        let src = "0123\n56789\n";
        let e = Emitted::new(&d, src, "x.desc").with_counterexample(Some(&ce));
        let j = to_json(&[e], Some(Certificate::Refuted), &["chunked".into()]);
        assert!(j.contains("\"certificate\": \"refuted\""), "{j}");
        assert!(j.contains("\"code\": \"DV202\""), "{j}");
        assert!(j.contains("\"byte_lo\": 16"), "{j}");
        assert!(j.contains("{\"var\": \"T\", \"value\": 3}"), "{j}");
        assert!(j.contains("record past \\\"EOF\\\""), "{j}");
        assert!(j.contains("\"unproven\": [\"chunked\"]"), "{j}");
        assert!(j.contains("\"line\": 2"), "{j}");
    }

    #[test]
    fn sarif_has_rules_and_results() {
        let (d, ce) = sample();
        let e = Emitted::new(&d, "0123456789", "x.desc").with_counterexample(Some(&ce));
        let s = to_sarif(&[e]);
        assert!(s.contains("\"version\": \"2.1.0\""), "{s}");
        assert!(s.contains("\"id\": \"DV201\""), "{s}");
        assert!(s.contains("\"ruleId\": \"DV202\""), "{s}");
        assert!(s.contains("\"level\": \"error\""), "{s}");
        assert!(s.contains("bytes 16..24"), "{s}");
    }

    #[test]
    fn report_certificates() {
        let mut r = VerifyReport::default();
        assert_eq!(r.certificate(), Certificate::Safe);
        r.unproven.push("chunked".into());
        assert_eq!(r.certificate(), Certificate::Unverified);
        let (d, _) = sample();
        r.findings.push(Finding { diag: d, counterexample: None });
        assert_eq!(r.certificate(), Certificate::Refuted);
        assert_eq!(r.errors(), 1);
    }
}
