//! DV203: proof or refutation of AFC alignment — every file of a
//! `Find_File_Groups` group must yield the same number of rows per
//! shared loop variable.
//!
//! The lint pass's DV008 warns about the same situation; the verifier
//! upgrades it to a refutation with a counterexample: the first
//! iteration present in one file of the group but not the other, and
//! the byte range of the orphaned record.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dv_descriptor::model::VarExtent;
use dv_descriptor::DatasetModel;
use dv_layout::afc::WorkingSet;
use dv_layout::groups::find_file_groups;
use dv_types::Span;

use super::extent::PseudoFile;
use super::report::{Counterexample, Finding};
use crate::diag::{Code, Diagnostic};

fn range_iterations(e: &VarExtent) -> Option<i64> {
    match e {
        VarExtent::Point(_) => None,
        VarExtent::Range { lo, hi, step } if *step > 0 && lo <= hi => Some((hi - lo) / step + 1),
        VarExtent::Range { .. } => None,
    }
}

/// Span of the LOOP over `var` in dataset `dataset`, found via the
/// elaborated extents (which carry loop-header spans).
fn loop_span(files: &[PseudoFile], dataset: &str, var: &str) -> Span {
    files
        .iter()
        .filter(|f| f.dataset == dataset)
        .flat_map(|f| f.regions.iter().chain(f.dead.iter()))
        .flat_map(|r| r.dims.iter())
        .find(|d| d.var == var)
        .map(|d| d.span)
        .unwrap_or(Span::DUMMY)
}

/// Check alignment of every query-time file group of the model.
pub fn check_alignment(model: &DatasetModel, files: &[PseudoFile]) -> Vec<Finding> {
    // Pseudo-files by (node name, rel_path), for counterexample bytes.
    let by_path: BTreeMap<(&str, &str), &PseudoFile> =
        files.iter().map(|f| ((f.node.as_str(), f.rel_path.as_str()), f)).collect();

    let working = WorkingSet::new(model, (0..model.schema.len()).collect());
    let ranges = HashMap::new();
    let mut reported: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut findings = Vec::new();
    for node in 0..model.node_count() {
        for group in find_file_groups(model, node, &ranges, &working) {
            for (i, a) in group.iter().enumerate() {
                for b in group.iter().skip(i + 1) {
                    if a.dataset == b.dataset {
                        continue;
                    }
                    for (var, ea) in &a.extents {
                        let Some(eb) = b.extents.get(var) else { continue };
                        let counts = (range_iterations(ea), range_iterations(eb));
                        let (Some(na), Some(nb)) = counts else { continue };
                        if na == nb {
                            continue;
                        }
                        let key = (a.dataset.clone(), b.dataset.clone(), var.clone());
                        if !reported.insert(key) {
                            continue;
                        }
                        // The longer file owns the orphaned iteration.
                        let (long, n_short) = if na > nb { (*a, nb) } else { (*b, na) };
                        let k = n_short as u64; // first orphaned iteration, 0-based
                        let node_name = model.nodes[long.node].as_str();
                        let ce = by_path
                            .get(&(node_name, long.rel_path.as_str()))
                            .and_then(|pf| record_of_iteration(pf, var, k));
                        let at = ce
                            .as_ref()
                            .map(|c| {
                                c.indices
                                    .iter()
                                    .map(|(v, x)| format!("{v}={x}"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            })
                            .unwrap_or_else(|| format!("iteration {k} of {var}"));
                        let bytes = ce
                            .as_ref()
                            .map(|c| {
                                format!(" (bytes {}..{} of `{}`)", c.byte_lo, c.byte_hi, c.file)
                            })
                            .unwrap_or_default();
                        findings.push(Finding {
                            diag: Diagnostic::new(
                                Code::Dv203,
                                loop_span(files, &a.dataset, var),
                                format!(
                                    "misaligned file group: datasets \"{}\" and \"{}\" group \
                                     together but disagree on `{var}` iterations ({na} vs \
                                     {nb}); record {at}{bytes} has no partner row",
                                    a.dataset, b.dataset
                                ),
                            )
                            .with_help(
                                "aligned file chunks iterate in lock-step; every file of a \
                                 group must yield the same num_rows per shared variable",
                            ),
                            counterexample: ce,
                        });
                    }
                }
            }
        }
    }
    findings
}

/// Byte range of the record at iteration `k` (others at 0) of the
/// first region of `pf` that loops over `var`.
fn record_of_iteration(pf: &PseudoFile, var: &str, k: u64) -> Option<Counterexample> {
    for r in &pf.regions {
        let Some(pos) = r.dims.iter().position(|d| d.var == var) else { continue };
        if k >= r.dims[pos].count {
            continue;
        }
        let mut idx = vec![0u64; r.dims.len()];
        idx[pos] = k;
        let off = r.offset_of(&idx)?;
        return Some(Counterexample {
            file: pf.rel_path.clone(),
            indices: r.assignment(&idx),
            byte_lo: off,
            byte_hi: off + r.row_bytes,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::extent::elaborate;
    use dv_descriptor::parse_descriptor;

    #[test]
    fn mismatched_groups_are_refuted_with_orphan_record() {
        let text = r#"
[S]
T = int
X = float
Y = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATAINDEX { T }
  DATA { DATASET a DATASET b }
  DATASET "a" {
    DATASPACE { LOOP T 1:4:1 { X } }
    DATA { DIR[0]/A }
  }
  DATASET "b" {
    DATASPACE { LOOP T 1:5:1 { Y } }
    DATA { DIR[0]/B }
  }
}
"#;
        let ast = parse_descriptor(text).unwrap();
        let model = dv_descriptor::resolve(&ast).unwrap();
        let e = elaborate(&ast);
        let findings = check_alignment(&model, &e.files);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.diag.code, Code::Dv203);
        assert!(!f.diag.span.is_dummy());
        let ce = f.counterexample.as_ref().unwrap();
        // Iteration 4 (T=5) exists only in B: bytes 16..20.
        assert_eq!(ce.file, "d/B");
        assert_eq!(ce.indices, vec![("T".to_string(), 5)]);
        assert_eq!((ce.byte_lo, ce.byte_hi), (16, 20));
    }

    #[test]
    fn aligned_groups_are_clean() {
        let text = r#"
[S]
T = int
X = float
Y = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATAINDEX { T }
  DATA { DATASET a DATASET b }
  DATASET "a" {
    DATASPACE { LOOP T 1:4:1 { X } }
    DATA { DIR[0]/A }
  }
  DATASET "b" {
    DATASPACE { LOOP T 1:4:1 { Y } }
    DATA { DIR[0]/B }
  }
}
"#;
        let ast = parse_descriptor(text).unwrap();
        let model = dv_descriptor::resolve(&ast).unwrap();
        let e = elaborate(&ast);
        assert!(check_alignment(&model, &e.files).is_empty());
    }
}
