//! Lenient elaboration of the layout AST into extent maps, plus the
//! bounds (DV202) and dead-region (DV204) checks.
//!
//! The resolver (`dv-descriptor::resolve`) *rejects* descriptors with
//! empty loops or colliding file paths before any model exists, with
//! an unspanned error and no witness. The verifier re-elaborates the
//! AST itself, tolerating those defects, so it can *refute* them with
//! a spanned diagnostic and a concrete counterexample. When the
//! descriptor does resolve, this elaboration enumerates exactly the
//! resolver's files, in the resolver's order.

use std::collections::BTreeMap;

use dv_descriptor::ast::{DataAst, DatasetAst, DescriptorAst, FileBinding, SpaceItem};
use dv_descriptor::expr::Env;
use dv_descriptor::model::ResolvedItem;
use dv_descriptor::CodecKind;
use dv_types::Span;

use super::domain::{AffineExtent, Dim};
use super::report::{Counterexample, Finding};
use crate::diag::{Code, Diagnostic};

/// Cap on binding-env expansion per descriptor; past this the verifier
/// reports "unproven" instead of enumerating.
const MAX_FILES: usize = 100_000;

/// One file the layout *would* produce, derived without the resolver.
#[derive(Debug, Clone)]
pub struct PseudoFile {
    pub dataset: String,
    /// Cluster node *name* (the model uses indices; names are stable
    /// across lenient and resolved elaboration).
    pub node: String,
    pub rel_path: String,
    pub env: Env,
    /// Live extent maps, in layout order.
    pub regions: Vec<AffineExtent>,
    /// Dead extent maps (some enclosing loop iterates zero times).
    pub dead: Vec<AffineExtent>,
    /// Declared (layout-implied) byte size — of the *logical* image;
    /// only affine codecs store it physically.
    pub expected_size: u64,
    /// Storage codec of the producing binding.
    pub codec: CodecKind,
    /// Span of the DATA file binding that produced this file.
    pub binding_span: Span,
}

/// Result of elaborating a whole descriptor.
#[derive(Debug, Default)]
pub struct Elaboration {
    pub files: Vec<PseudoFile>,
    /// Reasons parts of the layout could not be analyzed (chunked
    /// layouts, unevaluable bounds, overflow, expansion caps).
    pub unproven: Vec<String>,
}

/// Byte size per attribute, from the schema and every DATATYPE clause.
pub fn attr_sizes(ast: &DescriptorAst) -> BTreeMap<String, u64> {
    let mut sizes = BTreeMap::new();
    for (n, t, _) in &ast.schema.attrs {
        sizes.insert(n.to_ascii_uppercase(), t.size() as u64);
    }
    fn walk(ds: &DatasetAst, sizes: &mut BTreeMap<String, u64>) {
        for (n, t, _) in &ds.extra_attrs {
            sizes.insert(n.to_ascii_uppercase(), t.size() as u64);
        }
        for c in &ds.children {
            walk(c, sizes);
        }
    }
    walk(&ast.layout, &mut sizes);
    sizes
}

fn leaf_datasets(ast: &DescriptorAst) -> Vec<&DatasetAst> {
    // Mirrors the resolver's walk order: a dataset's own bindings
    // expand before its children, children in declaration order.
    fn walk<'a>(ds: &'a DatasetAst, out: &mut Vec<&'a DatasetAst>) {
        if ds.dataspace.is_some() && matches!(ds.data, DataAst::Files(_)) {
            out.push(ds);
        }
        for c in &ds.children {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(&ast.layout, &mut out);
    out
}

fn upper_env(env: &Env) -> Env {
    env.iter().map(|(k, v)| (k.to_ascii_uppercase(), *v)).collect()
}

/// Elaborate every leaf dataset's file bindings into [`PseudoFile`]s.
pub fn elaborate(ast: &DescriptorAst) -> Elaboration {
    let sizes = attr_sizes(ast);
    let mut out = Elaboration::default();
    for leaf in leaf_datasets(ast) {
        let space = leaf.dataspace.as_ref().expect("leaf has a dataspace");
        let DataAst::Files(bindings) = &leaf.data else { continue };
        for b in bindings {
            expand_binding(ast, leaf, space, b, &sizes, &mut out);
        }
    }
    out
}

fn expand_binding(
    ast: &DescriptorAst,
    leaf: &DatasetAst,
    space: &[SpaceItem],
    binding: &FileBinding,
    sizes: &BTreeMap<String, u64>,
    out: &mut Elaboration,
) {
    if !binding.codec.is_affine() {
        // Byte-level bounds exist only in the decoded image; record
        // counts still verify, but the physical file cannot be checked
        // against the layout, so `Safe` is off the table.
        out.unproven.push(format!(
            "dataset \"{}\": CODEC {} stores records in a non-affine encoding; physical \
             sizes are data-dependent and decode is checked at query time",
            leaf.name,
            binding.codec.descriptor_name()
        ));
    }
    let empty = Env::new();
    let mut ranges: Vec<(String, i64, i64, i64)> = Vec::new();
    for (var, lo, hi, step) in &binding.ranges {
        let upper = var.to_ascii_uppercase();
        let (Ok(lo), Ok(hi), Ok(step)) = (lo.eval(&empty), hi.eval(&empty), step.eval(&empty))
        else {
            out.unproven.push(format!(
                "dataset \"{}\": binding range of `{upper}` is not a compile-time constant",
                leaf.name
            ));
            return;
        };
        if step <= 0 || lo > hi {
            // DV006 territory; the binding yields no files.
            out.unproven.push(format!(
                "dataset \"{}\": binding range of `{upper}` is degenerate ({lo}:{hi}:{step})",
                leaf.name
            ));
            return;
        }
        ranges.push((upper, lo, hi, step));
    }

    let mut envs: Vec<Env> = vec![Env::new()];
    for (var, lo, hi, step) in &ranges {
        let mut next = Vec::new();
        for env in &envs {
            let mut v = *lo;
            while v <= *hi {
                let mut e = env.clone();
                e.insert(var.clone(), v);
                next.push(e);
                v += step;
            }
        }
        envs = next;
        if envs.len() + out.files.len() > MAX_FILES {
            out.unproven.push(format!(
                "dataset \"{}\": binding expands past {MAX_FILES} files; not analyzed",
                leaf.name
            ));
            return;
        }
    }

    for env in envs {
        let env = upper_env(&env);
        let Ok(dir_slot) = binding.template.dir_index.eval(&env) else {
            out.unproven.push(format!(
                "dataset \"{}\": DIR index of a file template does not evaluate",
                leaf.name
            ));
            return;
        };
        let Some(dir) = usize::try_from(dir_slot)
            .ok()
            .and_then(|s| ast.storage.dirs.iter().find(|d| d.index == s))
        else {
            out.unproven.push(format!(
                "dataset \"{}\": file template references DIR[{dir_slot}] which is not declared",
                leaf.name
            ));
            return;
        };
        let Ok(name) = binding.template.render_name(&env) else {
            out.unproven.push(format!(
                "dataset \"{}\": file template uses a variable with no binding range",
                leaf.name
            ));
            return;
        };
        let rel_path = if dir.path.is_empty() { name } else { format!("{}/{}", dir.path, name) };

        let mut elab = SpaceElab { env: &env, sizes, regions: Vec::new(), dead: Vec::new() };
        let outcome = elab.items(space, 0, &mut Vec::new());
        let (regions, dead) = (elab.regions, elab.dead);
        match outcome {
            Ok(total) => out.files.push(PseudoFile {
                dataset: leaf.name.clone(),
                node: dir.node.clone(),
                rel_path,
                env,
                regions,
                dead,
                expected_size: total,
                codec: binding.codec,
                binding_span: binding.span,
            }),
            Err(reason) => {
                out.unproven.push(format!("dataset \"{}\": {reason}", leaf.name));
                return;
            }
        }
    }
}

/// Walks one DATASPACE under one binding env, accumulating extents.
struct SpaceElab<'a> {
    env: &'a Env,
    sizes: &'a BTreeMap<String, u64>,
    regions: Vec<AffineExtent>,
    dead: Vec<AffineExtent>,
}

impl SpaceElab<'_> {
    /// Elaborate `items` starting at absolute byte `base` under the
    /// open loop nest `dims`; returns the byte size of the sequence
    /// (one iteration's worth). `Err` carries an unproven reason.
    fn items(
        &mut self,
        items: &[SpaceItem],
        base: u64,
        dims: &mut Vec<Dim>,
    ) -> Result<u64, String> {
        let mut cursor = base;
        for item in items {
            match item {
                SpaceItem::Attrs(attrs) => {
                    let mut width = 0u64;
                    let mut names = Vec::with_capacity(attrs.len());
                    for (n, _) in attrs {
                        let upper = n.to_ascii_uppercase();
                        let Some(s) = self.sizes.get(&upper) else {
                            return Err(format!("stored attribute `{upper}` has no declared type"));
                        };
                        width += s;
                        names.push(upper);
                    }
                    if width == 0 {
                        return Err("empty attribute record".into());
                    }
                    let ext = AffineExtent {
                        base: cursor,
                        dims: dims.clone(),
                        row_bytes: width,
                        attrs: names,
                        span: item.span(),
                    };
                    if ext.is_dead() {
                        self.dead.push(ext);
                    } else {
                        self.regions.push(ext);
                        cursor = cursor
                            .checked_add(width)
                            .ok_or_else(|| "byte offsets overflow u64".to_string())?;
                    }
                }
                SpaceItem::Loop { var, lo, hi, step, body, span } => {
                    let evals = (lo.eval(self.env), hi.eval(self.env), step.eval(self.env));
                    let (Ok(lo), Ok(hi), Ok(step)) = evals else {
                        return Err(format!("bounds of LOOP {var} do not evaluate"));
                    };
                    let count = ResolvedItem::loop_iterations(lo, hi, step);
                    // Body size is needed first to know this loop's
                    // stride; elaborate with a placeholder stride, then
                    // patch it into every extent the body produced.
                    let var = var.to_ascii_uppercase();
                    dims.push(Dim { var, lo, step, count, stride: 0, span: *span });
                    let depth = dims.len() - 1;
                    let first_region = self.regions.len();
                    let first_dead = self.dead.len();
                    let body_size = self.items(body, cursor, dims)?;
                    dims.pop();
                    for ext in self.regions[first_region..]
                        .iter_mut()
                        .chain(self.dead[first_dead..].iter_mut())
                    {
                        ext.dims[depth].stride = body_size;
                    }
                    let total = body_size
                        .checked_mul(count)
                        .ok_or_else(|| "byte offsets overflow u64".to_string())?;
                    cursor = cursor
                        .checked_add(total)
                        .ok_or_else(|| "byte offsets overflow u64".to_string())?;
                }
                SpaceItem::Chunked { .. } => {
                    return Err(
                        "CHUNKED layout has data-dependent extents; not verifiable".to_string()
                    );
                }
            }
        }
        Ok(cursor - base)
    }
}

/// DV204: report every dead region — bytes no iteration can reach.
pub fn check_dead_regions(files: &[PseudoFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: std::collections::BTreeSet<(String, usize)> = std::collections::BTreeSet::new();
    for f in files {
        for ext in &f.dead {
            let d = ext.dims.iter().find(|d| d.count == 0).expect("dead extent has a dead dim");
            // One report per (dataset, loop) across all its files.
            if !seen.insert((f.dataset.clone(), d.span.start)) {
                continue;
            }
            let diag = Diagnostic::new(
                Code::Dv204,
                d.span,
                format!(
                    "dead DATASPACE region in dataset \"{}\": LOOP {} iterates zero times, so \
                     record {{ {} }} at byte {} of `{}` is never materialized",
                    f.dataset,
                    d.var,
                    ext.attrs.join(" "),
                    ext.base,
                    f.rel_path
                ),
            )
            .with_help("remove the region or fix the loop bounds; queries can never reach it");
            findings.push(Finding {
                diag,
                counterexample: Some(Counterexample {
                    file: f.rel_path.clone(),
                    indices: Vec::new(),
                    byte_lo: ext.base,
                    byte_hi: ext.base,
                }),
            });
        }
    }
    findings
}

/// DV202 + trailing-bytes DV204, against observed sizes keyed by
/// `(node name, rel_path)`.
pub fn check_bounds(
    files: &[PseudoFile],
    sizes: &std::collections::HashMap<(String, String), u64>,
    unproven: &mut Vec<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !f.codec.is_affine() {
            // Physical size is compressed/textual, not the layout's
            // byte image; expand_binding already reported it unproven.
            continue;
        }
        let key = (f.node.clone(), f.rel_path.clone());
        let Some(&observed) = sizes.get(&key) else {
            unproven.push(format!("no observed size for `{}` on node {}", f.rel_path, f.node));
            continue;
        };
        if observed < f.expected_size {
            // Refute with the first record that does not fit.
            let witness = f
                .regions
                .iter()
                .filter_map(|ext| ext.first_record_past(observed).map(|idx| (ext, idx)))
                .min_by_key(|(ext, idx)| ext.offset_of(idx).unwrap_or(u64::MAX));
            if let Some((ext, idx)) = witness {
                let off = ext.offset_of(&idx).unwrap_or(u64::MAX);
                let assign = ext.assignment(&idx);
                let at =
                    assign.iter().map(|(v, x)| format!("{v}={x}")).collect::<Vec<_>>().join(", ");
                let loc = if at.is_empty() { String::new() } else { format!(" at {at}") };
                findings.push(Finding {
                    diag: Diagnostic::new(
                        Code::Dv202,
                        ext.span,
                        format!(
                            "out-of-bounds access: record {{ {} }}{loc} spans bytes \
                             {off}..{} of `{}` but the file is only {observed} bytes \
                             (layout implies {})",
                            ext.attrs.join(" "),
                            off + ext.row_bytes,
                            f.rel_path,
                            f.expected_size
                        ),
                    )
                    .with_help(
                        "the file is shorter than the DATASPACE describes; extraction of this \
                         record would read past end-of-file",
                    ),
                    counterexample: Some(Counterexample {
                        file: f.rel_path.clone(),
                        indices: assign,
                        byte_lo: off,
                        byte_hi: off + ext.row_bytes,
                    }),
                });
            }
        } else if observed > f.expected_size {
            let extra = observed - f.expected_size;
            findings.push(Finding {
                diag: Diagnostic::new(
                    Code::Dv204,
                    f.binding_span,
                    format!(
                        "dead region: `{}` is {observed} bytes but the DATASPACE of dataset \
                         \"{}\" only describes {}; the trailing {extra} bytes are unreachable",
                        f.rel_path, f.dataset, f.expected_size
                    ),
                )
                .with_help("no query can read those bytes; extend the layout or trim the file"),
                counterexample: Some(Counterexample {
                    file: f.rel_path.clone(),
                    indices: Vec::new(),
                    byte_lo: f.expected_size,
                    byte_hi: observed,
                }),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_descriptor::parse_descriptor;

    const DESC: &str = r#"
[S]
T = int
X = float
Y = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATA { DATASET leaf }
  DATASET "leaf" {
    DATASPACE { LOOP T 1:3:1 { X Y } }
    DATA { DIR[0]/f$R R = 0:1:1 }
  }
}
"#;

    #[test]
    fn elaborates_files_and_extents() {
        let ast = parse_descriptor(DESC).unwrap();
        let e = elaborate(&ast);
        assert!(e.unproven.is_empty(), "{:?}", e.unproven);
        assert_eq!(e.files.len(), 2);
        let f = &e.files[0];
        assert_eq!(f.node, "n0");
        assert_eq!(f.rel_path, "d/f0");
        assert_eq!(f.expected_size, 3 * 8);
        assert_eq!(f.regions.len(), 1);
        let r = &f.regions[0];
        assert_eq!(r.base, 0);
        assert_eq!(r.row_bytes, 8);
        assert_eq!(r.dims.len(), 1);
        assert_eq!(r.dims[0].stride, 8);
        assert_eq!(r.dims[0].count, 3);
    }

    #[test]
    fn matches_resolver_order_and_sizes() {
        let ast = parse_descriptor(DESC).unwrap();
        let model = dv_descriptor::resolve(&ast).unwrap();
        let e = elaborate(&ast);
        assert_eq!(e.files.len(), model.files.len());
        for (pf, mf) in e.files.iter().zip(&model.files) {
            assert_eq!(pf.rel_path, mf.rel_path);
            assert_eq!(Some(pf.expected_size), mf.expected_size(&model.attr_sizes));
        }
    }

    #[test]
    fn dead_loop_becomes_dv204() {
        let text = DESC.replace("LOOP T 1:3:1 { X Y }", "LOOP T 1:3:1 { X } LOOP G 5:4:1 { Y }");
        let ast = parse_descriptor(&text).unwrap();
        let e = elaborate(&ast);
        let findings = check_dead_regions(&e.files);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.diag.code, Code::Dv204);
        assert!(!f.diag.span.is_dummy());
        let ce = f.counterexample.as_ref().unwrap();
        assert_eq!(ce.byte_lo, 12); // after LOOP T's 3 floats
    }

    #[test]
    fn short_file_becomes_dv202_with_witness() {
        let ast = parse_descriptor(DESC).unwrap();
        let e = elaborate(&ast);
        let mut sizes = std::collections::HashMap::new();
        sizes.insert(("n0".to_string(), "d/f0".to_string()), 20u64);
        sizes.insert(("n0".to_string(), "d/f1".to_string()), 24u64);
        let mut unproven = Vec::new();
        let findings = check_bounds(&e.files, &sizes, &mut unproven);
        assert!(unproven.is_empty());
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.diag.code, Code::Dv202);
        let ce = f.counterexample.as_ref().unwrap();
        // Record T=3 occupies bytes 16..24; a 20-byte file cuts it.
        assert_eq!(ce.indices, vec![("T".to_string(), 3)]);
        assert_eq!((ce.byte_lo, ce.byte_hi), (16, 24));
    }

    #[test]
    fn long_file_becomes_trailing_dv204() {
        let ast = parse_descriptor(DESC).unwrap();
        let e = elaborate(&ast);
        let mut sizes = std::collections::HashMap::new();
        sizes.insert(("n0".to_string(), "d/f0".to_string()), 24u64);
        sizes.insert(("n0".to_string(), "d/f1".to_string()), 40u64);
        let mut unproven = Vec::new();
        let findings = check_bounds(&e.files, &sizes, &mut unproven);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].diag.code, Code::Dv204);
        let ce = findings[0].counterexample.as_ref().unwrap();
        assert_eq!((ce.byte_lo, ce.byte_hi), (24, 40));
    }

    #[test]
    fn missing_size_is_unproven() {
        let ast = parse_descriptor(DESC).unwrap();
        let e = elaborate(&ast);
        let sizes = std::collections::HashMap::new();
        let mut unproven = Vec::new();
        let findings = check_bounds(&e.files, &sizes, &mut unproven);
        assert!(findings.is_empty());
        assert_eq!(unproven.len(), 2);
    }
}
