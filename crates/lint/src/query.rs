//! Query lints DV101–DV103 and DV106: a SQL query checked against a
//! resolved dataset model.
//!
//! SQL has no per-token spans, so query diagnostics anchor to the
//! WHERE clause of the query string.

use std::collections::HashMap;

use dv_descriptor::DatasetModel;
use dv_layout::groups::file_matches;
use dv_sql::analysis::attribute_ranges;
use dv_sql::eval::expr_has_func;
use dv_sql::{bind, parse, AggFunc, BoundAggSpec, BoundExpr, BoundScalar, UdfRegistry};
use dv_types::{IntervalSet, Result, Span};

use crate::diag::{Code, Diagnostic};

/// Span of the WHERE clause (or the whole query when there is none).
fn where_span(sql: &str) -> Span {
    match sql.to_ascii_uppercase().find("WHERE") {
        Some(p) => Span::new(p, sql.trim_end().len().max(p + 5)),
        None => Span::new(0, sql.trim_end().len().max(1)),
    }
}

/// Attribute indices read (transitively) by a scalar.
fn scalar_attrs(s: &BoundScalar, out: &mut Vec<usize>) {
    match s {
        BoundScalar::Attr(i) => out.push(*i),
        BoundScalar::Const(_) => {}
        BoundScalar::Func { args, .. } => {
            for a in args {
                scalar_attrs(a, out);
            }
        }
        BoundScalar::Arith { lhs, rhs, .. } => {
            scalar_attrs(lhs, out);
            scalar_attrs(rhs, out);
        }
    }
}

/// Does this scalar contain a UDF call whose arguments read one of the
/// given attributes? Returns the first such attribute index.
fn udf_over_attr(s: &BoundScalar, attrs: &[usize]) -> Option<usize> {
    match s {
        BoundScalar::Attr(_) | BoundScalar::Const(_) => None,
        BoundScalar::Func { args, .. } => {
            let mut read = Vec::new();
            for a in args {
                scalar_attrs(a, &mut read);
            }
            read.into_iter()
                .find(|i| attrs.contains(i))
                .or_else(|| args.iter().find_map(|a| udf_over_attr(a, attrs)))
        }
        BoundScalar::Arith { lhs, rhs, .. } => {
            udf_over_attr(lhs, attrs).or_else(|| udf_over_attr(rhs, attrs))
        }
    }
}

/// DV102: find comparisons whose scalars wrap an index-prunable
/// attribute inside a UDF call.
fn check_udf_filters(
    pred: &BoundExpr,
    index_attrs: &[usize],
    model: &DatasetModel,
    span: Span,
    diags: &mut Vec<Diagnostic>,
) {
    match pred {
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
            check_udf_filters(a, index_attrs, model, span, diags);
            check_udf_filters(b, index_attrs, model, span, diags);
        }
        BoundExpr::Not(inner) => check_udf_filters(inner, index_attrs, model, span, diags),
        BoundExpr::Cmp { lhs, rhs, .. } => {
            for s in [lhs, rhs] {
                if let Some(i) = udf_over_attr(s, index_attrs) {
                    push_udf_diag(i, model, span, diags);
                }
            }
        }
        BoundExpr::InList { expr, list, .. } => {
            for s in std::iter::once(expr).chain(list.iter()) {
                if let Some(i) = udf_over_attr(s, index_attrs) {
                    push_udf_diag(i, model, span, diags);
                }
            }
        }
        BoundExpr::Between { expr, lo, hi, .. } => {
            for s in [expr, lo, hi] {
                if let Some(i) = udf_over_attr(s, index_attrs) {
                    push_udf_diag(i, model, span, diags);
                }
            }
        }
    }
}

fn push_udf_diag(attr: usize, model: &DatasetModel, span: Span, diags: &mut Vec<Diagnostic>) {
    let name = &model.schema.attr_at(attr).name;
    let d = Diagnostic::new(
        Code::Dv102,
        span,
        format!("UDF filter over index attribute `{name}` defeats index-based file pruning"),
    )
    .with_help(format!(
        "range analysis cannot see through the call; compare `{name}` directly to keep pruning"
    ));
    if !diags.contains(&d) {
        diags.push(d);
    }
}

/// Span of the first case-insensitive occurrence of `needle` at or
/// after byte `from`, falling back to the WHERE-clause span.
fn span_from(sql: &str, from: usize, needle: &str) -> Span {
    let upper = sql.to_ascii_uppercase();
    match upper[from.min(upper.len())..].find(&needle.to_ascii_uppercase()) {
        Some(p) => Span::new(from + p, from + p + needle.len()),
        None => where_span(sql),
    }
}

/// DV106: degenerate aggregation. A `GROUP BY` key that the descriptor
/// pins to one value puts every row in a single group (the aggregate
/// analogue of DV305), and `AVG`/`SUM` over a non-stored pinned
/// coordinate computes a constant (resp. a scaled row count) no data
/// byte can influence.
fn check_degenerate_agg(
    spec: &BoundAggSpec,
    model: &DatasetModel,
    sql: &str,
    diags: &mut Vec<Diagnostic>,
) {
    // Hulls exist only for never-stored attributes; a pinned one has
    // lo == hi across every file's bindings and extents.
    let hulls = crate::prune::dataset_hulls(model);
    let pinned = |idx: usize| hulls.get(&idx).filter(|(lo, hi)| lo == hi).map(|&(lo, _)| lo);

    let group_clause = sql.to_ascii_uppercase().find("GROUP").unwrap_or(0);
    for &g in &spec.group_by {
        let Some(v) = pinned(g) else { continue };
        let name = &model.schema.attr_at(g).name;
        diags.push(
            Diagnostic::new(
                Code::Dv106,
                span_from(sql, group_clause, name),
                format!(
                    "GROUP BY `{name}` keys on a coordinate the descriptor never varies \
                     (always {v}); every row falls into one group"
                ),
            )
            .with_help(
                "drop the key or widen the coordinate's range in the descriptor — DV305 \
                 reports the same pinning when a predicate constrains it",
            ),
        );
    }
    for agg in &spec.aggs {
        if !matches!(agg.func, AggFunc::Sum | AggFunc::Avg) {
            continue;
        }
        let Some(arg) = agg.arg else { continue };
        let Some(v) = pinned(arg) else { continue };
        let name = &model.schema.attr_at(arg).name;
        diags.push(
            Diagnostic::new(
                Code::Dv106,
                span_from(sql, 0, &format!("{}({name})", agg.func)),
                format!(
                    "{}(`{name}`) aggregates a non-stored coordinate the descriptor pins \
                     to {v}; the result is determined without reading any data",
                    agg.func
                ),
            )
            .with_help(format!(
                "the descriptor binds `{name}` to the constant {v} in every file — \
                 aggregate a stored attribute or COUNT rows instead"
            )),
        );
    }
}

/// Lint one SQL query against a resolved model. Parse/bind errors are
/// returned as `Err`; lint findings come back as diagnostics whose
/// spans index into `sql`.
pub fn lint_query(model: &DatasetModel, sql: &str, udfs: &UdfRegistry) -> Result<Vec<Diagnostic>> {
    let query = parse(sql)?;
    let bound = bind(&query, &model.schema, udfs)?;
    let mut diags = Vec::new();
    let span = where_span(sql);

    // DV106 fires with or without a WHERE clause.
    if let Some(spec) = &bound.agg {
        check_degenerate_agg(spec, model, sql, &mut diags);
    }

    let Some(pred) = &bound.predicate else {
        diags.sort_by_key(|d| (d.span.start, d.code));
        return Ok(diags);
    };

    // DV101a: some attribute's derived interval set is empty — the
    // predicate can never be satisfied.
    let ranges = attribute_ranges(pred);
    let mut unsat = false;
    for (idx, set) in &ranges {
        if set.is_empty() {
            unsat = true;
            let name = &model.schema.attr_at(*idx).name;
            diags.push(
                Diagnostic::new(
                    Code::Dv101,
                    span,
                    format!("predicate constrains `{name}` to an empty set; it selects no rows"),
                )
                .with_help("the WHERE clause is unsatisfiable — the query always returns 0 rows"),
            );
        }
    }

    // DV101b: satisfiable ranges, but no file's implicit extents
    // overlap them — the query scans nothing.
    if !unsat && !ranges.is_empty() && !model.files.is_empty() {
        let by_name: HashMap<String, IntervalSet> = ranges
            .iter()
            .map(|(idx, set)| (model.schema.attr_at(*idx).name.clone(), set.clone()))
            .collect();
        if !model.files.iter().any(|f| file_matches(f, &by_name)) {
            diags.push(
                Diagnostic::new(
                    Code::Dv101,
                    span,
                    "predicate is outside the extents of every file; it selects no rows"
                        .to_string(),
                )
                .with_help("the constrained attributes never take these values in any stored file"),
            );
        }
    }

    // DV102: UDFs wrapping index attributes.
    let index_attrs = model.index_attr_indices();
    if !index_attrs.is_empty() {
        check_udf_filters(pred, &index_attrs, model, span, &mut diags);
    }

    // DV103: a UDF filter with no vectorizable guard. The columnar
    // engine evaluates UDF-free conjuncts first and row-falls-back
    // only on the survivors; when *every* top-level conjunct contains
    // a UDF call, that narrowing never happens and the whole block is
    // evaluated row-at-a-time.
    if expr_has_func(pred) {
        let mut conjuncts = Vec::new();
        flatten_and(pred, &mut conjuncts);
        if conjuncts.iter().all(|c| expr_has_func(c)) {
            diags.push(
                Diagnostic::new(
                    Code::Dv103,
                    span,
                    "user-defined filter has no vectorizable guard; every block falls back to \
                     row-at-a-time evaluation",
                )
                .with_help(
                    "AND a plain comparison (e.g. a range on an attribute) so the columnar \
                     engine can narrow rows before calling the UDF",
                ),
            );
        }
    }

    diags.sort_by_key(|d| (d.span.start, d.code));
    Ok(diags)
}

/// Flatten nested top-level ANDs into a conjunct list.
fn flatten_and<'p>(pred: &'p BoundExpr, out: &mut Vec<&'p BoundExpr>) {
    match pred {
        BoundExpr::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}
