//! Prune lints DV301–DV305: the WHERE clause abstract-interpreted
//! over the descriptor's file extents.
//!
//! The runtime half of dv-prune ([`dv_layout::prune`]) decides each
//! aligned file chunk at plan time; this pass runs the same
//! three-valued evaluator ([`dv_sql::ternary`]) at *lint* time, over
//! the hulls the descriptor promises, so contradictions and
//! tautologies surface before any data exists on disk.
//!
//! Environments used here, both sound over-approximations:
//!
//! * **Dataset-wide env** — for every schema attribute that is only
//!   ever implicit (bound by a loop or file-binding variable, stored
//!   in no file), the union of its hulls across all files. Every row
//!   the dataset can produce has its implicit values inside this box,
//!   so `False` here means *statically empty* (DV301) and `True`
//!   means *tautological* (DV302).
//! * **Per-file env** — the same, restricted to one file's own
//!   extents and bindings; drives the DV304 per-group summary note.
//!
//! Attributes stored in *any* file are excluded from both envs: their
//! byte values are unconstrained by the descriptor (a stored float may
//! even be NaN), so the evaluator must see them as unbounded.

use std::collections::{BTreeMap, BTreeSet};

use dv_descriptor::{DatasetModel, FileModel};
use dv_sql::ternary::{
    abstract_eval, predicate_attrs, prune_blockers, HullEnv, PruneBlocker, Ternary,
};
use dv_sql::{bind, parse, BoundExpr, UdfRegistry};
use dv_types::{Result, Span};

use crate::diag::{Code, Diagnostic};

/// Span of the WHERE clause (or the whole query when there is none).
pub(crate) fn where_span(sql: &str) -> Span {
    match sql.to_ascii_uppercase().find("WHERE") {
        Some(p) => Span::new(p, sql.trim_end().len().max(p + 5)),
        None => Span::new(0, sql.trim_end().len().max(1)),
    }
}

/// Span of the first case-insensitive occurrence of `needle` in `sql`,
/// falling back to the WHERE clause.
pub(crate) fn span_of(sql: &str, needle: &str) -> Span {
    match sql.to_ascii_uppercase().find(&needle.to_ascii_uppercase()) {
        Some(p) => Span::new(p, p + needle.len()),
        None => where_span(sql),
    }
}

/// Names of schema attributes stored in at least one file — excluded
/// from every hull env (their byte values are unconstrained).
pub(crate) fn stored_attrs(model: &DatasetModel) -> BTreeSet<&str> {
    model.files.iter().flat_map(|f| f.stored_attrs.iter().map(String::as_str)).collect()
}

/// Hulls of the never-stored schema attributes: attribute index →
/// inclusive `(lo, hi)` union across every file's bindings + extents.
pub(crate) fn dataset_hulls(model: &DatasetModel) -> BTreeMap<usize, (f64, f64)> {
    let stored = stored_attrs(model);
    let mut hulls: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    for file in &model.files {
        for (idx, lo, hi) in file_hulls(model, file, &stored) {
            hulls.entry(idx).and_modify(|h| *h = (h.0.min(lo), h.1.max(hi))).or_insert((lo, hi));
        }
    }
    hulls
}

/// One file's implicit hulls, keyed by schema attribute index.
/// Attributes stored anywhere in the dataset are skipped.
fn file_hulls(
    model: &DatasetModel,
    file: &FileModel,
    stored: &BTreeSet<&str>,
) -> Vec<(usize, f64, f64)> {
    let mut out = Vec::new();
    let mut push = |name: &str, lo: i64, hi: i64| {
        if let Some(idx) = model.schema.index_of(name) {
            if !stored.contains(name) {
                out.push((idx, lo as f64, hi as f64));
            }
        }
    };
    for (name, v) in &file.env {
        push(name, *v, *v);
    }
    for (name, extent) in &file.extents {
        let (lo, hi) = extent.hull();
        push(name, lo, hi);
    }
    out
}

/// Lint one SQL query's prunability against a resolved model. Parse and
/// bind errors are returned as `Err`; findings come back as
/// diagnostics whose spans index into `sql`.
pub fn prune_query(model: &DatasetModel, sql: &str, udfs: &UdfRegistry) -> Result<Vec<Diagnostic>> {
    let query = parse(sql)?;
    let bound = bind(&query, &model.schema, udfs)?;
    let mut diags = Vec::new();
    let Some(pred) = &bound.predicate else {
        return Ok(diags);
    };
    let span = where_span(sql);

    let hulls = dataset_hulls(model);
    let env: HullEnv = hulls.iter().map(|(&i, &h)| (i, h)).collect();

    // DV301 / DV302: the whole predicate decided over the dataset box.
    match abstract_eval(pred, &env) {
        Ternary::False => diags.push(
            Diagnostic::new(
                Code::Dv301,
                span,
                "predicate contradicts the layout extents; the result is statically empty"
                    .to_string(),
            )
            .with_help(format!(
                "every file chunk is provably empty, so the query reads nothing; {}",
                extent_summary(model, pred, &hulls)
            )),
        ),
        Ternary::True => diags.push(
            Diagnostic::new(
                Code::Dv302,
                span,
                "predicate is tautological over the dataset extents; it filters nothing"
                    .to_string(),
            )
            .with_help(format!(
                "every row the layout can produce satisfies it — drop the clause or tighten it; {}",
                extent_summary(model, pred, &hulls)
            )),
        ),
        Ternary::Unknown => {}
    }

    // DV303: subexpressions that force Unknown regardless of extents.
    for blocker in prune_blockers(pred) {
        let (bspan, what, help) = match blocker {
            PruneBlocker::Udf { slot } => {
                let name = udfs.name_of(slot).to_string();
                (
                    span_of(sql, &name),
                    format!("UDF `{name}` is opaque to interval analysis"),
                    format!(
                        "chunks overlapping `{name}` must be read and filtered at runtime; \
                         AND a plain comparison on a coordinate attribute to restore pruning"
                    ),
                )
            }
            PruneBlocker::NonFiniteConst => (
                span,
                "a non-finite constant defeats sound interval comparison".to_string(),
                "NaN/overflowing literals compare by IEEE rules no interval captures; \
                 replace the constant with a finite value"
                    .to_string(),
            ),
        };
        diags.push(
            Diagnostic::new(Code::Dv303, bspan, format!("static pruning blocked: {what}"))
                .with_help(help),
        );
    }

    // DV305: the predicate constrains an implicit attribute whose
    // dataset-wide hull is a single point — the descriptor never
    // varies it, so the comparison is constant over the whole dataset.
    for idx in predicate_attrs(pred) {
        if let Some(&(lo, hi)) = hulls.get(&idx) {
            if lo == hi {
                let name = &model.schema.attr_at(idx).name;
                diags.push(
                    Diagnostic::new(
                        Code::Dv305,
                        span,
                        format!(
                            "predicate constrains `{name}`, a coordinate the descriptor never \
                             varies (always {lo})"
                        ),
                    )
                    .with_help(
                        "the comparison is constant over the whole dataset: it either keeps \
                         or drops every row",
                    ),
                );
            }
        }
    }

    // DV304 (note): per-file static prune summary — the same verdicts
    // the planner will reach, computed from each file's own extents.
    if !model.files.is_empty() {
        let stored = stored_attrs(model);
        let (mut empty, mut full, mut unknown) = (0usize, 0usize, 0usize);
        for file in &model.files {
            let fenv: HullEnv = file_hulls(model, file, &stored)
                .into_iter()
                .map(|(i, lo, hi)| (i, (lo, hi)))
                .collect();
            match abstract_eval(pred, &fenv) {
                Ternary::False => empty += 1,
                Ternary::True => full += 1,
                Ternary::Unknown => unknown += 1,
            }
        }
        diags.push(
            Diagnostic::new(
                Code::Dv304,
                span,
                format!(
                    "static prune summary: {empty}/{} files provably empty, {full} provably \
                     full, {unknown} undecided",
                    model.files.len()
                ),
            )
            .with_help(
                "per-chunk verdicts at query time can only be sharper; run `datavirt explain` \
                 for the chunk-level plan",
            ),
        );
    }

    diags.sort_by_key(|d| (d.span.start, d.code));
    Ok(diags)
}

/// Human-readable hulls of the attributes the predicate touches, for
/// DV301/DV302 help text.
fn extent_summary(
    model: &DatasetModel,
    pred: &BoundExpr,
    hulls: &BTreeMap<usize, (f64, f64)>,
) -> String {
    let parts: Vec<String> = predicate_attrs(pred)
        .into_iter()
        .filter_map(|idx| {
            hulls
                .get(&idx)
                .map(|(lo, hi)| format!("`{}` spans [{lo}, {hi}]", model.schema.attr_at(idx).name))
        })
        .collect();
    if parts.is_empty() {
        "no constrained attribute is implicit in the layout".to_string()
    } else {
        format!("layout extents: {}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn model() -> DatasetModel {
        dv_descriptor::compile(
            r#"
[S]
REL = short int
TIME = int
SOIL = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATASET "leaf" {
    DATASPACE { LOOP TIME 1:50:1 { SOIL } }
    DATA { DIR[0]/f$REL.dat REL = 0:0:1 }
  }
  DATA { DATASET leaf }
}
"#,
        )
        .unwrap()
    }

    fn lint(sql: &str) -> Vec<Diagnostic> {
        prune_query(&model(), sql, &UdfRegistry::with_builtins()).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn no_predicate_is_silent() {
        assert!(lint("SELECT SOIL FROM D").is_empty());
    }

    #[test]
    fn contradiction_fires_dv301() {
        let diags = lint("SELECT SOIL FROM D WHERE TIME > 1000");
        assert!(codes(&diags).contains(&Code::Dv301), "{diags:?}");
        let d = diags.iter().find(|d| d.code == Code::Dv301).unwrap();
        assert!(d.help.as_deref().unwrap().contains("`TIME` spans [1, 50]"), "{d:?}");
        // Summary note agrees: every file statically empty.
        let s = diags.iter().find(|d| d.code == Code::Dv304).unwrap();
        assert!(s.message.contains("1/1 files provably empty"), "{s:?}");
    }

    #[test]
    fn tautology_fires_dv302() {
        let diags = lint("SELECT SOIL FROM D WHERE TIME >= 1");
        assert!(codes(&diags).contains(&Code::Dv302), "{diags:?}");
        assert!(!codes(&diags).contains(&Code::Dv301));
    }

    #[test]
    fn stored_attribute_stays_unknown() {
        // SOIL is stored: its bytes are unconstrained, so neither
        // DV301 nor DV302 may fire no matter the comparison.
        let diags = lint("SELECT SOIL FROM D WHERE SOIL > 1e30");
        assert!(!codes(&diags).contains(&Code::Dv301), "{diags:?}");
        assert!(!codes(&diags).contains(&Code::Dv302), "{diags:?}");
    }

    #[test]
    fn udf_fires_dv303_at_call_site() {
        let sql = "SELECT SOIL FROM D WHERE SPEED(SOIL, SOIL, SOIL) < 30.0";
        let diags = lint(sql);
        let d = diags.iter().find(|d| d.code == Code::Dv303).expect("DV303");
        assert!(d.message.contains("SPEED"), "{d:?}");
        assert_eq!(&sql[d.span.start..d.span.end], "SPEED");
    }

    #[test]
    fn non_finite_constant_fires_dv303() {
        let diags = lint("SELECT SOIL FROM D WHERE SOIL < 1e999");
        let d = diags.iter().find(|d| d.code == Code::Dv303).expect("DV303");
        assert!(d.message.contains("non-finite"), "{d:?}");
    }

    #[test]
    fn point_coordinate_fires_dv305() {
        // REL = 0:0:1 — a single value across the whole dataset.
        let diags = lint("SELECT SOIL FROM D WHERE REL = 0");
        assert!(codes(&diags).contains(&Code::Dv305), "{diags:?}");
        // TIME varies: no DV305.
        let diags = lint("SELECT SOIL FROM D WHERE TIME < 10");
        assert!(!codes(&diags).contains(&Code::Dv305), "{diags:?}");
    }

    #[test]
    fn summary_note_counts_partitions() {
        let diags = lint("SELECT SOIL FROM D WHERE TIME < 10");
        let s = diags.iter().find(|d| d.code == Code::Dv304).expect("DV304");
        assert_eq!(s.severity, Severity::Note);
        assert!(s.message.contains("0/1 files provably empty"), "{s:?}");
        assert!(s.message.contains("1 undecided"), "{s:?}");
    }
}
