//! The diagnostics vocabulary: codes, severities, and rustc-style
//! source-snippet rendering.

use std::fmt;

use dv_types::Span;

/// Every diagnostic the analyzer can emit. `DV0xx` codes fire on
/// descriptor text, `DV1xx` codes on queries checked against a
/// resolved model, `DV2xx` codes are refutations produced by the
/// `dv-verify` semantic analysis pass, `DV3xx` codes come from the
/// dv-prune predicate–extent abstract interpretation, and `DV4xx`
/// codes from the dv-cost static resource-bound analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Overlapping or shadowing `LOOP`s over one variable.
    Dv001,
    /// Attribute stored more than once in a single `DATASPACE`.
    Dv002,
    /// Schema attribute never stored nor implied by any layout.
    Dv003,
    /// `DATATYPE` auxiliary attribute never stored by any `DATASPACE`.
    Dv004,
    /// Attribute both stored explicitly and bound implicitly.
    Dv005,
    /// Empty or non-positive-stride loop / binding range.
    Dv006,
    /// Storage `DIR` entry referenced by no file template.
    Dv007,
    /// Aligned file groups whose computed row counts disagree.
    Dv008,
    /// Predicate provably selects nothing.
    Dv101,
    /// UDF filter over an index-prunable attribute.
    Dv102,
    /// UDF filter with no vectorizable guard conjunct — every block
    /// falls back to row-at-a-time evaluation.
    Dv103,
    /// Layout yields AFC runs smaller than one I/O coalescing unit at
    /// high file fan-in — reads degenerate to a seek per file.
    Dv104,
    /// Degenerate aggregation: a `GROUP BY` key or an `AVG`/`SUM`
    /// argument is a non-stored coordinate the descriptor pins to a
    /// single value.
    Dv106,
    /// Non-affine codec (CSV/zstd) on a DATA binding whose layout
    /// would otherwise have earned a `Safe` certificate — every query
    /// pays checked-decode throughput for it.
    Dv107,
    /// Two DATA items claim overlapping byte ranges of one file.
    Dv201,
    /// A layout access is out of bounds w.r.t. the observed file size.
    Dv202,
    /// Files of one aligned group disagree on iteration counts.
    Dv203,
    /// A DATASPACE region is dead: no query can ever reach its bytes.
    Dv204,
    /// A predicate is provably empty against the implicit loop bounds.
    Dv205,
    /// Predicate contradicts the layout extents: the result is
    /// statically empty (every file group prunes away).
    Dv301,
    /// Predicate is tautological over the dataset's extents: it can
    /// never filter anything.
    Dv302,
    /// Pruning is blocked by a UDF call or a non-finite (NaN-unsound)
    /// constant in the predicate.
    Dv303,
    /// Per-group prune summary (informational note).
    Dv304,
    /// Predicate constrains a coordinate dimension the descriptor
    /// never varies.
    Dv305,
    /// The plan's static byte bound exceeds a declared byte budget.
    Dv401,
    /// Cost is unboundable below a full scan: a UDF or non-finite
    /// constant blocks selectivity reasoning (blocking subexpression
    /// spanned).
    Dv402,
    /// The mover wire-byte bound exceeds what the declared link model
    /// can carry within the deadline.
    Dv403,
    /// The group-cardinality bound exceeds a declared memory budget.
    Dv404,
    /// Cost summary naming the estimate-dominating stage
    /// (informational note).
    Dv405,
}

impl Code {
    /// The registry row for this code (name, default severity,
    /// summary, documentation anchor).
    pub fn info(&self) -> &'static crate::CodeInfo {
        crate::CODE_REGISTRY
            .iter()
            .find(|i| i.code == *self)
            .expect("every Code variant has a registry row")
    }

    pub fn as_str(&self) -> &'static str {
        self.info().name
    }

    /// The severity this code carries unless a pass overrides it.
    pub fn default_severity(&self) -> Severity {
        self.info().severity
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: never trips `--deny-warnings` or exit codes.
    Note,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => f.write_str("note"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding, anchored to a byte span of the analyzed source.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub span: Span,
    pub message: String,
    pub help: Option<String>,
}

impl Diagnostic {
    /// Construct a diagnostic with the code's registry-default
    /// severity — the one constructor every pass should use, so that
    /// severity policy lives in a single table.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span,
            message: message.into(),
            help: None,
        }
    }

    pub fn warning(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: Severity::Warning, span, message: message.into(), help: None }
    }

    pub fn error(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: Severity::Error, span, message: message.into(), help: None }
    }

    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Render the diagnostic against the source it was produced from:
    ///
    /// ```text
    /// warning[DV003]: schema attribute `SGAS` is never stored
    ///   --> ipars.desc:8:1
    ///    |
    ///  8 | SGAS = float
    ///    | ^^^^^^^^^^^^
    ///    = help: remove it or store it in a DATASPACE
    /// ```
    ///
    /// Spans covering several lines underline the first line only.
    pub fn render(&self, source: &str, origin: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        let line_no = line.to_string();
        let gutter = " ".repeat(line_no.len());
        out.push_str(&format!("{gutter}--> {origin}:{line}:{col}\n"));

        if let Some(text) = source.lines().nth(line - 1) {
            let start_in_line = col - 1;
            // Clip the underline to the first line of the span.
            let span_len = self.span.end.saturating_sub(self.span.start).max(1);
            let avail = text.len().saturating_sub(start_in_line).max(1);
            let carets = "^".repeat(span_len.min(avail));
            out.push_str(&format!("{gutter} |\n"));
            out.push_str(&format!("{line_no} | {text}\n"));
            out.push_str(&format!("{gutter} | {}{carets}\n", " ".repeat(start_in_line)));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("{gutter} = help: {help}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_span() {
        let src = "[S]\nBAD = float\nGOOD = int\n";
        let start = src.find("BAD").unwrap();
        let d = Diagnostic::warning(
            Code::Dv003,
            Span::new(start, start + "BAD = float".len()),
            "schema attribute `BAD` is never stored",
        )
        .with_help("store it or drop it");
        let r = d.render(src, "t.desc");
        assert!(r.contains("warning[DV003]"), "{r}");
        assert!(r.contains("--> t.desc:2:1"), "{r}");
        assert!(r.contains("2 | BAD = float"), "{r}");
        assert!(r.contains("^^^^^^^^^^^"), "{r}");
        assert!(r.contains("= help: store it or drop it"), "{r}");
    }

    #[test]
    fn render_survives_dummy_span() {
        let d = Diagnostic::error(Code::Dv101, Span::DUMMY, "boom");
        let r = d.render("abc", "q");
        assert!(r.contains("error[DV101]: boom"), "{r}");
        assert!(r.contains("--> q:1:1"), "{r}");
    }

    #[test]
    fn codes_are_distinct() {
        let all = [
            Code::Dv001,
            Code::Dv002,
            Code::Dv003,
            Code::Dv004,
            Code::Dv005,
            Code::Dv006,
            Code::Dv007,
            Code::Dv008,
            Code::Dv101,
            Code::Dv102,
            Code::Dv103,
            Code::Dv104,
            Code::Dv106,
            Code::Dv107,
            Code::Dv201,
            Code::Dv202,
            Code::Dv203,
            Code::Dv204,
            Code::Dv205,
            Code::Dv301,
            Code::Dv302,
            Code::Dv303,
            Code::Dv304,
            Code::Dv305,
            Code::Dv401,
            Code::Dv402,
            Code::Dv403,
            Code::Dv404,
            Code::Dv405,
        ];
        let mut names: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert_eq!(all.len(), crate::CODE_REGISTRY.len());
    }

    #[test]
    fn new_uses_registry_severity() {
        let d = Diagnostic::new(Code::Dv204, Span::DUMMY, "dead region");
        assert_eq!(d.severity, Severity::Warning);
        let d = Diagnostic::new(Code::Dv201, Span::DUMMY, "overlap");
        assert_eq!(d.severity, Severity::Error);
        let d = Diagnostic::new(Code::Dv304, Span::DUMMY, "prune summary");
        assert_eq!(d.severity, Severity::Note);
    }

    #[test]
    fn note_sorts_below_warning() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
