//! Descriptor lints DV001–DV008 and DV104.
//!
//! DV001–DV007 run on the raw [`DescriptorAst`], so they fire even for
//! descriptors that fail semantic resolution. DV008 compares resolved
//! file extents and DV104 inspects resolved layouts and file groups,
//! so they additionally need the [`DatasetModel`].

use std::collections::{BTreeSet, HashMap};

use dv_descriptor::ast::{DataAst, DatasetAst, DescriptorAst, FileBinding, SpaceItem};
use dv_descriptor::expr::{Env, Expr};
use dv_descriptor::model::{items_byte_size, ResolvedItem, VarExtent};
use dv_descriptor::DatasetModel;
use dv_layout::afc::WorkingSet;
use dv_layout::groups::{consistent, find_file_groups};
use dv_types::Span;

use crate::diag::{Code, Diagnostic};

/// Evaluate `e` if it is a compile-time constant (no free variables).
fn const_eval(e: &Expr) -> Option<i64> {
    e.eval(&Env::new()).ok()
}

/// Every leaf dataset (one with its own DATASPACE or DATA files) in
/// declaration order.
fn leaf_datasets(ast: &DescriptorAst) -> Vec<&DatasetAst> {
    fn walk<'a>(ds: &'a DatasetAst, out: &mut Vec<&'a DatasetAst>) {
        if ds.dataspace.is_some() || matches!(ds.data, DataAst::Files(_)) {
            out.push(ds);
        }
        for child in &ds.children {
            walk(child, out);
        }
    }
    let mut out = Vec::new();
    walk(&ast.layout, &mut out);
    out
}

/// All datasets (leaf or grouping) in the layout tree.
fn all_datasets<'a>(ds: &'a DatasetAst, out: &mut Vec<&'a DatasetAst>) {
    // Recursion is fine: descriptor nesting is bounded by input size.
    let mut stack = vec![ds];
    while let Some(d) = stack.pop() {
        out.push(d);
        for c in &d.children {
            stack.push(c);
        }
    }
}

/// Attribute occurrences stored by a dataspace, in order.
fn stored_occurrences(space: &[SpaceItem], out: &mut Vec<(String, Span)>) {
    for item in space {
        match item {
            SpaceItem::Attrs(attrs) => out.extend(attrs.iter().cloned()),
            SpaceItem::Chunked { attrs, .. } => out.extend(attrs.iter().cloned()),
            SpaceItem::Loop { body, .. } => stored_occurrences(body, out),
        }
    }
}

/// Loop variables of a dataspace, in order.
fn loop_vars(space: &[SpaceItem], out: &mut Vec<(String, Span)>) {
    for item in space {
        if let SpaceItem::Loop { var, body, span, .. } = item {
            out.push((var.clone(), *span));
            loop_vars(body, out);
        }
    }
}

/// DV001: a LOOP nested inside another LOOP over the same variable
/// shadows it; sibling LOOPs over the same variable with overlapping
/// constant ranges double-count rows.
fn check_loops(space: &[SpaceItem], ancestors: &mut Vec<String>, diags: &mut Vec<Diagnostic>) {
    // Shadowing: inner loop variable already bound by an ancestor.
    for item in space {
        if let SpaceItem::Loop { var, body, span, .. } = item {
            if ancestors.iter().any(|a| a == var) {
                diags.push(
                    Diagnostic::new(
                        Code::Dv001,
                        *span,
                        format!(
                            "LOOP over `{var}` shadows an enclosing LOOP over the same variable"
                        ),
                    )
                    .with_help("the inner loop hides the outer iteration; rename one variable"),
                );
            }
            ancestors.push(var.clone());
            check_loops(body, ancestors, diags);
            ancestors.pop();
        }
    }
    // Sibling overlap: two loops at the same level over one variable
    // whose constant ranges intersect.
    let headers: Vec<(&String, &Expr, &Expr, Span)> = space
        .iter()
        .filter_map(|i| match i {
            SpaceItem::Loop { var, lo, hi, span, .. } => Some((var, lo, hi, *span)),
            _ => None,
        })
        .collect();
    for (i, (var_a, lo_a, hi_a, _)) in headers.iter().enumerate() {
        for (var_b, lo_b, hi_b, span_b) in headers.iter().skip(i + 1) {
            if var_a != var_b {
                continue;
            }
            let bounds = (const_eval(lo_a), const_eval(hi_a), const_eval(lo_b), const_eval(hi_b));
            if let (Some(alo), Some(ahi), Some(blo), Some(bhi)) = bounds {
                if alo <= bhi && blo <= ahi {
                    diags.push(
                        Diagnostic::new(
                            Code::Dv001,
                            *span_b,
                            format!(
                                "sibling LOOPs over `{var_a}` have overlapping ranges \
                                 ({alo}..{ahi} and {blo}..{bhi})"
                            ),
                        )
                        .with_help("overlapping ranges enumerate the same points twice"),
                    );
                }
            }
        }
    }
}

/// DV002: attribute stored more than once within one DATASPACE.
fn check_duplicate_stores(leaf: &DatasetAst, diags: &mut Vec<Diagnostic>) {
    let Some(space) = &leaf.dataspace else { return };
    let mut occ = Vec::new();
    stored_occurrences(space, &mut occ);
    let mut seen = BTreeSet::new();
    for (name, span) in occ {
        if !seen.insert(name.clone()) {
            diags.push(
                Diagnostic::new(
                    Code::Dv002,
                    span,
                    format!(
                        "attribute `{name}` is stored more than once in DATASPACE of \
                         dataset \"{}\"",
                        leaf.name
                    ),
                )
                .with_help("each stored attribute should appear exactly once per tuple"),
            );
        }
    }
}

/// Variable names bound by DATA file bindings of a dataset.
fn binding_vars(ds: &DatasetAst) -> Vec<(String, Span)> {
    let mut out = Vec::new();
    if let DataAst::Files(bindings) = &ds.data {
        for b in bindings {
            for (var, _, _, _) in &b.ranges {
                out.push((var.clone(), b.span));
            }
        }
    }
    out
}

/// DV003 + DV004: schema / DATATYPE attributes that no DATASPACE ever
/// stores and no loop or binding ever binds implicitly.
fn check_dead_attrs(ast: &DescriptorAst, diags: &mut Vec<Diagnostic>) {
    let mut stored = BTreeSet::new();
    let mut bound = BTreeSet::new();
    let mut datasets = Vec::new();
    all_datasets(&ast.layout, &mut datasets);
    for ds in &datasets {
        if let Some(space) = &ds.dataspace {
            let mut occ = Vec::new();
            stored_occurrences(space, &mut occ);
            stored.extend(occ.into_iter().map(|(n, _)| n));
            let mut lv = Vec::new();
            loop_vars(space, &mut lv);
            bound.extend(lv.into_iter().map(|(n, _)| n));
        }
        bound.extend(binding_vars(ds).into_iter().map(|(n, _)| n));
    }

    for (name, _, span) in &ast.schema.attrs {
        if !stored.contains(name) && !bound.contains(name) {
            diags.push(
                Diagnostic::new(
                    Code::Dv003,
                    *span,
                    format!("schema attribute `{name}` is never stored or bound by any layout"),
                )
                .with_help("queries touching it will always fail; store it or remove it"),
            );
        }
    }
    for ds in &datasets {
        for (name, _, span) in &ds.extra_attrs {
            if !stored.contains(name) && !bound.contains(name) {
                diags.push(
                    Diagnostic::new(
                        Code::Dv004,
                        *span,
                        format!(
                            "DATATYPE attribute `{name}` of dataset \"{}\" is never stored",
                            ds.name
                        ),
                    )
                    .with_help("dead auxiliary attribute; no DATASPACE lists it"),
                );
            }
        }
    }
}

/// DV005: within a single leaf dataset, an attribute is both stored
/// explicitly in the DATASPACE and bound implicitly by a LOOP or a
/// file-binding range — the two sources of values will conflict.
fn check_double_binding(leaf: &DatasetAst, diags: &mut Vec<Diagnostic>) {
    let Some(space) = &leaf.dataspace else { return };
    let mut occ = Vec::new();
    stored_occurrences(space, &mut occ);
    let mut lv = Vec::new();
    loop_vars(space, &mut lv);
    let implicit: BTreeSet<String> = lv
        .into_iter()
        .map(|(n, _)| n)
        .chain(binding_vars(leaf).into_iter().map(|(n, _)| n))
        .collect();
    for (name, span) in &occ {
        if implicit.contains(name) {
            diags.push(
                Diagnostic::new(
                    Code::Dv005,
                    *span,
                    format!(
                        "attribute `{name}` is stored explicitly in dataset \"{}\" but also \
                         bound implicitly by a LOOP or file-binding range",
                        leaf.name
                    ),
                )
                .with_help("pick one source of values: store it or iterate over it, not both"),
            );
        }
    }
}

/// DV006: constant loop or binding ranges that enumerate nothing
/// (lo > hi) or never terminate conceptually (step <= 0).
fn check_degenerate_ranges(ds: &DatasetAst, diags: &mut Vec<Diagnostic>) {
    fn check_range(
        what: &str,
        var: &str,
        lo: &Expr,
        hi: &Expr,
        step: &Expr,
        span: Span,
        diags: &mut Vec<Diagnostic>,
    ) {
        if let Some(s) = const_eval(step) {
            if s <= 0 {
                diags.push(
                    Diagnostic::new(
                        Code::Dv006,
                        span,
                        format!("{what} over `{var}` has non-positive step {s}"),
                    )
                    .with_help("steps must be >= 1"),
                );
                return;
            }
        }
        if let (Some(l), Some(h)) = (const_eval(lo), const_eval(hi)) {
            if l > h {
                diags.push(
                    Diagnostic::new(
                        Code::Dv006,
                        span,
                        format!("{what} over `{var}` is empty: lower bound {l} > upper bound {h}"),
                    )
                    .with_help("an empty range yields no rows / no files"),
                );
            }
        }
    }
    fn walk_space(space: &[SpaceItem], diags: &mut Vec<Diagnostic>) {
        for item in space {
            if let SpaceItem::Loop { var, lo, hi, step, body, span } = item {
                check_range("LOOP", var, lo, hi, step, *span, diags);
                walk_space(body, diags);
            }
        }
    }
    if let Some(space) = &ds.dataspace {
        walk_space(space, diags);
    }
    if let DataAst::Files(bindings) = &ds.data {
        for b in bindings {
            for (var, lo, hi, step) in &b.ranges {
                check_range("file-binding range", var, lo, hi, step, b.span, diags);
            }
        }
    }
}

/// DV007: a storage `DIR[k]` entry that no file template can ever
/// reference. Skipped entirely when any template's directory index
/// cannot be enumerated statically.
fn check_unreferenced_dirs(ast: &DescriptorAst, diags: &mut Vec<Diagnostic>) {
    let mut referenced: BTreeSet<i64> = BTreeSet::new();
    let mut datasets = Vec::new();
    all_datasets(&ast.layout, &mut datasets);
    for ds in &datasets {
        let DataAst::Files(bindings) = &ds.data else { continue };
        for b in bindings {
            let vars = b.template.dir_index.variables();
            if vars.is_empty() {
                match const_eval(&b.template.dir_index) {
                    Some(k) => {
                        referenced.insert(k);
                    }
                    None => return, // un-analyzable: skip lint
                }
                continue;
            }
            // Enumerate the (usually tiny) cartesian product of the
            // constant binding ranges the index depends on.
            let mut envs: Vec<Env> = vec![Env::new()];
            for v in &vars {
                let Some((_, lo, hi, step)) = b.ranges.iter().find(|(rv, ..)| rv == v) else {
                    return; // index var not bound here: skip lint
                };
                let bounds = (const_eval(lo), const_eval(hi), const_eval(step));
                let (Some(l), Some(h), Some(s)) = bounds else { return };
                if s <= 0 || l > h || (h - l) / s > 10_000 {
                    return; // degenerate or too large to enumerate
                }
                let mut next = Vec::new();
                for env in &envs {
                    let mut x = l;
                    while x <= h {
                        let mut e = env.clone();
                        e.insert(v.clone(), x);
                        next.push(e);
                        x += s;
                    }
                }
                envs = next;
                if envs.len() > 100_000 {
                    return;
                }
            }
            for env in &envs {
                match b.template.dir_index.eval(env) {
                    Ok(k) => {
                        referenced.insert(k);
                    }
                    Err(_) => return,
                }
            }
        }
    }
    for d in &ast.storage.dirs {
        if !referenced.contains(&(d.index as i64)) {
            diags.push(
                Diagnostic::new(
                    Code::Dv007,
                    d.span,
                    format!("storage directory DIR[{}] is referenced by no file template", d.index),
                )
                .with_help("data placed there is invisible to the virtualizer"),
            );
        }
    }
}

fn range_iterations(e: &VarExtent) -> Option<i64> {
    match e {
        VarExtent::Point(_) => None,
        VarExtent::Range { lo, hi, step } => {
            if *step > 0 && lo <= hi {
                Some((hi - lo) / step + 1)
            } else {
                None
            }
        }
    }
}

/// Find the span of the LOOP over `var` inside the leaf dataset named
/// `dataset`, for anchoring DV008.
fn find_loop_span(ast: &DescriptorAst, dataset: &str, var: &str) -> Span {
    fn in_space(space: &[SpaceItem], var: &str) -> Option<Span> {
        for item in space {
            if let SpaceItem::Loop { var: v, body, span, .. } = item {
                if v == var {
                    return Some(*span);
                }
                if let Some(s) = in_space(body, var) {
                    return Some(s);
                }
            }
        }
        None
    }
    let mut datasets = Vec::new();
    all_datasets(&ast.layout, &mut datasets);
    datasets
        .iter()
        .find(|d| d.name == dataset)
        .and_then(|d| d.dataspace.as_ref())
        .and_then(|s| in_space(s, var))
        .unwrap_or(Span::DUMMY)
}

/// DV008: files of different datasets that group together at query
/// time (same node, overlapping extents) but whose shared loop
/// variables enumerate different numbers of points — their computed
/// row counts disagree, so aligned iteration would drop or duplicate
/// rows.
pub fn model_lints(ast: &DescriptorAst, model: &DatasetModel) -> Vec<Diagnostic> {
    let mut diags = check_group_alignment(ast, model);
    diags.extend(check_tiny_runs(ast, model));
    diags
}

fn check_group_alignment(ast: &DescriptorAst, model: &DatasetModel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut reported: BTreeSet<(String, String, String)> = BTreeSet::new();
    for (i, a) in model.files.iter().enumerate() {
        for b in model.files.iter().skip(i + 1) {
            if a.dataset == b.dataset || a.node != b.node || !consistent(a, b) {
                continue;
            }
            for (var, ea) in &a.extents {
                let Some(eb) = b.extents.get(var) else { continue };
                let counts = (range_iterations(ea), range_iterations(eb));
                if let (Some(na), Some(nb)) = counts {
                    if na != nb {
                        let key = (a.dataset.clone(), b.dataset.clone(), var.clone());
                        if !reported.insert(key) {
                            continue;
                        }
                        diags.push(
                            Diagnostic::new(
                                Code::Dv008,
                                find_loop_span(ast, &a.dataset, var),
                                format!(
                                    "datasets \"{}\" and \"{}\" disagree on the number of \
                                     `{var}` iterations ({na} vs {nb}) for files that group \
                                     together",
                                    a.dataset, b.dataset
                                ),
                            )
                            .with_help(
                                "aligned file groups must compute identical row counts per \
                                 shared loop variable",
                            ),
                        );
                    }
                }
            }
        }
    }
    diags
}

/// One I/O coalescing unit: AFC runs below this size cannot amortize a
/// seek, so every row block costs one read syscall per grouped file.
const DV104_RUN_BYTES: u64 = 4096;
/// Fan-in below this rarely hurts — a couple of small-run files still
/// coalesce fine along the time axis within each file.
const DV104_FAN_IN: usize = 4;

/// Does any loop in `items` iterate over an index attribute?
fn has_index_loop(items: &[ResolvedItem], index: &BTreeSet<&str>) -> bool {
    items.iter().any(|i| match i {
        ResolvedItem::Loop { var, body, .. } => {
            index.contains(var.as_str()) || has_index_loop(body, index)
        }
        _ => false,
    })
}

/// Smallest contiguous byte run left in `items` once every loop over an
/// index attribute is sliced down to a single value — the granularity
/// of the AFC entries a point query produces. `None` when the layout is
/// chunked (data-dependent) or an attribute size is unknown.
fn min_sliced_run(
    items: &[ResolvedItem],
    index: &BTreeSet<&str>,
    sizes: &HashMap<String, usize>,
) -> Option<u64> {
    if items.iter().any(|i| matches!(i, ResolvedItem::Chunked { .. })) {
        return None;
    }
    if !has_index_loop(items, index) {
        // Nothing here gets sliced: the whole sequence reads as one
        // contiguous span.
        return items_byte_size(items, sizes);
    }
    let mut min: Option<u64> = None;
    for item in items {
        if let ResolvedItem::Loop { var, body, .. } = item {
            if index.contains(var.as_str()) || has_index_loop(body, index) {
                let r = min_sliced_run(body, index, sizes)?;
                min = Some(min.map_or(r, |m| m.min(r)));
            }
        }
    }
    min
}

/// Deepest index-attribute loop variable in `items` — the loop whose
/// slicing produces the minimal run, used to anchor DV104.
fn innermost_index_var<'a>(items: &'a [ResolvedItem], index: &BTreeSet<&str>) -> Option<&'a str> {
    let mut found = None;
    for item in items {
        if let ResolvedItem::Loop { var, body, .. } = item {
            if let Some(v) = innermost_index_var(body, index) {
                found = Some(v);
            } else if index.contains(var.as_str()) {
                found = Some(var.as_str());
            }
        }
    }
    found
}

/// DV104: a dataset whose files group together with high fan-in while
/// each point-query slice of its layout reads less than one coalescing
/// unit. Every row block then seeks across all grouped files and the
/// I/O scheduler's merged reads degenerate to seek-per-file traffic.
fn check_tiny_runs(ast: &DescriptorAst, model: &DatasetModel) -> Vec<Diagnostic> {
    let index: BTreeSet<&str> = model.index_attrs.iter().map(|s| s.as_str()).collect();
    if index.is_empty() {
        return Vec::new();
    }
    let working = WorkingSet::new(model, (0..model.schema.len()).collect());
    let ranges = HashMap::new();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    let mut diags = Vec::new();
    for node in 0..model.node_count() {
        for group in find_file_groups(model, node, &ranges, &working) {
            if group.len() < DV104_FAN_IN {
                continue;
            }
            for f in &group {
                if reported.contains(&f.dataset) {
                    continue;
                }
                // A file with no index loop is read once per query,
                // not re-sought per slice — never a seek storm.
                let Some(var) = innermost_index_var(&f.layout, &index) else {
                    continue;
                };
                let Some(run) = min_sliced_run(&f.layout, &index, &model.attr_sizes) else {
                    continue;
                };
                if run == 0 || run >= DV104_RUN_BYTES {
                    continue;
                }
                reported.insert(f.dataset.clone());
                diags.push(
                    Diagnostic::new(
                        Code::Dv104,
                        find_loop_span(ast, &f.dataset, var),
                        format!(
                            "dataset \"{}\" yields {run}-byte AFC runs per `{var}` value in \
                             {}-file groups — smaller than one {DV104_RUN_BYTES}-byte \
                             coalescing unit",
                            f.dataset,
                            group.len()
                        ),
                    )
                    .with_help(
                        "each row block seeks once per grouped file; store more rows per \
                         index value (or split the dataset across fewer files) so coalesced \
                         reads stay effective",
                    ),
                );
            }
        }
    }
    diags
}

/// DV107: a non-affine codec (CSV/zstd) on a DATA binding inside a
/// layout that is otherwise fully verifiable — the codec alone
/// forfeits the `Safe` certificate, so every query over these files
/// pays checked-decode throughput it would not pay with fixed binary.
fn check_nonaffine_codecs(ast: &DescriptorAst, diags: &mut Vec<Diagnostic>) {
    let mut datasets = Vec::new();
    all_datasets(&ast.layout, &mut datasets);
    let mut nonaffine: Vec<(&DatasetAst, &FileBinding)> = Vec::new();
    for ds in &datasets {
        if ds.dataspace.is_none() {
            continue;
        }
        if let DataAst::Files(bindings) = &ds.data {
            for b in bindings {
                if !b.codec.is_affine() {
                    nonaffine.push((ds, b));
                }
            }
        }
    }
    if nonaffine.is_empty() {
        return;
    }
    // Each non-affine binding contributes exactly one unproven reason
    // to the elaboration; any reason beyond those means the layout
    // would not have verified `Safe` with the binary codec either, so
    // the codec is not what the workload loses the certificate to.
    let e = crate::verify::extent::elaborate(ast);
    if e.unproven.len() != nonaffine.len() {
        return;
    }
    for (ds, b) in nonaffine {
        diags.push(
            Diagnostic::new(
                Code::Dv107,
                b.span,
                format!(
                    "dataset \"{}\" stores files with CODEC {} inside a layout that would \
                     otherwise verify Safe: the codec alone forfeits the certificate, so \
                     every query runs the slower checked decode",
                    ds.name,
                    b.codec.descriptor_name()
                ),
            )
            .with_help(
                "re-encode as fixed binary to regain unchecked-decode throughput, or keep \
                 the codec if storage footprint or interchange matters more",
            ),
        );
    }
}

/// Run DV001–DV007 (plus the DV107 codec note) over a parsed
/// descriptor.
pub fn descriptor_lints(ast: &DescriptorAst) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let mut datasets = Vec::new();
    all_datasets(&ast.layout, &mut datasets);
    for ds in &datasets {
        if let Some(space) = &ds.dataspace {
            let mut stack = Vec::new();
            check_loops(space, &mut stack, &mut diags);
        }
        check_degenerate_ranges(ds, &mut diags);
    }
    for leaf in leaf_datasets(ast) {
        check_duplicate_stores(leaf, &mut diags);
        check_double_binding(leaf, &mut diags);
    }
    check_dead_attrs(ast, &mut diags);
    check_unreferenced_dirs(ast, &mut diags);
    check_nonaffine_codecs(ast, &mut diags);
    diags
}
