//! `dv-lint` — static analysis over datavirt descriptors and queries.
//!
//! The descriptor language of the paper (Section 3, Figure 4) is easy
//! to get subtly wrong: a loop range that double-counts grid points, a
//! schema attribute no dataspace ever stores, a storage directory that
//! no file template references. None of these are *syntax* errors —
//! the compiler happily resolves them — but every one of them makes
//! the virtualized relation lie to its consumers.
//!
//! This crate implements a lint pass that catches those mistakes
//! early and reports them as spanned, rustc-style diagnostics:
//!
//! ```text
//! warning[DV003]: schema attribute `SGAS` is never stored or bound by any layout
//!   --> reservoir.desc:8:1
//!    |
//!  8 | SGAS = float
//!    | ^^^^^^^^^^^^
//!    = help: queries touching it will always fail; store it or remove it
//! ```
//!
//! Two passes exist:
//!
//! * [`lint_descriptor`] — DV001..DV008 and DV104 over descriptor
//!   text. Syntax
//!   errors abort (the parser reports those); everything else, even a
//!   descriptor the resolver rejects, still gets AST-level lints.
//! * [`lint_query`] — DV101..DV103 and DV106 over a SQL string checked
//!   against a resolved [`DatasetModel`]: provably-empty predicates,
//!   UDF filters that defeat index pruning, UDF filters that defeat
//!   vectorized execution, and degenerate aggregations over pinned
//!   coordinates.
//! * [`verify_descriptor`] / [`verify_query`] — the `dv-verify`
//!   semantic pass (DV201..DV205): abstract interpretation of the
//!   layout with a symbolic affine/interval domain that *proves* or
//!   *refutes* overlap-freedom, in-boundedness, group alignment,
//!   region liveness, and predicate satisfiability. Refutations carry
//!   concrete counterexamples; a fully proved descriptor earns a
//!   `Safe` certificate that lets the executor drop per-row bounds
//!   checks (see `dv-layout::Certificate`).
//! * [`prune_query`] — the dv-prune static pass (DV301..DV305):
//!   three-valued abstract interpretation of the WHERE clause over the
//!   dataset's per-attribute extent hulls. It reports statically-empty
//!   results (DV301), tautological predicates (DV302), prune blockers
//!   such as UDF calls and non-finite constants (DV303), a per-file
//!   prune summary note (DV304), and predicates constraining a
//!   coordinate the descriptor never varies (DV305).
//! * [`cost_query`] — the dv-cost static pass (DV401..DV405): derives
//!   the plan's guaranteed resource bounds (rows, bytes, syscalls,
//!   mover wire bytes, group cardinality — see
//!   `dv_layout::CostReport`) and checks them against declared
//!   [`CostBudgets`]: byte budgets (DV401), unboundable-cost blockers
//!   (DV402), link-capacity deadlines (DV403), group-memory budgets
//!   (DV404), plus a dominating-stage summary note (DV405).
//!
//! The single source of truth for every code's name, default severity
//! and documentation anchor is [`CODE_REGISTRY`]:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | DV001 | warning  | shadowing / overlapping `LOOP`s over one variable |
//! | DV002 | warning  | attribute stored twice in one `DATASPACE` |
//! | DV003 | warning  | schema attribute never stored or bound |
//! | DV004 | warning  | dead `DATATYPE` auxiliary attribute |
//! | DV005 | error    | attribute both stored and implicitly bound |
//! | DV006 | error    | empty or non-positive-stride range |
//! | DV007 | warning  | storage `DIR` referenced by no file template |
//! | DV008 | warning  | aligned datasets disagree on iteration counts |
//! | DV101 | warning  | predicate provably selects nothing |
//! | DV102 | warning  | UDF filter over an index-prunable attribute |
//! | DV103 | warning  | UDF filter with no vectorizable guard conjunct |
//! | DV104 | warning  | AFC runs smaller than one I/O coalescing unit at high fan-in |
//! | DV106 | warning  | aggregate keyed by or computed over a never-varying coordinate |
//! | DV201 | error    | two DATA items overlap within one file |
//! | DV202 | error    | layout access out of bounds of the observed file size |
//! | DV203 | error    | aligned file group with mismatched row counts |
//! | DV204 | warning  | dead (unreachable or zero-iteration) DATASPACE region |
//! | DV205 | error    | predicate provably empty against implicit loop bounds |
//! | DV301 | warning  | predicate contradicts layout extents; result statically empty |
//! | DV302 | warning  | predicate tautological over the dataset's extents |
//! | DV303 | warning  | pruning blocked by a UDF or NaN-unsound comparison |
//! | DV304 | note     | per-group static prune summary |
//! | DV305 | warning  | predicate constrains a never-varying coordinate dimension |
//! | DV401 | warning  | static byte bound exceeds the declared byte budget |
//! | DV402 | warning  | cost unboundable below a full scan (UDF / non-finite blocker) |
//! | DV403 | warning  | mover byte bound exceeds link capacity within the deadline |
//! | DV404 | warning  | group-cardinality bound exceeds the declared memory budget |
//! | DV405 | note     | static cost summary naming the dominating stage |

pub mod cost;
mod descriptor;
mod diag;
pub mod prune;
mod query;
pub mod verify;

pub use cost::{cost_query, CostBudgets, LinkBudget};
pub use diag::{Code, Diagnostic, Severity};
pub use prune::prune_query;
pub use query::lint_query;
pub use verify::{
    verify_ast, verify_descriptor, verify_query, Counterexample, Emitted, Finding, VerifyReport,
};

use dv_descriptor::{parse_descriptor, resolve};
use dv_types::Result;

/// One row of the diagnostic-code registry: the printable name, the
/// severity a [`Diagnostic::new`] gets by default, a one-line summary,
/// and the `docs/LANGUAGE.md` anchor documenting the code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    pub code: Code,
    pub name: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
    pub doc: &'static str,
}

const fn row(
    code: Code,
    name: &'static str,
    severity: Severity,
    summary: &'static str,
) -> CodeInfo {
    CodeInfo { code, name, severity, summary, doc: "docs/LANGUAGE.md#diagnostics" }
}

/// Every code the crate can emit, in ascending order. Both lint passes
/// and the verify pass construct diagnostics through this table so the
/// severity policy is declared exactly once.
pub const CODE_REGISTRY: &[CodeInfo] = &[
    row(
        Code::Dv001,
        "DV001",
        Severity::Warning,
        "shadowing or overlapping LOOPs over one variable",
    ),
    row(Code::Dv002, "DV002", Severity::Warning, "attribute stored twice in one DATASPACE"),
    row(Code::Dv003, "DV003", Severity::Warning, "schema attribute never stored or bound"),
    row(Code::Dv004, "DV004", Severity::Warning, "dead DATATYPE auxiliary attribute"),
    row(Code::Dv005, "DV005", Severity::Error, "attribute both stored and implicitly bound"),
    row(Code::Dv006, "DV006", Severity::Error, "empty or non-positive-stride range"),
    row(Code::Dv007, "DV007", Severity::Warning, "storage DIR referenced by no file template"),
    row(Code::Dv008, "DV008", Severity::Warning, "aligned datasets disagree on iteration counts"),
    row(Code::Dv101, "DV101", Severity::Warning, "predicate provably selects nothing"),
    row(Code::Dv102, "DV102", Severity::Warning, "UDF filter over an index-prunable attribute"),
    row(Code::Dv103, "DV103", Severity::Warning, "UDF filter with no vectorizable guard conjunct"),
    row(Code::Dv104, "DV104", Severity::Warning, "AFC runs below one I/O coalescing unit"),
    row(
        Code::Dv106,
        "DV106",
        Severity::Warning,
        "aggregate keyed by or computed over a never-varying coordinate",
    ),
    row(
        Code::Dv107,
        "DV107",
        Severity::Note,
        "non-affine codec on a layout that would otherwise verify Safe",
    ),
    row(Code::Dv201, "DV201", Severity::Error, "two DATA items overlap within one file"),
    row(Code::Dv202, "DV202", Severity::Error, "layout access out of bounds of the file size"),
    row(Code::Dv203, "DV203", Severity::Error, "aligned file group with mismatched row counts"),
    row(Code::Dv204, "DV204", Severity::Warning, "dead DATASPACE region"),
    row(Code::Dv205, "DV205", Severity::Error, "predicate provably empty against loop bounds"),
    row(
        Code::Dv301,
        "DV301",
        Severity::Warning,
        "predicate contradicts layout extents; result statically empty",
    ),
    row(Code::Dv302, "DV302", Severity::Warning, "predicate tautological over dataset extents"),
    row(Code::Dv303, "DV303", Severity::Warning, "pruning blocked by UDF or non-finite constant"),
    row(Code::Dv304, "DV304", Severity::Note, "per-group static prune summary"),
    row(
        Code::Dv305,
        "DV305",
        Severity::Warning,
        "predicate constrains a never-varying coordinate dimension",
    ),
    row(Code::Dv401, "DV401", Severity::Warning, "static byte bound exceeds the byte budget"),
    row(
        Code::Dv402,
        "DV402",
        Severity::Warning,
        "cost unboundable below a full scan (UDF or non-finite blocker)",
    ),
    row(
        Code::Dv403,
        "DV403",
        Severity::Warning,
        "mover byte bound exceeds link capacity within the deadline",
    ),
    row(
        Code::Dv404,
        "DV404",
        Severity::Warning,
        "group-cardinality bound exceeds the memory budget",
    ),
    row(Code::Dv405, "DV405", Severity::Note, "static cost summary (dominating stage)"),
];

/// Lint descriptor text: parse, run the AST lints, and — when the
/// descriptor also resolves — the model-level lints. Diagnostics come
/// back ordered by source position.
pub fn lint_descriptor(text: &str) -> Result<Vec<Diagnostic>> {
    let ast = parse_descriptor(text)?;
    let mut diags = descriptor::descriptor_lints(&ast);
    if let Ok(model) = resolve(&ast) {
        diags.extend(descriptor::model_lints(&ast, &model));
    }
    diags.sort_by_key(|d| (d.span.start, d.code));
    Ok(diags)
}

/// Render a batch of diagnostics against their source, separated by
/// blank lines — the format the CLI and the golden tests print.
pub fn render_all(diags: &[Diagnostic], source: &str, origin: &str) -> String {
    diags.iter().map(|d| d.render(source, origin)).collect::<Vec<_>>().join("\n")
}
