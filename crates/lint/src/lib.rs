//! `dv-lint` — static analysis over datavirt descriptors and queries.
//!
//! The descriptor language of the paper (Section 3, Figure 4) is easy
//! to get subtly wrong: a loop range that double-counts grid points, a
//! schema attribute no dataspace ever stores, a storage directory that
//! no file template references. None of these are *syntax* errors —
//! the compiler happily resolves them — but every one of them makes
//! the virtualized relation lie to its consumers.
//!
//! This crate implements a lint pass that catches those mistakes
//! early and reports them as spanned, rustc-style diagnostics:
//!
//! ```text
//! warning[DV003]: schema attribute `SGAS` is never stored or bound by any layout
//!   --> reservoir.desc:8:1
//!    |
//!  8 | SGAS = float
//!    | ^^^^^^^^^^^^
//!    = help: queries touching it will always fail; store it or remove it
//! ```
//!
//! Two passes exist:
//!
//! * [`lint_descriptor`] — DV001..DV008 and DV104 over descriptor
//!   text. Syntax
//!   errors abort (the parser reports those); everything else, even a
//!   descriptor the resolver rejects, still gets AST-level lints.
//! * [`lint_query`] — DV101..DV103 over a SQL string checked against a
//!   resolved [`DatasetModel`]: provably-empty predicates, UDF
//!   filters that defeat index pruning, and UDF filters that defeat
//!   vectorized execution.
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | DV001 | warning  | shadowing / overlapping `LOOP`s over one variable |
//! | DV002 | warning  | attribute stored twice in one `DATASPACE` |
//! | DV003 | warning  | schema attribute never stored or bound |
//! | DV004 | warning  | dead `DATATYPE` auxiliary attribute |
//! | DV005 | error    | attribute both stored and implicitly bound |
//! | DV006 | error    | empty or non-positive-stride range |
//! | DV007 | warning  | storage `DIR` referenced by no file template |
//! | DV008 | warning  | aligned datasets disagree on iteration counts |
//! | DV101 | warning  | predicate provably selects nothing |
//! | DV102 | warning  | UDF filter over an index-prunable attribute |
//! | DV103 | warning  | UDF filter with no vectorizable guard conjunct |
//! | DV104 | warning  | AFC runs smaller than one I/O coalescing unit at high fan-in |

mod descriptor;
mod diag;
mod query;

pub use diag::{Code, Diagnostic, Severity};
pub use query::lint_query;

use dv_descriptor::{parse_descriptor, resolve};
use dv_types::Result;

/// Lint descriptor text: parse, run the AST lints, and — when the
/// descriptor also resolves — the model-level lints. Diagnostics come
/// back ordered by source position.
pub fn lint_descriptor(text: &str) -> Result<Vec<Diagnostic>> {
    let ast = parse_descriptor(text)?;
    let mut diags = descriptor::descriptor_lints(&ast);
    if let Ok(model) = resolve(&ast) {
        diags.extend(descriptor::model_lints(&ast, &model));
    }
    diags.sort_by_key(|d| (d.span.start, d.code));
    Ok(diags)
}

/// Render a batch of diagnostics against their source, separated by
/// blank lines — the format the CLI and the golden tests print.
pub fn render_all(diags: &[Diagnostic], source: &str, origin: &str) -> String {
    diags.iter().map(|d| d.render(source, origin)).collect::<Vec<_>>().join("\n")
}
