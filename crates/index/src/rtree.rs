//! A static R-tree bulk-loaded with Sort-Tile-Recursive (STR) packing.
//!
//! Read-only scientific repositories never update in place (the paper
//! keeps data "in the original format it is generated"), so a packed
//! static tree is both simpler and faster than a dynamic R*-tree:
//! bulk load is O(n log n), nodes are fully packed, and queries touch
//! the minimum number of nodes for the fanout.

use crate::rect::Rect;

const FANOUT: usize = 16;

#[derive(Debug)]
enum Node<T> {
    Leaf { rect: Rect, entries: Vec<(Rect, T)> },
    Inner { rect: Rect, children: Vec<Node<T>> },
}

impl<T> Node<T> {
    fn rect(&self) -> &Rect {
        match self {
            Node::Leaf { rect, .. } | Node::Inner { rect, .. } => rect,
        }
    }
}

/// A static spatial index over `(Rect, T)` entries.
#[derive(Debug)]
pub struct RTree<T> {
    root: Option<Node<T>>,
    dims: usize,
    len: usize,
}

impl<T> RTree<T> {
    /// Bulk-load the tree from entries using STR packing.
    pub fn bulk_load(dims: usize, mut entries: Vec<(Rect, T)>) -> RTree<T> {
        let len = entries.len();
        for (r, _) in &entries {
            assert_eq!(r.dims(), dims, "entry dimensionality mismatch");
        }
        if entries.is_empty() {
            return RTree { root: None, dims, len: 0 };
        }
        let leaves = str_pack_leaves(dims, &mut entries);
        let root = build_upwards(dims, leaves);
        RTree { root: Some(root), dims, len }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Visit every entry whose rect intersects `query`.
    pub fn query<'a>(&'a self, query: &Rect, mut visit: impl FnMut(&'a Rect, &'a T)) {
        if let Some(root) = &self.root {
            query_rec(root, query, &mut visit);
        }
    }

    /// Collect references to all intersecting items.
    pub fn query_collect<'a>(&'a self, query: &Rect) -> Vec<&'a T> {
        let mut out = Vec::new();
        self.query(query, |_, item| out.push(item));
        out
    }

    /// Number of tree nodes visited by `query` — exposed for the
    /// index-ablation bench (R-tree vs linear chunk scan).
    pub fn nodes_visited(&self, query: &Rect) -> usize {
        fn rec<T>(node: &Node<T>, query: &Rect, count: &mut usize) {
            *count += 1;
            match node {
                Node::Leaf { .. } => {}
                Node::Inner { children, .. } => {
                    for c in children {
                        if c.rect().intersects(query) {
                            rec(c, query, count);
                        }
                    }
                }
            }
        }
        let mut count = 0;
        if let Some(root) = &self.root {
            if root.rect().intersects(query) {
                rec(root, query, &mut count);
            }
        }
        count
    }
}

fn query_rec<'a, T>(node: &'a Node<T>, query: &Rect, visit: &mut impl FnMut(&'a Rect, &'a T)) {
    match node {
        Node::Leaf { rect, entries } => {
            if rect.intersects(query) {
                for (r, item) in entries {
                    if r.intersects(query) {
                        visit(r, item);
                    }
                }
            }
        }
        Node::Inner { rect, children } => {
            if rect.intersects(query) {
                for c in children {
                    query_rec(c, query, visit);
                }
            }
        }
    }
}

fn bounding<T>(nodes: &[Node<T>]) -> Rect {
    let mut rect = Rect::empty(nodes[0].rect().dims());
    for n in nodes {
        rect.union_in_place(n.rect());
    }
    rect
}

fn bounding_entries<T>(entries: &[(Rect, T)]) -> Rect {
    let mut rect = Rect::empty(entries[0].0.dims());
    for (r, _) in entries {
        rect.union_in_place(r);
    }
    rect
}

/// Sort-Tile-Recursive leaf packing: recursively sort by each
/// dimension's center and slice into tiles so that leaves are spatially
/// coherent and fully packed.
fn str_pack_leaves<T>(dims: usize, entries: &mut Vec<(Rect, T)>) -> Vec<Node<T>> {
    let mut slices: Vec<Vec<(Rect, T)>> = vec![std::mem::take(entries)];
    for d in 0..dims {
        let remaining_dims = dims - d;
        let mut next: Vec<Vec<(Rect, T)>> = Vec::new();
        for mut slice in slices {
            let n = slice.len();
            let leaves_needed = n.div_ceil(FANOUT);
            // Number of slabs along this dimension: the STR rule
            // ceil(leaves^(1/remaining_dims)).
            let slabs = (leaves_needed as f64).powf(1.0 / remaining_dims as f64).ceil() as usize;
            let slabs = slabs.max(1);
            let per_slab = n.div_ceil(slabs);
            slice.sort_by(|a, b| a.0.center(d).total_cmp(&b.0.center(d)));
            let mut iter = slice.into_iter().peekable();
            while iter.peek().is_some() {
                let chunk: Vec<(Rect, T)> = iter.by_ref().take(per_slab.max(1)).collect();
                next.push(chunk);
            }
        }
        slices = next;
    }
    // Each slice now holds spatially coherent entries; cut into leaves.
    let mut leaves = Vec::new();
    for slice in slices {
        let mut iter = slice.into_iter().peekable();
        while iter.peek().is_some() {
            let chunk: Vec<(Rect, T)> = iter.by_ref().take(FANOUT).collect();
            let rect = bounding_entries(&chunk);
            leaves.push(Node::Leaf { rect, entries: chunk });
        }
    }
    leaves
}

fn build_upwards<T>(dims: usize, mut level: Vec<Node<T>>) -> Node<T> {
    while level.len() > 1 {
        // Keep parents spatially coherent by sorting on the first
        // dimension's center before grouping.
        level.sort_by(|a, b| a.rect().center(0).total_cmp(&b.rect().center(0)));
        let mut next = Vec::with_capacity(level.len().div_ceil(FANOUT));
        let mut iter = level.into_iter().peekable();
        while iter.peek().is_some() {
            let children: Vec<Node<T>> = iter.by_ref().take(FANOUT).collect();
            let rect = bounding(&children);
            next.push(Node::Inner { rect, children });
        }
        level = next;
    }
    let _ = dims;
    level.pop().expect("non-empty level")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(x: f64, y: f64) -> Rect {
        Rect::new(vec![x, y], vec![x, y])
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::bulk_load(2, Vec::new());
        assert!(t.is_empty());
        assert!(t.query_collect(&Rect::everything(2)).is_empty());
    }

    #[test]
    fn single_entry() {
        let t = RTree::bulk_load(2, vec![(point(1.0, 2.0), 7u32)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_collect(&Rect::new(vec![0.0, 0.0], vec![5.0, 5.0])), vec![&7]);
        assert!(t.query_collect(&Rect::new(vec![3.0, 3.0], vec![5.0, 5.0])).is_empty());
    }

    #[test]
    fn grid_query_matches_linear_scan() {
        // 20x20 grid of unit tiles.
        let mut entries = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let r = Rect::new(vec![i as f64, j as f64], vec![i as f64 + 1.0, j as f64 + 1.0]);
                entries.push((r, (i, j)));
            }
        }
        let linear = entries.clone();
        let t = RTree::bulk_load(2, entries);
        assert_eq!(t.len(), 400);

        let q = Rect::new(vec![3.5, 7.2], vec![8.9, 9.1]);
        let mut from_tree: Vec<(i32, i32)> = t.query_collect(&q).into_iter().copied().collect();
        let mut from_scan: Vec<(i32, i32)> =
            linear.iter().filter(|(r, _)| r.intersects(&q)).map(|(_, v)| *v).collect();
        from_tree.sort();
        from_scan.sort();
        assert_eq!(from_tree, from_scan);
        assert!(!from_tree.is_empty());
    }

    #[test]
    fn visits_fewer_nodes_on_selective_query() {
        let mut entries = Vec::new();
        for i in 0..1000 {
            let x = (i % 100) as f64;
            let y = (i / 100) as f64;
            entries.push((point(x, y), i));
        }
        let t = RTree::bulk_load(2, entries);
        let selective = Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        let broad = Rect::everything(2);
        assert!(t.nodes_visited(&selective) < t.nodes_visited(&broad));
    }

    #[test]
    fn three_dimensional() {
        let mut entries = Vec::new();
        for i in 0..64 {
            let c = vec![(i % 4) as f64, ((i / 4) % 4) as f64, (i / 16) as f64];
            entries.push((Rect::new(c.clone(), c), i));
        }
        let t = RTree::bulk_load(3, entries);
        let q = Rect::new(vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]);
        assert_eq!(t.query_collect(&q).len(), 8);
    }
}
