//! # dv-index
//!
//! Indexing substrate for the STORM indexing service:
//!
//! * [`Rect`] — axis-aligned boxes in *k* dimensions;
//! * [`RTree`] — a static, STR-bulk-loaded R-tree over chunk minimum
//!   bounding rectangles. The paper's Titan dataset builds "a spatial
//!   index ... so that chunks that intersect the query are searched
//!   for quickly" (§2.2); this is that index.
//! * [`chunkfile`] — the on-disk chunk index format referenced by
//!   `CHUNKED INDEXFILE` layouts: per chunk, the bounds of each
//!   indexed attribute plus the byte offset and row count.

pub mod chunkfile;
pub mod rect;
pub mod rtree;

pub use chunkfile::{read_chunk_index, write_chunk_index, ChunkIndexEntry};
pub use rect::Rect;
pub use rtree::RTree;
