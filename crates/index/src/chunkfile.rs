//! On-disk chunk index format for `CHUNKED INDEXFILE` layouts.
//!
//! The paper's Titan dataset partitions processed satellite data into
//! spatial-temporal chunks and builds a spatial index over them
//! (§2.2). We serialize that index as a small binary sidecar file the
//! generated index function loads at plan-build time:
//!
//! ```text
//! magic   : b"DVIX"
//! version : u32 le (currently 1)
//! dims    : u32 le — number of indexed attributes
//! count   : u64 le — number of chunks
//! entry*  : dims × (lo f64 le, hi f64 le), offset u64 le, rows u64 le
//! ```
//!
//! Entries must be non-overlapping in byte ranges but may overlap
//! spatially (satellite sweeps revisit regions).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use dv_types::{DvError, Result};

use crate::rect::Rect;

const MAGIC: &[u8; 4] = b"DVIX";
const VERSION: u32 = 1;

/// One chunk of a chunked data file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkIndexEntry {
    /// Per indexed attribute: inclusive `(lo, hi)` bounds of the values
    /// inside the chunk.
    pub bounds: Vec<(f64, f64)>,
    /// Byte offset of the chunk within the data file.
    pub offset: u64,
    /// Number of records in the chunk.
    pub rows: u64,
}

impl ChunkIndexEntry {
    /// Bounds as a [`Rect`] for R-tree loading.
    pub fn rect(&self) -> Rect {
        let lo = self.bounds.iter().map(|b| b.0).collect();
        let hi = self.bounds.iter().map(|b| b.1).collect();
        Rect::new(lo, hi)
    }
}

/// Write a chunk index file.
pub fn write_chunk_index(path: &Path, dims: usize, entries: &[ChunkIndexEntry]) -> Result<()> {
    let to_err = |e: std::io::Error| DvError::io(path.display().to_string(), e);
    let mut w = BufWriter::new(File::create(path).map_err(to_err)?);
    w.write_all(MAGIC).map_err(to_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(to_err)?;
    w.write_all(&(dims as u32).to_le_bytes()).map_err(to_err)?;
    w.write_all(&(entries.len() as u64).to_le_bytes()).map_err(to_err)?;
    for e in entries {
        if e.bounds.len() != dims {
            return Err(DvError::Runtime(format!(
                "chunk index entry has {} bounds, expected {dims}",
                e.bounds.len()
            )));
        }
        for (lo, hi) in &e.bounds {
            w.write_all(&lo.to_le_bytes()).map_err(to_err)?;
            w.write_all(&hi.to_le_bytes()).map_err(to_err)?;
        }
        w.write_all(&e.offset.to_le_bytes()).map_err(to_err)?;
        w.write_all(&e.rows.to_le_bytes()).map_err(to_err)?;
    }
    w.flush().map_err(to_err)
}

/// Read a chunk index file, returning `(dims, entries)`.
pub fn read_chunk_index(path: &Path) -> Result<(usize, Vec<ChunkIndexEntry>)> {
    let to_err = |e: std::io::Error| DvError::io(path.display().to_string(), e);
    let mut r = BufReader::new(File::open(path).map_err(to_err)?);

    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(to_err)?;
    if &magic != MAGIC {
        return Err(DvError::Runtime(format!(
            "{} is not a chunk index file (bad magic)",
            path.display()
        )));
    }
    let version = read_u32(&mut r, path)?;
    if version != VERSION {
        return Err(DvError::Runtime(format!(
            "chunk index {} has unsupported version {version}",
            path.display()
        )));
    }
    let dims = read_u32(&mut r, path)? as usize;
    let count = read_u64(&mut r, path)? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let mut bounds = Vec::with_capacity(dims);
        for _ in 0..dims {
            let lo = read_f64(&mut r, path)?;
            let hi = read_f64(&mut r, path)?;
            bounds.push((lo, hi));
        }
        let offset = read_u64(&mut r, path)?;
        let rows = read_u64(&mut r, path)?;
        entries.push(ChunkIndexEntry { bounds, offset, rows });
    }
    Ok((dims, entries))
}

fn read_u32(r: &mut impl Read, path: &Path) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(|e| DvError::io(path.display().to_string(), e))?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read, path: &Path) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|e| DvError::io(path.display().to_string(), e))?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f64(r: &mut impl Read, path: &Path) -> Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|e| DvError::io(path.display().to_string(), e))?;
    Ok(f64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dvix-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip() {
        let path = tmpdir().join("idx.bin");
        let entries = vec![
            ChunkIndexEntry { bounds: vec![(0.0, 10.0), (5.0, 6.0)], offset: 0, rows: 128 },
            ChunkIndexEntry { bounds: vec![(10.0, 20.0), (-1.0, 2.5)], offset: 4096, rows: 64 },
        ];
        write_chunk_index(&path, 2, &entries).unwrap();
        let (dims, back) = read_chunk_index(&path).unwrap();
        assert_eq!(dims, 2);
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_index_roundtrips() {
        let path = tmpdir().join("empty.bin");
        write_chunk_index(&path, 3, &[]).unwrap();
        let (dims, back) = read_chunk_index(&path).unwrap();
        assert_eq!(dims, 3);
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpdir().join("junk.bin");
        std::fs::write(&path, b"NOTANINDEXFILE__").unwrap();
        let e = read_chunk_index(&path).unwrap_err().to_string();
        assert!(e.contains("bad magic"), "{e}");
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmpdir().join("trunc.bin");
        let entries = vec![ChunkIndexEntry { bounds: vec![(0.0, 1.0)], offset: 0, rows: 1 }];
        write_chunk_index(&path, 1, &entries).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        assert!(read_chunk_index(&path).is_err());
    }

    #[test]
    fn wrong_dims_rejected_on_write() {
        let path = tmpdir().join("dims.bin");
        let entries = vec![ChunkIndexEntry { bounds: vec![(0.0, 1.0)], offset: 0, rows: 1 }];
        assert!(write_chunk_index(&path, 2, &entries).is_err());
    }

    #[test]
    fn entry_rect() {
        let e = ChunkIndexEntry { bounds: vec![(0.0, 1.0), (2.0, 3.0)], offset: 0, rows: 9 };
        let r = e.rect();
        assert_eq!(r.lo(0), 0.0);
        assert_eq!(r.hi(1), 3.0);
    }
}
