//! Axis-aligned boxes in *k* dimensions (dynamic dimensionality — the
//! indexed-attribute count comes from the descriptor at runtime).

/// An axis-aligned, closed box: `lo[d] <= x[d] <= hi[d]` per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// Build from per-dimension bounds. Panics if `lo`/`hi` lengths
    /// differ (descriptor compilation guarantees they match).
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Rect {
        assert_eq!(lo.len(), hi.len(), "rect dimensionality mismatch");
        Rect { lo, hi }
    }

    /// A rect covering everything in `dims` dimensions.
    pub fn everything(dims: usize) -> Rect {
        Rect { lo: vec![f64::NEG_INFINITY; dims], hi: vec![f64::INFINITY; dims] }
    }

    /// The empty rect in `dims` dimensions (inverted bounds).
    pub fn empty(dims: usize) -> Rect {
        Rect { lo: vec![f64::INFINITY; dims], hi: vec![f64::NEG_INFINITY; dims] }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower bound of dimension `d`.
    pub fn lo(&self, d: usize) -> f64 {
        self.lo[d]
    }

    /// Upper bound of dimension `d`.
    pub fn hi(&self, d: usize) -> f64 {
        self.hi[d]
    }

    /// True when some dimension has inverted bounds.
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l > h)
    }

    /// Closed-interval intersection test.
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// True when `other` lies fully inside `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((al, ah), (bl, bh))| al <= bl && bh <= ah)
    }

    /// Point membership.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), p.len());
        self.lo.iter().zip(&self.hi).zip(p).all(|((l, h), v)| l <= v && v <= h)
    }

    /// Grow `self` to cover `other`.
    pub fn union_in_place(&mut self, other: &Rect) {
        debug_assert_eq!(self.dims(), other.dims());
        for d in 0..self.lo.len() {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// Center of dimension `d` (used by the STR sort).
    pub fn center(&self, d: usize) -> f64 {
        (self.lo[d] + self.hi[d]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_closed_bounds() {
        let a = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]);
        let b = Rect::new(vec![10.0, 5.0], vec![20.0, 6.0]);
        assert!(a.intersects(&b)); // touching edges intersect
        let c = Rect::new(vec![10.1, 0.0], vec![20.0, 10.0]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn containment() {
        let outer = Rect::new(vec![0.0], vec![10.0]);
        let inner = Rect::new(vec![2.0], vec![8.0]);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
    }

    #[test]
    fn union_grows() {
        let mut a = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        a.union_in_place(&Rect::new(vec![-1.0, 0.5], vec![0.5, 2.0]));
        assert_eq!(a, Rect::new(vec![-1.0, 0.0], vec![1.0, 2.0]));
    }

    #[test]
    fn empty_and_everything() {
        let e = Rect::empty(3);
        assert!(e.is_empty());
        let all = Rect::everything(3);
        assert!(all.contains_point(&[1e300, -1e300, 0.0]));
        assert!(all.intersects(&Rect::new(vec![0.0; 3], vec![0.0; 3])));
    }

    #[test]
    fn point_membership() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(r.contains_point(&[0.0, 1.0]));
        assert!(!r.contains_point(&[1.5, 0.5]));
    }
}
