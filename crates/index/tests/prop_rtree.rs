//! Property test: R-tree query results are identical to a linear scan
//! for arbitrary rectangle sets and query boxes, in 1–3 dimensions.

use proptest::prelude::*;

use dv_index::{RTree, Rect};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_matches_linear_scan(
        dims in 1usize..4,
        seed_rects in prop::collection::vec(prop::collection::vec((-100.0f64..100.0, 0.0f64..20.0), 3), 0..200),
        query_sides in prop::collection::vec((-120.0f64..120.0, 0.0f64..80.0), 3),
    ) {
        // Truncate the 3-dim raw data down to `dims`.
        let rects: Vec<Rect> = seed_rects
            .iter()
            .map(|sides| {
                let lo: Vec<f64> = sides[..dims].iter().map(|(a, _)| *a).collect();
                let hi: Vec<f64> = sides[..dims].iter().map(|(a, w)| a + w).collect();
                Rect::new(lo, hi)
            })
            .collect();
        let query = {
            let lo: Vec<f64> = query_sides[..dims].iter().map(|(a, _)| *a).collect();
            let hi: Vec<f64> = query_sides[..dims].iter().map(|(a, w)| a + w).collect();
            Rect::new(lo, hi)
        };

        let entries: Vec<(Rect, usize)> =
            rects.iter().cloned().enumerate().map(|(i, r)| (r, i)).collect();
        let tree = RTree::bulk_load(dims, entries);

        let mut from_tree: Vec<usize> = tree.query_collect(&query).into_iter().copied().collect();
        let mut from_scan: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        from_tree.sort_unstable();
        from_scan.sort_unstable();
        prop_assert_eq!(from_tree, from_scan);
    }
}
