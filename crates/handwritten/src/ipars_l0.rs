//! Hand-written executor for the original Ipars layout (L0).
//!
//! Layout knowledge baked in (this is the point of the baseline):
//!
//! * per directory `d`: `COORDS` holds `G` records of `(X, Y, Z)` f32;
//! * per directory, variable `v`, realization `r`:
//!   `<var>.r<r>.dat` holds `T × G` f32 values, time-major;
//! * the value of variable `v` at `(t, g)` lives at byte offset
//!   `((t-1)·G + g)·4` of that file;
//! * `REL` and `TIME` are implied by file name and offset.

use std::collections::HashMap;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dv_datagen::ipars::VARS;
use dv_datagen::IparsConfig;
use dv_sql::analysis::attribute_ranges;
use dv_sql::eval::EvalContext;
use dv_sql::{BoundQuery, UdfRegistry};
use dv_types::{DvError, IntervalSet, Result, Row, Table, Value};

/// Hand-written index + extractor for Ipars L0.
pub struct HandIparsL0 {
    base: PathBuf,
    cfg: IparsConfig,
    udfs: UdfRegistry,
}

impl HandIparsL0 {
    /// `base` is the directory the generator wrote into.
    pub fn new(base: PathBuf, cfg: IparsConfig, udfs: UdfRegistry) -> HandIparsL0 {
        HandIparsL0 { base, cfg, udfs }
    }

    fn dir_path(&self, d: usize) -> PathBuf {
        self.base.join(format!("osu{}", d % self.cfg.nodes)).join(format!("ipars.l0.d{d}"))
    }

    /// Execute a bound query with node workers running concurrently;
    /// returns the result table and the bytes read from disk.
    pub fn execute(&self, bq: &BoundQuery) -> Result<(Table, u64)> {
        self.execute_inner(bq, false, None)
    }

    /// Execute with nodes processed one at a time, appending each
    /// node's pipeline duration to `node_busy` — `max(node_busy)`
    /// models the wall time of a real N-node cluster (see DESIGN.md).
    pub fn execute_sequential(
        &self,
        bq: &BoundQuery,
    ) -> Result<(Table, u64, Vec<std::time::Duration>)> {
        let mut busy = Vec::new();
        let (table, bytes) = self.execute_inner(bq, true, Some(&mut busy))?;
        Ok((table, bytes, busy))
    }

    fn execute_inner(
        &self,
        bq: &BoundQuery,
        sequential: bool,
        mut node_busy: Option<&mut Vec<std::time::Duration>>,
    ) -> Result<(Table, u64)> {
        let cfg = &self.cfg;
        let g = cfg.grid_per_dir as u64;
        let t_max = cfg.time_steps as i64;
        let r_max = cfg.realizations as i64;

        // Hand-written "index function": REL list and TIME range pulled
        // straight from the predicate.
        let ranges: HashMap<usize, IntervalSet> =
            bq.predicate.as_ref().map(attribute_ranges).unwrap_or_default();
        let rels: Vec<i64> = (0..r_max)
            .filter(|r| ranges.get(&0).map(|s| s.contains(*r as f64)).unwrap_or(true))
            .collect();
        let times: Vec<i64> = (1..=t_max)
            .filter(|t| ranges.get(&1).map(|s| s.contains(*t as f64)).unwrap_or(true))
            .collect();

        // Needed attributes, in working (schema) order.
        let working = bq.needed_attrs();
        let need_coord = working.iter().any(|&a| (2..5).contains(&a));
        let needed_vars: Vec<usize> = working.iter().filter(|&&a| a >= 5).map(|&a| a - 5).collect();

        let cx = EvalContext::new(bq.schema.len(), &working, &self.udfs);
        let out_positions: Vec<usize> = bq
            .projection
            .iter()
            .map(|attr| working.iter().position(|w| w == attr).expect("projection covered"))
            .collect();
        // Identity projection (e.g. SELECT *) moves rows instead of
        // re-collecting them.
        let identity_projection = out_positions.len() == working.len()
            && out_positions.iter().enumerate().all(|(i, &p)| i == p);

        let bytes_read = AtomicU64::new(0);
        let nodes = cfg.nodes;
        let run_node = |node: usize| -> Result<Vec<Row>> {
            let out_positions = &out_positions;
            let identity_projection = &identity_projection;
            let rels = &rels;
            let times = &times;
            let working = &working;
            let needed_vars = &needed_vars;
            let cx = &cx;
            let bytes_read = &bytes_read;
            {
                {
                    let mut rows: Vec<Row> = Vec::new();
                    for d in (node..cfg.dirs).step_by(nodes) {
                        let dir = self.dir_path(d);
                        // Coordinates: read the whole (small) file once.
                        let coords: Vec<u8> = if need_coord {
                            let path = dir.join("COORDS");
                            let data = std::fs::read(&path)
                                .map_err(|e| DvError::io(path.display().to_string(), e))?;
                            bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
                            data
                        } else {
                            Vec::new()
                        };
                        for &rel in rels {
                            // Open the needed variable files for this
                            // realization.
                            let files: Vec<File> = needed_vars
                                .iter()
                                .map(|&v| {
                                    let path = dir.join(format!(
                                        "{}.r{rel}.dat",
                                        VARS[v].to_ascii_lowercase()
                                    ));
                                    File::open(&path)
                                        .map_err(|e| DvError::io(path.display().to_string(), e))
                                })
                                .collect::<Result<_>>()?;
                            let mut bufs: Vec<Vec<u8>> =
                                files.iter().map(|_| vec![0u8; (g * 4) as usize]).collect();
                            for &t in times {
                                let off = (t as u64 - 1) * g * 4;
                                for (f, buf) in files.iter().zip(bufs.iter_mut()) {
                                    f.read_exact_at(buf, off)
                                        .map_err(|e| DvError::io("<l0 var file>", e))?;
                                    bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
                                }
                                for k in 0..g as usize {
                                    let mut row: Row = Vec::with_capacity(working.len());
                                    for (wi, &attr) in working.iter().enumerate() {
                                        let v = match attr {
                                            0 => Value::Short(rel as i16),
                                            1 => Value::Int(t as i32),
                                            2..=4 => {
                                                let at = k * 12 + (attr - 2) * 4;
                                                Value::Float(f32::from_le_bytes(
                                                    coords[at..at + 4].try_into().unwrap(),
                                                ))
                                            }
                                            _ => {
                                                let vi = needed_vars
                                                    .iter()
                                                    .position(|&v| v == attr - 5)
                                                    .unwrap();
                                                let at = k * 4;
                                                Value::Float(f32::from_le_bytes(
                                                    bufs[vi][at..at + 4].try_into().unwrap(),
                                                ))
                                            }
                                        };
                                        let _ = wi;
                                        row.push(v);
                                    }
                                    let keep = match &bq.predicate {
                                        Some(p) => cx.eval(p, &row),
                                        None => true,
                                    };
                                    if keep {
                                        if *identity_projection {
                                            rows.push(row);
                                        } else {
                                            rows.push(
                                                out_positions.iter().map(|&p| row[p]).collect(),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Ok(rows)
                }
            }
        };

        let result: Result<Vec<Vec<Row>>> = if sequential {
            // One node at a time, recording per-node pipeline times —
            // the faithful scaling measurement on a single-core host.
            let mut out = Vec::with_capacity(nodes);
            for node in 0..nodes {
                let start = std::time::Instant::now();
                let rows = run_node(node)?;
                if let Some(busy) = node_busy.as_deref_mut() {
                    busy.push(start.elapsed());
                }
                out.push(rows);
            }
            Ok(out)
        } else {
            std::thread::scope(|scope| {
                let run_node = &run_node;
                let handles: Vec<_> =
                    (0..nodes).map(|node| scope.spawn(move || run_node(node))).collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().map_err(|_| DvError::Runtime("hand worker panicked".into()))?
                    })
                    .collect()
            })
        };

        let mut table = Table::empty(bq.output_schema());
        for rows in result? {
            table.rows.extend(rows);
        }
        Ok((table, bytes_read.load(Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_datagen::{ipars, IparsLayout};
    use dv_sql::{bind, parse};

    fn setup(tag: &str) -> (PathBuf, IparsConfig) {
        let base = std::env::temp_dir().join(format!("dv-hand-l0-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let cfg = IparsConfig::tiny();
        ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
        (base, cfg)
    }

    fn schema() -> dv_types::Schema {
        dv_descriptor::compile(&ipars::descriptor(&IparsConfig::tiny(), IparsLayout::L0))
            .unwrap()
            .schema
    }

    #[test]
    fn hand_matches_generated() {
        let (base, cfg) = setup("match");
        let hand = HandIparsL0::new(base.clone(), cfg.clone(), UdfRegistry::with_builtins());
        let desc = ipars::descriptor(&cfg, IparsLayout::L0);
        let compiled = dv_layout::plan::compile_from_text(&desc, &base).unwrap();
        let server =
            dv_storm::StormServer::new(std::sync::Arc::new(compiled), UdfRegistry::with_builtins());

        let queries = [
            "SELECT * FROM IparsData",
            "SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 3",
            "SELECT * FROM IparsData WHERE REL = 1 AND SOIL > 0.5",
            "SELECT REL, TIME, SOIL FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) < 40.0",
        ];
        for sql in queries {
            let bq = bind(&parse(sql).unwrap(), &schema(), &UdfRegistry::with_builtins()).unwrap();
            let (hand_table, hand_bytes) = hand.execute(&bq).unwrap();
            let (gen_table, stats) = server.execute_table(sql).unwrap();
            assert!(
                hand_table.same_rows(&gen_table),
                "{sql}: hand {} rows vs generated {}",
                hand_table.len(),
                gen_table.len()
            );
            assert!(hand_bytes > 0);
            // The hand version caches COORDS per directory while the
            // AFC model re-reads the COORD chunk per aligned set, so
            // hand reads at most as much as generated.
            assert!(hand_bytes <= stats.bytes_read, "{sql}");
        }
    }

    #[test]
    fn hand_prunes_time_and_rel() {
        let (base, cfg) = setup("prune");
        let hand = HandIparsL0::new(base, cfg.clone(), UdfRegistry::with_builtins());
        let sql = "SELECT * FROM IparsData WHERE TIME = 1 AND REL = 0";
        let bq = bind(&parse(sql).unwrap(), &schema(), &UdfRegistry::with_builtins()).unwrap();
        let (table, bytes) = hand.execute(&bq).unwrap();
        assert_eq!(table.len(), cfg.grid_per_dir * cfg.dirs);
        // 1 time × (17 vars × G × 4 + coords G × 12) per dir.
        let g = cfg.grid_per_dir as u64;
        assert_eq!(bytes, cfg.dirs as u64 * (17 * g * 4 + g * 12));
    }
}
