//! Hand-written executor for the original Ipars layout (L0).
//!
//! Layout knowledge baked in (this is the point of the baseline):
//!
//! * per directory `d`: `COORDS` holds `G` records of `(X, Y, Z)` f32;
//! * per directory, variable `v`, realization `r`:
//!   `<var>.r<r>.dat` holds `T × G` f32 values, time-major;
//! * the value of variable `v` at `(t, g)` lives at byte offset
//!   `((t-1)·G + g)·4` of that file;
//! * `REL` and `TIME` are implied by file name and offset.

use std::collections::HashMap;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dv_datagen::ipars::VARS;
use dv_datagen::IparsConfig;
use dv_sql::analysis::attribute_ranges;
use dv_sql::eval::EvalContext;
use dv_sql::{BoundQuery, UdfRegistry};
use dv_types::{DvError, IntervalSet, Result, Row, Table, Value};

/// Hand-written index + extractor for Ipars L0.
pub struct HandIparsL0 {
    base: PathBuf,
    cfg: IparsConfig,
    udfs: UdfRegistry,
}

impl HandIparsL0 {
    /// `base` is the directory the generator wrote into.
    pub fn new(base: PathBuf, cfg: IparsConfig, udfs: UdfRegistry) -> HandIparsL0 {
        HandIparsL0 { base, cfg, udfs }
    }

    fn dir_path(&self, d: usize) -> PathBuf {
        self.base.join(format!("osu{}", d % self.cfg.nodes)).join(format!("ipars.l0.d{d}"))
    }

    /// Execute a bound query with node workers running concurrently;
    /// returns the result table and the bytes read from disk.
    pub fn execute(&self, bq: &BoundQuery) -> Result<(Table, u64)> {
        self.execute_inner(bq, false, None)
    }

    /// Execute with nodes processed one at a time, appending each
    /// node's pipeline duration to `node_busy` — `max(node_busy)`
    /// models the wall time of a real N-node cluster (see DESIGN.md).
    pub fn execute_sequential(
        &self,
        bq: &BoundQuery,
    ) -> Result<(Table, u64, Vec<std::time::Duration>)> {
        let mut busy = Vec::new();
        let (table, bytes) = self.execute_inner(bq, true, Some(&mut busy))?;
        Ok((table, bytes, busy))
    }

    fn execute_inner(
        &self,
        bq: &BoundQuery,
        sequential: bool,
        mut node_busy: Option<&mut Vec<std::time::Duration>>,
    ) -> Result<(Table, u64)> {
        let cfg = &self.cfg;
        let g = cfg.grid_per_dir as u64;
        let t_max = cfg.time_steps as i64;
        let r_max = cfg.realizations as i64;

        // Hand-written "index function": REL list and TIME range pulled
        // straight from the predicate.
        let ranges: HashMap<usize, IntervalSet> =
            bq.predicate.as_ref().map(attribute_ranges).unwrap_or_default();
        let rels: Vec<i64> = (0..r_max)
            .filter(|r| ranges.get(&0).map(|s| s.contains(*r as f64)).unwrap_or(true))
            .collect();
        let times: Vec<i64> = (1..=t_max)
            .filter(|t| ranges.get(&1).map(|s| s.contains(*t as f64)).unwrap_or(true))
            .collect();

        // Needed attributes, in working (schema) order.
        let working = bq.needed_attrs();
        let need_coord = working.iter().any(|&a| (2..5).contains(&a));
        let needed_vars: Vec<usize> = working.iter().filter(|&&a| a >= 5).map(|&a| a - 5).collect();

        let cx = EvalContext::new(bq.schema.len(), &working, &self.udfs);
        let out_positions: Vec<usize> = bq
            .projection
            .iter()
            .map(|attr| working.iter().position(|w| w == attr).expect("projection covered"))
            .collect();
        // Identity projection (e.g. SELECT *) moves rows instead of
        // re-collecting them.
        let identity_projection = out_positions.len() == working.len()
            && out_positions.iter().enumerate().all(|(i, &p)| i == p);

        let bytes_read = AtomicU64::new(0);
        let nodes = cfg.nodes;
        let run_node = |node: usize| -> Result<Vec<Row>> {
            let out_positions = &out_positions;
            let identity_projection = &identity_projection;
            let rels = &rels;
            let times = &times;
            let working = &working;
            let needed_vars = &needed_vars;
            let cx = &cx;
            let bytes_read = &bytes_read;
            {
                {
                    let mut rows: Vec<Row> = Vec::new();
                    for d in (node..cfg.dirs).step_by(nodes) {
                        let dir = self.dir_path(d);
                        // Coordinates: read the whole (small) file once.
                        let coords: Vec<u8> = if need_coord {
                            let path = dir.join("COORDS");
                            let data = std::fs::read(&path)
                                .map_err(|e| DvError::io(path.display().to_string(), e))?;
                            bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
                            data
                        } else {
                            Vec::new()
                        };
                        for &rel in rels {
                            // Open the needed variable files for this
                            // realization.
                            let files: Vec<File> = needed_vars
                                .iter()
                                .map(|&v| {
                                    let path = dir.join(format!(
                                        "{}.r{rel}.dat",
                                        VARS[v].to_ascii_lowercase()
                                    ));
                                    File::open(&path)
                                        .map_err(|e| DvError::io(path.display().to_string(), e))
                                })
                                .collect::<Result<_>>()?;
                            let mut bufs: Vec<Vec<u8>> =
                                files.iter().map(|_| vec![0u8; (g * 4) as usize]).collect();
                            for &t in times {
                                let off = (t as u64 - 1) * g * 4;
                                for (f, buf) in files.iter().zip(bufs.iter_mut()) {
                                    f.read_exact_at(buf, off)
                                        .map_err(|e| DvError::io("<l0 var file>", e))?;
                                    bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
                                }
                                for k in 0..g as usize {
                                    let mut row: Row = Vec::with_capacity(working.len());
                                    for (wi, &attr) in working.iter().enumerate() {
                                        let v = match attr {
                                            0 => Value::Short(rel as i16),
                                            1 => Value::Int(t as i32),
                                            2..=4 => {
                                                let at = k * 12 + (attr - 2) * 4;
                                                Value::Float(f32::from_le_bytes(
                                                    coords[at..at + 4].try_into().unwrap(),
                                                ))
                                            }
                                            _ => {
                                                let vi = needed_vars
                                                    .iter()
                                                    .position(|&v| v == attr - 5)
                                                    .unwrap();
                                                let at = k * 4;
                                                Value::Float(f32::from_le_bytes(
                                                    bufs[vi][at..at + 4].try_into().unwrap(),
                                                ))
                                            }
                                        };
                                        let _ = wi;
                                        row.push(v);
                                    }
                                    let keep = match &bq.predicate {
                                        Some(p) => cx.eval(p, &row),
                                        None => true,
                                    };
                                    if keep {
                                        if *identity_projection {
                                            rows.push(row);
                                        } else {
                                            rows.push(
                                                out_positions.iter().map(|&p| row[p]).collect(),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Ok(rows)
                }
            }
        };

        let result: Result<Vec<Vec<Row>>> = if sequential {
            // One node at a time, recording per-node pipeline times —
            // the faithful scaling measurement on a single-core host.
            let mut out = Vec::with_capacity(nodes);
            for node in 0..nodes {
                let start = std::time::Instant::now();
                let rows = run_node(node)?;
                if let Some(busy) = node_busy.as_deref_mut() {
                    busy.push(start.elapsed());
                }
                out.push(rows);
            }
            Ok(out)
        } else {
            std::thread::scope(|scope| {
                let run_node = &run_node;
                let handles: Vec<_> =
                    (0..nodes).map(|node| scope.spawn(move || run_node(node))).collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().map_err(|_| DvError::Runtime("hand worker panicked".into()))?
                    })
                    .collect()
            })
        };

        let mut table = Table::empty(bq.output_schema());
        for rows in result? {
            table.rows.extend(rows);
        }
        Ok((table, bytes_read.load(Ordering::Relaxed)))
    }
}

/// Hand-rolled accumulator state — deliberately independent of
/// `dv_types::AccState` so the differential suite checks the canonical
/// aggregation semantics against a second implementation.
#[derive(Clone, Copy)]
enum HandAcc {
    Count(i64),
    Sum(f64),
    Min(f64),
    Max(f64),
    Avg { sum: f64, count: i64 },
}

impl HandAcc {
    fn first(func: dv_types::AggFunc, x: f64) -> HandAcc {
        use dv_types::AggFunc as F;
        match func {
            F::Count => HandAcc::Count(1),
            F::Sum => HandAcc::Sum(x),
            F::Min => HandAcc::Min(x),
            F::Max => HandAcc::Max(x),
            F::Avg => HandAcc::Avg { sum: x, count: 1 },
        }
    }

    fn fold(&mut self, x: f64) {
        match self {
            HandAcc::Count(c) => *c += 1,
            HandAcc::Sum(s) => *s += x,
            HandAcc::Min(m) => {
                if x.total_cmp(m).is_lt() {
                    *m = x;
                }
            }
            HandAcc::Max(m) => {
                if x.total_cmp(m).is_gt() {
                    *m = x;
                }
            }
            HandAcc::Avg { sum, count } => {
                *sum += x;
                *count += 1;
            }
        }
    }

    /// Merge a later chunk's partial into this one (this = earlier).
    fn merge(&mut self, o: HandAcc) {
        match (self, o) {
            (HandAcc::Count(a), HandAcc::Count(b)) => *a += b,
            (HandAcc::Sum(a), HandAcc::Sum(b)) => *a += b,
            (HandAcc::Min(a), HandAcc::Min(b)) => {
                if b.total_cmp(a).is_lt() {
                    *a = b;
                }
            }
            (HandAcc::Max(a), HandAcc::Max(b)) => {
                if b.total_cmp(a).is_gt() {
                    *a = b;
                }
            }
            (HandAcc::Avg { sum: a, count: c }, HandAcc::Avg { sum: b, count: d }) => {
                *a += b;
                *c += d;
            }
            _ => unreachable!("mismatched accumulator kinds"),
        }
    }

    fn finalize(self, dtype: dv_types::DataType) -> Value {
        match self {
            HandAcc::Count(c) => Value::Long(c),
            HandAcc::Sum(s) => Value::Double(s),
            HandAcc::Min(m) | HandAcc::Max(m) => Value::from_f64(dtype, m),
            HandAcc::Avg { sum, count } => Value::Double(sum / count as f64),
        }
    }
}

impl HandIparsL0 {
    /// Execute an aggregate query against the raw files, replicating
    /// the canonical fold tree by hand: one partial per `(dir, rel,
    /// time)` slab of `G` rows — exactly the engine's aligned file
    /// chunks for L0 — folded row-by-row in scan order, then merged
    /// per group in ascending `(node, chunk)` order. Bit-identical to
    /// the generated pipeline at every thread count, by construction.
    pub fn execute_agg(&self, bq: &BoundQuery) -> Result<Table> {
        let spec = bq
            .agg
            .as_ref()
            .ok_or_else(|| DvError::Runtime("execute_agg needs an aggregate query".into()))?;
        let cfg = &self.cfg;
        let g = cfg.grid_per_dir as u64;

        // Working row layout and fold positions within it.
        let working = bq.needed_attrs();
        let wpos = |attr: usize| working.iter().position(|&w| w == attr).expect("covered");
        let group_pos: Vec<usize> = spec.group_by.iter().map(|&a| wpos(a)).collect();
        let arg_pos: Vec<Option<usize>> = spec.aggs.iter().map(|a| a.arg.map(wpos)).collect();
        let need_coord = working.iter().any(|&a| (2..5).contains(&a));
        let needed_vars: Vec<usize> = working.iter().filter(|&&a| a >= 5).map(|&a| a - 5).collect();
        let cx = EvalContext::new(bq.schema.len(), &working, &self.udfs);

        // Global merge table: canonicalized key bits -> accumulators.
        // One partial per group per slab, so per-group merge order is
        // (node, chunk) ascending exactly as the absorber folds.
        let mut slots: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut groups: Vec<(Vec<u64>, Vec<HandAcc>)> = Vec::new();
        let canon = |v: f64| -> u64 {
            if v.is_nan() {
                0x7ff8_0000_0000_0000
            } else {
                v.to_bits()
            }
        };

        for node in 0..cfg.nodes {
            for d in (node..cfg.dirs).step_by(cfg.nodes) {
                let dir = self.dir_path(d);
                let coords: Vec<u8> = if need_coord {
                    let path = dir.join("COORDS");
                    std::fs::read(&path).map_err(|e| DvError::io(path.display().to_string(), e))?
                } else {
                    Vec::new()
                };
                for rel in 0..cfg.realizations as i64 {
                    let files: Vec<File> = needed_vars
                        .iter()
                        .map(|&v| {
                            let path =
                                dir.join(format!("{}.r{rel}.dat", VARS[v].to_ascii_lowercase()));
                            File::open(&path)
                                .map_err(|e| DvError::io(path.display().to_string(), e))
                        })
                        .collect::<Result<_>>()?;
                    let mut bufs: Vec<Vec<u8>> =
                        files.iter().map(|_| vec![0u8; (g * 4) as usize]).collect();
                    for t in 1..=cfg.time_steps as i64 {
                        let off = (t as u64 - 1) * g * 4;
                        for (f, buf) in files.iter().zip(bufs.iter_mut()) {
                            f.read_exact_at(buf, off)
                                .map_err(|e| DvError::io("<l0 var file>", e))?;
                        }
                        // One partial per (d, rel, t) slab.
                        let mut slab: HashMap<Vec<u64>, Vec<HandAcc>> = HashMap::new();
                        for k in 0..g as usize {
                            let row: Row = working
                                .iter()
                                .map(|&attr| match attr {
                                    0 => Value::Short(rel as i16),
                                    1 => Value::Int(t as i32),
                                    2..=4 => {
                                        let at = k * 12 + (attr - 2) * 4;
                                        Value::Float(f32::from_le_bytes(
                                            coords[at..at + 4].try_into().unwrap(),
                                        ))
                                    }
                                    _ => {
                                        let vi = needed_vars
                                            .iter()
                                            .position(|&v| v == attr - 5)
                                            .unwrap();
                                        let at = k * 4;
                                        Value::Float(f32::from_le_bytes(
                                            bufs[vi][at..at + 4].try_into().unwrap(),
                                        ))
                                    }
                                })
                                .collect();
                            let keep = match &bq.predicate {
                                Some(p) => cx.eval(p, &row),
                                None => true,
                            };
                            if !keep {
                                continue;
                            }
                            let key: Vec<u64> =
                                group_pos.iter().map(|&p| canon(row[p].as_f64())).collect();
                            match slab.entry(key) {
                                std::collections::hash_map::Entry::Occupied(mut e) => {
                                    for (acc, pos) in e.get_mut().iter_mut().zip(&arg_pos) {
                                        acc.fold(pos.map(|p| row[p].as_f64()).unwrap_or(0.0));
                                    }
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    e.insert(
                                        spec.aggs
                                            .iter()
                                            .zip(&arg_pos)
                                            .map(|(a, pos)| {
                                                HandAcc::first(
                                                    a.func,
                                                    pos.map(|p| row[p].as_f64()).unwrap_or(0.0),
                                                )
                                            })
                                            .collect(),
                                    );
                                }
                            }
                        }
                        // Merge the slab's partials; each group has at
                        // most one entry per slab, so map iteration
                        // order is irrelevant to the per-group fold.
                        for (key, accs) in slab {
                            match slots.entry(key) {
                                std::collections::hash_map::Entry::Occupied(e) => {
                                    let gi = *e.get();
                                    for (a, b) in groups[gi].1.iter_mut().zip(accs) {
                                        a.merge(b);
                                    }
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    let key = e.key().clone();
                                    e.insert(groups.len());
                                    groups.push((key, accs));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Deterministic output order: decoded key values, total_cmp
        // lexicographic.
        let group_dtypes: Vec<dv_types::DataType> =
            spec.group_by.iter().map(|&a| bq.schema.attr_at(a).dtype).collect();
        let decode = |key: &[u64]| -> Vec<Value> {
            key.iter()
                .zip(&group_dtypes)
                .map(|(&code, &ty)| Value::from_f64(ty, f64::from_bits(code)))
                .collect()
        };
        let mut idx: Vec<usize> = (0..groups.len()).collect();
        idx.sort_by(|&a, &b| {
            let ka = decode(&groups[a].0);
            let kb = decode(&groups[b].0);
            ka.iter()
                .zip(&kb)
                .map(|(x, y)| x.total_cmp(y))
                .find(|c| *c != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut table = Table::empty(bq.output_schema());
        for i in idx {
            let (key, accs) = &groups[i];
            let keys = decode(key);
            let row: Row = spec
                .output
                .iter()
                .map(|o| match *o {
                    dv_sql::AggOutput::Group(k) => keys[k],
                    dv_sql::AggOutput::Agg(a) => accs[a].finalize(spec.result_dtype(a, &bq.schema)),
                })
                .collect();
            table.rows.push(row);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_datagen::{ipars, IparsLayout};
    use dv_sql::{bind, parse};

    fn setup(tag: &str) -> (PathBuf, IparsConfig) {
        let base = std::env::temp_dir().join(format!("dv-hand-l0-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let cfg = IparsConfig::tiny();
        ipars::generate(&base, &cfg, IparsLayout::L0).unwrap();
        (base, cfg)
    }

    fn schema() -> dv_types::Schema {
        dv_descriptor::compile(&ipars::descriptor(&IparsConfig::tiny(), IparsLayout::L0))
            .unwrap()
            .schema
    }

    #[test]
    fn hand_matches_generated() {
        let (base, cfg) = setup("match");
        let hand = HandIparsL0::new(base.clone(), cfg.clone(), UdfRegistry::with_builtins());
        let desc = ipars::descriptor(&cfg, IparsLayout::L0);
        let compiled = dv_layout::plan::compile_from_text(&desc, &base).unwrap();
        let server =
            dv_storm::StormServer::new(std::sync::Arc::new(compiled), UdfRegistry::with_builtins());

        let queries = [
            "SELECT * FROM IparsData",
            "SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 3",
            "SELECT * FROM IparsData WHERE REL = 1 AND SOIL > 0.5",
            "SELECT REL, TIME, SOIL FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) < 40.0",
        ];
        for sql in queries {
            let bq = bind(&parse(sql).unwrap(), &schema(), &UdfRegistry::with_builtins()).unwrap();
            let (hand_table, hand_bytes) = hand.execute(&bq).unwrap();
            let (gen_table, stats) = server.execute_table(sql).unwrap();
            assert!(
                hand_table.same_rows(&gen_table),
                "{sql}: hand {} rows vs generated {}",
                hand_table.len(),
                gen_table.len()
            );
            assert!(hand_bytes > 0);
            // The hand version caches COORDS per directory while the
            // AFC model re-reads the COORD chunk per aligned set, so
            // hand reads at most as much as generated.
            assert!(hand_bytes <= stats.bytes_read, "{sql}");
        }
    }

    #[test]
    fn hand_prunes_time_and_rel() {
        let (base, cfg) = setup("prune");
        let hand = HandIparsL0::new(base, cfg.clone(), UdfRegistry::with_builtins());
        let sql = "SELECT * FROM IparsData WHERE TIME = 1 AND REL = 0";
        let bq = bind(&parse(sql).unwrap(), &schema(), &UdfRegistry::with_builtins()).unwrap();
        let (table, bytes) = hand.execute(&bq).unwrap();
        assert_eq!(table.len(), cfg.grid_per_dir * cfg.dirs);
        // 1 time × (17 vars × G × 4 + coords G × 12) per dir.
        let g = cfg.grid_per_dir as u64;
        assert_eq!(bytes, cfg.dirs as u64 * (17 * g * 4 + g * 12));
    }
}
