//! Hand-written executor for the chunked Titan layout.
//!
//! Layout knowledge baked in: fixed 32-byte records
//! `(X i32, Y i32, Z i32, S1..S5 f32)`, one data + one index file per
//! node, chunk index format as written by the generator. The index
//! function loads all chunk MBRs at startup and builds an R-tree; the
//! extractor reads whole chunks and decodes records in place.

use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dv_datagen::TitanConfig;
use dv_index::{read_chunk_index, ChunkIndexEntry, RTree, Rect};
use dv_sql::analysis::attribute_ranges;
use dv_sql::eval::EvalContext;
use dv_sql::{BoundQuery, UdfRegistry};
use dv_types::{DvError, Result, Row, Table, Value};

const RECORD: usize = 32;

struct NodeIndex {
    data_path: PathBuf,
    entries: Vec<ChunkIndexEntry>,
    tree: RTree<usize>,
}

/// Hand-written index + extractor for the Titan chunked layout.
pub struct HandTitan {
    nodes: Vec<NodeIndex>,
    udfs: UdfRegistry,
}

impl HandTitan {
    /// Load the per-node chunk indexes (the hand-written "index
    /// function" initialization).
    pub fn new(base: PathBuf, cfg: &TitanConfig, udfs: UdfRegistry) -> Result<HandTitan> {
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for n in 0..cfg.nodes {
            let dir = base.join(format!("tnode{n}")).join("titan");
            let (_dims, entries) = read_chunk_index(&dir.join("titan.idx"))?;
            let rects: Vec<(Rect, usize)> =
                entries.iter().enumerate().map(|(i, e)| (e.rect(), i)).collect();
            let tree = RTree::bulk_load(3, rects);
            nodes.push(NodeIndex { data_path: dir.join("titan.dat"), entries, tree });
        }
        Ok(HandTitan { nodes, udfs })
    }

    /// Execute a bound query; returns the table and bytes read.
    pub fn execute(&self, bq: &BoundQuery) -> Result<(Table, u64)> {
        self.execute_inner(bq, false, None)
    }

    /// Execute with nodes processed one at a time, appending per-node
    /// pipeline durations to the returned vector (single-core scaling
    /// measurement; see DESIGN.md).
    pub fn execute_sequential(
        &self,
        bq: &BoundQuery,
    ) -> Result<(Table, u64, Vec<std::time::Duration>)> {
        let mut busy = Vec::new();
        let (table, bytes) = self.execute_inner(bq, true, Some(&mut busy))?;
        Ok((table, bytes, busy))
    }

    fn execute_inner(
        &self,
        bq: &BoundQuery,
        sequential: bool,
        mut node_busy: Option<&mut Vec<std::time::Duration>>,
    ) -> Result<(Table, u64)> {
        // Query box over (X, Y, Z) from the predicate.
        let ranges = bq.predicate.as_ref().map(attribute_ranges).unwrap_or_default();
        let mut lo = [f64::NEG_INFINITY; 3];
        let mut hi = [f64::INFINITY; 3];
        for d in 0..3 {
            if let Some((l, h)) = ranges.get(&d).and_then(|s| s.bounds()) {
                lo[d] = l;
                hi[d] = h;
            }
        }
        let qbox = Rect::new(lo.to_vec(), hi.to_vec());

        let working = bq.needed_attrs();
        let cx = EvalContext::new(bq.schema.len(), &working, &self.udfs);
        let out_positions: Vec<usize> = bq
            .projection
            .iter()
            .map(|attr| working.iter().position(|w| w == attr).expect("projection covered"))
            .collect();
        // Identity projection (e.g. SELECT *) moves rows instead of
        // re-collecting them.
        let identity_projection = out_positions.len() == working.len()
            && out_positions.iter().enumerate().all(|(i, &p)| i == p);

        let bytes_read = AtomicU64::new(0);
        let run_node = |node: &NodeIndex| -> Result<Vec<Row>> {
            let out_positions = &out_positions;
            let identity_projection = &identity_projection;
            let qbox = &qbox;
            let working = &working;
            let cx = &cx;
            let bytes_read = &bytes_read;
            {
                {
                    let file = File::open(&node.data_path)
                        .map_err(|e| DvError::io(node.data_path.display().to_string(), e))?;
                    let mut hits: Vec<usize> =
                        node.tree.query_collect(qbox).into_iter().copied().collect();
                    hits.sort_unstable();
                    let mut rows: Vec<Row> = Vec::new();
                    let mut buf: Vec<u8> = Vec::new();
                    for ord in hits {
                        let e = &node.entries[ord];
                        let len = e.rows as usize * RECORD;
                        buf.resize(len, 0);
                        file.read_exact_at(&mut buf, e.offset)
                            .map_err(|e| DvError::io("<titan.dat>", e))?;
                        bytes_read.fetch_add(len as u64, Ordering::Relaxed);
                        for r in 0..e.rows as usize {
                            let at = r * RECORD;
                            let mut row: Row = Vec::with_capacity(working.len());
                            for &attr in working.iter() {
                                let v = if attr < 3 {
                                    Value::Int(i32::from_le_bytes(
                                        buf[at + attr * 4..at + attr * 4 + 4].try_into().unwrap(),
                                    ))
                                } else {
                                    let off = at + 12 + (attr - 3) * 4;
                                    Value::Float(f32::from_le_bytes(
                                        buf[off..off + 4].try_into().unwrap(),
                                    ))
                                };
                                row.push(v);
                            }
                            let keep = match &bq.predicate {
                                Some(p) => cx.eval(p, &row),
                                None => true,
                            };
                            if keep {
                                if *identity_projection {
                                    rows.push(row);
                                } else {
                                    rows.push(out_positions.iter().map(|&p| row[p]).collect());
                                }
                            }
                        }
                    }
                    Ok(rows)
                }
            }
        };

        let results: Result<Vec<Vec<Row>>> = if sequential {
            let mut out = Vec::with_capacity(self.nodes.len());
            for node in &self.nodes {
                let start = std::time::Instant::now();
                let rows = run_node(node)?;
                if let Some(busy) = node_busy.as_deref_mut() {
                    busy.push(start.elapsed());
                }
                out.push(rows);
            }
            Ok(out)
        } else {
            std::thread::scope(|scope| {
                let run_node = &run_node;
                let handles: Vec<_> =
                    self.nodes.iter().map(|node| scope.spawn(move || run_node(node))).collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().map_err(|_| DvError::Runtime("hand worker panicked".into()))?
                    })
                    .collect()
            })
        };

        let mut table = Table::empty(bq.output_schema());
        for rows in results? {
            table.rows.extend(rows);
        }
        Ok((table, bytes_read.load(Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_datagen::titan;
    use dv_sql::{bind, parse};

    fn setup(tag: &str, nodes: usize) -> (PathBuf, TitanConfig) {
        let base = std::env::temp_dir().join(format!("dv-hand-titan-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let cfg = TitanConfig { nodes, ..TitanConfig::tiny() };
        titan::generate(&base, &cfg).unwrap();
        (base, cfg)
    }

    fn schema(cfg: &TitanConfig) -> dv_types::Schema {
        dv_descriptor::compile(&titan::descriptor(cfg)).unwrap().schema
    }

    #[test]
    fn hand_matches_generated_titan() {
        let (base, cfg) = setup("match", 2);
        let hand = HandTitan::new(base.clone(), &cfg, UdfRegistry::with_builtins()).unwrap();
        let compiled = dv_layout::plan::compile_from_text(&titan::descriptor(&cfg), &base).unwrap();
        let server =
            dv_storm::StormServer::new(std::sync::Arc::new(compiled), UdfRegistry::with_builtins());
        let queries = [
            "SELECT * FROM TitanData",
            "SELECT * FROM TitanData WHERE X >= 0 AND X <= 20000 AND Y >= 0 AND Y <= 20000 \
             AND Z >= 0 AND Z <= 200",
            "SELECT * FROM TitanData WHERE S1 < 0.3",
            "SELECT X, Y FROM TitanData WHERE DISTANCE(X, Y, Z) < 25000.0",
        ];
        for sql in queries {
            let bq =
                bind(&parse(sql).unwrap(), &schema(&cfg), &UdfRegistry::with_builtins()).unwrap();
            let (hand_table, _) = hand.execute(&bq).unwrap();
            let (gen_table, _) = server.execute_table(sql).unwrap();
            assert!(
                hand_table.same_rows(&gen_table),
                "{sql}: hand {} vs generated {}",
                hand_table.len(),
                gen_table.len()
            );
        }
    }

    #[test]
    fn spatial_pruning_reads_less() {
        let (base, cfg) = setup("prune", 1);
        let hand = HandTitan::new(base, &cfg, UdfRegistry::with_builtins()).unwrap();
        let full = bind(
            &parse("SELECT * FROM TitanData").unwrap(),
            &schema(&cfg),
            &UdfRegistry::with_builtins(),
        )
        .unwrap();
        let boxed = bind(
            &parse(
                "SELECT * FROM TitanData WHERE X >= 0 AND X <= 10000 AND Y >= 0 AND \
                 Y <= 10000 AND Z >= 0 AND Z <= 100",
            )
            .unwrap(),
            &schema(&cfg),
            &UdfRegistry::with_builtins(),
        )
        .unwrap();
        let (_, full_bytes) = hand.execute(&full).unwrap();
        let (t, boxed_bytes) = hand.execute(&boxed).unwrap();
        assert!(boxed_bytes < full_bytes);
        // Every returned row is inside the box.
        for row in &t.rows {
            assert!(row[0].as_f64() <= 10000.0);
            assert!(row[1].as_f64() <= 10000.0);
            assert!(row[2].as_f64() <= 100.0);
        }
    }
}
