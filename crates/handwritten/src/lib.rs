//! # dv-handwritten
//!
//! Hand-written index and extractor functions — the baselines the
//! paper compares its generated code against (Figures 9–11).
//!
//! Each implementation is what an application developer who knows the
//! physical layout intimately would plug into STORM:
//!
//! * [`ipars_l0::HandIparsL0`] — the original Ipars layout (COORDS +
//!   one file per variable per realization): file offsets, strides and
//!   implicit REL/TIME values are hard-coded against the layout,
//!   not derived from any descriptor;
//! * [`titan::HandTitan`] — the chunked satellite layout: loads the
//!   chunk index, builds an R-tree, reads matching chunks and decodes
//!   the fixed 32-byte records with hard-coded field offsets.
//!
//! Both share the query *front half* (SQL parsing/binding and residual
//! predicate evaluation) with the generated path — in the paper, too,
//! hand-written extractors plugged into the same STORM query/filter
//! services. What is hand-written here is exactly what the paper's
//! tool generates: the index function and the extraction function.

pub mod ipars_l0;
pub mod titan;

pub use ipars_l0::HandIparsL0;
pub use titan::HandTitan;
