//! Property tests for the primitive layer.
//!
//! * value encode/decode round-trips for every type and bit pattern;
//! * `Value` ordering is a total order consistent across numeric types;
//! * interval-set algebra laws: union/intersection membership,
//!   complement involution (on membership), pruning soundness.

use proptest::prelude::*;

use dv_types::{DataType, Interval, IntervalSet, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u8>().prop_map(Value::Char),
        any::<i16>().prop_map(Value::Short),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f32>().prop_map(Value::Float),
        any::<f64>().prop_map(Value::Double),
    ]
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec((-50.0f64..50.0, 0.0f64..20.0), 0..6).prop_map(|ivs| {
        let mut s = IntervalSet::empty();
        for (lo, w) in ivs {
            s = s.union(&IntervalSet::single(Interval::closed(lo, lo + w)));
        }
        s
    })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(v in arb_value()) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        prop_assert_eq!(buf.len(), v.size());
        let back = Value::decode(v.data_type(), &buf);
        // NaN != NaN under IEEE, but total_cmp treats them equal here.
        prop_assert_eq!(back.total_cmp(&v), std::cmp::Ordering::Equal);
        prop_assert_eq!(back.data_type(), v.data_type());
    }

    #[test]
    fn ordering_is_total_and_antisymmetric(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (spot-check the two chains that matter).
        if a.total_cmp(&b) != Greater && b.total_cmp(&c) != Greater {
            prop_assert_ne!(a.total_cmp(&c), Greater);
        }
    }

    #[test]
    fn integer_cross_type_equality(v in any::<i16>()) {
        let wide = Value::Long(v as i64);
        let narrow = Value::Short(v);
        prop_assert_eq!(wide.total_cmp(&narrow), std::cmp::Ordering::Equal);
        prop_assert_eq!(Value::Double(v as f64).total_cmp(&narrow), std::cmp::Ordering::Equal);
    }

    #[test]
    fn from_i64_roundtrip_in_range(v in -30000i64..30000) {
        for ty in [DataType::Short, DataType::Int, DataType::Long, DataType::Double] {
            let val = Value::from_i64(ty, v);
            prop_assert_eq!(val.as_i64().unwrap(), v, "{:?}", ty);
        }
    }

    #[test]
    fn union_and_intersection_membership(a in arb_set(), b in arb_set(), probe in -60.0f64..60.0) {
        let u = a.union(&b);
        let i = a.intersect(&b);
        prop_assert_eq!(u.contains(probe), a.contains(probe) || b.contains(probe));
        prop_assert_eq!(i.contains(probe), a.contains(probe) && b.contains(probe));
    }

    #[test]
    fn complement_membership(a in arb_set(), probe in -60.0f64..60.0) {
        let c = a.complement();
        prop_assert_eq!(c.contains(probe), !a.contains(probe));
        // Involution on membership.
        prop_assert_eq!(c.complement().contains(probe), a.contains(probe));
    }

    #[test]
    fn overlaps_closed_is_sound(a in arb_set(), lo in -60.0f64..60.0, w in 0.0f64..10.0, probe in 0.0f64..1.0) {
        // If any point of [lo, lo+w] is in the set, overlap must say so.
        let hi = lo + w;
        let point = lo + probe * w;
        if a.contains(point) {
            prop_assert!(a.overlaps_closed(lo, hi));
        }
        // Conversely a reported overlap means the hulls truly touch.
        if !a.is_empty() && a.overlaps_closed(lo, hi) {
            let (slo, shi) = a.bounds().unwrap();
            prop_assert!(slo <= hi && lo <= shi);
        }
    }

    #[test]
    fn normalized_sets_are_sorted_disjoint(a in arb_set()) {
        let ivs = a.intervals();
        for w in ivs.windows(2) {
            prop_assert!(w[0].hi <= w[1].lo, "{:?}", ivs);
        }
    }
}
