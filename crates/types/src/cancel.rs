//! Cooperative cancellation for long-running queries.
//!
//! A [`CancelToken`] is shared between the client that owns a query
//! session and every stage executing it (extraction, I/O scheduling,
//! filtering, partitioning, data movement). Stages poll the token at
//! natural checkpoints — once per byte run, per fetched group, per
//! block — so an abort takes effect mid-scan without unwinding through
//! foreign stack frames. Cancellation is *sticky*: once the flag is
//! set (explicitly or by an expired deadline) it never clears.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{DvError, Result};

/// Why a token reports cancelled (recorded at the first observation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (client drop, explicit
    /// abort, admission shutdown).
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

const REASON_NONE: u8 = 0;
const REASON_CANCELLED: u8 = 1;
const REASON_DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    /// Which condition tripped first, latched for error messages.
    reason: AtomicU8,
    /// Absolute deadline; checked lazily by observers.
    deadline: Option<Instant>,
    /// A parent token whose cancellation propagates to this one (but
    /// not the other way around).
    parent: Option<Arc<Inner>>,
}

impl Inner {
    /// Lazily evaluate cancellation: own flag, own deadline, then the
    /// parent chain. A tripped condition latches flag and reason.
    fn poll(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                let _ = self.reason.compare_exchange(
                    REASON_NONE,
                    REASON_DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                self.flag.store(true, Ordering::Release);
                return true;
            }
        }
        if let Some(parent) = &self.parent {
            if parent.poll() {
                let inherited = match parent.reason.load(Ordering::Relaxed) {
                    REASON_DEADLINE => REASON_DEADLINE,
                    _ => REASON_CANCELLED,
                };
                let _ = self.reason.compare_exchange(
                    REASON_NONE,
                    inherited,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                self.flag.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }
}

/// A cloneable cancellation flag with an optional deadline. Clones
/// share state: cancelling any clone cancels them all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only cancels explicitly (no deadline).
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                reason: AtomicU8::new(REASON_NONE),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that additionally cancels when `timeout` has elapsed
    /// from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// A token that additionally cancels at the absolute instant
    /// `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                reason: AtomicU8::new(REASON_NONE),
                deadline: Some(deadline),
                parent: None,
            }),
        }
    }

    /// A child token that also trips when `self` trips, with its own
    /// optional deadline on top. Cancelling the child leaves the
    /// parent live — one client's timeout must not abort another
    /// query sharing the parent.
    pub fn child_with_deadline(&self, deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                reason: AtomicU8::new(REASON_NONE),
                deadline,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        // Keep the first reason: a deadline observed before an
        // explicit cancel stays DeadlineExceeded.
        let _ = self.inner.reason.compare_exchange(
            REASON_NONE,
            REASON_CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once cancelled, past the deadline, or tripped through the
    /// parent chain. Deadlines are evaluated lazily here, so expiry is
    /// observed by whichever stage polls next.
    pub fn is_cancelled(&self) -> bool {
        self.inner.poll()
    }

    /// The latched reason, if cancelled.
    pub fn reason(&self) -> Option<CancelReason> {
        if !self.is_cancelled() {
            return None;
        }
        match self.inner.reason.load(Ordering::Relaxed) {
            REASON_DEADLINE => Some(CancelReason::DeadlineExceeded),
            _ => Some(CancelReason::Cancelled),
        }
    }

    /// The checkpoint call: `Ok(())` while live, [`DvError::Cancelled`]
    /// once cancelled. Stages call this between units of work and
    /// propagate the error with `?`.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(self.error())
        } else {
            Ok(())
        }
    }

    /// The error this token produces once cancelled.
    pub fn error(&self) -> DvError {
        match self.reason() {
            Some(CancelReason::DeadlineExceeded) => DvError::Cancelled("deadline exceeded".into()),
            _ => DvError::Cancelled("cancelled by client".into()),
        }
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time until the deadline (zero once passed; `None` without one).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert_eq!(t.reason(), None);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.reason(), Some(CancelReason::Cancelled));
        let err = clone.check().unwrap_err();
        assert!(err.to_string().contains("cancelled by client"), "{err}");
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_timeout(Duration::from_millis(5));
        assert!(t.remaining().is_some());
        std::thread::sleep(Duration::from_millis(10));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
        let err = t.check().unwrap_err();
        assert!(err.to_string().contains("deadline exceeded"), "{err}");
    }

    #[test]
    fn deadline_reason_wins_when_observed_first() {
        let t = CancelToken::with_timeout(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.is_cancelled()); // latches DeadlineExceeded
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn far_deadline_stays_live() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn parent_cancel_propagates_to_child() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(None);
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert_eq!(child.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn child_cancel_leaves_parent_live() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Some(Instant::now() + Duration::from_millis(5)));
        std::thread::sleep(Duration::from_millis(10));
        assert!(child.is_cancelled());
        assert_eq!(child.reason(), Some(CancelReason::DeadlineExceeded));
        assert!(!parent.is_cancelled(), "child deadline must not trip the parent");
    }

    #[test]
    fn child_inherits_parent_deadline_reason() {
        let parent = CancelToken::with_timeout(Duration::from_millis(5));
        let child = parent.child_with_deadline(None);
        std::thread::sleep(Duration::from_millis(10));
        assert!(child.is_cancelled());
        assert_eq!(child.reason(), Some(CancelReason::DeadlineExceeded));
    }
}
