//! Partial aggregation: group keys, accumulator columns, and the fold
//! / merge / finalize kernels shared by every engine.
//!
//! The pushdown pipeline ships *accumulators*, not rows: each node
//! folds the rows of one aligned file chunk (AFC) into a small hash
//! table of per-group accumulator states, and the mover carries those
//! states — `O(groups)` per chunk — instead of `O(rows)` of filtered
//! data. The absorber merges partials and finalizes `AVG` as
//! `sum / count`.
//!
//! # Determinism
//!
//! Floating-point addition is not associative, so "the sum of a group"
//! is only well-defined once a fold tree is fixed. The canonical fold
//! unit is the AFC: its boundaries are decided at plan time and an AFC
//! is never split across workers, so the partial state of one
//! `(node, chunk)` pair is a pure function of the data regardless of
//! thread count or steal order. The absorber then left-folds partials
//! per group in ascending `(node, chunk ordinal)` order. The first
//! contribution to a group *copies* the partial state (never
//! `0.0 + x`, which would flush `-0.0`), so chunks that contribute
//! nothing — pruned, filtered empty — are invisible to the fold and
//! prune on/off produces bit-identical aggregates.
//!
//! # NaN policy
//!
//! Group keys compare by bit pattern with every NaN canonicalized to
//! one quiet-NaN code, so NaN-valued rows form a single group.
//! `SUM`/`AVG` propagate NaN (IEEE addition); `MIN`/`MAX` use
//! `f64::total_cmp`, under which NaN sorts above every number.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::column::ColumnBlock;
use crate::datatype::DataType;
use crate::value::Value;

/// Maximum number of `GROUP BY` columns (binder-enforced); keys are
/// fixed-width arrays so hashing never allocates.
pub const MAX_GROUP_COLS: usize = 8;

/// A group key: one canonical `f64` bit code per `GROUP BY` column,
/// unused trailing slots zero.
pub type GroupKey = [u64; MAX_GROUP_COLS];

/// The canonical quiet-NaN bit pattern all NaN keys collapse to.
const CANON_NAN: u64 = 0x7ff8_0000_0000_0000;

/// Canonical bit code of one key component.
#[inline]
pub fn key_code(v: f64) -> u64 {
    if v.is_nan() {
        CANON_NAN
    } else {
        v.to_bits()
    }
}

/// Decode a key component back into a schema-typed value.
#[inline]
pub fn key_value(code: u64, ty: DataType) -> Value {
    Value::from_f64(ty, f64::from_bits(code))
}

/// The aggregate functions of the SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    /// SQL spelling, as the parser accepts and `Display` regenerates.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// Result type: `COUNT` is an exact `long`, `SUM`/`AVG` widen to
    /// `double`, `MIN`/`MAX` keep the argument's type.
    pub fn result_dtype(&self, arg: Option<DataType>) -> DataType {
        match self {
            AggFunc::Count => DataType::Long,
            AggFunc::Sum | AggFunc::Avg => DataType::Double,
            AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Double),
        }
    }

    /// Parse a SQL aggregate function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        }
    }
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One group × one aggregate's scalar accumulator state — the unit the
/// mover ships and the absorber merges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccState {
    Count(i64),
    Sum(f64),
    Min(f64),
    Max(f64),
    Avg { sum: f64, count: i64 },
}

impl AccState {
    /// Wire size in bytes (for the mover's bandwidth model).
    pub fn wire_bytes(&self) -> usize {
        match self {
            AccState::Avg { .. } => 16,
            _ => 8,
        }
    }
}

/// A struct-of-arrays column of accumulator states: slot `i` holds the
/// state of group `i` for one aggregate of the query.
#[derive(Debug, Clone)]
pub enum AccCol {
    Count(Vec<i64>),
    Sum(Vec<f64>),
    Min(Vec<f64>),
    Max(Vec<f64>),
    Avg { sum: Vec<f64>, count: Vec<i64> },
}

impl AccCol {
    /// An empty accumulator column for `func`.
    pub fn new(func: AggFunc) -> AccCol {
        match func {
            AggFunc::Count => AccCol::Count(Vec::new()),
            AggFunc::Sum => AccCol::Sum(Vec::new()),
            AggFunc::Min => AccCol::Min(Vec::new()),
            AggFunc::Max => AccCol::Max(Vec::new()),
            AggFunc::Avg => AccCol::Avg { sum: Vec::new(), count: Vec::new() },
        }
    }

    /// Number of group slots.
    pub fn len(&self) -> usize {
        match self {
            AccCol::Count(v) => v.len(),
            AccCol::Sum(v) | AccCol::Min(v) | AccCol::Max(v) => v.len(),
            AccCol::Avg { sum, .. } => sum.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Initialize a new group slot from its first row value.
    #[inline]
    fn push_first(&mut self, x: f64) {
        match self {
            AccCol::Count(v) => v.push(1),
            AccCol::Sum(v) | AccCol::Min(v) | AccCol::Max(v) => v.push(x),
            AccCol::Avg { sum, count } => {
                sum.push(x);
                count.push(1);
            }
        }
    }

    /// Fold one more row value into group slot `i`.
    #[inline]
    fn fold_into(&mut self, i: usize, x: f64) {
        match self {
            AccCol::Count(v) => v[i] += 1,
            AccCol::Sum(v) => v[i] += x,
            AccCol::Min(v) => {
                if x.total_cmp(&v[i]).is_lt() {
                    v[i] = x;
                }
            }
            AccCol::Max(v) => {
                if x.total_cmp(&v[i]).is_gt() {
                    v[i] = x;
                }
            }
            AccCol::Avg { sum, count } => {
                sum[i] += x;
                count[i] += 1;
            }
        }
    }

    /// Append a shipped partial state as a new group slot (the
    /// copy-on-first-contribution step of the absorber fold).
    pub fn push_state(&mut self, s: AccState) {
        match (self, s) {
            (AccCol::Count(v), AccState::Count(c)) => v.push(c),
            (AccCol::Sum(v), AccState::Sum(x)) => v.push(x),
            (AccCol::Min(v), AccState::Min(x)) => v.push(x),
            (AccCol::Max(v), AccState::Max(x)) => v.push(x),
            (AccCol::Avg { sum, count }, AccState::Avg { sum: s, count: c }) => {
                sum.push(s);
                count.push(c);
            }
            _ => panic!("accumulator column / state kind mismatch"),
        }
    }

    /// Merge a shipped partial state into existing group slot `i`.
    pub fn merge_state(&mut self, i: usize, s: AccState) {
        match (self, s) {
            (AccCol::Count(v), AccState::Count(c)) => v[i] += c,
            (AccCol::Sum(v), AccState::Sum(x)) => v[i] += x,
            (AccCol::Min(v), AccState::Min(x)) => {
                if x.total_cmp(&v[i]).is_lt() {
                    v[i] = x;
                }
            }
            (AccCol::Max(v), AccState::Max(x)) => {
                if x.total_cmp(&v[i]).is_gt() {
                    v[i] = x;
                }
            }
            (AccCol::Avg { sum, count }, AccState::Avg { sum: s, count: c }) => {
                sum[i] += s;
                count[i] += c;
            }
            _ => panic!("accumulator column / state kind mismatch"),
        }
    }

    /// The scalar state of group slot `i`.
    pub fn state_at(&self, i: usize) -> AccState {
        match self {
            AccCol::Count(v) => AccState::Count(v[i]),
            AccCol::Sum(v) => AccState::Sum(v[i]),
            AccCol::Min(v) => AccState::Min(v[i]),
            AccCol::Max(v) => AccState::Max(v[i]),
            AccCol::Avg { sum, count } => AccState::Avg { sum: sum[i], count: count[i] },
        }
    }

    /// Finalize group slot `i` into an output value of `dtype` (the
    /// aggregate's result type — see [`AggFunc::result_dtype`]).
    pub fn finalize(&self, i: usize, dtype: DataType) -> Value {
        match self {
            AccCol::Count(v) => Value::Long(v[i]),
            AccCol::Sum(v) => Value::Double(v[i]),
            AccCol::Min(v) | AccCol::Max(v) => Value::from_f64(dtype, v[i]),
            AccCol::Avg { sum, count } => Value::Double(sum[i] / count[i] as f64),
        }
    }
}

/// A hash-aggregation table: group keys → accumulator columns. Used
/// per-chunk at the nodes (then drained into an [`AggBlock`]) and as
/// the final merge table at the absorber.
#[derive(Debug)]
pub struct AggTable {
    funcs: Vec<AggFunc>,
    key_width: usize,
    map: HashMap<GroupKey, u32>,
    /// Group keys in insertion order (slot `i` ↔ `keys[i]`).
    pub keys: Vec<GroupKey>,
    /// One accumulator column per aggregate of the query.
    pub accs: Vec<AccCol>,
}

impl AggTable {
    pub fn new(funcs: &[AggFunc], key_width: usize) -> AggTable {
        assert!(key_width <= MAX_GROUP_COLS, "group key too wide");
        AggTable {
            funcs: funcs.to_vec(),
            key_width,
            map: HashMap::new(),
            keys: Vec::new(),
            accs: funcs.iter().map(|&f| AccCol::new(f)).collect(),
        }
    }

    pub fn funcs(&self) -> &[AggFunc] {
        &self.funcs
    }

    pub fn key_width(&self) -> usize {
        self.key_width
    }

    /// Number of groups seen so far.
    pub fn groups(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Reset for the next chunk, keeping allocations.
    pub fn clear(&mut self) {
        self.map.clear();
        self.keys.clear();
        for (acc, &f) in self.accs.iter_mut().zip(&self.funcs) {
            *acc = AccCol::new(f);
        }
    }

    /// Fold one row: `args[a]` is the `f64` argument of aggregate `a`
    /// (`COUNT(*)` passes a dummy). Rows must arrive in scan order.
    #[inline]
    pub fn fold_row(&mut self, key: GroupKey, args: &[f64]) {
        match self.map.entry(key) {
            Entry::Occupied(e) => {
                let i = *e.get() as usize;
                for (acc, &x) in self.accs.iter_mut().zip(args) {
                    acc.fold_into(i, x);
                }
            }
            Entry::Vacant(e) => {
                e.insert(self.keys.len() as u32);
                self.keys.push(key);
                for (acc, &x) in self.accs.iter_mut().zip(args) {
                    acc.push_first(x);
                }
            }
        }
    }

    /// Fold the selected rows of a columnar block. `group_pos` /
    /// `arg_pos` index into the block's columns (`None` = `COUNT(*)`).
    /// Returns the number of rows folded.
    pub fn fold_block(
        &mut self,
        block: &ColumnBlock,
        group_pos: &[usize],
        arg_pos: &[Option<usize>],
    ) -> u64 {
        let n = block.selected();
        if n == 0 {
            return 0;
        }
        let sel = block.selection();
        let key_cols: Vec<Vec<f64>> =
            group_pos.iter().map(|&p| block.columns[p].f64s(sel)).collect();
        let arg_cols: Vec<Option<Vec<f64>>> =
            arg_pos.iter().map(|o| o.map(|p| block.columns[p].f64s(sel))).collect();
        let mut args = vec![0.0f64; arg_pos.len()];
        for r in 0..n {
            let mut key: GroupKey = [0; MAX_GROUP_COLS];
            for (k, col) in key_cols.iter().enumerate() {
                key[k] = key_code(col[r]);
            }
            for (a, col) in arg_cols.iter().enumerate() {
                if let Some(v) = col {
                    args[a] = v[r];
                }
            }
            self.fold_row(key, &args);
        }
        n as u64
    }

    /// Fold one materialized row (the row-at-a-time engine and the
    /// handwritten oracle). Positions index into `row`.
    pub fn fold_values(&mut self, row: &[Value], group_pos: &[usize], arg_pos: &[Option<usize>]) {
        let mut key: GroupKey = [0; MAX_GROUP_COLS];
        for (k, &p) in group_pos.iter().enumerate() {
            key[k] = key_code(row[p].as_f64());
        }
        let args: Vec<f64> =
            arg_pos.iter().map(|o| o.map(|p| row[p].as_f64()).unwrap_or(0.0)).collect();
        self.fold_row(key, &args);
    }

    /// Merge a shipped partial entry. New groups copy the state
    /// verbatim; existing groups fold it in. Callers must present
    /// entries in ascending canonical `(node, chunk)` order — this is
    /// what makes the merged float state deterministic.
    pub fn merge_entry(&mut self, key: GroupKey, states: &[AccState]) {
        match self.map.entry(key) {
            Entry::Occupied(e) => {
                let i = *e.get() as usize;
                for (acc, &s) in self.accs.iter_mut().zip(states) {
                    acc.merge_state(i, s);
                }
            }
            Entry::Vacant(e) => {
                e.insert(self.keys.len() as u32);
                self.keys.push(key);
                for (acc, &s) in self.accs.iter_mut().zip(states) {
                    acc.push_state(s);
                }
            }
        }
    }

    /// Drain this chunk's partials into an outgoing block, tagging
    /// every entry with the chunk's starting scanned ordinal `seq`,
    /// then reset for the next chunk. Returns the number of entries.
    pub fn drain_into(&mut self, seq: u64, out: &mut AggBlock) -> u64 {
        let n = self.keys.len();
        for i in 0..n {
            out.seqs.push(seq);
            out.keys.push(self.keys[i]);
            for (o, a) in out.accs.iter_mut().zip(&self.accs) {
                o.push_state(a.state_at(i));
            }
        }
        self.clear();
        n as u64
    }

    /// Group slots sorted by decoded key value (`total_cmp`
    /// lexicographic) — the deterministic output order.
    pub fn sorted_indices(&self, group_dtypes: &[DataType]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.keys.len()).collect();
        idx.sort_by(|&a, &b| {
            for (k, &ty) in group_dtypes.iter().enumerate() {
                let va = key_value(self.keys[a][k], ty);
                let vb = key_value(self.keys[b][k], ty);
                let c = va.total_cmp(&vb);
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            std::cmp::Ordering::Equal
        });
        idx
    }

    /// Decoded key values of group slot `i`.
    pub fn key_values(&self, i: usize, group_dtypes: &[DataType]) -> Vec<Value> {
        group_dtypes.iter().enumerate().map(|(k, &ty)| key_value(self.keys[i][k], ty)).collect()
    }
}

/// A compact block of shipped partial-aggregate entries: parallel
/// arrays of chunk ordinals, group keys, and accumulator columns.
#[derive(Debug, Clone)]
pub struct AggBlock {
    /// Producing cluster node.
    pub source_node: usize,
    /// Number of live `GROUP BY` columns in each key.
    pub key_width: usize,
    /// Starting scanned ordinal of the chunk each entry came from.
    pub seqs: Vec<u64>,
    /// Group keys, parallel to `seqs`.
    pub keys: Vec<GroupKey>,
    /// One accumulator column per aggregate, each `seqs.len()` long.
    pub accs: Vec<AccCol>,
}

impl AggBlock {
    pub fn new(source_node: usize, key_width: usize, funcs: &[AggFunc]) -> AggBlock {
        AggBlock {
            source_node,
            key_width,
            seqs: Vec::new(),
            keys: Vec::new(),
            accs: funcs.iter().map(|&f| AccCol::new(f)).collect(),
        }
    }

    /// Number of partial entries.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Wire size in bytes: per entry, the chunk ordinal, the live key
    /// columns, and each accumulator state.
    pub fn wire_bytes(&self) -> usize {
        let per_entry: usize = 8
            + self.key_width * 8
            + self
                .accs
                .iter()
                .map(|a| if a.is_empty() { 8 } else { a.state_at(0).wire_bytes() })
                .sum::<usize>();
        self.len() * per_entry
    }

    /// The accumulator states of entry `i`.
    pub fn states_at(&self, i: usize) -> Vec<AccState> {
        self.accs.iter().map(|a| a.state_at(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(funcs: &[AggFunc]) -> AggTable {
        AggTable::new(funcs, 1)
    }

    #[test]
    fn fold_and_finalize_basics() {
        let mut t =
            table(&[AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg]);
        for (k, x) in [(1.0, 2.0), (1.0, 4.0), (2.0, -1.0)] {
            let mut key: GroupKey = [0; MAX_GROUP_COLS];
            key[0] = key_code(k);
            t.fold_row(key, &[x, x, x, x, x]);
        }
        assert_eq!(t.groups(), 2);
        let idx = t.sorted_indices(&[DataType::Double]);
        let g1 = idx[0]; // key 1.0
        assert_eq!(t.key_values(g1, &[DataType::Double]), vec![Value::Double(1.0)]);
        assert_eq!(t.accs[0].finalize(g1, DataType::Long), Value::Long(2));
        assert_eq!(t.accs[1].finalize(g1, DataType::Double), Value::Double(6.0));
        assert_eq!(t.accs[2].finalize(g1, DataType::Double), Value::Double(2.0));
        assert_eq!(t.accs[3].finalize(g1, DataType::Double), Value::Double(4.0));
        assert_eq!(t.accs[4].finalize(g1, DataType::Double), Value::Double(3.0));
    }

    #[test]
    fn nan_keys_collapse_to_one_group() {
        let mut t = table(&[AggFunc::Count]);
        for bits in [f64::NAN.to_bits(), f64::NAN.to_bits() | 1, (-f64::NAN).to_bits()] {
            let mut key: GroupKey = [0; MAX_GROUP_COLS];
            key[0] = key_code(f64::from_bits(bits));
            t.fold_row(key, &[0.0]);
        }
        assert_eq!(t.groups(), 1);
        assert_eq!(t.accs[0].finalize(0, DataType::Long), Value::Long(3));
    }

    #[test]
    fn min_max_total_cmp_handles_nan() {
        let mut t = table(&[AggFunc::Min, AggFunc::Max]);
        let key: GroupKey = [0; MAX_GROUP_COLS];
        for x in [3.0, f64::NAN, -7.0] {
            t.fold_row(key, &[x, x]);
        }
        assert_eq!(t.accs[0].finalize(0, DataType::Double), Value::Double(-7.0));
        // NaN sorts above every number under total_cmp.
        let Value::Double(mx) = t.accs[1].finalize(0, DataType::Double) else { panic!() };
        assert!(mx.is_nan());
    }

    #[test]
    fn merge_first_contribution_copies_state() {
        // -0.0 survives the copy; a 0.0 + x init would flush it.
        let mut t = table(&[AggFunc::Sum]);
        let key: GroupKey = [0; MAX_GROUP_COLS];
        t.merge_entry(key, &[AccState::Sum(-0.0)]);
        let Value::Double(s) = t.accs[0].finalize(0, DataType::Double) else { panic!() };
        assert_eq!(s.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn drain_round_trips_through_block() {
        let funcs = [AggFunc::Sum, AggFunc::Avg];
        let mut t = table(&funcs);
        let mut k1: GroupKey = [0; MAX_GROUP_COLS];
        k1[0] = key_code(5.0);
        t.fold_row(k1, &[1.5, 1.5]);
        t.fold_row(k1, &[2.5, 2.5]);
        let mut out = AggBlock::new(3, 1, &funcs);
        assert_eq!(t.drain_into(42, &mut out), 1);
        assert!(t.is_empty());
        assert_eq!(out.len(), 1);
        assert_eq!(out.seqs, vec![42]);
        assert_eq!(
            out.states_at(0),
            vec![AccState::Sum(4.0), AccState::Avg { sum: 4.0, count: 2 }]
        );
        // 8 (seq) + 8 (key) + 8 (sum) + 16 (avg).
        assert_eq!(out.wire_bytes(), 40);

        let mut merged = table(&funcs);
        for i in 0..out.len() {
            merged.merge_entry(out.keys[i], &out.states_at(i));
        }
        assert_eq!(merged.accs[0].finalize(0, DataType::Double), Value::Double(4.0));
        assert_eq!(merged.accs[1].finalize(0, DataType::Double), Value::Double(2.0));
    }

    #[test]
    fn fold_block_matches_fold_values() {
        use crate::column::ColumnBlock;
        let mut b = ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Float]);
        let rows = [(1, 0.5f32), (2, 1.5), (1, f32::NAN), (2, -0.5), (1, 2.0)];
        for (k, x) in rows {
            b.columns[0].append_data().push_value(Value::Int(k));
            b.columns[1].append_data().push_value(Value::Float(x));
        }
        b.advance_rows(rows.len());
        b.set_selection(Some(vec![0, 2, 3, 4])); // drop row 1

        let funcs = [AggFunc::Count, AggFunc::Sum];
        let mut cols = AggTable::new(&funcs, 1);
        assert_eq!(cols.fold_block(&b, &[0], &[None, Some(1)]), 4);

        let mut byrow = AggTable::new(&funcs, 1);
        for i in [0usize, 2, 3, 4] {
            let row = vec![b.columns[0].value_at(i), b.columns[1].value_at(i)];
            byrow.fold_values(&row, &[0], &[None, Some(1)]);
        }
        assert_eq!(cols.keys, byrow.keys);
        fn bits(s: AccState) -> (u64, u64) {
            match s {
                AccState::Count(c) => (c as u64, 0),
                AccState::Sum(x) | AccState::Min(x) | AccState::Max(x) => (x.to_bits(), 0),
                AccState::Avg { sum, count } => (sum.to_bits(), count as u64),
            }
        }
        for (a, b) in cols.accs.iter().zip(&byrow.accs) {
            for i in 0..a.len() {
                assert_eq!(bits(a.state_at(i)), bits(b.state_at(i)));
            }
        }
    }

    #[test]
    fn sorted_output_is_by_decoded_key() {
        let mut t = table(&[AggFunc::Count]);
        for k in [3.0, -1.0, 2.0, f64::NAN] {
            let mut key: GroupKey = [0; MAX_GROUP_COLS];
            key[0] = key_code(k);
            t.fold_row(key, &[0.0]);
        }
        let idx = t.sorted_indices(&[DataType::Double]);
        let decoded: Vec<Value> =
            idx.iter().map(|&i| t.key_values(i, &[DataType::Double])[0]).collect();
        assert_eq!(decoded[0], Value::Double(-1.0));
        assert_eq!(decoded[1], Value::Double(2.0));
        assert_eq!(decoded[2], Value::Double(3.0));
        let Value::Double(last) = decoded[3] else { panic!() };
        assert!(last.is_nan());
    }

    #[test]
    fn result_dtypes() {
        assert_eq!(AggFunc::Count.result_dtype(None), DataType::Long);
        assert_eq!(AggFunc::Sum.result_dtype(Some(DataType::Float)), DataType::Double);
        assert_eq!(AggFunc::Min.result_dtype(Some(DataType::Short)), DataType::Short);
        assert_eq!(AggFunc::Avg.result_dtype(Some(DataType::Int)), DataType::Double);
    }
}
