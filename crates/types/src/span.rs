//! Byte spans into descriptor / query source text.
//!
//! Spans are carried by tokens and AST nodes so that semantic checks
//! and lints can point at the exact source region. A [`Span`] compares
//! equal to every other span on purpose: AST round-trip tests compare
//! a parsed tree against the re-parse of its pretty-printed rendering,
//! and that rendering legitimately moves every byte offset. Positions
//! are diagnostics metadata, not part of a node's identity.

use std::fmt;

/// A half-open byte range `[start, end)` into some source text.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// The empty placeholder span used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Span over `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// True for synthesized nodes with no source location.
    pub fn is_dummy(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// Smallest span covering both `self` and `other`. A dummy operand
    /// yields the other span unchanged.
    pub fn to(self, other: Span) -> Span {
        if self.is_dummy() {
            other
        } else if other.is_dummy() {
            self
        } else {
            Span { start: self.start.min(other.start), end: self.end.max(other.end) }
        }
    }

    /// 1-based `(line, column)` of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let upto = &source.as_bytes()[..self.start.min(source.len())];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
        (line, col)
    }
}

/// All spans are equal: source positions never affect AST equality.
impl PartialEq for Span {
    fn eq(&self, _other: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_position() {
        assert_eq!(Span::new(3, 9), Span::new(100, 200));
        assert_eq!(Span::DUMMY, Span::new(5, 6));
    }

    #[test]
    fn join_covers_both() {
        let j = Span::new(10, 14).to(Span::new(2, 6));
        assert!(j.start == 2 && j.end == 14);
        let d = Span::DUMMY.to(Span::new(7, 9));
        assert!(d.start == 7 && d.end == 9);
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "abc\ndef\nxyz";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(5, 6).line_col(src), (2, 2));
        assert_eq!(Span::new(9, 10).line_col(src), (3, 2));
    }
}
