//! Columnar blocks: the struct-of-arrays unit of data flow through the
//! STORM pipeline.
//!
//! A [`ColumnBlock`] holds one typed vector per working attribute plus
//! an optional *selection vector* naming the rows that survived
//! filtering. Services operate column-at-a-time: extraction decodes
//! fields straight from read buffers into typed vectors, filtering
//! produces a [`Bitmap`] and stores it as a selection (no data moves),
//! and rows are only reconstituted at the client boundary
//! ([`crate::Table::absorb_columns`]).
//!
//! Implicit attributes (constant over an AFC, or affine in the row
//! ordinal) are kept as *lazy runs* — generator descriptions appended
//! per chunk — and materialize only when something actually gathers or
//! enumerates their values.

use crate::datatype::DataType;
use crate::value::Value;

/// A dense, typed vector of cell values — one physical column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Char(Vec<u8>),
    Short(Vec<i16>),
    Int(Vec<i32>),
    Long(Vec<i64>),
    Float(Vec<f32>),
    Double(Vec<f64>),
}

impl ColumnData {
    /// An empty vector of the given type.
    pub fn empty(dtype: DataType) -> ColumnData {
        match dtype {
            DataType::Char => ColumnData::Char(Vec::new()),
            DataType::Short => ColumnData::Short(Vec::new()),
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Long => ColumnData::Long(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Double => ColumnData::Double(Vec::new()),
        }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Char(v) => v.len(),
            ColumnData::Short(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Long(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Double(v) => v.len(),
        }
    }

    /// True when no values are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at index `i` (panics out of bounds).
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnData::Char(v) => Value::Char(v[i]),
            ColumnData::Short(v) => Value::Short(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Long(v) => Value::Long(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Double(v) => Value::Double(v[i]),
        }
    }

    /// Append one value; must match the vector's type.
    #[inline]
    pub fn push_value(&mut self, v: Value) {
        match (self, v) {
            (ColumnData::Char(d), Value::Char(x)) => d.push(x),
            (ColumnData::Short(d), Value::Short(x)) => d.push(x),
            (ColumnData::Int(d), Value::Int(x)) => d.push(x),
            (ColumnData::Long(d), Value::Long(x)) => d.push(x),
            (ColumnData::Float(d), Value::Float(x)) => d.push(x),
            (ColumnData::Double(d), Value::Double(x)) => d.push(x),
            (_, v) => panic!("type mismatch pushing {v:?} into typed column"),
        }
    }

    /// Reserve room for `n` more values.
    pub fn reserve(&mut self, n: usize) {
        match self {
            ColumnData::Char(v) => v.reserve(n),
            ColumnData::Short(v) => v.reserve(n),
            ColumnData::Int(v) => v.reserve(n),
            ColumnData::Long(v) => v.reserve(n),
            ColumnData::Float(v) => v.reserve(n),
            ColumnData::Double(v) => v.reserve(n),
        }
    }
}

/// Generator for rows an AFC supplies without reading bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnGen {
    /// The same value for every row of the run.
    Const(Value),
    /// Row `k` of the run carries `start + k*step`, converted to the
    /// column's type exactly like the row-at-a-time extractor does.
    Affine { start: i64, step: i64 },
}

impl ColumnGen {
    /// Value of row `k` within the run.
    #[inline]
    pub fn value_at(&self, k: usize, dtype: DataType) -> Value {
        match self {
            ColumnGen::Const(v) => *v,
            ColumnGen::Affine { start, step } => Value::from_i64(dtype, start + k as i64 * step),
        }
    }
}

/// One lazily-materialized run of generated rows.
#[derive(Debug, Clone, PartialEq)]
pub struct LazyRun {
    /// First block row the run covers.
    pub start: usize,
    /// Rows covered.
    pub len: usize,
    /// How the values are produced.
    pub gen: ColumnGen,
}

/// One column: a dense decoded prefix (possibly empty) followed by
/// zero or more lazy runs. Appending decoded data after a lazy run
/// materializes the runs first, so the split point only moves forward.
#[derive(Debug, Clone)]
pub struct Column {
    dtype: DataType,
    data: ColumnData,
    runs: Vec<LazyRun>,
}

impl Column {
    /// A fresh empty column of the given type.
    pub fn new(dtype: DataType) -> Column {
        Column { dtype, data: ColumnData::empty(dtype), runs: Vec::new() }
    }

    /// The column's scalar type.
    #[inline]
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Total rows (decoded + lazy).
    #[inline]
    pub fn len(&self) -> usize {
        match self.runs.last() {
            Some(r) => r.start + r.len,
            None => self.data.len(),
        }
    }

    /// True when the column holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dense prefix and the lazy suffix, for kernels that want to
    /// specialize over both representations.
    #[inline]
    pub fn parts(&self) -> (&ColumnData, &[LazyRun]) {
        (&self.data, &self.runs)
    }

    /// Mutable access to the dense vector for appending decoded
    /// values; any lazy runs are materialized first so the dense part
    /// stays a prefix.
    pub fn append_data(&mut self) -> &mut ColumnData {
        if !self.runs.is_empty() {
            self.materialize();
        }
        &mut self.data
    }

    /// Append a lazy run of `len` generated rows.
    pub fn push_run(&mut self, len: usize, gen: ColumnGen) {
        if len == 0 {
            return;
        }
        self.runs.push(LazyRun { start: self.len(), len, gen });
    }

    /// Convert every lazy run into dense values.
    pub fn materialize(&mut self) {
        let runs = std::mem::take(&mut self.runs);
        let total: usize = runs.iter().map(|r| r.len).sum();
        self.data.reserve(total);
        for r in &runs {
            for k in 0..r.len {
                self.data.push_value(r.gen.value_at(k, self.dtype));
            }
        }
    }

    /// The value at block row `i`.
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        if i < self.data.len() {
            return self.data.value_at(i);
        }
        // Binary search the runs by start row.
        let at = self.runs.partition_point(|r| r.start + r.len <= i);
        let r = &self.runs[at];
        debug_assert!(i >= r.start && i < r.start + r.len);
        r.gen.value_at(i - r.start, self.dtype)
    }

    /// All values as `f64` in row order (the view predicate kernels
    /// and partitioning compare on).
    pub fn f64_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        match &self.data {
            ColumnData::Char(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Short(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Int(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Long(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Float(v) => out.extend(v.iter().map(|&x| x as f64)),
            ColumnData::Double(v) => out.extend(v.iter().copied()),
        }
        for r in &self.runs {
            match r.gen {
                ColumnGen::Const(v) => {
                    let x = v.as_f64();
                    out.extend(std::iter::repeat_n(x, r.len));
                }
                ColumnGen::Affine { .. } => {
                    out.extend((0..r.len).map(|k| r.gen.value_at(k, self.dtype).as_f64()));
                }
            }
        }
        out
    }

    /// Selected values in order: the whole column when `sel` is
    /// `None`, otherwise the rows the (ascending) selection names.
    pub fn values(&self, sel: Option<&[u32]>) -> Vec<Value> {
        match sel {
            None => (0..self.len()).map(|i| self.value_at(i)).collect(),
            Some(idx) => idx.iter().map(|&i| self.value_at(i as usize)).collect(),
        }
    }

    /// Selected values as `f64` (partitioning reads one column this
    /// way).
    pub fn f64s(&self, sel: Option<&[u32]>) -> Vec<f64> {
        match sel {
            None => self.f64_vec(),
            Some(idx) => idx.iter().map(|&i| self.value_at(i as usize).as_f64()).collect(),
        }
    }

    /// Gather the rows named by the ascending index list into a fresh
    /// dense column (lazy constants stay lazy — a gather of a constant
    /// run is still constant).
    pub fn gather(&self, idx: &[u32]) -> Column {
        // Fast path: one constant run covering everything stays lazy.
        if self.data.is_empty() && self.runs.len() == 1 {
            if let ColumnGen::Const(_) = self.runs[0].gen {
                let mut out = Column::new(self.dtype);
                out.push_run(idx.len(), self.runs[0].gen);
                return out;
            }
        }
        let mut data = ColumnData::empty(self.dtype);
        data.reserve(idx.len());
        for &i in idx {
            data.push_value(self.value_at(i as usize));
        }
        Column { dtype: self.dtype, data, runs: Vec::new() }
    }
}

/// A batch of rows in columnar form — the columnar sibling of
/// [`crate::RowBlock`].
#[derive(Debug, Clone)]
pub struct ColumnBlock {
    /// Identifier of the cluster node that produced the block.
    pub source_node: usize,
    /// One column per working attribute, all the same length.
    pub columns: Vec<Column>,
    /// Total rows extracted into the block.
    len: usize,
    /// Ascending row indices that passed the filter; `None` = all.
    sel: Option<Vec<u32>>,
}

impl ColumnBlock {
    /// An empty block with one column per working-attribute type.
    pub fn with_dtypes(source_node: usize, dtypes: &[DataType]) -> ColumnBlock {
        ColumnBlock {
            source_node,
            columns: dtypes.iter().map(|&d| Column::new(d)).collect(),
            len: 0,
            sel: None,
        }
    }

    /// Assemble a block from equal-length columns (all rows selected).
    pub fn from_columns(source_node: usize, columns: Vec<Column>) -> ColumnBlock {
        let len = columns.first().map(|c| c.len()).unwrap_or(0);
        debug_assert!(columns.iter().all(|c| c.len() == len));
        ColumnBlock { source_node, columns, len, sel: None }
    }

    /// Total rows extracted (before selection).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Rows that pass the current selection.
    #[inline]
    pub fn selected(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.len,
        }
    }

    /// True when no rows are selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.selected() == 0
    }

    /// The selection vector, if any.
    #[inline]
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Install a selection (`None` keeps every row). Indices must be
    /// ascending and in range — the filter service produces them from
    /// a bitmap, which guarantees both.
    pub fn set_selection(&mut self, sel: Option<Vec<u32>>) {
        debug_assert!(sel
            .as_ref()
            .map(|s| s.windows(2).all(|w| w[0] < w[1])
                && s.last().map(|&i| (i as usize) < self.len).unwrap_or(true))
            .unwrap_or(true));
        self.sel = sel;
    }

    /// The selected row indices, materialized.
    pub fn selected_rows(&self) -> Vec<u32> {
        match &self.sel {
            Some(s) => s.clone(),
            None => (0..self.len as u32).collect(),
        }
    }

    /// Record that every column grew by `n` rows (one extracted AFC).
    pub fn advance_rows(&mut self, n: usize) {
        self.len += n;
        debug_assert!(self.columns.iter().all(|c| c.len() == self.len));
    }

    /// Approximate wire size of the *selected* rows — the unit the
    /// data-mover bandwidth model charges, matching
    /// [`crate::RowBlock::wire_bytes`].
    pub fn wire_bytes(&self) -> usize {
        let row_bytes: usize = self.columns.iter().map(|c| c.dtype().size()).sum();
        self.selected() * row_bytes
    }

    /// Project working columns to output order, in place. Duplicated
    /// positions clone; the selection is untouched (it indexes rows,
    /// not columns).
    pub fn project(&mut self, output_positions: &[usize]) {
        if output_positions.len() == self.columns.len()
            && output_positions.iter().enumerate().all(|(i, &p)| i == p)
        {
            return;
        }
        let old = std::mem::take(&mut self.columns);
        let mut slots: Vec<Option<Column>> = old.into_iter().map(Some).collect();
        self.columns = output_positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if output_positions[i + 1..].contains(&p) {
                    slots[p].clone().expect("projection position out of range")
                } else {
                    slots[p].take().expect("projection position out of range")
                }
            })
            .collect();
    }
}

/// A fixed-size bitmap over the rows of one block — the result type of
/// the vectorized predicate kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All bits clear.
    pub fn new_false(len: usize) -> Bitmap {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// All bits set.
    pub fn new_true(len: usize) -> Bitmap {
        let mut b = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.trim();
        b
    }

    /// Number of rows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn trim(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set every bit in `[start, end)` (constant-run fast path).
    pub fn set_range(&mut self, start: usize, end: usize) {
        for i in start..end {
            self.set(i);
        }
    }

    /// `self &= other`.
    pub fn and(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`.
    pub fn or(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self = !self` (bits past `len` stay clear).
    pub fn not(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Ascending indices of set bits — the selection vector.
    pub fn indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push((wi * 64 + b) as u32);
                bits &= bits - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_ops() {
        let mut a = Bitmap::new_false(70);
        a.set(0);
        a.set(65);
        assert!(a.get(0) && a.get(65) && !a.get(64));
        assert_eq!(a.count(), 2);
        assert_eq!(a.indices(), vec![0, 65]);

        let t = Bitmap::new_true(70);
        assert_eq!(t.count(), 70);
        let mut n = t.clone();
        n.not();
        assert_eq!(n.count(), 0);

        let mut o = a.clone();
        o.or(&t);
        assert_eq!(o.count(), 70);
        o.and(&a);
        assert_eq!(o.indices(), vec![0, 65]);
    }

    #[test]
    fn lazy_runs_materialize_like_generators() {
        let mut c = Column::new(DataType::Int);
        c.push_run(3, ColumnGen::Const(Value::Int(7)));
        c.push_run(2, ColumnGen::Affine { start: 10, step: 2 });
        assert_eq!(c.len(), 5);
        assert_eq!(c.value_at(1), Value::Int(7));
        assert_eq!(c.value_at(3), Value::Int(10));
        assert_eq!(c.value_at(4), Value::Int(12));
        assert_eq!(c.f64_vec(), vec![7.0, 7.0, 7.0, 10.0, 12.0]);
        // Appending decoded data materializes the lazy prefix.
        c.append_data().push_value(Value::Int(99));
        assert_eq!(c.len(), 6);
        assert_eq!(c.value_at(4), Value::Int(12));
        assert_eq!(c.value_at(5), Value::Int(99));
    }

    #[test]
    fn affine_truncates_like_row_extractor() {
        // Short wraps exactly as Value::from_i64 does on the row path.
        let mut c = Column::new(DataType::Short);
        c.push_run(2, ColumnGen::Affine { start: 65536 + 5, step: 1 });
        assert_eq!(c.value_at(0), Value::Short(5));
        assert_eq!(c.f64_vec(), vec![5.0, 6.0]);
    }

    #[test]
    fn gather_walks_data_and_runs() {
        let mut c = Column::new(DataType::Double);
        c.append_data().push_value(Value::Double(0.5));
        c.append_data().push_value(Value::Double(1.5));
        c.push_run(3, ColumnGen::Affine { start: 10, step: 5 });
        let g = c.gather(&[1, 2, 4]);
        assert_eq!(
            g.values(None),
            vec![Value::Double(1.5), Value::Double(10.0), Value::Double(20.0)]
        );
        // Pure constant column stays lazy under gather.
        let mut k = Column::new(DataType::Int);
        k.push_run(100, ColumnGen::Const(Value::Int(3)));
        let gk = k.gather(&[5, 50]);
        let (data, runs) = gk.parts();
        assert!(data.is_empty());
        assert_eq!(runs.len(), 1);
        assert_eq!(gk.values(None), vec![Value::Int(3), Value::Int(3)]);
    }

    #[test]
    fn block_selection_and_wire_bytes() {
        let mut b = ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Double]);
        for i in 0..4 {
            b.columns[0].append_data().push_value(Value::Int(i));
            b.columns[1].append_data().push_value(Value::Double(i as f64));
        }
        b.advance_rows(4);
        assert_eq!(b.wire_bytes(), 4 * 12);
        b.set_selection(Some(vec![1, 3]));
        assert_eq!(b.selected(), 2);
        assert_eq!(b.wire_bytes(), 2 * 12);
        assert_eq!(b.selected_rows(), vec![1, 3]);
        assert_eq!(b.columns[0].values(b.selection()), vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let mut b = ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Float]);
        b.columns[0].append_data().push_value(Value::Int(1));
        b.columns[1].append_data().push_value(Value::Float(2.0));
        b.advance_rows(1);
        b.project(&[1, 0, 1]);
        assert_eq!(b.columns.len(), 3);
        assert_eq!(b.columns[0].value_at(0), Value::Float(2.0));
        assert_eq!(b.columns[1].value_at(0), Value::Int(1));
        assert_eq!(b.columns[2].value_at(0), Value::Float(2.0));
    }

    #[test]
    fn identity_projection_is_noop() {
        let mut b = ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Float]);
        b.columns[0].append_data().push_value(Value::Int(1));
        b.columns[1].append_data().push_value(Value::Float(2.0));
        b.advance_rows(1);
        b.project(&[0, 1]);
        assert_eq!(b.columns.len(), 2);
        assert_eq!(b.columns[0].value_at(0), Value::Int(1));
    }
}
