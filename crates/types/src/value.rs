//! Dynamically-typed scalar values.
//!
//! A [`Value`] is one cell of the virtual relational table. Values carry
//! their [`DataType`], encode/decode to the packed little-endian wire
//! format used by the flat files, and have a *total* ordering (NaN sorts
//! greater than every number, matching the behaviour of `f64::total_cmp`
//! restricted to the values scientific codes actually emit).

use std::cmp::Ordering;
use std::fmt;

use crate::datatype::DataType;
use crate::error::{DvError, Result};

/// One scalar cell value.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    Char(u8),
    Short(i16),
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
}

impl Value {
    /// The type tag of this value.
    #[inline]
    pub const fn data_type(self) -> DataType {
        match self {
            Value::Char(_) => DataType::Char,
            Value::Short(_) => DataType::Short,
            Value::Int(_) => DataType::Int,
            Value::Long(_) => DataType::Long,
            Value::Float(_) => DataType::Float,
            Value::Double(_) => DataType::Double,
        }
    }

    /// Numeric view as `f64` (used by predicate evaluation and UDFs;
    /// `i64` values beyond 2^53 lose precision, which is acceptable for
    /// the coordinate/sensor domains the paper works in and is
    /// documented in DESIGN.md).
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Char(v) => v as f64,
            Value::Short(v) => v as f64,
            Value::Int(v) => v as f64,
            Value::Long(v) => v as f64,
            Value::Float(v) => v as f64,
            Value::Double(v) => v,
        }
    }

    /// Integer view, erroring on non-integral floats.
    pub fn as_i64(self) -> Result<i64> {
        match self {
            Value::Char(v) => Ok(v as i64),
            Value::Short(v) => Ok(v as i64),
            Value::Int(v) => Ok(v as i64),
            Value::Long(v) => Ok(v),
            Value::Float(v) if v.fract() == 0.0 => Ok(v as i64),
            Value::Double(v) if v.fract() == 0.0 => Ok(v as i64),
            other => Err(DvError::Type(format!("value {other} is not an integer"))),
        }
    }

    /// Construct a value of `ty` from an `i64`, truncating as C would.
    #[inline]
    pub fn from_i64(ty: DataType, v: i64) -> Value {
        match ty {
            DataType::Char => Value::Char(v as u8),
            DataType::Short => Value::Short(v as i16),
            DataType::Int => Value::Int(v as i32),
            DataType::Long => Value::Long(v),
            DataType::Float => Value::Float(v as f32),
            DataType::Double => Value::Double(v as f64),
        }
    }

    /// Construct a value of `ty` from an `f64`.
    #[inline]
    pub fn from_f64(ty: DataType, v: f64) -> Value {
        match ty {
            DataType::Char => Value::Char(v as u8),
            DataType::Short => Value::Short(v as i16),
            DataType::Int => Value::Int(v as i32),
            DataType::Long => Value::Long(v as i64),
            DataType::Float => Value::Float(v as f32),
            DataType::Double => Value::Double(v),
        }
    }

    /// Decode a value of type `ty` from the head of `bytes`
    /// (little-endian, packed). `bytes` must hold at least `ty.size()`
    /// bytes; the caller (the generated extractor) guarantees this by
    /// construction of the aligned file chunks.
    #[inline]
    pub fn decode(ty: DataType, bytes: &[u8]) -> Value {
        match ty {
            DataType::Char => Value::Char(bytes[0]),
            DataType::Short => Value::Short(i16::from_le_bytes([bytes[0], bytes[1]])),
            DataType::Int => {
                Value::Int(i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
            }
            DataType::Long => Value::Long(i64::from_le_bytes([
                bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
            ])),
            DataType::Float => {
                Value::Float(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
            }
            DataType::Double => Value::Double(f64::from_le_bytes([
                bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
            ])),
        }
    }

    /// Append the packed little-endian encoding of this value to `out`.
    #[inline]
    pub fn encode(self, out: &mut Vec<u8>) {
        match self {
            Value::Char(v) => out.push(v),
            Value::Short(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::Int(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::Long(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::Float(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::Double(v) => out.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Encoded width in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        self.data_type().size()
    }

    /// The exact integer payload for the integer family; `None` for
    /// floats, even integral ones (those take the `f64` compare path).
    #[inline]
    const fn int_value(self) -> Option<i64> {
        match self {
            Value::Char(v) => Some(v as i64),
            Value::Short(v) => Some(v as i64),
            Value::Int(v) => Some(v as i64),
            Value::Long(v) => Some(v),
            Value::Float(_) | Value::Double(_) => None,
        }
    }

    /// Total-order comparison across numeric types (compares by `f64`
    /// view; NaN sorts last).
    #[inline]
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        // Exact path when both sides are integers, avoiding the f64
        // round-trip for i64 values. Matching the variants directly
        // (rather than `as_i64().unwrap()`) keeps this panic-free no
        // matter how the integer/float family split evolves.
        if let (Some(a), Some(b)) = (self.int_value(), other.int_value()) {
            return a.cmp(&b);
        }
        self.as_f64().total_cmp(&other.as_f64())
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

/// `Display` writes values the way the paper's example queries spell
/// literals, so result tables can be diffed textually.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Char(v) => write!(f, "{v}"),
            Value::Short(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_roundtrip_each_type() {
        let vals = [
            Value::Char(200),
            Value::Short(-1234),
            Value::Int(7_654_321),
            Value::Long(-9_876_543_210),
            Value::Float(3.125),
            Value::Double(-2.5e100),
        ];
        for v in vals {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), v.size());
            let back = Value::decode(v.data_type(), &buf);
            assert_eq!(back, v);
        }
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(5), Value::Double(5.0));
        assert_eq!(Value::Short(5), Value::Long(5));
        assert!(Value::Float(5.5) > Value::Int(5));
        assert!(Value::Int(-1) < Value::Char(0));
    }

    #[test]
    fn integer_compare_is_exact_beyond_f53() {
        let a = Value::Long((1i64 << 53) + 1);
        let b = Value::Long(1i64 << 53);
        assert!(a > b);
    }

    #[test]
    fn nan_sorts_last() {
        assert!(Value::Double(f64::NAN) > Value::Double(f64::MAX));
        assert!(Value::Float(f32::NAN) > Value::Float(f32::MAX));
    }

    #[test]
    fn integer_compare_is_exact_beyond_f64_precision() {
        // Adjacent i64 values collapse under an f64 round-trip; the
        // integer fast path must still distinguish them.
        assert!(Value::Long(i64::MAX) > Value::Long(i64::MAX - 1));
        assert!(Value::Long(i64::MIN) < Value::Long(i64::MIN + 1));
        // Mixed integer/float pairs take the f64 path without panicking.
        assert!(Value::Long(2) > Value::Double(1.5));
        assert_eq!(Value::Int(2), Value::Double(2.0));
    }

    #[test]
    fn as_i64_rejects_fractional() {
        assert!(Value::Double(1.5).as_i64().is_err());
        assert_eq!(Value::Double(2.0).as_i64().unwrap(), 2);
    }

    #[test]
    fn from_i64_truncates_like_c() {
        assert_eq!(Value::from_i64(DataType::Char, 257), Value::Char(1));
        assert_eq!(Value::from_i64(DataType::Short, 65536 + 7), Value::Short(7));
    }

    #[test]
    fn display_matches_literal_spelling() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Double(0.5).to_string(), "0.5");
    }
}
