//! Materialized rows, row blocks, and result tables.
//!
//! The extraction service produces [`RowBlock`]s (batches of rows that
//! share a schema); the data-mover service ships blocks to client
//! processors; clients assemble them into a [`Table`].

use std::fmt;

use crate::schema::Schema;
use crate::value::Value;

/// One materialized row of the virtual table.
pub type Row = Vec<Value>;

/// A batch of rows sharing one (projected) schema.
///
/// Blocks are the unit of transfer between STORM services: extraction
/// emits blocks, filtering rewrites them in place, partition generation
/// tags them, and the data mover serializes them onto channels.
#[derive(Debug, Clone)]
pub struct RowBlock {
    /// Rows in extraction order.
    pub rows: Vec<Row>,
    /// Identifier of the cluster node that produced the block.
    pub source_node: usize,
}

impl RowBlock {
    /// Create a block originating at `source_node`.
    pub fn new(source_node: usize) -> RowBlock {
        RowBlock { rows: Vec::new(), source_node }
    }

    /// Create a block with pre-allocated row capacity.
    pub fn with_capacity(source_node: usize, cap: usize) -> RowBlock {
        RowBlock { rows: Vec::with_capacity(cap), source_node }
    }

    /// Number of rows in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the block has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate wire size in bytes (used by the data-mover bandwidth
    /// model to simulate remote-client transfers).
    pub fn wire_bytes(&self) -> usize {
        self.rows.iter().map(|r| r.iter().map(|v| v.size()).sum::<usize>()).sum()
    }
}

/// A complete query result: a projected schema plus all rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Schema of the result (projection of the dataset schema).
    pub schema: Schema,
    /// All result rows. Order is implementation-defined (parallel
    /// extraction), so comparisons sort first.
    pub rows: Vec<Row>,
}

impl Table {
    /// Create an empty result with the given schema.
    pub fn empty(schema: Schema) -> Table {
        Table { schema, rows: Vec::new() }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append all rows of a block.
    pub fn absorb(&mut self, block: RowBlock) {
        self.rows.extend(block.rows);
    }

    /// Append the selected rows of a columnar block, reconstituting
    /// rows here — the client boundary is the only place the columnar
    /// pipeline ever transposes back to row form.
    pub fn absorb_columns(&mut self, block: crate::column::ColumnBlock) {
        let n = block.selected();
        if n == 0 {
            return;
        }
        let cols: Vec<Vec<Value>> =
            block.columns.iter().map(|c| c.values(block.selection())).collect();
        self.rows.reserve(n);
        for i in 0..n {
            self.rows.push(cols.iter().map(|c| c[i]).collect());
        }
    }

    /// Sort rows lexicographically — canonical order for comparing
    /// results produced by different execution strategies (hand-written
    /// vs generated vs minidb), which may emit rows in any order.
    pub fn sort_canonical(&mut self) {
        self.rows.sort_unstable_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let c = x.total_cmp(y);
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            a.len().cmp(&b.len())
        });
    }

    /// True when `self` and `other` hold the same multiset of rows
    /// (sorts copies of both; intended for tests and verification, not
    /// hot paths).
    pub fn same_rows(&self, other: &Table) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.sort_canonical();
        b.sort_canonical();
        a.rows == b.rows
    }

    /// Total payload bytes of the result (the "amount of data
    /// retrieved" metric of the paper's Figure 11).
    pub fn payload_bytes(&self) -> usize {
        self.rows.iter().map(|r| r.iter().map(|v| v.size()).sum::<usize>()).sum()
    }
}

impl fmt::Display for Table {
    /// Renders a bounded, pipe-separated preview (first 20 rows), the
    /// format the examples print.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.schema.attributes().iter().map(|a| a.name.as_str()).collect();
        writeln!(f, "{}", names.join(" | "))?;
        for row in self.rows.iter().take(20) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "... ({} rows total)", self.rows.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Attribute;

    fn schema2() -> Schema {
        Schema::new(
            "T",
            vec![Attribute::new("a", DataType::Int), Attribute::new("b", DataType::Double)],
        )
        .unwrap()
    }

    #[test]
    fn block_wire_bytes() {
        let mut b = RowBlock::new(0);
        b.rows.push(vec![Value::Int(1), Value::Double(2.0)]);
        b.rows.push(vec![Value::Int(3), Value::Double(4.0)]);
        assert_eq!(b.wire_bytes(), 2 * (4 + 8));
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn same_rows_ignores_order() {
        let s = schema2();
        let t1 = Table {
            schema: s.clone(),
            rows: vec![
                vec![Value::Int(1), Value::Double(1.0)],
                vec![Value::Int(2), Value::Double(2.0)],
            ],
        };
        let t2 = Table {
            schema: s,
            rows: vec![
                vec![Value::Int(2), Value::Double(2.0)],
                vec![Value::Int(1), Value::Double(1.0)],
            ],
        };
        assert!(t1.same_rows(&t2));
    }

    #[test]
    fn same_rows_detects_multiset_difference() {
        let s = schema2();
        let t1 = Table {
            schema: s.clone(),
            rows: vec![
                vec![Value::Int(1), Value::Double(1.0)],
                vec![Value::Int(1), Value::Double(1.0)],
            ],
        };
        let t2 = Table {
            schema: s,
            rows: vec![
                vec![Value::Int(1), Value::Double(1.0)],
                vec![Value::Int(2), Value::Double(2.0)],
            ],
        };
        assert!(!t1.same_rows(&t2));
    }

    #[test]
    fn absorb_accumulates() {
        let mut t = Table::empty(schema2());
        let mut b = RowBlock::new(1);
        b.rows.push(vec![Value::Int(9), Value::Double(0.5)]);
        t.absorb(b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.payload_bytes(), 12);
    }

    #[test]
    fn absorb_columns_reconstitutes_selected_rows() {
        use crate::column::ColumnBlock;
        let mut t = Table::empty(schema2());
        let mut b = ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Double]);
        for i in 0..3 {
            b.columns[0].append_data().push_value(Value::Int(i));
            b.columns[1].append_data().push_value(Value::Double(i as f64));
        }
        b.advance_rows(3);
        b.set_selection(Some(vec![0, 2]));
        t.absorb_columns(b);
        assert_eq!(
            t.rows,
            vec![vec![Value::Int(0), Value::Double(0.0)], vec![Value::Int(2), Value::Double(2.0)],]
        );
    }

    #[test]
    fn display_truncates() {
        let mut t = Table::empty(schema2());
        for i in 0..25 {
            t.rows.push(vec![Value::Int(i), Value::Double(i as f64)]);
        }
        let text = t.to_string();
        assert!(text.contains("A | B"));
        assert!(text.contains("25 rows total"));
    }
}
