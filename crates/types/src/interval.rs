//! Unions of numeric intervals.
//!
//! Range analysis of a `WHERE` clause produces, for each attribute, the
//! set of values the clause can accept — an [`IntervalSet`]. The
//! indexing service intersects these sets with the *implicit attribute*
//! ranges of candidate files and chunks (paper §4) to prune I/O.
//!
//! Intervals are over `f64` with independently open/closed endpoints,
//! which exactly represents every comparison the SQL subset can
//! express over both integer and floating attributes.

/// One interval with optionally open endpoints. Unbounded sides use
/// `-inf`/`+inf` with a closed flag of `false`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub lo_closed: bool,
    pub hi: f64,
    pub hi_closed: bool,
}

impl Interval {
    /// The full real line.
    pub fn all() -> Interval {
        Interval { lo: f64::NEG_INFINITY, lo_closed: false, hi: f64::INFINITY, hi_closed: false }
    }

    /// Degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, lo_closed: true, hi: v, hi_closed: true }
    }

    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Interval {
        Interval { lo, lo_closed: true, hi, hi_closed: true }
    }

    /// `[v, +inf)`.
    pub fn at_least(v: f64) -> Interval {
        Interval { lo: v, lo_closed: true, hi: f64::INFINITY, hi_closed: false }
    }

    /// `(v, +inf)`.
    pub fn greater(v: f64) -> Interval {
        Interval { lo: v, lo_closed: false, hi: f64::INFINITY, hi_closed: false }
    }

    /// `(-inf, v]`.
    pub fn at_most(v: f64) -> Interval {
        Interval { lo: f64::NEG_INFINITY, lo_closed: false, hi: v, hi_closed: true }
    }

    /// `(-inf, v)`.
    pub fn less(v: f64) -> Interval {
        Interval { lo: f64::NEG_INFINITY, lo_closed: false, hi: v, hi_closed: false }
    }

    /// True when no value satisfies the interval.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && !(self.lo_closed && self.hi_closed))
    }

    /// Membership test.
    pub fn contains(&self, v: f64) -> bool {
        let lo_ok = v > self.lo || (self.lo_closed && v == self.lo);
        let hi_ok = v < self.hi || (self.hi_closed && v == self.hi);
        lo_ok && hi_ok
    }

    /// Intersection of two intervals (possibly empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let (lo, lo_closed) = if self.lo > other.lo {
            (self.lo, self.lo_closed)
        } else if other.lo > self.lo {
            (other.lo, other.lo_closed)
        } else {
            (self.lo, self.lo_closed && other.lo_closed)
        };
        let (hi, hi_closed) = if self.hi < other.hi {
            (self.hi, self.hi_closed)
        } else if other.hi < self.hi {
            (other.hi, other.hi_closed)
        } else {
            (self.hi, self.hi_closed && other.hi_closed)
        };
        Interval { lo, lo_closed, hi, hi_closed }
    }

    /// True when the two intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// True when `self` and `other` touch or overlap, so that their
    /// union is a single interval (used to normalize interval sets).
    fn mergeable(&self, other: &Interval) -> bool {
        if self.overlaps(other) {
            return true;
        }
        // Adjacent like [1,2) + [2,3]: hi == lo and at least one side
        // closed. For our use (pruning), treating (1,2)+( 2,3) as
        // non-mergeable is correct.
        (self.hi == other.lo && (self.hi_closed || other.lo_closed))
            || (other.hi == self.lo && (other.hi_closed || self.lo_closed))
    }
}

/// A normalized (sorted, disjoint, non-adjacent) union of intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set (accepts no value).
    pub fn empty() -> IntervalSet {
        IntervalSet { ivs: Vec::new() }
    }

    /// The full real line (no constraint).
    pub fn all() -> IntervalSet {
        IntervalSet { ivs: vec![Interval::all()] }
    }

    /// A set holding a single interval (empty intervals normalize away).
    pub fn single(iv: Interval) -> IntervalSet {
        if iv.is_empty() {
            IntervalSet::empty()
        } else {
            IntervalSet { ivs: vec![iv] }
        }
    }

    /// A set holding the listed points (the SQL `IN (...)` list).
    pub fn points(vals: &[f64]) -> IntervalSet {
        let mut s = IntervalSet::empty();
        for &v in vals {
            s = s.union(&IntervalSet::single(Interval::point(v)));
        }
        s
    }

    /// The member intervals in ascending order.
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// True when no value is accepted.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// True when every value is accepted (i.e. this constraint cannot
    /// prune anything).
    pub fn is_all(&self) -> bool {
        self.ivs.len() == 1
            && self.ivs[0].lo == f64::NEG_INFINITY
            && self.ivs[0].hi == f64::INFINITY
    }

    /// Membership test.
    pub fn contains(&self, v: f64) -> bool {
        self.ivs.iter().any(|iv| iv.contains(v))
    }

    /// True when this set shares a point with the closed range
    /// `[lo, hi]` — the pruning primitive: a file/chunk whose implicit
    /// attribute spans `[lo, hi]` survives iff this returns true.
    pub fn overlaps_closed(&self, lo: f64, hi: f64) -> bool {
        let probe = Interval::closed(lo, hi);
        self.ivs.iter().any(|iv| iv.overlaps(&probe))
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all: Vec<Interval> =
            self.ivs.iter().chain(other.ivs.iter()).copied().filter(|iv| !iv.is_empty()).collect();
        // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN endpoint
        // (e.g. an interval built from a NaN literal in a predicate)
        // must not panic the whole analysis. NaN sorts above +inf under
        // the IEEE total order, so such degenerate intervals land last
        // and never merge with real ones.
        all.sort_by(|a, b| a.lo.total_cmp(&b.lo).then_with(|| b.lo_closed.cmp(&a.lo_closed)));
        let mut out: Vec<Interval> = Vec::with_capacity(all.len());
        for iv in all {
            match out.last_mut() {
                Some(last) if last.mergeable(&iv) => {
                    // Extend the upper end if iv reaches further.
                    if iv.hi > last.hi || (iv.hi == last.hi && iv.hi_closed && !last.hi_closed) {
                        last.hi = iv.hi;
                        last.hi_closed = iv.hi_closed;
                    }
                }
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for a in &self.ivs {
            for b in &other.ivs {
                let c = a.intersect(b);
                if !c.is_empty() {
                    out.push(c);
                }
            }
        }
        // Products of disjoint normalized inputs stay disjoint & sorted
        // when built in this nested order only if self/other are sorted;
        // normalize defensively via union with empty.
        IntervalSet { ivs: out }.union(&IntervalSet::empty())
    }

    /// Complement (used for `NOT` and `!=` analysis).
    pub fn complement(&self) -> IntervalSet {
        if self.ivs.is_empty() {
            return IntervalSet::all();
        }
        let mut out = Vec::new();
        let first = &self.ivs[0];
        if first.lo > f64::NEG_INFINITY || first.lo_closed {
            out.push(Interval {
                lo: f64::NEG_INFINITY,
                lo_closed: false,
                hi: first.lo,
                hi_closed: !first.lo_closed,
            });
        }
        for w in self.ivs.windows(2) {
            out.push(Interval {
                lo: w[0].hi,
                lo_closed: !w[0].hi_closed,
                hi: w[1].lo,
                hi_closed: !w[1].lo_closed,
            });
        }
        let last = self.ivs.last().unwrap();
        if last.hi < f64::INFINITY || last.hi_closed {
            out.push(Interval {
                lo: last.hi,
                lo_closed: !last.hi_closed,
                hi: f64::INFINITY,
                hi_closed: false,
            });
        }
        IntervalSet { ivs: out.into_iter().filter(|iv| !iv.is_empty()).collect() }
    }

    /// True when every point of the closed range `[lo, hi]` is
    /// accepted — the tautology primitive: a predicate whose accepted
    /// set covers a dataset's whole extent hull can never filter it.
    pub fn covers_closed(&self, lo: f64, hi: f64) -> bool {
        !self.complement().overlaps_closed(lo, hi)
    }

    /// Tight enclosing closed bounds `(lo, hi)` of the whole set, or
    /// `None` when empty. Used to clip loop iteration ranges.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        if self.ivs.is_empty() {
            return None;
        }
        Some((self.ivs[0].lo, self.ivs.last().unwrap().hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_interval_detection() {
        assert!(Interval::closed(2.0, 1.0).is_empty());
        assert!(!Interval::point(3.0).is_empty());
        let half_open = Interval { lo: 1.0, lo_closed: true, hi: 1.0, hi_closed: false };
        assert!(half_open.is_empty());
    }

    #[test]
    fn contains_respects_openness() {
        let iv = Interval { lo: 0.0, lo_closed: false, hi: 1.0, hi_closed: true };
        assert!(!iv.contains(0.0));
        assert!(iv.contains(0.5));
        assert!(iv.contains(1.0));
    }

    #[test]
    fn intersect_openness() {
        let a = Interval::at_least(1.0); // [1, inf)
        let b = Interval::less(1.0); // (-inf, 1)
        assert!(a.intersect(&b).is_empty());
        let c = Interval::at_most(1.0); // (-inf, 1]
        let i = a.intersect(&c);
        assert_eq!(i, Interval::point(1.0));
    }

    #[test]
    fn union_merges_overlaps() {
        let s = IntervalSet::single(Interval::closed(0.0, 5.0))
            .union(&IntervalSet::single(Interval::closed(3.0, 9.0)));
        assert_eq!(s.intervals().len(), 1);
        assert_eq!(s.intervals()[0], Interval::closed(0.0, 9.0));
    }

    #[test]
    fn union_merges_adjacent_closed() {
        let s = IntervalSet::single(Interval::closed(0.0, 1.0))
            .union(&IntervalSet::single(Interval::closed(1.0, 2.0)));
        assert_eq!(s.intervals().len(), 1);
    }

    #[test]
    fn union_keeps_disjoint() {
        let s = IntervalSet::single(Interval::closed(0.0, 1.0))
            .union(&IntervalSet::single(Interval::closed(2.0, 3.0)));
        assert_eq!(s.intervals().len(), 2);
        assert!(s.contains(0.5));
        assert!(!s.contains(1.5));
        assert!(s.contains(2.5));
    }

    #[test]
    fn points_dedupe_and_sort() {
        // The paper's example: RID in (0, 6, 26, 27).
        let s = IntervalSet::points(&[27.0, 0.0, 6.0, 26.0, 6.0]);
        assert_eq!(s.intervals().len(), 4);
        assert!(s.contains(26.0));
        assert!(!s.contains(13.0));
    }

    #[test]
    fn intersect_sets() {
        let a = IntervalSet::single(Interval::closed(0.0, 10.0));
        let b = IntervalSet::points(&[5.0, 15.0]);
        let i = a.intersect(&b);
        assert!(i.contains(5.0));
        assert!(!i.contains(15.0));
    }

    #[test]
    fn complement_roundtrip() {
        let s = IntervalSet::single(Interval::closed(1.0, 2.0))
            .union(&IntervalSet::single(Interval::closed(4.0, 5.0)));
        let c = s.complement();
        assert!(c.contains(0.0));
        assert!(!c.contains(1.5));
        assert!(c.contains(3.0));
        assert!(!c.contains(4.0));
        assert!(c.contains(6.0));
        // Complement twice returns the original acceptance behaviour.
        let cc = c.complement();
        for v in [-1.0, 1.0, 1.5, 2.0, 3.0, 4.5, 5.0, 7.0] {
            assert_eq!(cc.contains(v), s.contains(v), "at {v}");
        }
    }

    #[test]
    fn complement_of_all_and_empty() {
        assert!(IntervalSet::all().complement().is_empty());
        assert!(IntervalSet::empty().complement().is_all());
    }

    #[test]
    fn overlaps_closed_prunes() {
        // TIME in [1000, 1100]; a chunk covering TIME [900, 999] must be
        // pruned, [950, 1000] must survive.
        let s = IntervalSet::single(Interval::closed(1000.0, 1100.0));
        assert!(!s.overlaps_closed(900.0, 999.0));
        assert!(s.overlaps_closed(950.0, 1000.0));
    }

    #[test]
    fn covers_closed_detects_tautology() {
        // TIME >= 1 covers a dataset whose TIME hull is [1, 50].
        let s = IntervalSet::single(Interval::at_least(1.0));
        assert!(s.covers_closed(1.0, 50.0));
        assert!(!s.covers_closed(0.0, 50.0));
        // A punctured set does not cover across the hole.
        let holed = IntervalSet::single(Interval::closed(0.0, 10.0))
            .union(&IntervalSet::single(Interval::closed(20.0, 30.0)));
        assert!(holed.covers_closed(2.0, 9.0));
        assert!(!holed.covers_closed(2.0, 25.0));
        assert!(IntervalSet::all().covers_closed(f64::MIN, f64::MAX));
        assert!(!IntervalSet::empty().covers_closed(0.0, 0.0));
    }

    #[test]
    fn bounds_are_tight() {
        let s = IntervalSet::points(&[3.0, 7.0]);
        assert_eq!(s.bounds(), Some((3.0, 7.0)));
        assert_eq!(IntervalSet::empty().bounds(), None);
    }

    #[test]
    fn is_all_detection() {
        assert!(IntervalSet::all().is_all());
        assert!(!IntervalSet::single(Interval::at_least(0.0)).is_all());
        let u = IntervalSet::single(Interval::at_most(0.0))
            .union(&IntervalSet::single(Interval::at_least(0.0)));
        assert!(u.is_all());
    }

    #[test]
    fn union_with_nan_endpoints_does_not_panic() {
        // A predicate like `X >= 0/0` can reach the analysis with a NaN
        // endpoint; union must stay total (it used to panic in the
        // sort comparator) and must not let the poisoned interval
        // swallow real ones.
        let nan = IntervalSet::single(Interval::closed(f64::NAN, f64::NAN));
        let real = IntervalSet::single(Interval::closed(1.0, 2.0));
        let u = nan.union(&real);
        assert!(u.contains(1.5));
        assert!(!u.contains(3.0));
        let both_nan = nan.union(&IntervalSet::single(Interval::at_least(f64::NAN)));
        // NaN endpoints never satisfy a membership probe.
        assert!(!both_nan.contains(0.0));
    }
}
