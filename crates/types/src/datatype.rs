//! Scalar data types of the meta-data description language.
//!
//! The paper's schema component declares attributes with C-like type
//! names (`short int`, `int`, `float`, ...). Each type has a fixed
//! on-disk width; datasets are stored little-endian, matching the x86
//! clusters the paper targets.

use std::fmt;

use crate::error::{DvError, Result};

/// A scalar type declared in a dataset schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// `char` — a single byte (used for flags and small categorical
    /// codes in scientific outputs).
    Char,
    /// `short int` — 16-bit signed integer.
    Short,
    /// `int` — 32-bit signed integer.
    Int,
    /// `long int` — 64-bit signed integer.
    Long,
    /// `float` — IEEE-754 single precision.
    Float,
    /// `double` — IEEE-754 double precision.
    Double,
}

impl DataType {
    /// On-disk width in bytes (little-endian, unpadded: flat scientific
    /// files are packed with no alignment holes).
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            DataType::Char => 1,
            DataType::Short => 2,
            DataType::Int => 4,
            DataType::Long => 8,
            DataType::Float => 4,
            DataType::Double => 8,
        }
    }

    /// True for the integer family.
    #[inline]
    pub const fn is_integer(self) -> bool {
        matches!(self, DataType::Char | DataType::Short | DataType::Int | DataType::Long)
    }

    /// True for the floating-point family.
    #[inline]
    pub const fn is_float(self) -> bool {
        matches!(self, DataType::Float | DataType::Double)
    }

    /// Parse a type name as written in a descriptor schema section.
    ///
    /// Accepts the multi-word C-style spellings used in the paper's
    /// Figure 4 (`short int`, `long int`) as well as single-word
    /// synonyms. Matching is case-insensitive.
    pub fn parse(name: &str) -> Result<DataType> {
        let squashed: String =
            name.split_whitespace().collect::<Vec<_>>().join(" ").to_ascii_lowercase();
        match squashed.as_str() {
            "char" | "byte" | "int8" => Ok(DataType::Char),
            "short" | "short int" | "int16" => Ok(DataType::Short),
            "int" | "int32" | "integer" => Ok(DataType::Int),
            "long" | "long int" | "int64" | "long long" => Ok(DataType::Long),
            "float" | "float32" | "real" => Ok(DataType::Float),
            "double" | "float64" => Ok(DataType::Double),
            other => Err(DvError::Type(format!("unknown data type `{other}`"))),
        }
    }

    /// Canonical descriptor spelling (what [`DataType::parse`] accepts
    /// and what descriptor pretty-printing emits).
    pub const fn descriptor_name(self) -> &'static str {
        match self {
            DataType::Char => "char",
            DataType::Short => "short int",
            DataType::Int => "int",
            DataType::Long => "long int",
            DataType::Float => "float",
            DataType::Double => "double",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.descriptor_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_c_layout() {
        assert_eq!(DataType::Char.size(), 1);
        assert_eq!(DataType::Short.size(), 2);
        assert_eq!(DataType::Int.size(), 4);
        assert_eq!(DataType::Long.size(), 8);
        assert_eq!(DataType::Float.size(), 4);
        assert_eq!(DataType::Double.size(), 8);
    }

    #[test]
    fn parse_paper_spellings() {
        assert_eq!(DataType::parse("short int").unwrap(), DataType::Short);
        assert_eq!(DataType::parse("int").unwrap(), DataType::Int);
        assert_eq!(DataType::parse("float").unwrap(), DataType::Float);
        assert_eq!(DataType::parse("double").unwrap(), DataType::Double);
        assert_eq!(DataType::parse("long   int").unwrap(), DataType::Long);
        assert_eq!(DataType::parse("CHAR").unwrap(), DataType::Char);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(DataType::parse("varchar").is_err());
        assert!(DataType::parse("").is_err());
    }

    #[test]
    fn roundtrip_descriptor_name() {
        for t in [
            DataType::Char,
            DataType::Short,
            DataType::Int,
            DataType::Long,
            DataType::Float,
            DataType::Double,
        ] {
            assert_eq!(DataType::parse(t.descriptor_name()).unwrap(), t);
        }
    }

    #[test]
    fn families_partition() {
        for t in [
            DataType::Char,
            DataType::Short,
            DataType::Int,
            DataType::Long,
            DataType::Float,
            DataType::Double,
        ] {
            assert_ne!(t.is_integer(), t.is_float());
        }
    }
}
