//! Workspace-wide error type.
//!
//! Every layer of the system (SQL parsing, descriptor compilation, plan
//! generation, runtime services, the minidb baseline) reports failures
//! through [`DvError`], so errors compose across crate boundaries
//! without conversion boilerplate.

use std::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, DvError>;

/// The error type shared by all `datavirt` crates.
#[derive(Debug)]
pub enum DvError {
    /// Lexical or syntactic error in a SQL query string.
    SqlParse { message: String, line: u32, column: u32 },
    /// Lexical or syntactic error in a meta-data descriptor.
    DescriptorParse { message: String, line: u32, column: u32 },
    /// Descriptor parsed, but is semantically invalid (unknown schema,
    /// unbound variable, inconsistent loop nest, ...).
    DescriptorSemantic(String),
    /// The query references an attribute, dataset or function that the
    /// bound schema does not define.
    Binding(String),
    /// Two files in a candidate file group cannot be aligned (their
    /// layouts or implicit attributes are inconsistent).
    Alignment(String),
    /// A runtime service failed (extraction, filtering, partitioning,
    /// data movement).
    Runtime(String),
    /// The query was cancelled (client abort, session drop, or an
    /// expired deadline) before it completed.
    Cancelled(String),
    /// The minidb relational baseline failed.
    MiniDb(String),
    /// Underlying I/O error, annotated with the path involved.
    Io { path: String, source: std::io::Error },
    /// Type mismatch when evaluating an expression or decoding a value.
    Type(String),
    /// The query service rejected the query at admission because a
    /// static cost bound exceeds a configured budget. `code` is the
    /// DV lint code naming the violated budget (e.g. `DV401`).
    CostBudget { code: &'static str, message: String },
}

impl fmt::Display for DvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DvError::SqlParse { message, line, column } => {
                write!(f, "SQL parse error at {line}:{column}: {message}")
            }
            DvError::DescriptorParse { message, line, column } => {
                write!(f, "descriptor parse error at {line}:{column}: {message}")
            }
            DvError::DescriptorSemantic(m) => write!(f, "descriptor semantic error: {m}"),
            DvError::Binding(m) => write!(f, "binding error: {m}"),
            DvError::Alignment(m) => write!(f, "alignment error: {m}"),
            DvError::Runtime(m) => write!(f, "runtime error: {m}"),
            DvError::Cancelled(m) => write!(f, "query cancelled: {m}"),
            DvError::MiniDb(m) => write!(f, "minidb error: {m}"),
            DvError::Io { path, source } => write!(f, "I/O error on {path}: {source}"),
            DvError::Type(m) => write!(f, "type error: {m}"),
            DvError::CostBudget { code, message } => {
                write!(f, "admission rejected [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for DvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DvError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl DvError {
    /// Wrap an [`std::io::Error`] with the path that caused it.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        DvError::Io { path: path.into(), source }
    }

    /// True for the [`DvError::Cancelled`] variant (callers that treat
    /// aborts differently from failures branch on this).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, DvError::Cancelled(_))
    }

    /// True for the [`DvError::CostBudget`] variant (a statically
    /// over-budget query rejected at admission).
    pub fn is_cost_rejected(&self) -> bool {
        matches!(self, DvError::CostBudget { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = DvError::SqlParse { message: "unexpected token".into(), line: 3, column: 14 };
        let s = e.to_string();
        assert!(s.contains("3:14"));
        assert!(s.contains("unexpected token"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = DvError::io("/data/COORDS", inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("/data/COORDS"));
    }

    #[test]
    fn all_variants_display() {
        let cases: Vec<DvError> = vec![
            DvError::DescriptorParse { message: "bad".into(), line: 1, column: 2 },
            DvError::DescriptorSemantic("x".into()),
            DvError::Binding("x".into()),
            DvError::Alignment("x".into()),
            DvError::Runtime("x".into()),
            DvError::Cancelled("x".into()),
            DvError::MiniDb("x".into()),
            DvError::Type("x".into()),
            DvError::CostBudget { code: "DV401", message: "x".into() },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn cost_budget_carries_its_code() {
        let e = DvError::CostBudget { code: "DV404", message: "group bound 10 > 5".into() };
        assert!(e.is_cost_rejected());
        assert!(!e.is_cancelled());
        assert!(e.to_string().contains("[DV404]"), "{e}");
    }
}
