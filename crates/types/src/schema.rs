//! Virtual-table schemas (Component I of the meta-data descriptor).
//!
//! A [`Schema`] is the logical relational view the scientist wants to
//! expose: an ordered list of named, typed attributes. Attribute names
//! are normalized to upper case, because both the descriptor language
//! and the SQL subset are case-insensitive over identifiers (the paper
//! freely mixes `Dataset`/`DATASET` and `TIME`/`Time`).

use std::fmt;

use crate::datatype::DataType;
use crate::error::{DvError, Result};

/// One named, typed column of the virtual table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Upper-cased attribute name.
    pub name: String,
    /// Scalar type.
    pub dtype: DataType,
}

impl Attribute {
    /// Create an attribute, normalizing the name to upper case.
    pub fn new(name: impl AsRef<str>, dtype: DataType) -> Attribute {
        Attribute { name: name.as_ref().to_ascii_uppercase(), dtype }
    }
}

/// The logical relational table view (ordered attribute list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Schema name as declared in the descriptor (`[IPARS]`), upper-cased.
    pub name: String,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs. Fails on duplicate
    /// attribute names (case-insensitively).
    pub fn new(name: impl AsRef<str>, attrs: Vec<Attribute>) -> Result<Schema> {
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(DvError::DescriptorSemantic(format!(
                    "duplicate attribute `{}` in schema `{}`",
                    a.name,
                    name.as_ref()
                )));
            }
        }
        Ok(Schema { name: name.as_ref().to_ascii_uppercase(), attrs })
    }

    /// All attributes in declaration order.
    #[inline]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema declares no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Index of the attribute named `name` (case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let upper = name.to_ascii_uppercase();
        self.attrs.iter().position(|a| a.name == upper)
    }

    /// Attribute by name (case-insensitive).
    pub fn attr(&self, name: &str) -> Option<&Attribute> {
        self.index_of(name).map(|i| &self.attrs[i])
    }

    /// Attribute by position.
    #[inline]
    pub fn attr_at(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// Resolve a list of attribute names to indices, failing on the
    /// first unknown name.
    pub fn resolve(&self, names: &[String]) -> Result<Vec<usize>> {
        names
            .iter()
            .map(|n| {
                self.index_of(n).ok_or_else(|| {
                    DvError::Binding(format!("unknown attribute `{n}` in schema `{}`", self.name))
                })
            })
            .collect()
    }

    /// Width in bytes of one full row when stored packed (sum of
    /// attribute sizes) — the record width of "tabular" layouts.
    pub fn row_size(&self) -> usize {
        self.attrs.iter().map(|a| a.dtype.size()).sum()
    }

    /// A derived schema containing only the attributes at `indices`, in
    /// that order (used to type query projections).
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            name: self.name.clone(),
            attrs: indices.iter().map(|&i| self.attrs[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.name)?;
        for a in &self.attrs {
            writeln!(f, "{} = {}", a.name, a.dtype.descriptor_name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipars() -> Schema {
        Schema::new(
            "Ipars",
            vec![
                Attribute::new("rel", DataType::Short),
                Attribute::new("time", DataType::Int),
                Attribute::new("x", DataType::Float),
                Attribute::new("y", DataType::Float),
                Attribute::new("z", DataType::Float),
                Attribute::new("soil", DataType::Float),
                Attribute::new("sgas", DataType::Float),
            ],
        )
        .unwrap()
    }

    #[test]
    fn names_upper_cased() {
        let s = ipars();
        assert_eq!(s.name, "IPARS");
        assert_eq!(s.attributes()[0].name, "REL");
    }

    #[test]
    fn lookup_case_insensitive() {
        let s = ipars();
        assert_eq!(s.index_of("soil"), Some(5));
        assert_eq!(s.index_of("SoIl"), Some(5));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_attrs_rejected() {
        let r = Schema::new(
            "S",
            vec![Attribute::new("a", DataType::Int), Attribute::new("A", DataType::Float)],
        );
        assert!(r.is_err());
    }

    #[test]
    fn row_size_packed() {
        // 2 + 4 + 4*5 = 26 bytes, matching the Ipars record the paper
        // describes (REL short, TIME int, five floats).
        assert_eq!(ipars().row_size(), 26);
    }

    #[test]
    fn resolve_and_project() {
        let s = ipars();
        let idx = s.resolve(&["TIME".into(), "SOIL".into()]).unwrap();
        assert_eq!(idx, vec![1, 5]);
        let p = s.project(&idx);
        assert_eq!(p.len(), 2);
        assert_eq!(p.attributes()[1].name, "SOIL");
        assert!(s.resolve(&["NOPE".into()]).is_err());
    }

    #[test]
    fn display_is_descriptor_syntax() {
        let text = ipars().to_string();
        assert!(text.starts_with("[IPARS]\n"));
        assert!(text.contains("REL = short int\n"));
        assert!(text.contains("TIME = int\n"));
    }
}
