//! # dv-types
//!
//! Shared primitive types for the `datavirt` system — the Rust
//! reproduction of *"An Approach for Automatic Data Virtualization"*
//! (Weng et al., HPDC 2004).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`DataType`] — the scalar types the meta-data description language
//!   can declare for a virtual-table attribute (`char`, `short int`,
//!   `int`, `long int`, `float`, `double`);
//! * [`Value`] — a dynamically-typed scalar cell value with total
//!   ordering and on-disk (little-endian) encode/decode;
//! * [`Schema`] / [`Attribute`] — the virtual relational table schema
//!   (Component I of the meta-data descriptor);
//! * [`Row`] / [`Table`] — materialized query results;
//! * [`ColumnBlock`] / [`Bitmap`] — struct-of-arrays batches and
//!   selection bitmaps, the unit of data flow on the vectorized
//!   execution path;
//! * [`IntervalSet`] — unions of closed numeric intervals, used for
//!   range analysis of `WHERE` clauses and for implicit-attribute
//!   pruning;
//! * [`DvError`] — the error type shared across the workspace.
//!
//! Nothing here knows about files, layouts, SQL or the STORM runtime;
//! those live in the higher crates.

pub mod agg;
pub mod cancel;
pub mod column;
pub mod datatype;
pub mod error;
pub mod interval;
pub mod row;
pub mod schema;
pub mod span;
pub mod value;

pub use agg::{AccCol, AccState, AggBlock, AggFunc, AggTable, GroupKey, MAX_GROUP_COLS};
pub use cancel::{CancelReason, CancelToken};
pub use column::{Bitmap, Column, ColumnBlock, ColumnData, ColumnGen, LazyRun};
pub use datatype::DataType;
pub use error::{DvError, Result};
pub use interval::{Interval, IntervalSet};
pub use row::{Row, RowBlock, Table};
pub use schema::{Attribute, Schema};
pub use span::Span;
pub use value::Value;
