//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. chunk pruning via R-tree vs a linear scan of the chunk table;
//! 2. vertical-fragment fan-in: L0 (18 files per AFC) vs Layout I
//!    (1 file) — the dominant layout effect in Figure 9;
//! 3. extraction batch size;
//! 4. per-query plan cost (phase 2) by layout complexity — validates
//!    the one-time-compile design;
//! 5. execution mode: columnar blocks vs the row-at-a-time pipeline.

use criterion::{criterion_group, criterion_main, Criterion};

use dv_bench::stage::{stage_ipars, stage_titan};
use dv_core::{ExecMode, QueryOptions, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout, TitanConfig};
use dv_index::Rect;
use dv_layout::segment::LoadedChunkIndex;

fn small_cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 20, grid_per_dir: 400, dirs: 2, nodes: 2, seed: 99 }
}

fn bench_index_ablation(c: &mut Criterion) {
    // Build a chunk index like Titan's and compare R-tree pruning with
    // the naive linear scan a DATAINDEX-less descriptor would force.
    let cfg = TitanConfig { points: 100_000, tiles: (16, 16, 8), nodes: 1, seed: 5 };
    let (base, _) = stage_titan("bench-ablation-titan", &cfg);
    let (_, entries) = dv_index::read_chunk_index(&base.join("tnode0/titan/titan.idx")).unwrap();
    let attrs = vec!["X".to_string(), "Y".to_string(), "Z".to_string()];
    let loaded = LoadedChunkIndex::new(attrs, entries.clone());
    let query = Rect::new(vec![0.0, 0.0, 0.0], vec![8000.0, 8000.0, 100.0]);

    let mut group = c.benchmark_group("ablation-chunk-index");
    group.bench_function("rtree", |b| b.iter(|| loaded.tree.query_collect(&query).len()));
    group.bench_function("linear", |b| {
        b.iter(|| entries.iter().filter(|e| e.rect().intersects(&query)).count())
    });
    group.finish();
}

fn bench_fanin(c: &mut Criterion) {
    // Same logical rows; m = 18 byte-runs per AFC (L0) vs m = 1
    // (Layout I).
    let cfg = small_cfg();
    let sql = "SELECT * FROM IparsData WHERE TIME > 5 AND TIME < 11";
    let mut group = c.benchmark_group("ablation-fanin");
    group.sample_size(10);
    for (name, layout) in [("m18-L0", IparsLayout::L0), ("m1-LayoutI", IparsLayout::I)] {
        let (base, desc) = stage_ipars(&format!("bench-fanin-{name}"), &cfg, layout);
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        group.bench_function(name, |b| b.iter(|| v.query(sql).unwrap().0.len()));
    }
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let cfg = small_cfg();
    let (base, desc) = stage_ipars("bench-batch", &cfg, IparsLayout::I);
    let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
    let sql = "SELECT * FROM IparsData WHERE SOIL > 0.5";
    let mut group = c.benchmark_group("ablation-batch-rows");
    group.sample_size(10);
    for batch in [256usize, 4096, 65536] {
        let opts = QueryOptions { batch_rows: batch, ..Default::default() };
        group.bench_function(format!("batch-{batch}"), |b| {
            b.iter(|| v.query_with(sql, &opts).unwrap().0[0].len())
        });
    }
    group.finish();
}

fn bench_plan_cost(c: &mut Criterion) {
    // Phase-2 planning alone (no I/O): complex multi-file layout vs
    // single file. The paper's design argument: per-query meta-data
    // work must stay cheap because compilation happened ahead of time.
    let cfg = small_cfg();
    let mut group = c.benchmark_group("ablation-plan-cost");
    for (name, layout) in [("L0", IparsLayout::L0), ("LayoutI", IparsLayout::I)] {
        let (base, desc) = stage_ipars(&format!("bench-plan-{name}"), &cfg, layout);
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let bq = v
            .server()
            .bind_sql("SELECT * FROM IparsData WHERE TIME > 5 AND TIME < 11 AND SOIL > 0.7")
            .unwrap();
        let compiled = v.server().compiled();
        group.bench_function(name, |b| b.iter(|| compiled.plan_query(&bq).unwrap().planned_rows()));
    }
    group.finish();
}

fn bench_exec_mode(c: &mut Criterion) {
    // The tentpole ablation: same query, same layout, columnar block
    // pipeline vs the original row pipeline.
    let cfg = small_cfg();
    let (base, desc) = stage_ipars("bench-exec-mode", &cfg, IparsLayout::I);
    let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
    let sql = "SELECT * FROM IparsData WHERE SOIL > 0.5";
    let mut group = c.benchmark_group("ablation-exec-mode");
    group.sample_size(10);
    for (name, exec) in [("row", ExecMode::RowAtATime), ("columnar", ExecMode::Columnar)] {
        let opts = QueryOptions { exec, ..Default::default() };
        group.bench_function(name, |b| b.iter(|| v.query_with(sql, &opts).unwrap().0[0].len()));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_index_ablation,
    bench_fanin,
    bench_batch_size,
    bench_plan_cost,
    bench_exec_mode
);
criterion_main!(benches);
