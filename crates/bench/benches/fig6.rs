//! Criterion bench for Figure 6: DBMS baseline vs virtualization on
//! the five Titan queries (small configuration; the full-size numbers
//! come from `repro_fig6`).

use criterion::{criterion_group, criterion_main, Criterion};

use dv_bench::queries::titan_queries;
use dv_bench::stage::stage_titan;
use dv_core::Virtualizer;
use dv_datagen::TitanConfig;
use dv_minidb::MiniDb;
use dv_sql::UdfRegistry;
use dv_types::Schema;

fn bench_fig6(c: &mut Criterion) {
    let cfg = TitanConfig { points: 100_000, tiles: (8, 8, 4), nodes: 1, seed: 606 };
    let (base, descriptor) = stage_titan("bench-fig6", &cfg);
    let v = Virtualizer::builder(&descriptor).storage_base(&base).build().unwrap();

    let dbdir = base.join("minidb");
    let mut db = MiniDb::open(&dbdir, UdfRegistry::with_builtins()).unwrap();
    if db.query("SELECT * FROM TITAN WHERE X < -1").is_err() {
        let schema = Schema::new("TITAN", v.schema().attributes().to_vec()).unwrap();
        db.load_table(&schema, cfg.all_rows()).unwrap();
        db.create_index("TITAN", "X").unwrap();
        db.create_index("TITAN", "S1").unwrap();
    }

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for q in titan_queries("TITAN") {
        let dv_sqltext = q.sql.replace("TITAN", "TitanData");
        group.bench_function(format!("q{}-minidb", q.no), |b| {
            b.iter(|| db.query(&q.sql).unwrap().0.len())
        });
        group.bench_function(format!("q{}-datavirt", q.no), |b| {
            b.iter(|| v.query(&dv_sqltext).unwrap().0.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
