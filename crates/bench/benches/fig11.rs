//! Criterion bench for Figure 11: execution time vs query size
//! (Ipars time-range widths; Titan spatial box sides).

use criterion::{criterion_group, criterion_main, Criterion};

use dv_bench::stage::{stage_ipars, stage_titan};
use dv_core::Virtualizer;
use dv_datagen::{IparsConfig, IparsLayout, TitanConfig};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // (a) Ipars: widen the TIME range.
    let cfg = IparsConfig {
        realizations: 2,
        time_steps: 32,
        grid_per_dir: 250,
        dirs: 4,
        nodes: 4,
        seed: 311,
    };
    let (base, desc) = stage_ipars("bench-fig11a", &cfg, IparsLayout::L0);
    let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
    for width in [4usize, 8, 16, 32] {
        let sql = format!("SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= {width}");
        group.bench_function(format!("ipars-width-{width}"), |b| {
            b.iter(|| v.query(&sql).unwrap().0.len())
        });
    }

    // (b) Titan: grow the spatial box.
    let tcfg = TitanConfig { points: 100_000, tiles: (8, 8, 4), nodes: 1, seed: 606 };
    let (tbase, tdesc) = stage_titan("bench-fig6", &tcfg); // shares the fig6 bench dataset
    let tv = Virtualizer::builder(&tdesc).storage_base(&tbase).build().unwrap();
    for side in [7_500i64, 15_000, 30_000, 60_000] {
        let sql = format!(
            "SELECT * FROM TitanData WHERE X >= 0 AND X <= {side} AND Y >= 0 AND \
             Y <= {side} AND Z >= 0 AND Z <= 600"
        );
        group.bench_function(format!("titan-box-{side}"), |b| {
            b.iter(|| tv.query(&sql).unwrap().0.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
