//! Criterion bench for Figure 10: same total data over 1/2/4 nodes
//! (throughput regression tracking; the scaling *shape* comes from
//! `repro_fig10`, which measures per-node pipeline maxima).

use criterion::{criterion_group, criterion_main, Criterion};

use dv_bench::stage::stage_ipars;
use dv_core::{QueryOptions, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};

fn bench_fig10(c: &mut Criterion) {
    let sql = "SELECT * FROM IparsData WHERE TIME > 5 AND TIME < 16";
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for nodes in [1usize, 2, 4] {
        let cfg = IparsConfig {
            realizations: 2,
            time_steps: 20,
            grid_per_dir: 250,
            dirs: 4,
            nodes,
            seed: 77,
        };
        let (base, desc) = stage_ipars(&format!("bench-fig10-n{nodes}"), &cfg, IparsLayout::L0);
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let opts = QueryOptions { sequential_nodes: true, ..Default::default() };
        group.bench_function(format!("simulated-max-node-{nodes}"), |b| {
            // Measure the simulated cluster time explicitly: criterion
            // records the closure's wall time, so return-value timing
            // is communicated via iter_custom.
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let (_, stats) = v.query_with(sql, &opts).unwrap();
                    total += stats.simulated_parallel_time();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
