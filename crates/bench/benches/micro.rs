//! Microbenchmarks of the building blocks: SQL parsing/binding,
//! descriptor compilation, range analysis, R-tree queries, B+tree
//! range scans and value decoding.

use criterion::{criterion_group, criterion_main, Criterion};

use dv_datagen::{ipars, IparsConfig, IparsLayout};
use dv_index::{RTree, Rect};
use dv_sql::analysis::attribute_ranges;
use dv_sql::{bind, parse, UdfRegistry};
use dv_types::{DataType, Value};

const SQL: &str = "SELECT REL, TIME, SOIL FROM IparsData WHERE RID IN (0, 6, 26, 27) AND \
                   TIME >= 1000 AND TIME <= 1100 AND SOIL >= 0.7 AND \
                   SPEED(OILVX, OILVY, OILVZ) <= 30.0";

fn bench_sql(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro-sql");
    group.bench_function("parse", |b| b.iter(|| parse(SQL).unwrap()));

    let cfg = IparsConfig::tiny();
    let model = dv_descriptor::compile(&ipars::descriptor(&cfg, IparsLayout::L0)).unwrap();
    // RID isn't in the schema; use a bindable variant.
    let bindable = SQL.replace("RID", "REL");
    let ast = parse(&bindable).unwrap();
    let udfs = UdfRegistry::with_builtins();
    group.bench_function("bind", |b| b.iter(|| bind(&ast, &model.schema, &udfs).unwrap()));
    let bq = bind(&ast, &model.schema, &udfs).unwrap();
    group.bench_function("range-analysis", |b| {
        b.iter(|| attribute_ranges(bq.predicate.as_ref().unwrap()).len())
    });
    group.finish();
}

fn bench_descriptor(c: &mut Criterion) {
    let cfg = IparsConfig {
        realizations: 4,
        time_steps: 500,
        grid_per_dir: 100,
        dirs: 4,
        nodes: 4,
        seed: 1,
    };
    let text = ipars::descriptor(&cfg, IparsLayout::L0);
    let mut group = c.benchmark_group("micro-descriptor");
    group.bench_function("parse+resolve-L0-72files", |b| {
        b.iter(|| dv_descriptor::compile(&text).unwrap().files.len())
    });
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let mut entries = Vec::new();
    for i in 0..10_000 {
        let x = (i % 100) as f64 * 10.0;
        let y = (i / 100) as f64 * 10.0;
        entries.push((Rect::new(vec![x, y], vec![x + 10.0, y + 10.0]), i));
    }
    let tree = RTree::bulk_load(2, entries.clone());
    let query = Rect::new(vec![300.0, 300.0], vec![420.0, 420.0]);
    let mut group = c.benchmark_group("micro-rtree");
    group
        .bench_function("bulk-load-10k", |b| b.iter(|| RTree::bulk_load(2, entries.clone()).len()));
    group.bench_function("query-selective", |b| b.iter(|| tree.query_collect(&query).len()));
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    // Decode a 1 MiB buffer of packed f32s the way the extractor does.
    let buf: Vec<u8> = (0..1_048_576u32).map(|i| (i % 251) as u8).collect();
    let mut group = c.benchmark_group("micro-decode");
    group.bench_function("decode-f32-1MiB", |b| {
        b.iter(|| {
            let mut acc = 0f64;
            for at in (0..buf.len()).step_by(4) {
                acc += Value::decode(DataType::Float, &buf[at..]).as_f64();
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sql, bench_descriptor, bench_rtree, bench_decode);
criterion_main!(benches);
