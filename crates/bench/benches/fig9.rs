//! Criterion bench for Figure 9: the range+filter query (paper's
//! query 3) across all seven Ipars layouts, plus the hand-written L0
//! baseline.

use criterion::{criterion_group, criterion_main, Criterion};

use dv_bench::queries::ipars_queries;
use dv_bench::stage::stage_ipars;
use dv_core::Virtualizer;
use dv_datagen::{IparsConfig, IparsLayout};
use dv_handwritten::HandIparsL0;
use dv_sql::{bind, parse, UdfRegistry};

fn small_cfg() -> IparsConfig {
    IparsConfig { realizations: 2, time_steps: 20, grid_per_dir: 400, dirs: 2, nodes: 2, seed: 99 }
}

fn bench_fig9(c: &mut Criterion) {
    let cfg = small_cfg();
    let queries = ipars_queries("IparsData", cfg.time_steps);
    let q3 = &queries[2];

    let mut group = c.benchmark_group("fig9-q3");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Hand-written baseline.
    let (l0_base, l0_desc) = stage_ipars("bench-fig9-l0", &cfg, IparsLayout::L0);
    let l0_v = Virtualizer::builder(&l0_desc).storage_base(&l0_base).build().unwrap();
    let hand = HandIparsL0::new(l0_base, cfg.clone(), UdfRegistry::with_builtins());
    let bq = bind(&parse(&q3.sql).unwrap(), l0_v.schema(), &UdfRegistry::with_builtins()).unwrap();
    group.bench_function("hand-L0", |b| b.iter(|| hand.execute(&bq).unwrap().0.len()));

    for layout in IparsLayout::all() {
        let (base, desc) = stage_ipars(&format!("bench-fig9-{}", layout.tag()), &cfg, layout);
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        group.bench_function(format!("generated-{}", layout.tag()), |b| {
            b.iter(|| v.query(&q3.sql).unwrap().0.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
