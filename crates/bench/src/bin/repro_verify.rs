//! Verification-certificate ablation — checked vs certificate-gated
//! unchecked columnar decode.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_verify
//! ```
//!
//! Runs scan-heavy Ipars queries on two layout extremes (L0's 18-file
//! aligned groups and Layout I's single strided file) twice per query:
//! once with verification disabled (the extractor keeps its per-run
//! bounds checks) and once with the `dv-verify` pass proving the
//! descriptor Safe at build time, which lets the decode hot loop drop
//! those checks. Cardinalities are asserted identical throughout, and
//! the verifier's own cost is measured. Results go to
//! `BENCH_verify.json` at the repo root (override with `DV_BENCH_OUT`;
//! `DV_QUICK=1` runs a smoke-sized dataset).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dv_bench::stage::stage_ipars;
use dv_bench::{ms, print_table, ratio, scaled};
use dv_core::{Certificate, ExecMode, QueryOptions, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};
use dv_lint::verify_descriptor;

fn cfg() -> IparsConfig {
    IparsConfig {
        realizations: 4,
        time_steps: 40,
        grid_per_dir: scaled(1250),
        dirs: 4,
        nodes: 4,
        seed: 909,
    }
}

/// Scan-heavy queries: the decode loop dominates, so the dropped
/// bounds checks are visible (point lookups are seek-bound instead).
fn queries(t_max: usize) -> Vec<(usize, &'static str, String)> {
    vec![
        (1, "full scan, all attrs", "SELECT * FROM IparsData WHERE TIME >= 0".to_string()),
        (
            2,
            "half range, all attrs",
            format!("SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= {}", t_max / 2),
        ),
        (
            3,
            "full scan, 4 attrs + filter",
            "SELECT REL, TIME, SOIL, SGAS FROM IparsData WHERE SOIL > 0.2".to_string(),
        ),
    ]
}

fn run_once(v: &Virtualizer, sql: &str) -> (usize, Duration) {
    let opts =
        QueryOptions { sequential_nodes: true, exec: ExecMode::Columnar, ..Default::default() };
    let (tables, stats) = v.query_with(sql, &opts).unwrap();
    (tables[0].len(), stats.simulated_parallel_time())
}

fn run_timed(v: &Virtualizer, sql: &str) -> (usize, Duration) {
    dv_bench::min_over(5, || run_once(v, sql))
}

struct Measurement {
    layout: String,
    query_no: usize,
    what: &'static str,
    rows: usize,
    checked: Duration,
    unchecked: Duration,
}

fn main() {
    let cfg = cfg();
    println!("# dv-verify certificate — checked vs unchecked columnar decode\n");
    println!(
        "dataset: {} rows (~{} MiB per layout), 4 nodes; times are simulated cluster wall \
         times (max over per-node pipelines)",
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / (1024 * 1024)
    );

    let mut results: Vec<Measurement> = Vec::new();
    let mut verify_times: Vec<(String, Duration)> = Vec::new();

    for layout in [IparsLayout::L0, IparsLayout::I] {
        let (base, desc) = stage_ipars(&format!("fig9-{}", layout.tag()), &cfg, layout);
        dv_bench::warm_dir(&base);

        // The verifier's own cost (pure static analysis, no data read).
        let t0 = Instant::now();
        let report = verify_descriptor(&desc, None).unwrap();
        let verify_time = t0.elapsed();
        assert_eq!(report.certificate(), Certificate::Safe, "{}: not proved safe", layout.label());
        verify_times.push((layout.label().to_string(), verify_time));

        let checked =
            Virtualizer::builder(&desc).storage_base(&base).verify(false).build().unwrap();
        assert_eq!(checked.certificate(), Certificate::Unverified);
        let unchecked = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        assert_eq!(unchecked.certificate(), Certificate::Safe, "{}", layout.label());

        for (no, what, sql) in queries(cfg.time_steps) {
            let (rows_c, tc) = run_timed(&checked, &sql);
            let (rows_u, tu) = run_timed(&unchecked, &sql);
            assert_eq!(rows_c, rows_u, "{} q{no}: cardinality diverges", layout.label());
            results.push(Measurement {
                layout: layout.label().to_string(),
                query_no: no,
                what,
                rows: rows_c,
                checked: tc,
                unchecked: tu,
            });
        }
    }

    let table_rows: Vec<Vec<String>> = results
        .iter()
        .map(|m| {
            vec![
                m.layout.clone(),
                format!("{} ({})", m.query_no, m.what),
                m.rows.to_string(),
                ms(m.checked),
                ms(m.unchecked),
                ratio(m.checked, m.unchecked),
            ]
        })
        .collect();
    print_table(
        "Certificate-gated decode — per-query times (ms)",
        &["layout", "query", "rows", "checked", "unchecked", "speedup"],
        &table_rows,
    );

    for (layout, t) in &verify_times {
        println!("verify pass on {layout}: {} ms (static, no data read)", ms(*t));
    }
    let best = results
        .iter()
        .map(|m| m.checked.as_secs_f64() / m.unchecked.as_secs_f64().max(1e-9))
        .fold(0.0f64, f64::max);
    let geomean = {
        let log_sum: f64 = results
            .iter()
            .map(|m| (m.checked.as_secs_f64() / m.unchecked.as_secs_f64().max(1e-9)).ln())
            .sum();
        (log_sum / results.len() as f64).exp()
    };
    println!("\nbest speedup (checked -> unchecked): {best:.2}x");
    println!("geomean speedup: {geomean:.3}x");

    let out = out_path();
    std::fs::write(&out, render_json(&cfg, &results, &verify_times, best, geomean))
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}

fn out_path() -> PathBuf {
    match std::env::var("DV_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            // crates/bench -> workspace root.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("BENCH_verify.json")
        }
    }
}

/// Hand-formatted JSON (the workspace carries no serde).
fn render_json(
    cfg: &IparsConfig,
    results: &[Measurement],
    verify_times: &[(String, Duration)],
    best: f64,
    geomean: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"verify-certificate\",\n");
    s.push_str(&format!(
        "  \"dataset\": {{\"kind\": \"ipars\", \"rows\": {}, \"realizations\": {}, \
         \"time_steps\": {}, \"grid_per_dir\": {}, \"dirs\": {}, \"nodes\": {}, \"seed\": {}}},\n",
        cfg.rows(),
        cfg.realizations,
        cfg.time_steps,
        cfg.grid_per_dir,
        cfg.dirs,
        cfg.nodes,
        cfg.seed
    ));
    s.push_str(&format!("  \"quick_mode\": {},\n", dv_bench::quick_mode()));
    s.push_str("  \"verify_pass\": [\n");
    for (i, (layout, t)) in verify_times.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"layout\": \"{layout}\", \"verify_ms\": {:.3}, \"certificate\": \"safe\"}}{}\n",
            t.as_secs_f64() * 1e3,
            if i + 1 == verify_times.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"runs\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"layout\": \"{}\", \"query\": {}, \"what\": \"{}\", \"rows\": {}, \
             \"checked_ms\": {:.3}, \"unchecked_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            m.layout,
            m.query_no,
            m.what,
            m.rows,
            m.checked.as_secs_f64() * 1e3,
            m.unchecked.as_secs_f64() * 1e3,
            m.checked.as_secs_f64() / m.unchecked.as_secs_f64().max(1e-9),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"best_speedup\": {best:.3},\n  \"geomean_speedup\": {geomean:.3}\n"));
    s.push_str("}\n");
    s
}
