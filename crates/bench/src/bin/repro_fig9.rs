//! Figure 9 — query execution times across the seven Ipars layouts,
//! hand-written vs compiler-generated.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_fig9
//! ```
//!
//! Paper shape to reproduce: (a) the full scan is an order of
//! magnitude slower than the subsets; (b) generated code on L0 is
//! within ~10% of hand-written (≤4% when a UDF dominates); the
//! single-file layouts beat L0's 18-file aligned reads.

use std::time::Duration;

use dv_bench::queries::ipars_queries;
use dv_bench::stage::stage_ipars;
use dv_bench::{ms, print_table, ratio, scaled};
use dv_core::{QueryOptions, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};
use dv_handwritten::HandIparsL0;
use dv_sql::{bind, parse, UdfRegistry};

fn cfg() -> IparsConfig {
    IparsConfig {
        realizations: 4,
        time_steps: 40,
        grid_per_dir: scaled(1250),
        dirs: 4,
        nodes: 4,
        seed: 909,
    }
}

/// Simulated cluster time of a query on a virtualizer (sequential
/// per-node execution, max over nodes — see DESIGN.md).
fn run_generated(v: &Virtualizer, sql: &str) -> (usize, Duration) {
    let opts = QueryOptions { sequential_nodes: true, ..Default::default() };
    dv_bench::min_over(3, || {
        let (tables, stats) = v.query_with(sql, &opts).unwrap();
        (tables[0].len(), stats.simulated_parallel_time())
    })
}

fn main() {
    let cfg = cfg();
    println!("# Figure 9 — layouts experiment (Ipars)\n");
    println!(
        "dataset: {} rows (~{} MiB per layout), 4 nodes; times are simulated cluster wall \
         times (max over per-node pipelines)",
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / (1024 * 1024)
    );

    let queries = ipars_queries("IparsData", cfg.time_steps);

    // Hand-written baseline on the original L0 layout.
    let (l0_base, l0_desc) = stage_ipars("fig9-l0", &cfg, IparsLayout::L0);
    dv_bench::warm_dir(&l0_base);
    let hand = HandIparsL0::new(l0_base.clone(), cfg.clone(), UdfRegistry::with_builtins());
    let l0_v = Virtualizer::builder(&l0_desc).storage_base(&l0_base).build().unwrap();
    let schema = l0_v.schema().clone();

    let mut hand_times: Vec<Duration> = Vec::new();
    let mut hand_rows: Vec<usize> = Vec::new();
    for q in &queries {
        let bq = bind(&parse(&q.sql).unwrap(), &schema, &UdfRegistry::with_builtins()).unwrap();
        let (rows, t) = dv_bench::min_over(3, || {
            let (table, _bytes, busy) = hand.execute_sequential(&bq).unwrap();
            (table.len(), busy.iter().copied().max().unwrap_or_default())
        });
        hand_times.push(t);
        hand_rows.push(rows);
    }

    // Generated code on all seven layouts.
    let mut columns: Vec<(String, Vec<Duration>)> = Vec::new();
    for layout in IparsLayout::all() {
        let (base, desc) = stage_ipars(&format!("fig9-{}", layout.tag()), &cfg, layout);
        dv_bench::warm_dir(&base);
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let mut times = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            let (rows, t) = run_generated(&v, &q.sql);
            assert_eq!(rows, hand_rows[qi], "{} q{} row mismatch", layout.label(), q.no);
            times.push(t);
        }
        columns.push((layout.label().to_string(), times));
    }

    // Figure 9(a): the full scan alone; 9(b): queries 2–5.
    let mut table_rows = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        let mut row =
            vec![format!("{} ({})", q.no, q.what), hand_rows[qi].to_string(), ms(hand_times[qi])];
        for (_, times) in &columns {
            row.push(ms(times[qi]));
        }
        // Generated-L0 vs hand-written gap (the paper's ≤10% claim).
        row.push(ratio(columns[0].1[qi], hand_times[qi]));
        table_rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["query", "rows", "hand L0"];
    let labels: Vec<String> = columns.iter().map(|(l, _)| l.clone()).collect();
    for l in &labels {
        headers.push(l);
    }
    headers.push("genL0/hand");
    print_table("Figure 9 — per-layout times (ms)", &headers, &table_rows);

    println!(
        "\nexpected shape (paper): full scan ~10x the subset queries; generated L0 within \
         ~10% of hand-written (less when the UDF dominates, q4); layouts I/III beat L0."
    );
}
