//! Aggregation pushdown ablation — ship aggregates, not rows.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_agg
//! ```
//!
//! Runs a GROUP BY spectrum on the L0 layout, pushdown vs shipped-rows
//! (`QueryOptions::no_agg_pushdown`, the in-process form of
//! `DV_NO_AGG_PUSHDOWN=1`). With pushdown each node folds its morsels
//! into per-AFC partial aggregates and the mover carries compact
//! key+accumulator blocks; without it the filtered projected rows
//! cross the wire and the absorber aggregates client-side. Both modes
//! fold the same plan-time AFC units in the same (node, seq) order, so
//! the results are asserted *bit*-identical — across both execution
//! engines and thread counts {1, 2, 8} — while the mover traffic drops
//! from O(rows) to O(groups). The headline acceptance bar is a >= 5x
//! mover-bytes reduction on the multi-aggregate GROUP BY. Results go
//! to `BENCH_AGG.json` at the repo root (override with
//! `DV_BENCH_OUT`).

use std::path::PathBuf;
use std::time::Duration;

use dv_bench::stage::stage_ipars;
use dv_bench::{ms, print_table, ratio, scaled};
use dv_core::{BandwidthModel, ExecMode, IoOptions, QueryOptions, QueryStats, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};
use dv_types::{Table, Value};

fn cfg() -> IparsConfig {
    IparsConfig {
        realizations: 4,
        time_steps: 50,
        grid_per_dir: scaled(1250),
        dirs: 4,
        nodes: 4,
        seed: 808,
    }
}

struct Case {
    name: &'static str,
    sql: &'static str,
}

fn cases() -> Vec<Case> {
    vec![
        // 200 groups out of the full scan: the headline.
        Case {
            name: "multi-agg-group",
            sql: "SELECT REL, TIME, COUNT(*), SUM(SOIL), MIN(PGAS), MAX(PGAS), AVG(SOIL) \
                  FROM IparsData GROUP BY REL, TIME",
        },
        // Filtered single aggregate: pushdown composes with the
        // filtering service and static pruning.
        Case {
            name: "filtered-avg",
            sql: "SELECT TIME, AVG(SOIL) FROM IparsData WHERE TIME <= 25 GROUP BY TIME",
        },
        // Global aggregate: one group per node partial.
        Case {
            name: "global-agg",
            sql: "SELECT COUNT(*), SUM(SOIL), MIN(SOIL), MAX(SOIL) FROM IparsData",
        },
        // Bare GROUP BY (DISTINCT): keys only, no accumulators.
        Case { name: "distinct-rel", sql: "SELECT REL FROM IparsData GROUP BY REL" },
    ]
}

fn opts(threads: usize, exec: ExecMode, no_agg_pushdown: bool) -> QueryOptions {
    // Segment cache off: repeat timing runs must re-issue their reads.
    let io = IoOptions { cache_bytes: 0, ..IoOptions::default() };
    QueryOptions {
        sequential_nodes: true,
        intra_node_threads: threads,
        exec,
        no_agg_pushdown,
        io,
        ..Default::default()
    }
}

fn run_once(
    v: &Virtualizer,
    sql: &str,
    threads: usize,
    exec: ExecMode,
    no_push: bool,
) -> (Table, QueryStats, Duration) {
    let (mut tables, stats) = v.query_with(sql, &opts(threads, exec, no_push)).unwrap();
    let t = stats.simulated_parallel_time();
    (tables.remove(0), stats, t)
}

fn run_timed(v: &Virtualizer, sql: &str, no_push: bool) -> (Table, QueryStats, Duration) {
    let ((table, stats), time) = dv_bench::min_over(3, || {
        let (table, stats, time) = run_once(v, sql, 1, ExecMode::Columnar, no_push);
        ((table, stats), time)
    });
    (table, stats, time)
}

/// Bit-level table equality: floats compare by representation so a
/// re-associated fold or a canonicalized NaN cannot slip through.
fn bits_equal(a: &Table, b: &Table) -> bool {
    a.rows.len() == b.rows.len()
        && a.rows.iter().zip(&b.rows).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                    (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
                    _ => va == vb,
                })
        })
}

struct Measurement {
    name: &'static str,
    groups: usize,
    pushed: QueryStats,
    pushed_time: Duration,
    shipped: QueryStats,
    shipped_time: Duration,
}

fn main() {
    let cfg = cfg();
    println!("# Aggregation pushdown ablation — partial aggregates vs shipped rows\n");
    println!(
        "dataset: {} rows (~{} MiB, L0 layout), 4 nodes; times are simulated cluster wall times",
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / (1024 * 1024)
    );

    let (base, desc) = stage_ipars("agg-l0", &cfg, IparsLayout::L0);
    dv_bench::warm_dir(&base);

    let mut results = Vec::new();
    for case in cases() {
        // Fresh server per arm so the segment cache cannot subsidize
        // either mode.
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let (t_rows, shipped, shipped_time) = run_timed(&v, case.sql, true);
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let (t_push, pushed, pushed_time) = run_timed(&v, case.sql, false);
        assert!(
            bits_equal(&t_push, &t_rows),
            "{}: pushdown result diverges from shipped-rows ({} vs {} rows)",
            case.name,
            t_push.len(),
            t_rows.len()
        );
        assert_eq!(shipped.mover.agg_blocks, 0, "{}: ablation must ship rows", case.name);
        assert!(pushed.mover.agg_blocks > 0, "{}: pushdown must ship partials", case.name);

        // Bit-identity across engines and thread counts, both modes.
        for exec in [ExecMode::Columnar, ExecMode::RowAtATime] {
            for threads in [1usize, 2, 8] {
                for no_push in [false, true] {
                    let (t, _, _) = run_once(&v, case.sql, threads, exec, no_push);
                    assert!(
                        bits_equal(&t, &t_push),
                        "{}: {exec:?} threads={threads} no_push={no_push} diverges",
                        case.name
                    );
                }
            }
        }
        results.push(Measurement {
            name: case.name,
            groups: t_push.len(),
            pushed,
            pushed_time,
            shipped,
            shipped_time,
        });
    }

    let table_rows: Vec<Vec<String>> = results
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.groups.to_string(),
                m.pushed.mover.agg_rows_in.to_string(),
                m.pushed.mover.agg_groups_out.to_string(),
                (m.shipped.bytes_moved / 1024).to_string(),
                (m.pushed.bytes_moved / 1024).to_string(),
                format!("{:.1}x", moved_reduction(m)),
                ms(m.shipped_time),
                ms(m.pushed_time),
                ratio(m.shipped_time, m.pushed_time),
            ]
        })
        .collect();
    print_table(
        "Pushdown vs shipped rows (no_agg_pushdown) — mover traffic, times",
        &[
            "query",
            "groups",
            "rows folded",
            "entries out",
            "KiB (rows)",
            "KiB (push)",
            "moved",
            "rows",
            "push",
            "speedup",
        ],
        &table_rows,
    );

    // Headline: mover-bytes reduction on the multi-aggregate GROUP BY.
    // The acceptance bar is >= 5x.
    let head = &results[0];
    let moved = moved_reduction(head);
    println!("\nheadline mover-bytes reduction (shipped-rows/pushdown): {moved:.1}x");
    assert!(moved >= 5.0, "acceptance: expected >= 5x mover-bytes reduction, got {moved:.2}x");

    // On the local in-memory mover the saved bytes cost nothing, so
    // wall time is flat; over a modeled link the traffic reduction is
    // the wall-clock win. 8 MiB/s is the repository's standard slow
    // WAN arm (repro_fig10 uses the same model).
    let link = BandwidthModel { bytes_per_sec: 8.0 * 1024.0 * 1024.0, latency: Duration::ZERO };
    let sql = cases()[0].sql;
    let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
    let run_link = |no_push: bool| {
        let mut o = opts(1, ExecMode::Columnar, no_push);
        o.bandwidth = Some(link);
        let (_, stats) = v.query_with(sql, &o).unwrap();
        stats.simulated_parallel_time()
    };
    let (link_rows, link_push) = (run_link(true), run_link(false));
    let link_speedup = link_rows.as_secs_f64() / link_push.as_secs_f64().max(1e-9);
    println!(
        "headline over an 8 MiB/s link: rows {} vs pushdown {} ({link_speedup:.1}x)",
        ms(link_rows),
        ms(link_push)
    );

    let out = out_path();
    std::fs::write(&out, render_json(&cfg, &results, moved, link_speedup))
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}

fn moved_reduction(m: &Measurement) -> f64 {
    m.shipped.bytes_moved as f64 / m.pushed.bytes_moved.max(1) as f64
}

fn out_path() -> PathBuf {
    match std::env::var("DV_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("BENCH_AGG.json")
        }
    }
}

/// Hand-formatted JSON (the workspace carries no serde).
fn render_json(
    cfg: &IparsConfig,
    results: &[Measurement],
    headline: f64,
    link_speedup: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"agg-pushdown\",\n");
    s.push_str(&format!(
        "  \"dataset\": {{\"kind\": \"ipars\", \"layout\": \"l0\", \"rows\": {}, \
         \"realizations\": {}, \"time_steps\": {}, \"grid_per_dir\": {}, \"dirs\": {}, \
         \"nodes\": {}, \"seed\": {}}},\n",
        cfg.rows(),
        cfg.realizations,
        cfg.time_steps,
        cfg.grid_per_dir,
        cfg.dirs,
        cfg.nodes,
        cfg.seed
    ));
    s.push_str(&format!("  \"quick_mode\": {},\n", dv_bench::quick_mode()));
    s.push_str("  \"runs\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"query\": \"{}\", \"groups\": {}, \"agg_blocks\": {}, \
             \"agg_rows_in\": {}, \"agg_groups_out\": {}, \"pushdown_bytes_moved\": {}, \
             \"shipped_bytes_moved\": {}, \"moved_reduction\": {:.3}, \
             \"pushdown_ms\": {:.3}, \"shipped_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            m.name,
            m.groups,
            m.pushed.mover.agg_blocks,
            m.pushed.mover.agg_rows_in,
            m.pushed.mover.agg_groups_out,
            m.pushed.bytes_moved,
            m.shipped.bytes_moved,
            moved_reduction(m),
            m.pushed_time.as_secs_f64() * 1e3,
            m.shipped_time.as_secs_f64() * 1e3,
            m.shipped_time.as_secs_f64() / m.pushed_time.as_secs_f64().max(1e-9),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"headline_moved_reduction\": {headline:.2},\n"));
    s.push_str(&format!("  \"link_bound_speedup\": {link_speedup:.2}\n"));
    s.push_str("}\n");
    s
}
