//! Figure 10 — scalability with the number of nodes, hand-written vs
//! generated, fixed total data.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_fig10
//! ```
//!
//! Paper shape to reproduce: execution time drops near-linearly as the
//! same data is spread over 1 → 8 nodes; the generated code tracks the
//! hand-written code within ~5–34% (average ~16%).

use dv_bench::stage::stage_ipars;
use dv_bench::{ms, print_table, ratio, scaled};
use dv_core::{QueryOptions, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};
use dv_handwritten::HandIparsL0;
use dv_sql::{bind, parse, UdfRegistry};

fn main() {
    println!("# Figure 10 — scalability with data-source nodes (Ipars, L0)\n");
    // Fixed logical dataset: 8 directories; only the node mapping
    // changes. The paper's query processes ~1.3 GB; ours processes the
    // same fraction of a scaled-down study.
    let dirs = 8;
    let grid = scaled(1250);
    let t = 40;
    let sql =
        format!("SELECT * FROM IparsData WHERE TIME > {} AND TIME < {}", t / 4, t / 4 + t / 2 + 1);
    println!("query: {sql}\n(processes half of every realization's time range)");

    let mut rows = Vec::new();
    let mut one_node_hand = None;
    let mut one_node_gen = None;
    for nodes in [1usize, 2, 4, 8] {
        let cfg = IparsConfig {
            realizations: 4,
            time_steps: t,
            grid_per_dir: grid,
            dirs,
            nodes,
            seed: 1010,
        };
        let (base, desc) = stage_ipars(&format!("fig10-n{nodes}"), &cfg, IparsLayout::L0);
        dv_bench::warm_dir(&base);

        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let opts = QueryOptions { sequential_nodes: true, ..Default::default() };
        let (gen_rows, gen_time) = dv_bench::min_over(3, || {
            let (tables, stats) = v.query_with(&sql, &opts).unwrap();
            (tables[0].len(), stats.simulated_parallel_time())
        });

        let hand = HandIparsL0::new(base.clone(), cfg.clone(), UdfRegistry::with_builtins());
        let bq = bind(&parse(&sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let (hand_rows, hand_time) = dv_bench::min_over(3, || {
            let (table, _bytes, busy) = hand.execute_sequential(&bq).unwrap();
            (table.len(), busy.iter().copied().max().unwrap_or_default())
        });
        assert_eq!(hand_rows, gen_rows);

        one_node_hand.get_or_insert(hand_time);
        one_node_gen.get_or_insert(gen_time);
        rows.push(vec![
            nodes.to_string(),
            gen_rows.to_string(),
            ms(hand_time),
            ms(gen_time),
            ratio(gen_time, hand_time),
            format!("{:.2}", one_node_hand.unwrap().as_secs_f64() / hand_time.as_secs_f64()),
            format!("{:.2}", one_node_gen.unwrap().as_secs_f64() / gen_time.as_secs_f64()),
        ]);
    }
    print_table(
        "Figure 10 — simulated cluster time vs node count",
        &["nodes", "rows", "hand ms", "generated ms", "gen/hand", "hand speedup", "gen speedup"],
        &rows,
    );
    println!(
        "\nexpected shape (paper): near-linear speedup for both; generated within 5–34% of \
         hand-written (avg ~16%)."
    );
}
