//! Static pruning ablation — dv-prune's bytes-avoided and filter-skip
//! wins, plus the lint-time cost of the analysis itself.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_prune
//! ```
//!
//! Runs a prunability spectrum on the L0 layout, pruned vs unpruned
//! (`QueryOptions::no_prune`, the in-process form of `DV_NO_PRUNE=1`),
//! asserting identical row multisets throughout. The headline query is
//! an *arithmetic* time window (`TIME * 10 <= 40`, 8% of the
//! coordinate space): range analysis cannot see through the
//! multiplication, so without the abstract interpreter it full-scans —
//! exactly the gap dv-prune closes. Also times `prune_query` on every
//! shipped example descriptor (the analysis must stay well under the
//! 5 ms acceptance bar). Results go to `BENCH_PRUNE.json` at the repo
//! root (override with `DV_BENCH_OUT`).

use std::path::PathBuf;
use std::time::Duration;

use dv_bench::stage::stage_ipars;
use dv_bench::{ms, print_table, ratio, scaled};
use dv_core::{IoOptions, QueryOptions, QueryStats, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};
use dv_sql::UdfRegistry;
use dv_types::Table;

fn cfg() -> IparsConfig {
    IparsConfig {
        realizations: 4,
        time_steps: 50,
        grid_per_dir: scaled(1250),
        dirs: 4,
        nodes: 4,
        seed: 606,
    }
}

struct Case {
    name: &'static str,
    sql: &'static str,
}

fn cases() -> Vec<Case> {
    vec![
        // 8% of the TIME axis, hidden behind arithmetic: the headline.
        Case {
            name: "arith-window-8%",
            sql: "SELECT SOIL, TIME FROM IparsData WHERE TIME * 10 <= 40",
        },
        // The same window written plainly: range analysis already
        // narrows it, pruning marks the survivors Full.
        Case { name: "plain-window-8%", sql: "SELECT SOIL, TIME FROM IparsData WHERE TIME <= 4" },
        // Tautology: nothing pruned, every chunk skips the filter.
        Case { name: "tautology", sql: "SELECT SOIL, TIME FROM IparsData WHERE TIME >= 1" },
        // Stored attribute: undecidable, pruning must be a no-op.
        Case { name: "stored-attr", sql: "SELECT SOIL FROM IparsData WHERE SOIL > 0.8" },
    ]
}

fn opts(no_prune: bool) -> QueryOptions {
    // Segment cache off: repeat timing runs must re-issue their reads,
    // so `bytes_issued` measures the scan, not the cache.
    let io = IoOptions { cache_bytes: 0, ..IoOptions::default() };
    QueryOptions { sequential_nodes: true, no_prune, io, ..Default::default() }
}

fn run_once(v: &Virtualizer, sql: &str, no_prune: bool) -> (Table, QueryStats, Duration) {
    let (mut tables, stats) = v.query_with(sql, &opts(no_prune)).unwrap();
    let t = stats.simulated_parallel_time();
    (tables.remove(0), stats, t)
}

fn run_timed(v: &Virtualizer, sql: &str, no_prune: bool) -> (Table, QueryStats, Duration) {
    let ((table, stats), time) = dv_bench::min_over(3, || {
        let (table, stats, time) = run_once(v, sql, no_prune);
        ((table, stats), time)
    });
    (table, stats, time)
}

struct Measurement {
    name: &'static str,
    rows: usize,
    pruned: QueryStats,
    pruned_time: Duration,
    unpruned: QueryStats,
    unpruned_time: Duration,
}

fn main() {
    let cfg = cfg();
    println!("# Static pruning ablation — abstract interpretation over AFC extents\n");
    println!(
        "dataset: {} rows (~{} MiB, L0 layout), 4 nodes; times are simulated cluster wall times",
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / (1024 * 1024)
    );

    let (base, desc) = stage_ipars("prune-l0", &cfg, IparsLayout::L0);
    dv_bench::warm_dir(&base);

    let mut results = Vec::new();
    for case in cases() {
        // Fresh server per arm so the segment cache cannot subsidize
        // the unpruned run (or vice versa).
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let (t_un, unpruned, unpruned_time) = run_timed(&v, case.sql, true);
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let (t_pr, pruned, pruned_time) = run_timed(&v, case.sql, false);
        assert!(
            t_pr.same_rows(&t_un),
            "{}: pruned result diverges ({} vs {} rows)",
            case.name,
            t_pr.len(),
            t_un.len()
        );
        assert_eq!(unpruned.groups_pruned, 0, "{}: no_prune must not prune", case.name);
        results.push(Measurement {
            name: case.name,
            rows: t_pr.len(),
            pruned,
            pruned_time,
            unpruned,
            unpruned_time,
        });
    }

    let table_rows: Vec<Vec<String>> = results
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.rows.to_string(),
                format!("{}/{}", m.pruned.groups_pruned, m.pruned.groups_total),
                m.pruned.groups_full.to_string(),
                (m.unpruned.io.bytes_issued / 1024).to_string(),
                (m.pruned.io.bytes_issued / 1024).to_string(),
                ms(m.unpruned_time),
                ms(m.pruned_time),
                ratio(m.unpruned_time, m.pruned_time),
            ]
        })
        .collect();
    print_table(
        "Pruned vs unpruned (no_prune) — groups, bytes issued, times",
        &["query", "rows", "pruned", "full", "KiB (off)", "KiB (prune)", "off", "prune", "speedup"],
        &table_rows,
    );

    // Headline: bytes-issued reduction on the selective arithmetic
    // window, where range analysis is blind and pruning does all the
    // work. The acceptance bar is >= 5x.
    let head = &results[0];
    let byte_reduction =
        head.unpruned.io.bytes_issued as f64 / head.pruned.io.bytes_issued.max(1) as f64;
    println!("\nselective-query bytes-issued reduction (unpruned/pruned): {byte_reduction:.1}x");
    assert!(
        byte_reduction >= 5.0,
        "acceptance: expected >= 5x bytes-issued reduction, got {byte_reduction:.2}x"
    );

    let lint = lint_latencies();

    let out = out_path();
    std::fs::write(&out, render_json(&cfg, &results, &lint, byte_reduction))
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}

struct LintPoint {
    descriptor: String,
    files: usize,
    time: Duration,
}

/// `prune_query` latency on every shipped example descriptor, against a
/// worst-case-ish query (arith + UDF + two coordinates). Must stay
/// under the 5 ms acceptance bar.
fn lint_latencies() -> Vec<LintPoint> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/descriptors");
    let udfs = UdfRegistry::with_builtins();
    let mut out = Vec::new();
    let mut rows = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir).unwrap().flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "desc") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let model = dv_descriptor::compile(&text).unwrap();
        // Every schema has at least two attributes; constrain the first
        // two so the pass walks real hull envs on every descriptor.
        let a0 = &model.schema.attr_at(0).name;
        let a1 = &model.schema.attr_at(1).name;
        let sql = format!(
            "SELECT {a0} FROM {} WHERE {a0} * 3 <= 90 AND {a1} >= 0 AND \
             SPEED({a0}, {a0}, {a1}) < 100.0",
            model.dataset_name
        );
        let (_, time) = dv_bench::time_best_of(5, || {
            dv_lint::prune_query(&model, &sql, &udfs).unwrap();
        });
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(
            time < Duration::from_millis(5),
            "{name}: prune analysis took {time:?} (bar is 5 ms)"
        );
        rows.push(vec![
            name.clone(),
            model.files.len().to_string(),
            format!("{:.3}", time.as_secs_f64() * 1e3),
        ]);
        out.push(LintPoint { descriptor: name, files: model.files.len(), time });
    }
    print_table(
        "prune_query latency per shipped descriptor (ms, best of 5)",
        &["descriptor", "files", "analysis ms"],
        &rows,
    );
    out
}

fn out_path() -> PathBuf {
    match std::env::var("DV_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("BENCH_PRUNE.json")
        }
    }
}

/// Hand-formatted JSON (the workspace carries no serde).
fn render_json(
    cfg: &IparsConfig,
    results: &[Measurement],
    lint: &[LintPoint],
    byte_reduction: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"static-pruning\",\n");
    s.push_str(&format!(
        "  \"dataset\": {{\"kind\": \"ipars\", \"layout\": \"l0\", \"rows\": {}, \
         \"realizations\": {}, \"time_steps\": {}, \"grid_per_dir\": {}, \"dirs\": {}, \
         \"nodes\": {}, \"seed\": {}}},\n",
        cfg.rows(),
        cfg.realizations,
        cfg.time_steps,
        cfg.grid_per_dir,
        cfg.dirs,
        cfg.nodes,
        cfg.seed
    ));
    s.push_str(&format!("  \"quick_mode\": {},\n", dv_bench::quick_mode()));
    s.push_str("  \"runs\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"query\": \"{}\", \"rows\": {}, \"groups_total\": {}, \
             \"groups_pruned\": {}, \"groups_full\": {}, \"bytes_avoided\": {}, \
             \"pruned_bytes_issued\": {}, \"unpruned_bytes_issued\": {}, \
             \"pruned_ms\": {:.3}, \"unpruned_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            m.name,
            m.rows,
            m.pruned.groups_total,
            m.pruned.groups_pruned,
            m.pruned.groups_full,
            m.pruned.bytes_avoided,
            m.pruned.io.bytes_issued,
            m.unpruned.io.bytes_issued,
            m.pruned_time.as_secs_f64() * 1e3,
            m.unpruned_time.as_secs_f64() * 1e3,
            m.unpruned_time.as_secs_f64() / m.pruned_time.as_secs_f64().max(1e-9),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"prune_lint_latency\": [\n");
    for (i, p) in lint.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"descriptor\": \"{}\", \"files\": {}, \"analysis_ms\": {:.3}}}{}\n",
            p.descriptor,
            p.files,
            p.time.as_secs_f64() * 1e3,
            if i + 1 == lint.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"selective_bytes_reduction\": {byte_reduction:.2}\n"));
    s.push_str("}\n");
    s
}
