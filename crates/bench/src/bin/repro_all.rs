//! Run the full evaluation: Figures 6, 9, 10 and 11 in sequence.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_all
//! ```
//!
//! Set `DV_QUICK=1` for an ~8×-smaller smoke run.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for fig in ["repro_fig6", "repro_fig9", "repro_fig10", "repro_fig11"] {
        println!("\n==================== {fig} ====================\n");
        let status =
            Command::new(dir.join(fig)).status().unwrap_or_else(|e| panic!("launch {fig}: {e}"));
        if !status.success() {
            eprintln!("{fig} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall figures reproduced.");
}
