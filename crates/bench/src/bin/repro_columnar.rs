//! Columnar-vs-row execution ablation — the tentpole measurement for
//! the vectorized extract → filter → partition pipeline.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_columnar
//! ```
//!
//! Runs the fig9 scan-heavy Ipars query set twice per layout — once
//! with `ExecMode::RowAtATime` (the original row-oriented pipeline,
//! kept for exactly this ablation) and once with the default
//! `ExecMode::Columnar` — asserts identical result cardinalities, and
//! writes the measured speedups to `BENCH_columnar.json` at the repo
//! root (override the path with `DV_BENCH_OUT`).

use std::path::PathBuf;
use std::time::Duration;

use dv_bench::queries::ipars_queries;
use dv_bench::stage::stage_ipars;
use dv_bench::{ms, print_table, ratio, scaled};
use dv_core::{ExecMode, QueryOptions, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};

fn cfg() -> IparsConfig {
    IparsConfig {
        realizations: 4,
        time_steps: 40,
        grid_per_dir: scaled(1250),
        dirs: 4,
        nodes: 4,
        seed: 909,
    }
}

/// Simulated cluster time of one query under one execution mode.
fn run_mode(v: &Virtualizer, sql: &str, exec: ExecMode) -> (usize, Duration) {
    let opts = QueryOptions { sequential_nodes: true, exec, ..Default::default() };
    dv_bench::min_over(3, || {
        let (tables, stats) = v.query_with(sql, &opts).unwrap();
        (tables[0].len(), stats.simulated_parallel_time())
    })
}

struct Measurement {
    layout: String,
    query_no: usize,
    what: &'static str,
    rows: usize,
    row_time: Duration,
    col_time: Duration,
}

fn main() {
    let cfg = cfg();
    println!("# Columnar block execution — row-at-a-time vs columnar ablation\n");
    println!(
        "dataset: {} rows (~{} MiB per layout), 4 nodes; times are simulated cluster wall \
         times (max over per-node pipelines)",
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / (1024 * 1024)
    );

    let queries = ipars_queries("IparsData", cfg.time_steps);

    // L0 (the original 18-file layout) and Layout I (one file): the
    // two extremes of fig9's fan-in axis, so the ablation covers both
    // many-small-reads and one-big-read extraction.
    let mut results: Vec<Measurement> = Vec::new();
    for layout in [IparsLayout::L0, IparsLayout::I] {
        // Same staging keys as repro_fig9 — datasets are shared.
        let (base, desc) = stage_ipars(&format!("fig9-{}", layout.tag()), &cfg, layout);
        dv_bench::warm_dir(&base);
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        for q in &queries {
            let (row_rows, row_time) = run_mode(&v, &q.sql, ExecMode::RowAtATime);
            let (col_rows, col_time) = run_mode(&v, &q.sql, ExecMode::Columnar);
            assert_eq!(
                row_rows,
                col_rows,
                "{} q{}: columnar and row paths disagree on cardinality",
                layout.label(),
                q.no
            );
            results.push(Measurement {
                layout: layout.label().to_string(),
                query_no: q.no,
                what: q.what,
                rows: row_rows,
                row_time,
                col_time,
            });
        }
    }

    let table_rows: Vec<Vec<String>> = results
        .iter()
        .map(|m| {
            vec![
                m.layout.clone(),
                format!("{} ({})", m.query_no, m.what),
                m.rows.to_string(),
                ms(m.row_time),
                ms(m.col_time),
                ratio(m.row_time, m.col_time),
            ]
        })
        .collect();
    print_table(
        "Columnar ablation — per-query times (ms)",
        &["layout", "query", "rows", "row", "columnar", "speedup"],
        &table_rows,
    );

    let geomean = geomean_speedup(&results);
    println!("\ngeomean speedup (columnar over row, all layout x query cells): {geomean:.2}x");

    let out = out_path();
    std::fs::write(&out, render_json(&cfg, &results, geomean)).expect("write bench JSON");
    println!("wrote {}", out.display());
}

fn geomean_speedup(results: &[Measurement]) -> f64 {
    let log_sum: f64 = results
        .iter()
        .map(|m| (m.row_time.as_secs_f64() / m.col_time.as_secs_f64().max(1e-9)).ln())
        .sum();
    (log_sum / results.len() as f64).exp()
}

fn out_path() -> PathBuf {
    match std::env::var("DV_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            // crates/bench -> workspace root.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("BENCH_columnar.json")
        }
    }
}

/// Hand-formatted JSON (the workspace carries no serde).
fn render_json(cfg: &IparsConfig, results: &[Measurement], geomean: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"columnar-vs-row\",\n");
    s.push_str(&format!(
        "  \"dataset\": {{\"kind\": \"ipars\", \"rows\": {}, \"realizations\": {}, \
         \"time_steps\": {}, \"grid_per_dir\": {}, \"dirs\": {}, \"nodes\": {}, \"seed\": {}}},\n",
        cfg.rows(),
        cfg.realizations,
        cfg.time_steps,
        cfg.grid_per_dir,
        cfg.dirs,
        cfg.nodes,
        cfg.seed
    ));
    s.push_str(&format!("  \"quick_mode\": {},\n", dv_bench::quick_mode()));
    s.push_str("  \"runs\": [\n");
    for (i, m) in results.iter().enumerate() {
        let row_ms = m.row_time.as_secs_f64() * 1e3;
        let col_ms = m.col_time.as_secs_f64() * 1e3;
        let speedup = m.row_time.as_secs_f64() / m.col_time.as_secs_f64().max(1e-9);
        s.push_str(&format!(
            "    {{\"layout\": \"{}\", \"query\": {}, \"what\": \"{}\", \"rows\": {}, \
             \"row_ms\": {:.3}, \"columnar_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            m.layout,
            m.query_no,
            m.what,
            m.rows,
            row_ms,
            col_ms,
            speedup,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"geomean_speedup\": {geomean:.3}\n"));
    s.push_str("}\n");
    s
}
