//! Query service plane under concurrency — throughput and latency at
//! 1 / 4 / 16 concurrent clients.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_concurrency
//! ```
//!
//! A fixed workload of bandwidth-modeled remote-client queries (the
//! fig8 subset/filter set) is drained by N client threads sharing one
//! server. The mover's simulated link stalls dominate each query, so
//! concurrent sessions overlap their transfer sleeps — which is
//! exactly the capacity a serial server wastes — and every result is
//! asserted bit-identical (canonical sort) to the serial reference.
//! Throughput and p50/p99 client-observed latencies go to
//! `BENCH_concurrency.json` at the repo root (override with
//! `DV_BENCH_OUT`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dv_bench::queries::ipars_queries;
use dv_bench::stage::stage_ipars;
use dv_bench::{ms, print_table, scaled};
use dv_core::{BandwidthModel, QueryOptions, SubmitOptions, Table, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};

fn cfg() -> IparsConfig {
    IparsConfig {
        realizations: 2,
        time_steps: 20,
        grid_per_dir: scaled(400),
        dirs: 4,
        nodes: 4,
        seed: 2026,
    }
}

/// Client fan-outs measured against the 1-client (serial) baseline.
const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];

/// Query instances drained per measurement.
const WORK_ITEMS: usize = 24;

/// A ~20 Mbit/s remote link with a small per-block latency: slow
/// enough that the mover's modeled stalls dominate per-query time.
fn link() -> BandwidthModel {
    BandwidthModel { bytes_per_sec: 2.5e6, latency: Duration::from_millis(2) }
}

fn run_opts() -> QueryOptions {
    QueryOptions { bandwidth: Some(link()), ..QueryOptions::default() }
}

struct RunResult {
    clients: usize,
    wall: Duration,
    throughput_qps: f64,
    p50: Duration,
    p99: Duration,
    blocked_sends: u64,
}

fn main() {
    let cfg = cfg();
    println!("# Query service plane — concurrent clients vs serial\n");
    println!(
        "dataset: {} rows (~{} KiB), 4 nodes; link: 20 Mbit/s + 2 ms/block; \
         workload: {WORK_ITEMS} queries (fig8 subset/filter set), admission limit 16",
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / 1024,
    );

    let (base, desc) = stage_ipars("concurrency", &cfg, IparsLayout::L0);
    dv_bench::warm_dir(&base);

    // Queries 2..5: indexed subsets and filters (~5-10% of rows each).
    // The full scan is omitted so a single item cannot dominate the
    // wall time of the whole workload.
    let queries: Vec<String> =
        ipars_queries("IparsData", cfg.time_steps).into_iter().skip(1).map(|q| q.sql).collect();

    // Serial reference results, one per distinct query, on a fresh
    // server: the bit-identity oracle for every concurrent run.
    let reference: Vec<Table> = {
        let v = build(&desc, &base);
        queries.iter().map(|sql| v.query_with(sql, &run_opts()).unwrap().0.remove(0)).collect()
    };

    let mut results: Vec<RunResult> = Vec::new();
    for &clients in &CLIENT_COUNTS {
        let r = run_clients(clients, &desc, &base, &queries, &reference);
        println!(
            "{:>2} client(s): {} in {} ms -> {:.2} queries/s (p50 {} ms, p99 {} ms, {} blocked sends)",
            r.clients,
            WORK_ITEMS,
            ms(r.wall),
            r.throughput_qps,
            ms(r.p50),
            ms(r.p99),
            r.blocked_sends,
        );
        results.push(r);
    }

    let serial = results[0].throughput_qps;
    let table_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                ms(r.wall),
                format!("{:.2}", r.throughput_qps),
                format!("{:.2}x", r.throughput_qps / serial),
                ms(r.p50),
                ms(r.p99),
            ]
        })
        .collect();
    print_table(
        "Concurrent clients — throughput and client-observed latency",
        &["clients", "wall ms", "queries/s", "vs serial", "p50 ms", "p99 ms"],
        &table_rows,
    );

    let speedup16 = results.last().unwrap().throughput_qps / serial;
    println!("\n16-client throughput vs serial: {speedup16:.2}x (all results bit-identical)");
    assert!(
        speedup16 >= 2.0,
        "acceptance: 16 concurrent clients must reach >= 2x serial throughput, got {speedup16:.2}x"
    );

    let out = out_path();
    std::fs::write(&out, render_json(&cfg, &results, speedup16)).expect("write bench JSON");
    println!("wrote {}", out.display());
}

fn build(desc: &str, base: &std::path::Path) -> Virtualizer {
    Virtualizer::builder(desc)
        .storage_base(base)
        .max_concurrent(16)
        .build()
        .expect("compile dataset")
}

/// Drain `WORK_ITEMS` query instances with `clients` threads sharing
/// one fresh server, asserting each result against the serial
/// reference; returns wall time and the latency distribution.
fn run_clients(
    clients: usize,
    desc: &str,
    base: &std::path::Path,
    queries: &[String],
    reference: &[Table],
) -> RunResult {
    let v = Arc::new(build(desc, base));
    let next = Arc::new(AtomicUsize::new(0));
    let blocked = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let v = Arc::clone(&v);
                let next = Arc::clone(&next);
                let blocked = Arc::clone(&blocked);
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let item = next.fetch_add(1, Ordering::Relaxed);
                        if item >= WORK_ITEMS {
                            return mine;
                        }
                        let q = item % queries.len();
                        let issued = Instant::now();
                        let handle = v
                            .submit(&queries[q], &run_opts(), &SubmitOptions::default())
                            .expect("submit");
                        let (mut tables, stats) = handle.wait().expect("query");
                        mine.push(issued.elapsed());
                        blocked.fetch_add(stats.mover.blocked_sends, Ordering::Relaxed);
                        let table = tables.remove(0);
                        assert!(
                            table.same_rows(&reference[q]),
                            "query {q} under {clients} client(s): {} rows vs {} serial",
                            table.len(),
                            reference[q].len()
                        );
                    }
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();
    let mut sorted = latencies;
    sorted.sort();
    RunResult {
        clients,
        wall,
        throughput_qps: WORK_ITEMS as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&sorted, 0.50),
        p99: percentile(&sorted, 0.99),
        blocked_sends: blocked.load(Ordering::Relaxed),
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn out_path() -> PathBuf {
    match std::env::var("DV_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            // crates/bench -> workspace root.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("BENCH_concurrency.json")
        }
    }
}

/// Hand-formatted JSON (the workspace carries no serde).
fn render_json(cfg: &IparsConfig, results: &[RunResult], speedup16: f64) -> String {
    let serial = results[0].throughput_qps;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"concurrency\",\n");
    s.push_str(&format!(
        "  \"dataset\": {{\"kind\": \"ipars\", \"rows\": {}, \"realizations\": {}, \
         \"time_steps\": {}, \"grid_per_dir\": {}, \"dirs\": {}, \"nodes\": {}, \"seed\": {}}},\n",
        cfg.rows(),
        cfg.realizations,
        cfg.time_steps,
        cfg.grid_per_dir,
        cfg.dirs,
        cfg.nodes,
        cfg.seed
    ));
    s.push_str(&format!("  \"quick_mode\": {},\n", dv_bench::quick_mode()));
    s.push_str(&format!(
        "  \"workload\": {{\"items\": {WORK_ITEMS}, \"bandwidth_bytes_per_sec\": {:.0}, \
         \"latency_ms\": 2, \"max_concurrent\": 16}},\n",
        link().bytes_per_sec
    ));
    s.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"clients\": {}, \"wall_ms\": {:.3}, \"throughput_qps\": {:.3}, \
             \"speedup_vs_serial\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"blocked_sends\": {}}}{}\n",
            r.clients,
            r.wall.as_secs_f64() * 1e3,
            r.throughput_qps,
            r.throughput_qps / serial,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.blocked_sends,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"bit_identical\": true,\n  \"speedup_16_clients\": {speedup16:.3}\n"));
    s.push_str("}\n");
    s
}
