//! Intra-node morsel parallelism — pool scaling and skew tolerance.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_morsel
//! ```
//!
//! One single-node dataset is scanned with pools of 1 / 2 / 4 / 8
//! worker threads, twice: once with uniform per-directory extents and
//! once with a steep skew (directory 0 holds ~6× the bytes of
//! directory 7 — the shape that serialized the old count-based chunk
//! striping behind its biggest directory). The filter carries a
//! calibrated per-row cost model: a UDF that sleeps [`STALL`] every
//! [`STALL_EVERY`]th evaluation, making the scan latency-bound the
//! same way the mover's [`BandwidthModel`] makes transfers
//! link-bound. Workers overlap those stalls, so pool scaling is
//! measurable and stable even on single-core CI hosts — a CPU-heavy
//! predicate on a multi-core machine behaves the same, this just
//! removes the dependence on how many cores the runner happens to
//! have. Every parallel result is asserted *bit-identical in row
//! order* to the serial scan (the (node, seq) reassembly guarantee).
//!
//! Wall times, speedups and steal-scheduler counters go to
//! `BENCH_MORSEL.json` at the repo root (override with
//! `DV_BENCH_OUT`).
//!
//! [`BandwidthModel`]: dv_core::BandwidthModel

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dv_bench::stage::data_root;
use dv_bench::{ms, print_table, scaled};
use dv_core::{QueryOptions, Table, Virtualizer};

/// Pool sizes measured against the 1-thread (serial) baseline.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Timed iterations per (dataset, threads) cell; best kept.
const ITERS: usize = 2;

/// The per-row cost model: one [`STALL`] sleep every `STALL_EVERY`
/// filter evaluations. Total modeled work is fixed per dataset, so the
/// serial run pays it all sequentially and an N-worker pool overlaps
/// it N ways — exactly when its byte balance is good.
const STALL_EVERY: u64 = 1024;
const STALL: Duration = Duration::from_millis(2);

/// Directories per dataset; directory `d` holds `8000 - 960*d` grid
/// points per time step when skewed (6.25× spread), 4640 when uniform
/// (same total rows either way).
const DIRS: usize = 8;

fn extent(d: usize, uniform: bool) -> usize {
    if uniform {
        4640
    } else {
        8000 - 960 * d
    }
}

struct Run {
    dataset: &'static str,
    threads: usize,
    wall: Duration,
    morsels: u64,
    stolen: u64,
    workers: u64,
    /// Busiest worker's bytes over the fair per-worker share.
    balance: f64,
}

fn main() {
    let times = scaled(32);
    let rows_per_step: usize = (0..DIRS).map(|d| extent(d, false)).sum();
    let rows = times * rows_per_step;
    println!("# Intra-node morsel parallelism — pool scaling, uniform vs skewed\n");
    println!(
        "dataset: {rows} rows on 1 node across {DIRS} dirs (skew 6.25x / uniform); \
         cost model: {} ms per {} rows; pools: {THREADS:?} threads, best of {ITERS}",
        STALL.as_millis(),
        STALL_EVERY,
    );

    let sql = "SELECT TIME, VAL FROM SkewData WHERE COST(VAL) >= 0.0";
    let mut runs: Vec<Run> = Vec::new();
    for (name, uniform) in [("uniform", true), ("skewed", false)] {
        let (base, desc) = stage_skew(name, uniform, times);
        dv_bench::warm_dir(&base);
        let v = build(&desc, &base);

        let mut oracle: Option<Table> = None;
        for &threads in &THREADS {
            let opts = QueryOptions { intra_node_threads: threads, ..QueryOptions::default() };
            let ((table, stats), wall) = dv_bench::time_best_of(ITERS, || {
                let (mut tables, stats) = v.query_with(sql, &opts).expect("query");
                (tables.remove(0), stats)
            });
            match &oracle {
                None => oracle = Some(table),
                Some(o) => assert_eq!(
                    table.rows, o.rows,
                    "{name} @ {threads} threads: parallel rows diverged from serial order"
                ),
            }
            let m = &stats.morsels;
            let fair = stats.bytes_read as f64 / m.workers.max(1) as f64;
            runs.push(Run {
                dataset: name,
                threads,
                wall,
                morsels: m.planned,
                stolen: m.stolen,
                workers: m.workers,
                balance: m.worker_bytes_max as f64 / fair.max(1.0),
            });
            let r = runs.last().unwrap();
            println!(
                "{name:>7} @ {threads} thread(s): {} ms ({} morsels, {} stolen, balance {:.2})",
                ms(wall),
                r.morsels,
                r.stolen,
                r.balance,
            );
        }
    }

    for name in ["uniform", "skewed"] {
        let of: Vec<&Run> = runs.iter().filter(|r| r.dataset == name).collect();
        let serial = of[0].wall;
        let rows: Vec<Vec<String>> = of
            .iter()
            .map(|r| {
                vec![
                    r.threads.to_string(),
                    ms(r.wall),
                    format!("{:.2}x", speedup(serial, r.wall)),
                    r.morsels.to_string(),
                    r.stolen.to_string(),
                    format!("{:.2}", r.balance),
                ]
            })
            .collect();
        print_table(
            &format!("Morsel pool scaling — {name} schedule"),
            &["threads", "wall ms", "vs serial", "morsels", "stolen", "max/fair bytes"],
            &rows,
        );
    }

    let speedup4 = {
        let of: Vec<&Run> = runs.iter().filter(|r| r.dataset == "skewed").collect();
        speedup(of[0].wall, of.iter().find(|r| r.threads == 4).unwrap().wall)
    };
    println!("\nskewed schedule, 4 threads vs serial: {speedup4:.2}x (all results bit-identical)");
    assert!(
        speedup4 >= 2.0,
        "acceptance: 4-thread pool must reach >= 2x serial on the skewed schedule, \
         got {speedup4:.2}x"
    );

    let out = out_path();
    std::fs::write(&out, render_json(rows, times, &runs, speedup4)).expect("write bench JSON");
    println!("wrote {}", out.display());
}

fn speedup(serial: Duration, wall: Duration) -> f64 {
    serial.as_secs_f64() / wall.as_secs_f64().max(1e-9)
}

/// One shared server per dataset: pool ceiling 8, plus the cost-model
/// UDF (pass-through value; the sleep is the point).
fn build(desc: &str, base: &Path) -> Virtualizer {
    let calls = Arc::new(AtomicU64::new(0));
    Virtualizer::builder(desc)
        .storage_base(base)
        .max_intra_node_threads(8)
        .udf("COST", Some(1), move |a| {
            if calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(STALL_EVERY) {
                std::thread::sleep(STALL);
            }
            a[0]
        })
        .build()
        .expect("compile dataset")
}

/// Stage the single-node skew/uniform dataset under the bench data
/// root, marker-cached like `stage_ipars`: two float variables per
/// directory, time-major, directory extents per [`extent`].
fn stage_skew(name: &'static str, uniform: bool, times: usize) -> (PathBuf, String) {
    let base = data_root().join(format!("morsel-{name}"));
    let marker_path = base.join("marker.json");
    let marker = format!(
        "{{\"kind\":\"morsel-skew\",\"uniform\":{uniform},\"dirs\":{DIRS},\"times\":{times}}}"
    );

    let mut desc = String::from(
        "[SKEW]\nTIME = int\nVAL = float\nAUX = float\n\n[SkewData]\nDatasetDescription = SKEW\n",
    );
    for d in 0..DIRS {
        desc.push_str(&format!("DIR[{d}] = node0/skew.d{d}\n"));
    }
    desc.push_str(
        "\nDATASET \"SkewData\" {\n  DATATYPE { SKEW }\n  DATAINDEX { TIME }\n  \
         DATA { DATASET var_val DATASET var_aux }\n",
    );
    let grid = if uniform { "4640".to_string() } else { "(8000-960*$DIRID)".to_string() };
    for (var, attr, file) in [("var_val", "VAL", "val.dat"), ("var_aux", "AUX", "aux.dat")] {
        desc.push_str(&format!(
            "  DATASET \"{var}\" {{\n    DATASPACE {{ LOOP TIME 1:{times}:1 {{ \
             LOOP GRID 1:{grid}:1 {{ {attr} }} }} }}\n    \
             DATA {{ DIR[$DIRID]/{file} DIRID = 0:{}:1 }}\n  }}\n",
            DIRS - 1,
        ));
    }
    desc.push_str("}\n");

    if std::fs::read_to_string(&marker_path).map(|m| m == marker).unwrap_or(false) {
        return (base, desc);
    }
    let _ = std::fs::remove_dir_all(&base);
    eprintln!("[stage] generating {name} morsel dataset under {} ...", base.display());
    for d in 0..DIRS {
        let dir = base.join("node0").join(format!("skew.d{d}"));
        std::fs::create_dir_all(&dir).expect("create staging dir");
        let rows = extent(d, uniform);
        for file in ["val.dat", "aux.dat"] {
            let mut w = std::io::BufWriter::new(std::fs::File::create(dir.join(file)).unwrap());
            for t in 0..times {
                for g in 0..rows {
                    let x = (d * 1_000_000 + t * 10_000 + g) as f32 * 1e-3;
                    w.write_all(&x.to_le_bytes()).unwrap();
                }
            }
            w.flush().unwrap();
        }
    }
    std::fs::write(&marker_path, marker).unwrap();
    std::fs::write(base.join("descriptor.txt"), &desc).unwrap();
    (base, desc)
}

fn out_path() -> PathBuf {
    match std::env::var("DV_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            // crates/bench -> workspace root.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("BENCH_MORSEL.json")
        }
    }
}

/// Hand-formatted JSON (the workspace carries no serde).
fn render_json(rows: usize, times: usize, runs: &[Run], speedup4: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"morsel\",\n");
    s.push_str(&format!("  \"quick_mode\": {},\n", dv_bench::quick_mode()));
    s.push_str(&format!(
        "  \"dataset\": {{\"kind\": \"skew\", \"rows\": {rows}, \"dirs\": {DIRS}, \
         \"time_steps\": {times}, \"nodes\": 1, \"skew_ratio\": 6.25}},\n"
    ));
    s.push_str(&format!(
        "  \"cost_model\": {{\"stall_every_rows\": {STALL_EVERY}, \"stall_ms\": {}}},\n",
        STALL.as_millis()
    ));
    s.push_str("  \"runs\": [\n");
    let serial = |name: &str| runs.iter().find(|r| r.dataset == name && r.threads == 1).unwrap();
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \
             \"speedup_vs_serial\": {:.3}, \"morsels\": {}, \"stolen\": {}, \"workers\": {}, \
             \"byte_balance_max_over_fair\": {:.3}}}{}\n",
            r.dataset,
            r.threads,
            r.wall.as_secs_f64() * 1e3,
            speedup(serial(r.dataset).wall, r.wall),
            r.morsels,
            r.stolen,
            r.workers,
            r.balance,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"bit_identical\": true,\n  \"speedup_skewed_4_threads\": {speedup4:.3}\n"
    ));
    s.push_str("}\n");
    s
}
