//! I/O scheduler ablation — coalesced reads, readahead, and the
//! cross-query segment cache.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_io
//! ```
//!
//! Runs the fig9 Ipars query set on the two fan-in extremes (L0's
//! 18-file groups and Layout I's single file) under four scheduler
//! configurations — off / coalesce only / + readahead / + segment
//! cache (warm) — asserting identical cardinalities throughout, then
//! sweeps the fig11(a) query widths cold-vs-warm to show the
//! cross-query cache. Counters (`QueryStats::io`) and times go to
//! `BENCH_io.json` at the repo root (override with `DV_BENCH_OUT`).

use std::path::PathBuf;
use std::time::Duration;

use dv_bench::queries::ipars_queries;
use dv_bench::stage::stage_ipars;
use dv_bench::{ms, print_table, ratio, scaled};
use dv_core::{IoOptions, IoSnapshot, QueryOptions, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};

fn cfg() -> IparsConfig {
    IparsConfig {
        realizations: 4,
        time_steps: 40,
        grid_per_dir: scaled(1250),
        dirs: 4,
        nodes: 4,
        seed: 909,
    }
}

fn fig11_cfg() -> IparsConfig {
    IparsConfig {
        realizations: 4,
        time_steps: 48,
        grid_per_dir: scaled(312),
        dirs: 16,
        nodes: 16,
        seed: 1111,
    }
}

/// The ablation stages, cumulative left to right.
fn stages() -> [(&'static str, IoOptions); 4] {
    [
        ("off", IoOptions::disabled()),
        ("coalesce", IoOptions { readahead: false, cache_bytes: 0, ..IoOptions::default() }),
        ("readahead", IoOptions { cache_bytes: 0, ..IoOptions::default() }),
        ("cache-warm", IoOptions::default()),
    ]
}

fn opts(io: IoOptions) -> QueryOptions {
    QueryOptions { sequential_nodes: true, io, ..Default::default() }
}

fn run_once(v: &Virtualizer, sql: &str, io: IoOptions) -> (usize, IoSnapshot, Duration) {
    let (tables, stats) = v.query_with(sql, &opts(io)).unwrap();
    (tables[0].len(), stats.io, stats.simulated_parallel_time())
}

/// Best-of-3 timed run; the snapshot comes from the fastest run.
fn run_timed(v: &Virtualizer, sql: &str, io: IoOptions) -> (usize, IoSnapshot, Duration) {
    let ((rows, snap), time) = dv_bench::min_over(3, || {
        let (rows, snap, time) = run_once(v, sql, io.clone());
        ((rows, snap), time)
    });
    (rows, snap, time)
}

struct StageResult {
    rows: usize,
    snap: IoSnapshot,
    time: Duration,
}

struct Measurement {
    layout: String,
    query_no: usize,
    what: &'static str,
    stages: Vec<StageResult>,
    /// First (cold) run of the cache stage on a fresh server.
    cold: IoSnapshot,
}

fn main() {
    let cfg = cfg();
    println!("# I/O scheduler — coalesce / readahead / segment-cache ablation\n");
    println!(
        "dataset: {} rows (~{} MiB per layout), 4 nodes; times are simulated cluster wall \
         times (max over per-node pipelines)",
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / (1024 * 1024)
    );

    let queries = ipars_queries("IparsData", cfg.time_steps);
    let mut results: Vec<Measurement> = Vec::new();

    for layout in [IparsLayout::L0, IparsLayout::I] {
        // Same staging keys as repro_fig9 / repro_columnar — shared datasets.
        let (base, desc) = stage_ipars(&format!("fig9-{}", layout.tag()), &cfg, layout);
        dv_bench::warm_dir(&base);
        for q in &queries {
            let mut m = Measurement {
                layout: layout.label().to_string(),
                query_no: q.no,
                what: q.what,
                stages: Vec::new(),
                cold: IoSnapshot::default(),
            };
            for (name, io) in stages() {
                // Fresh server per stage so the segment cache never
                // leaks across stages (or queries).
                let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
                if name == "cache-warm" {
                    let (_, cold, _) = run_once(&v, &q.sql, io.clone());
                    m.cold = cold;
                }
                let (rows, snap, time) = run_timed(&v, &q.sql, io);
                if let Some(first) = m.stages.first() {
                    assert_eq!(
                        first.rows, rows,
                        "{} q{} stage {name}: cardinality diverges from scheduler-off",
                        m.layout, q.no
                    );
                }
                m.stages.push(StageResult { rows, snap, time });
            }
            results.push(m);
        }
    }

    let table_rows: Vec<Vec<String>> = results
        .iter()
        .map(|m| {
            let off = &m.stages[0];
            let warm = &m.stages[3];
            vec![
                m.layout.clone(),
                format!("{} ({})", m.query_no, m.what),
                off.rows.to_string(),
                off.snap.read_syscalls.to_string(),
                m.stages[1].snap.read_syscalls.to_string(),
                format!("{:.1}x", m.stages[1].snap.coalesce_ratio()),
                ms(off.time),
                ms(m.stages[1].time),
                ms(m.stages[2].time),
                ms(warm.time),
                ratio(off.time, warm.time),
            ]
        })
        .collect();
    print_table(
        "I/O scheduler ablation — syscalls and per-query times (ms)",
        &[
            "layout",
            "query",
            "rows",
            "sys(off)",
            "sys(coal)",
            "coalesce",
            "off",
            "coal",
            "+readahead",
            "+cache warm",
            "speedup",
        ],
        &table_rows,
    );

    // Headline numbers for the acceptance bar. The syscall-reduction
    // figure is the scan-heavy case (fig9 q1 on L0) — narrow
    // time-window queries have nothing adjacent to merge and stay ~1x.
    let l0_syscall_reduction = results
        .iter()
        .find(|m| m.layout.contains("L0") && m.query_no == 1)
        .map(|m| {
            m.stages[0].snap.read_syscalls as f64 / (m.stages[1].snap.read_syscalls.max(1)) as f64
        })
        .unwrap_or(0.0);
    let geomean = geomean_speedup(&results);
    let warm_reduction = results
        .iter()
        .map(|m| 1.0 - m.stages[3].snap.bytes_issued as f64 / (m.cold.bytes_issued.max(1)) as f64)
        .fold(f64::INFINITY, f64::min);
    println!("\nL0 full-scan syscall reduction (off -> coalesce): {l0_syscall_reduction:.1}x");
    println!("geomean speedup (off -> cache-warm, all cells): {geomean:.2}x");
    println!("worst-case warm-cache byte reduction vs cold: {:.1}%", warm_reduction * 100.0);

    let sweep = fig11_sweep();

    let out = out_path();
    std::fs::write(&out, render_json(&cfg, &results, &sweep, l0_syscall_reduction, geomean))
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}

struct SweepPoint {
    width: usize,
    rows: usize,
    off_time: Duration,
    cold: IoSnapshot,
    warm: IoSnapshot,
    warm_time: Duration,
}

/// Fig 11(a) widths, cold vs warm on one server: the second run of
/// each query should come almost entirely out of the segment cache.
fn fig11_sweep() -> Vec<SweepPoint> {
    let cfg = fig11_cfg();
    let t_max = cfg.time_steps;
    let (base, desc) = stage_ipars("fig11a", &cfg, IparsLayout::L0);
    dv_bench::warm_dir(&base);
    let mut out = Vec::new();
    let mut rows_table = Vec::new();
    for frac in [8usize, 4, 2, 1] {
        let width = t_max / frac;
        let sql = format!("SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= {width}");
        let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
        let (off_rows, _, off_time) = run_timed(&v, &sql, IoOptions::disabled());
        let (_, cold, _) = run_once(&v, &sql, IoOptions::default());
        let (warm_rows, warm, warm_time) = run_timed(&v, &sql, IoOptions::default());
        assert_eq!(off_rows, warm_rows, "width {width}: cached run changed cardinality");
        rows_table.push(vec![
            format!("{}%", 100 / frac),
            warm_rows.to_string(),
            ms(off_time),
            ms(warm_time),
            (cold.bytes_issued / 1024).to_string(),
            (warm.bytes_issued / 1024).to_string(),
            format!("{:.0}%", warm.cache_hit_rate() * 100.0),
        ]);
        out.push(SweepPoint { width, rows: warm_rows, off_time, cold, warm, warm_time });
    }
    print_table(
        "Fig 11(a) widths — cross-query cache, cold vs warm (16-node L0)",
        &["query size", "rows", "off", "warm", "cold KiB read", "warm KiB read", "hit rate"],
        &rows_table,
    );
    out
}

fn geomean_speedup(results: &[Measurement]) -> f64 {
    let log_sum: f64 = results
        .iter()
        .map(|m| (m.stages[0].time.as_secs_f64() / m.stages[3].time.as_secs_f64().max(1e-9)).ln())
        .sum();
    (log_sum / results.len() as f64).exp()
}

fn out_path() -> PathBuf {
    match std::env::var("DV_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            // crates/bench -> workspace root.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("BENCH_io.json")
        }
    }
}

fn snap_json(prefix: &str, s: &IoSnapshot) -> String {
    format!(
        "\"{prefix}_syscalls\": {}, \"{prefix}_bytes_issued\": {}, \"{prefix}_bytes_used\": {}",
        s.read_syscalls, s.bytes_issued, s.bytes_used
    )
}

/// Hand-formatted JSON (the workspace carries no serde).
fn render_json(
    cfg: &IparsConfig,
    results: &[Measurement],
    sweep: &[SweepPoint],
    l0_syscall_reduction: f64,
    geomean: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"io-scheduler\",\n");
    s.push_str(&format!(
        "  \"dataset\": {{\"kind\": \"ipars\", \"rows\": {}, \"realizations\": {}, \
         \"time_steps\": {}, \"grid_per_dir\": {}, \"dirs\": {}, \"nodes\": {}, \"seed\": {}}},\n",
        cfg.rows(),
        cfg.realizations,
        cfg.time_steps,
        cfg.grid_per_dir,
        cfg.dirs,
        cfg.nodes,
        cfg.seed
    ));
    s.push_str(&format!("  \"quick_mode\": {},\n", dv_bench::quick_mode()));
    s.push_str("  \"stages\": [\"off\", \"coalesce\", \"readahead\", \"cache-warm\"],\n");
    s.push_str("  \"runs\": [\n");
    for (i, m) in results.iter().enumerate() {
        let warm = &m.stages[3];
        s.push_str(&format!(
            "    {{\"layout\": \"{}\", \"query\": {}, \"what\": \"{}\", \"rows\": {}, \
             \"off_ms\": {:.3}, \"coalesce_ms\": {:.3}, \"readahead_ms\": {:.3}, \
             \"warm_ms\": {:.3}, {}, {}, {}, \"coalesce_ratio\": {:.2}, \
             \"cold_bytes_issued\": {}, \"warm_cache_hit_rate\": {:.3}, \"speedup\": {:.3}}}{}\n",
            m.layout,
            m.query_no,
            m.what,
            m.stages[0].rows,
            m.stages[0].time.as_secs_f64() * 1e3,
            m.stages[1].time.as_secs_f64() * 1e3,
            m.stages[2].time.as_secs_f64() * 1e3,
            warm.time.as_secs_f64() * 1e3,
            snap_json("off", &m.stages[0].snap),
            snap_json("coalesce", &m.stages[1].snap),
            snap_json("warm", &warm.snap),
            m.stages[1].snap.coalesce_ratio(),
            m.cold.bytes_issued,
            warm.snap.cache_hit_rate(),
            m.stages[0].time.as_secs_f64() / warm.time.as_secs_f64().max(1e-9),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"fig11_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"time_width\": {}, \"rows\": {}, \"off_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"cold_bytes_issued\": {}, \"warm_bytes_issued\": {}, \
             \"warm_cache_hit_rate\": {:.3}}}{}\n",
            p.width,
            p.rows,
            p.off_time.as_secs_f64() * 1e3,
            p.warm_time.as_secs_f64() * 1e3,
            p.cold.bytes_issued,
            p.warm.bytes_issued,
            p.warm.cache_hit_rate(),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"l0_syscall_reduction\": {l0_syscall_reduction:.2},\n  \"geomean_speedup\": \
         {geomean:.3}\n"
    ));
    s.push_str("}\n");
    s
}
