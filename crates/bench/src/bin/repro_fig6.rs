//! Figure 6 — PostgreSQL (minidb stand-in) vs the virtualization tool
//! on the Titan dataset and the five Figure 7 queries.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_fig6
//! ```
//!
//! Paper shape to reproduce: the DBMS needs a load step that ~3×-es
//! the raw data; the virtualization tool wins every query except the
//! highly selective indexed one (paper's query 4, `S1 < 0.01`), where
//! the DBMS's B+tree makes it faster.

use dv_bench::queries::titan_queries;
use dv_bench::stage::stage_titan;
use dv_bench::{ms, print_table, ratio, scaled, time_best_of, time_cold};
use dv_core::Virtualizer;
use dv_datagen::TitanConfig;
use dv_minidb::{MiniDb, ScanKind};
use dv_sql::UdfRegistry;
use dv_types::Schema;

fn main() {
    let cfg = TitanConfig { points: scaled(1_500_000), tiles: (16, 16, 8), nodes: 1, seed: 60414 };
    let raw_mb = cfg.points as u64 * TitanConfig::record_bytes() / (1024 * 1024);
    println!("# Figure 6 — DBMS baseline vs automatic virtualization (Titan)\n");
    println!(
        "dataset: {} measurements, {} MiB raw flat-file, {} chunks, 1 node",
        cfg.points,
        raw_mb,
        cfg.tiles.0 * cfg.tiles.1 * cfg.tiles.2
    );

    // --- virtualization side: compile the descriptor, nothing moves ---
    let (base, descriptor) = stage_titan("fig6-titan", &cfg);
    let (v, compile_time) = time_best_of(1, || {
        Virtualizer::builder(&descriptor).storage_base(&base).build().expect("compile")
    });
    println!(
        "\nvirtualization setup: descriptor compiled in {} ms (data untouched)",
        ms(compile_time)
    );

    // --- DBMS side: load + index ---
    let dbdir = base.join("minidb");
    let mut db = MiniDb::open(&dbdir, UdfRegistry::with_builtins()).expect("open db");
    let schema = Schema::new("TITAN", v.schema().attributes().to_vec()).unwrap();
    let need_load = db.query("SELECT * FROM TITAN WHERE X < -1").is_err();
    if need_load {
        let (load, load_time) = time_best_of(1, || db.load_table(&schema, cfg.all_rows()).unwrap());
        let (_, idx_time) = time_best_of(1, || {
            db.create_index("TITAN", "X").unwrap();
            db.create_index("TITAN", "Y").unwrap();
            db.create_index("TITAN", "S1").unwrap();
        });
        println!(
            "DBMS setup: COPY {} rows in {} ms + index build {} ms",
            load.rows,
            ms(load_time),
            ms(idx_time)
        );
    } else {
        println!("DBMS setup: reusing loaded table");
    }
    let tstats = db.table_stats("TITAN").unwrap();
    println!(
        "DBMS storage: heap {} MiB + indexes {} MiB = {} MiB ({:.1}x raw — paper: 6 GB → 18 GB = 3.0x)",
        tstats.heap_bytes / (1024 * 1024),
        tstats.index_bytes / (1024 * 1024),
        tstats.total_bytes() / (1024 * 1024),
        tstats.total_bytes() as f64 / (cfg.points as f64 * 32.0)
    );

    // --- the five queries ---
    // Two views: measured times on this host (fast virtualized disk,
    // lean DBMS baseline), and the times projected onto the paper's
    // 2003 hardware regime — measured CPU time plus bytes-read at the
    // ~40 MB/s of a period IDE disk. The projection is where the
    // paper's 3x storage-inflation penalty shows.
    const DISK_2003: f64 = 40.0e6; // bytes/sec
    let mut rows = Vec::new();
    for q in titan_queries("TITAN") {
        let dv_sqltext = q.sql.replace("TITAN", "TitanData");
        let ((db_table, db_stats), db_time) = time_cold(|| db.query(&q.sql).unwrap());
        let ((dv_table, dv_stats), dv_time) = time_cold(|| v.query(&dv_sqltext).unwrap());
        assert_eq!(db_table.len(), dv_table.len(), "q{} row count mismatch", q.no);
        let scan = match db_stats.scan {
            ScanKind::Seq => "seq".to_string(),
            ScanKind::Index { attr } => format!("index({attr})"),
        };
        let db_proj =
            db_time + std::time::Duration::from_secs_f64(db_stats.bytes_read as f64 / DISK_2003);
        let dv_proj =
            dv_time + std::time::Duration::from_secs_f64(dv_stats.bytes_read as f64 / DISK_2003);
        rows.push(vec![
            q.no.to_string(),
            q.what.to_string(),
            dv_table.len().to_string(),
            scan,
            ms(db_time),
            ms(dv_time),
            format!("{}", db_stats.bytes_read / (1024 * 1024)),
            format!("{}", dv_stats.bytes_read / (1024 * 1024)),
            ms(db_proj),
            ms(dv_proj),
            ratio(db_proj, dv_proj),
        ]);
    }
    print_table(
        "Figure 6 — query execution time",
        &[
            "#",
            "query",
            "rows",
            "DBMS plan",
            "DBMS ms",
            "datavirt ms",
            "DBMS MiB",
            "dv MiB",
            "DBMS ms (2003 disk)",
            "dv ms (2003 disk)",
            "DBMS/dv (2003)",
        ],
        &rows,
    );
    println!(
        "\nexpected shape (paper): datavirt faster on 1, 2, 3, 5; DBMS faster on 4 \
         (selective index). The 2003-disk projection reproduces the regime the paper \
         measured in; see EXPERIMENTS.md."
    );
}
