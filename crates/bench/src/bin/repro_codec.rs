//! Codec layer benchmark — per-codec decode cost and the decompressed
//! segment cache's warm-read payoff.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_codec
//! ```
//!
//! Two measurements over the same logical Ipars dataset (Layout I)
//! stored three ways:
//!
//! 1. **Decode overhead per codec** — cold full-scan latency on a
//!    fresh server for fixed binary (affine, unchecked decode under a
//!    Safe certificate), CSV (parse + checked decode), and zstd
//!    (decompress + checked decode), plus each encoding's physical
//!    footprint. All three must return identical rows — the codecs are
//!    purely a storage choice.
//! 2. **Warm-read speedup vs re-decode** — on the zstd encoding, a
//!    warm query served from the segment cache's *decompressed* bytes
//!    (the run must record zero `decode_calls`) versus the same query
//!    with the cache disabled, which re-decompresses every time.
//!
//! Results go to `BENCH_CODEC.json` at the repo root (override with
//! `DV_BENCH_OUT`).

use std::path::PathBuf;

use dv_bench::stage::stage_ipars_codec;
use dv_bench::{min_over, ms, print_table, ratio, scaled, warm_dir};
use dv_core::{IoOptions, QueryOptions, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};
use dv_descriptor::CodecKind;
use dv_types::Table;

fn cfg() -> IparsConfig {
    IparsConfig {
        realizations: 4,
        time_steps: 50,
        grid_per_dir: scaled(400),
        dirs: 2,
        nodes: 2,
        seed: 8080,
    }
}

const SQL: &str = "SELECT REL, TIME, SOIL, PGAS FROM IparsData";

/// Total data bytes staged under `base` (the staging marker and
/// descriptor copy excluded).
fn physical_bytes(base: &std::path::Path) -> u64 {
    fn walk(d: &std::path::Path, sum: &mut u64) {
        let Ok(entries) = std::fs::read_dir(d) else { return };
        for e in entries.flatten() {
            let path = e.path();
            if path.is_dir() {
                walk(&path, sum);
            } else if path.file_name().is_some_and(|n| n != "marker.json" && n != "descriptor.txt")
            {
                *sum += path.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    let mut sum = 0;
    walk(base, &mut sum);
    sum
}

struct CodecRun {
    name: &'static str,
    cold: std::time::Duration,
    physical_bytes: u64,
    table: Table,
}

fn main() {
    let cfg = cfg();
    println!("# codec layer — decode overhead and decompressed-cache warm reads\n");

    // 1. Cold full-scan per codec: a fresh server each run, so the
    // non-affine codecs pay their whole-file decode (the page cache is
    // warm in every run — the delta is decode work, not disk).
    let kinds = [
        ("binary", CodecKind::FixedBinary),
        ("csv", CodecKind::DelimitedText),
        ("zstd", CodecKind::ZstdSegment),
    ];
    let mut runs = Vec::new();
    for (name, kind) in kinds {
        let (base, desc) = stage_ipars_codec(&format!("codec-{name}"), &cfg, IparsLayout::I, kind);
        warm_dir(&base);
        let (table, cold) = min_over(3, || {
            let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
            let start = std::time::Instant::now();
            let (t, _) = v.query(SQL).unwrap();
            (t, start.elapsed())
        });
        runs.push(CodecRun { name, cold, physical_bytes: physical_bytes(&base), table });
    }
    for r in &runs[1..] {
        assert_eq!(r.table.rows, runs[0].table.rows, "{}: codec changed the query result", r.name);
    }
    let bin = &runs[0];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                ms(r.cold),
                ratio(r.cold, bin.cold),
                format!("{:.1}", r.physical_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", r.physical_bytes as f64 / bin.physical_bytes as f64),
            ]
        })
        .collect();
    print_table(
        "Cold full scan per codec (fresh server; min of 3)",
        &["codec", "cold scan (ms)", "vs binary", "size (MiB)", "size vs binary"],
        &rows,
    );

    // 2. Warm cached reads vs forced re-decode on the zstd encoding.
    let (base, desc) =
        stage_ipars_codec("codec-zstd", &cfg, IparsLayout::I, CodecKind::ZstdSegment);
    let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
    v.query(SQL).unwrap(); // fill the segment cache with decompressed bytes
    let (warm_stats, warm) = min_over(5, || {
        let start = std::time::Instant::now();
        let (_, stats) = v.query(SQL).unwrap();
        (stats, start.elapsed())
    });
    assert_eq!(
        warm_stats.io.decode_calls, 0,
        "acceptance: warm reads must be served from decompressed cached segments"
    );
    assert!(warm_stats.io.cache_hit_rate() > 0.9, "hit rate {}", warm_stats.io.cache_hit_rate());
    let nocache = QueryOptions {
        io: IoOptions { cache_bytes: 0, ..IoOptions::default() },
        ..QueryOptions::default()
    };
    let (redecode_stats, redecode) = min_over(5, || {
        let start = std::time::Instant::now();
        let (_, stats) = v.query_with(SQL, &nocache).unwrap();
        (stats, start.elapsed())
    });
    assert!(redecode_stats.io.decode_calls > 0, "cache-off runs must re-decompress every frame");
    print_table(
        "zstd warm reads: decompressed segment cache vs re-decode (min of 5)",
        &["path", "scan (ms)", "decode calls", "decoded MiB"],
        &[
            vec![
                "cached (decompressed)".into(),
                ms(warm),
                warm_stats.io.decode_calls.to_string(),
                format!("{:.1}", warm_stats.io.decode_bytes as f64 / (1024.0 * 1024.0)),
            ],
            vec![
                "cache off (re-decode)".into(),
                ms(redecode),
                redecode_stats.io.decode_calls.to_string(),
                format!("{:.1}", redecode_stats.io.decode_bytes as f64 / (1024.0 * 1024.0)),
            ],
        ],
    );
    println!("\nwarm-read speedup vs re-decode: {}\n", ratio(redecode, warm));

    let out = out_path();
    std::fs::write(&out, render_json(&cfg, &runs, warm, redecode, &warm_stats, &redecode_stats))
        .expect("write bench JSON");
    println!("wrote {}", out.display());
}

fn out_path() -> PathBuf {
    match std::env::var("DV_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("BENCH_CODEC.json")
        }
    }
}

/// Hand-formatted JSON (the workspace carries no serde).
fn render_json(
    cfg: &IparsConfig,
    runs: &[CodecRun],
    warm: std::time::Duration,
    redecode: std::time::Duration,
    warm_stats: &dv_core::QueryStats,
    redecode_stats: &dv_core::QueryStats,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"codec-layer\",\n");
    s.push_str(&format!(
        "  \"dataset\": {{\"kind\": \"ipars\", \"layout\": \"l1\", \"rows\": {}, \"nodes\": {}, \
         \"seed\": {}}},\n",
        cfg.rows(),
        cfg.nodes,
        cfg.seed
    ));
    s.push_str(&format!("  \"quick_mode\": {},\n", dv_bench::quick_mode()));
    s.push_str("  \"cold_scan\": [\n");
    let bin = &runs[0];
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"codec\": \"{}\", \"cold_ms\": {:.2}, \"vs_binary\": {:.3}, \
             \"physical_bytes\": {}}}{}\n",
            r.name,
            r.cold.as_secs_f64() * 1e3,
            r.cold.as_secs_f64() / bin.cold.as_secs_f64(),
            r.physical_bytes,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"zstd_warm_cache\": {{\"warm_ms\": {:.2}, \"redecode_ms\": {:.2}, \
         \"speedup\": {:.3}, \"warm_decode_calls\": {}, \"redecode_decode_calls\": {}}}\n",
        warm.as_secs_f64() * 1e3,
        redecode.as_secs_f64() * 1e3,
        redecode.as_secs_f64() / warm.as_secs_f64().max(1e-9),
        warm_stats.io.decode_calls,
        redecode_stats.io.decode_calls,
    ));
    s.push_str("}\n");
    s
}
