//! Figure 11 — execution time vs query size: (a) Ipars on a 16-node
//! cluster, (b) Titan on one node; hand-written vs generated.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_fig11
//! ```
//!
//! Paper shape to reproduce: time grows proportionally to the amount
//! of data retrieved; generated within ~17% (Ipars, avg 14%) and ~4%
//! (Titan) of hand-written at every query size.

use dv_bench::stage::{stage_ipars, stage_titan};
use dv_bench::{ms, print_table, ratio, scaled};
use dv_core::{QueryOptions, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout, TitanConfig};
use dv_handwritten::{HandIparsL0, HandTitan};
use dv_sql::{bind, parse, UdfRegistry};

fn main() {
    ipars_sweep();
    titan_sweep();
}

fn ipars_sweep() {
    println!("# Figure 11(a) — Ipars, time vs query size (16 nodes)\n");
    let t_max = 48;
    let cfg = IparsConfig {
        realizations: 4,
        time_steps: t_max,
        grid_per_dir: scaled(312),
        dirs: 16,
        nodes: 16,
        seed: 1111,
    };
    let (base, desc) = stage_ipars("fig11a", &cfg, IparsLayout::L0);
    dv_bench::warm_dir(&base);
    let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
    let hand = HandIparsL0::new(base.clone(), cfg.clone(), UdfRegistry::with_builtins());
    let opts = QueryOptions { sequential_nodes: true, ..Default::default() };

    let mut rows = Vec::new();
    for frac in [8usize, 4, 2, 1] {
        let width = t_max / frac;
        let sql = format!("SELECT * FROM IparsData WHERE TIME >= 1 AND TIME <= {width}");
        let (gen_out, gen_time) = dv_bench::min_over(3, || {
            let (tables, stats) = v.query_with(&sql, &opts).unwrap();
            ((tables[0].len(), stats.bytes_read), stats.simulated_parallel_time())
        });
        let bq = bind(&parse(&sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let (hand_rows, hand_time) = dv_bench::min_over(3, || {
            let (table, _b, busy) = hand.execute_sequential(&bq).unwrap();
            (table.len(), busy.iter().copied().max().unwrap_or_default())
        });
        assert_eq!(hand_rows, gen_out.0);
        rows.push(vec![
            format!("{}%", 100 / frac),
            gen_out.0.to_string(),
            format!("{}", gen_out.1 / (1024 * 1024)),
            ms(hand_time),
            ms(gen_time),
            ratio(gen_time, hand_time),
        ]);
    }
    print_table(
        "Figure 11(a) — Ipars query-size sweep",
        &["query size", "rows", "MiB read", "hand ms", "generated ms", "gen/hand"],
        &rows,
    );
}

fn titan_sweep() {
    println!("\n# Figure 11(b) — Titan, time vs query size (1 node)\n");
    let cfg = TitanConfig { points: scaled(1_500_000), tiles: (16, 16, 8), nodes: 1, seed: 60414 };
    let (base, desc) = stage_titan("fig6-titan", &cfg); // reuse the Figure 6 dataset
    dv_bench::warm_dir(&base);
    let v = Virtualizer::builder(&desc).storage_base(&base).build().unwrap();
    let hand = HandTitan::new(base.clone(), &cfg, UdfRegistry::with_builtins()).unwrap();

    let mut rows = Vec::new();
    for side in [7_500i64, 15_000, 30_000, 60_000] {
        let sql = format!(
            "SELECT * FROM TitanData WHERE X >= 0 AND X <= {side} AND Y >= 0 AND \
             Y <= {side} AND Z >= 0 AND Z <= 600"
        );
        let (gen_out, gen_time) = dv_bench::min_over(3, || {
            let (table, stats) = v.query(&sql).unwrap();
            ((table.len(), stats.bytes_read), stats.total_time())
        });
        let bq = bind(&parse(&sql).unwrap(), v.schema(), &UdfRegistry::with_builtins()).unwrap();
        let (hand_rows, hand_time) = dv_bench::min_over(3, || {
            let (table, _b, busy) = hand.execute_sequential(&bq).unwrap();
            (table.len(), busy.iter().copied().max().unwrap_or_default())
        });
        assert_eq!(hand_rows, gen_out.0);
        rows.push(vec![
            format!("{side}²",),
            gen_out.0.to_string(),
            format!("{}", gen_out.1 / (1024 * 1024)),
            ms(hand_time),
            ms(gen_time),
            ratio(gen_time, hand_time),
        ]);
    }
    print_table(
        "Figure 11(b) — Titan query-size sweep",
        &["box", "rows", "MiB read", "hand ms", "generated ms", "gen/hand"],
        &rows,
    );
    println!(
        "\nexpected shape (paper): time proportional to data retrieved; generated within \
         ~17% (Ipars) / ~4% (Titan) of hand-written."
    );
}
