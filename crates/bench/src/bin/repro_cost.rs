//! dv-cost micro-benchmark — static bound analysis latency, admission
//! overhead, and bound tightness.
//!
//! ```text
//! cargo run --release -p dv-bench --bin repro_cost
//! ```
//!
//! Three measurements:
//!
//! 1. **Analysis latency** — the bound derivation
//!    (`CostReport::analyze`) on every shipped example descriptor
//!    under its canonical query. The acceptance bar is <= 2 ms per
//!    descriptor (best of 20): the analysis must stay cheap enough to
//!    run on every admission. Planning time is reported alongside but
//!    not counted against the bar — the admission path executes from
//!    the same plans, so planning is not added latency.
//! 2. **Admission overhead** — wall time for the service to *reject* a
//!    statically over-budget query, versus the planning time of the
//!    same query accepted; rejection must not cost more than planning
//!    (it is planning, plus a comparison).
//! 3. **Bound tightness** — per-stage ratio `static bound / runtime
//!    counter` over the bench query set on a staged dataset. A ratio
//!    of 1.0 is exact; large ratios show where the analysis is loose
//!    (by design, e.g. coalesce-gap slack on issued bytes).
//!
//! Results go to `BENCH_COST.json` at the repo root (override with
//! `DV_BENCH_OUT`).

use std::path::PathBuf;
use std::time::Instant;

use dv_bench::stage::stage_ipars;
use dv_bench::{print_table, scaled};
use dv_core::{CostReport, Virtualizer};
use dv_datagen::{IparsConfig, IparsLayout};
use dv_sql::UdfRegistry;

fn cfg() -> IparsConfig {
    IparsConfig {
        realizations: 4,
        time_steps: 50,
        grid_per_dir: scaled(500),
        dirs: 4,
        nodes: 4,
        seed: 4040,
    }
}

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .join("examples/descriptors")
}

/// Canonical query per shipped descriptor (mirrors the lint golden
/// suite).
fn canonical_query(name: &str) -> &'static str {
    match name {
        "titan.desc" => "SELECT S1 FROM TitanData WHERE X > 100",
        "ipars_pinned.desc" => "SELECT SOIL FROM SnapData WHERE TIME = 5",
        "ipars_dense.desc" => "SELECT BUCKET, AVG(SOIL) FROM DenseData GROUP BY BUCKET",
        _ => "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20",
    }
}

struct Latency {
    name: String,
    /// Bound derivation alone (`CostReport::analyze`) — the latency
    /// admission adds on top of planning.
    analyze_us: f64,
    /// End-to-end parse + bind + plan + analyze, for context.
    total_us: f64,
    boundable: bool,
}

fn analysis_latencies() -> Vec<Latency> {
    let udfs = UdfRegistry::with_builtins();
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(examples_dir()).unwrap().flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "desc") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let model = dv_descriptor::compile(&text).unwrap();
        let sql = canonical_query(&name);
        let start = Instant::now();
        let planned = dv_lint::cost::cost_plan(&model, sql, &udfs).unwrap();
        let total_us = start.elapsed().as_secs_f64() * 1e6;
        let mut analyze_us = 0.0;
        let boundable = planned.is_some();
        if let Some((plan, params)) = planned {
            let mut best = f64::INFINITY;
            for _ in 0..20 {
                let start = Instant::now();
                std::hint::black_box(CostReport::analyze(&plan, &params));
                best = best.min(start.elapsed().as_secs_f64() * 1e6);
            }
            analyze_us = best;
        }
        out.push(Latency { name, analyze_us, total_us: total_us + analyze_us, boundable });
    }
    out
}

struct Tightness {
    name: &'static str,
    bytes_read: f64,
    bytes_issued: Option<f64>,
    mover_bytes: f64,
    mover_sends: f64,
    agg_groups: Option<f64>,
}

fn ratio(bound: u64, actual: u64) -> f64 {
    bound as f64 / actual.max(1) as f64
}

fn tightness(v: &Virtualizer) -> Vec<Tightness> {
    let cases: &[(&str, &str)] = &[
        ("full-scan", "SELECT REL, TIME, SOIL FROM IparsData"),
        ("time-window", "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20"),
        ("stored-filter", "SELECT SOIL FROM IparsData WHERE SOIL > 0.5"),
        ("group-by-key", "SELECT REL, COUNT(SOIL), AVG(SOIL) FROM IparsData GROUP BY REL"),
    ];
    cases
        .iter()
        .map(|&(name, sql)| {
            let report = v.cost_report(sql).unwrap();
            let (_, stats) = v.query(sql).unwrap();
            Tightness {
                name,
                bytes_read: ratio(report.bytes_read.hi, stats.bytes_read),
                bytes_issued: (stats.io.bytes_issued > 0)
                    .then(|| ratio(report.bytes_issued.hi, stats.io.bytes_issued)),
                mover_bytes: ratio(report.mover_bytes.hi, stats.bytes_moved),
                mover_sends: ratio(report.mover_sends.hi, stats.mover.sends),
                agg_groups: (report.agg_groups.hi > 0)
                    .then(|| ratio(report.agg_groups.hi, stats.mover.agg_groups_out)),
            }
        })
        .collect()
}

fn main() {
    let cfg = cfg();
    println!("# dv-cost — analysis latency, admission overhead, bound tightness\n");

    // 1. Per-descriptor analysis latency.
    let latencies = analysis_latencies();
    let rows: Vec<Vec<String>> = latencies
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                format!("{:.1}", l.analyze_us),
                format!("{:.1}", l.total_us),
                if l.boundable { "yes" } else { "no (chunked)" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Static cost analysis latency per shipped descriptor (best of 20)",
        &["descriptor", "analyze (us)", "plan+analyze (us)", "boundable"],
        &rows,
    );
    for l in &latencies {
        assert!(
            l.analyze_us <= 2000.0,
            "acceptance: {} cost analysis took {:.0} us (> 2 ms)",
            l.name,
            l.analyze_us
        );
    }

    // 2. Admission overhead: rejection vs accepted planning. The
    // accepted side runs under a roomy budget so both take the same
    // central-planning + analysis path — the delta is the comparison
    // itself.
    let (base, desc) = stage_ipars("cost-l0", &cfg, IparsLayout::L0);
    dv_bench::warm_dir(&base);
    let v =
        Virtualizer::builder(&desc).storage_base(&base).max_plan_bytes(u64::MAX).build().unwrap();
    let sql = "SELECT SOIL FROM IparsData WHERE TIME >= 10 AND TIME <= 20";
    let mut plan_us = f64::INFINITY;
    for _ in 0..10 {
        let (_, stats) = v.query(sql).unwrap();
        plan_us = plan_us.min(stats.plan_time.as_secs_f64() * 1e6);
    }
    let tight = Virtualizer::builder(&desc).storage_base(&base).max_plan_bytes(1).build().unwrap();
    let mut reject_us = f64::INFINITY;
    for _ in 0..10 {
        let start = Instant::now();
        let err = tight.query(sql).unwrap_err();
        reject_us = reject_us.min(start.elapsed().as_secs_f64() * 1e6);
        assert!(err.is_cost_rejected(), "{err}");
    }
    println!(
        "\nadmission: accepted plan {plan_us:.0} us; over-budget rejection {reject_us:.0} us\n"
    );

    // 3. Bound tightness per stage.
    let measures = tightness(&v);
    let rows: Vec<Vec<String>> = measures
        .iter()
        .map(|t| {
            vec![
                t.name.to_string(),
                format!("{:.2}", t.bytes_read),
                t.bytes_issued.map(|r| format!("{r:.2}")).unwrap_or_else(|| "-".into()),
                format!("{:.2}", t.mover_bytes),
                format!("{:.2}", t.mover_sends),
                t.agg_groups.map(|r| format!("{r:.2}")).unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        "Bound tightness (static bound / runtime counter; 1.00 = exact)",
        &["query", "bytes read", "bytes issued", "mover bytes", "sends", "agg groups"],
        &rows,
    );
    for t in &measures {
        assert!(t.bytes_read >= 1.0 - 1e-9, "{}: bytes_read bound below actual", t.name);
        assert!(t.mover_bytes >= 1.0 - 1e-9, "{}: mover_bytes bound below actual", t.name);
    }

    let out = out_path();
    std::fs::write(&out, render_json(&cfg, &latencies, plan_us, reject_us, &measures))
        .expect("write bench JSON");
    println!("\nwrote {}", out.display());
}

fn out_path() -> PathBuf {
    match std::env::var("DV_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("BENCH_COST.json")
        }
    }
}

/// Hand-formatted JSON (the workspace carries no serde).
fn render_json(
    cfg: &IparsConfig,
    latencies: &[Latency],
    plan_us: f64,
    reject_us: f64,
    measures: &[Tightness],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"cost-analysis\",\n");
    s.push_str(&format!(
        "  \"dataset\": {{\"kind\": \"ipars\", \"layout\": \"l0\", \"rows\": {}, \"nodes\": {}, \
         \"seed\": {}}},\n",
        cfg.rows(),
        cfg.nodes,
        cfg.seed
    ));
    s.push_str(&format!("  \"quick_mode\": {},\n", dv_bench::quick_mode()));
    s.push_str("  \"analysis_latency_us\": [\n");
    for (i, l) in latencies.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"descriptor\": \"{}\", \"analyze_us\": {:.1}, \"plan_and_analyze_us\": {:.1}, \
             \"boundable\": {}}}{}\n",
            l.name,
            l.analyze_us,
            l.total_us,
            l.boundable,
            if i + 1 < latencies.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"admission\": {{\"accepted_plan_us\": {plan_us:.1}, \"rejection_us\": {reject_us:.1}}},\n"
    ));
    s.push_str("  \"tightness\": [\n");
    for (i, t) in measures.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"query\": \"{}\", \"bytes_read\": {:.3}, \"bytes_issued\": {}, \
             \"mover_bytes\": {:.3}, \"mover_sends\": {:.3}, \"agg_groups\": {}}}{}\n",
            t.name,
            t.bytes_read,
            t.bytes_issued.map(|r| format!("{r:.3}")).unwrap_or_else(|| "null".into()),
            t.mover_bytes,
            t.mover_sends,
            t.agg_groups.map(|r| format!("{r:.3}")).unwrap_or_else(|| "null".into()),
            if i + 1 < measures.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
