//! Dataset staging: generate once under `target/dv-bench-data`, reuse
//! across runs via a JSON marker of the generating configuration.

use std::path::PathBuf;

use dv_datagen::{ipars, titan, IparsConfig, IparsLayout, TitanConfig};
use dv_descriptor::CodecKind;

/// Root directory for staged benchmark datasets.
pub fn data_root() -> PathBuf {
    match std::env::var("DV_DATA") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            // Walk up from the crate dir to the workspace target dir.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("target").join("dv-bench-data")
        }
    }
}

/// Stage an Ipars dataset; returns `(base_dir, descriptor_text)`.
/// Regenerates only when the marker differs from `cfg`.
pub fn stage_ipars(key: &str, cfg: &IparsConfig, layout: IparsLayout) -> (PathBuf, String) {
    let base = data_root().join(key);
    let marker_path = base.join("marker.json");
    let marker = format!(
        "{{\"kind\":\"ipars\",\"layout\":\"{}\",\"realizations\":{},\"time_steps\":{},\
         \"grid_per_dir\":{},\"dirs\":{},\"nodes\":{},\"seed\":{}}}",
        layout.tag(),
        cfg.realizations,
        cfg.time_steps,
        cfg.grid_per_dir,
        cfg.dirs,
        cfg.nodes,
        cfg.seed,
    );
    if std::fs::read_to_string(&marker_path).map(|m| m == marker).unwrap_or(false) {
        return (base, ipars::descriptor(cfg, layout));
    }
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create staging dir");
    eprintln!(
        "[stage] generating ipars {} ({} rows, ~{} MiB) under {} ...",
        layout.label(),
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / (1024 * 1024),
        base.display()
    );
    let descriptor = ipars::generate(&base, cfg, layout).expect("generate ipars");
    std::fs::write(&marker_path, marker).unwrap();
    std::fs::write(base.join("descriptor.txt"), &descriptor).unwrap();
    (base, descriptor)
}

/// Stage an Ipars dataset re-encoded through `kind`; returns
/// `(base_dir, descriptor_text)`. Same marker discipline as
/// [`stage_ipars`], with the codec folded into the key.
pub fn stage_ipars_codec(
    key: &str,
    cfg: &IparsConfig,
    layout: IparsLayout,
    kind: CodecKind,
) -> (PathBuf, String) {
    let base = data_root().join(key);
    let marker_path = base.join("marker.json");
    let marker = format!(
        "{{\"kind\":\"ipars\",\"layout\":\"{}\",\"codec\":\"{}\",\"realizations\":{},\
         \"time_steps\":{},\"grid_per_dir\":{},\"dirs\":{},\"nodes\":{},\"seed\":{}}}",
        layout.tag(),
        kind.descriptor_name(),
        cfg.realizations,
        cfg.time_steps,
        cfg.grid_per_dir,
        cfg.dirs,
        cfg.nodes,
        cfg.seed,
    );
    if std::fs::read_to_string(&marker_path).map(|m| m == marker).unwrap_or(false) {
        let descriptor = std::fs::read_to_string(base.join("descriptor.txt")).unwrap();
        return (base, descriptor);
    }
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create staging dir");
    eprintln!(
        "[stage] generating ipars {} as {} ({} rows) under {} ...",
        layout.label(),
        kind.descriptor_name(),
        cfg.rows(),
        base.display()
    );
    let descriptor = ipars::generate_with_codec(&base, cfg, layout, kind).expect("generate ipars");
    std::fs::write(&marker_path, marker).unwrap();
    std::fs::write(base.join("descriptor.txt"), &descriptor).unwrap();
    (base, descriptor)
}

/// Stage a Titan dataset; returns `(base_dir, descriptor_text)`.
pub fn stage_titan(key: &str, cfg: &TitanConfig) -> (PathBuf, String) {
    let base = data_root().join(key);
    let marker_path = base.join("marker.json");
    let marker = format!(
        "{{\"kind\":\"titan\",\"points\":{},\"tiles\":[{},{},{}],\"nodes\":{},\"seed\":{}}}",
        cfg.points, cfg.tiles.0, cfg.tiles.1, cfg.tiles.2, cfg.nodes, cfg.seed,
    );
    if std::fs::read_to_string(&marker_path).map(|m| m == marker).unwrap_or(false) {
        return (base, titan::descriptor(cfg));
    }
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create staging dir");
    eprintln!(
        "[stage] generating titan ({} points, ~{} MiB) under {} ...",
        cfg.points,
        cfg.points as u64 * TitanConfig::record_bytes() / (1024 * 1024),
        base.display()
    );
    let descriptor = titan::generate(&base, cfg).expect("generate titan");
    std::fs::write(&marker_path, marker).unwrap();
    std::fs::write(base.join("descriptor.txt"), &descriptor).unwrap();
    (base, descriptor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_reuses_marker() {
        let cfg = IparsConfig::tiny();
        let key = format!("test-stage-{}", std::process::id());
        let (base, _) = stage_ipars(&key, &cfg, IparsLayout::I);
        let stamp = std::fs::metadata(base.join("marker.json")).unwrap().modified().unwrap();
        // Second call must not regenerate.
        let (_, _) = stage_ipars(&key, &cfg, IparsLayout::I);
        let stamp2 = std::fs::metadata(base.join("marker.json")).unwrap().modified().unwrap();
        assert_eq!(stamp, stamp2);
        // Changed config regenerates.
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        let (_, _) = stage_ipars(&key, &cfg2, IparsLayout::I);
        let stamp3 = std::fs::metadata(base.join("marker.json")).unwrap().modified().unwrap();
        assert_ne!(stamp, stamp3);
        let _ = std::fs::remove_dir_all(&base);
    }
}
