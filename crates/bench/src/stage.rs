//! Dataset staging: generate once under `target/dv-bench-data`, reuse
//! across runs via a JSON marker of the generating configuration.

use std::path::PathBuf;

use dv_datagen::{ipars, titan, IparsConfig, IparsLayout, TitanConfig};
use serde::Serialize;

/// Root directory for staged benchmark datasets.
pub fn data_root() -> PathBuf {
    match std::env::var("DV_DATA") {
        Ok(p) => PathBuf::from(p),
        Err(_) => {
            // Walk up from the crate dir to the workspace target dir.
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest.parent().unwrap().parent().unwrap().join("target").join("dv-bench-data")
        }
    }
}

#[derive(Serialize)]
struct IparsMarker<'a> {
    kind: &'a str,
    layout: &'a str,
    realizations: usize,
    time_steps: usize,
    grid_per_dir: usize,
    dirs: usize,
    nodes: usize,
    seed: u64,
}

/// Stage an Ipars dataset; returns `(base_dir, descriptor_text)`.
/// Regenerates only when the marker differs from `cfg`.
pub fn stage_ipars(key: &str, cfg: &IparsConfig, layout: IparsLayout) -> (PathBuf, String) {
    let base = data_root().join(key);
    let marker_path = base.join("marker.json");
    let marker = serde_json::to_string(&IparsMarker {
        kind: "ipars",
        layout: layout.tag(),
        realizations: cfg.realizations,
        time_steps: cfg.time_steps,
        grid_per_dir: cfg.grid_per_dir,
        dirs: cfg.dirs,
        nodes: cfg.nodes,
        seed: cfg.seed,
    })
    .unwrap();
    if std::fs::read_to_string(&marker_path).map(|m| m == marker).unwrap_or(false) {
        return (base, ipars::descriptor(cfg, layout));
    }
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create staging dir");
    eprintln!(
        "[stage] generating ipars {} ({} rows, ~{} MiB) under {} ...",
        layout.label(),
        cfg.rows(),
        cfg.rows() * cfg.row_bytes() / (1024 * 1024),
        base.display()
    );
    let descriptor = ipars::generate(&base, cfg, layout).expect("generate ipars");
    std::fs::write(&marker_path, marker).unwrap();
    std::fs::write(base.join("descriptor.txt"), &descriptor).unwrap();
    (base, descriptor)
}

#[derive(Serialize)]
struct TitanMarker<'a> {
    kind: &'a str,
    points: usize,
    tiles: (usize, usize, usize),
    nodes: usize,
    seed: u64,
}

/// Stage a Titan dataset; returns `(base_dir, descriptor_text)`.
pub fn stage_titan(key: &str, cfg: &TitanConfig) -> (PathBuf, String) {
    let base = data_root().join(key);
    let marker_path = base.join("marker.json");
    let marker = serde_json::to_string(&TitanMarker {
        kind: "titan",
        points: cfg.points,
        tiles: cfg.tiles,
        nodes: cfg.nodes,
        seed: cfg.seed,
    })
    .unwrap();
    if std::fs::read_to_string(&marker_path).map(|m| m == marker).unwrap_or(false) {
        return (base, titan::descriptor(cfg));
    }
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create staging dir");
    eprintln!(
        "[stage] generating titan ({} points, ~{} MiB) under {} ...",
        cfg.points,
        cfg.points as u64 * TitanConfig::record_bytes() / (1024 * 1024),
        base.display()
    );
    let descriptor = titan::generate(&base, cfg).expect("generate titan");
    std::fs::write(&marker_path, marker).unwrap();
    std::fs::write(base.join("descriptor.txt"), &descriptor).unwrap();
    (base, descriptor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_reuses_marker() {
        let cfg = IparsConfig::tiny();
        let key = format!("test-stage-{}", std::process::id());
        let (base, _) = stage_ipars(&key, &cfg, IparsLayout::I);
        let stamp = std::fs::metadata(base.join("marker.json")).unwrap().modified().unwrap();
        // Second call must not regenerate.
        let (_, _) = stage_ipars(&key, &cfg, IparsLayout::I);
        let stamp2 = std::fs::metadata(base.join("marker.json")).unwrap().modified().unwrap();
        assert_eq!(stamp, stamp2);
        // Changed config regenerates.
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        let (_, _) = stage_ipars(&key, &cfg2, IparsLayout::I);
        let stamp3 = std::fs::metadata(base.join("marker.json")).unwrap().modified().unwrap();
        assert_ne!(stamp, stamp3);
        let _ = std::fs::remove_dir_all(&base);
    }
}
