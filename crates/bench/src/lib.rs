//! # dv-bench
//!
//! Benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§5). Two entry styles:
//!
//! * `repro_*` binaries — print the paper-style tables/series at
//!   realistic (scaled-down) dataset sizes; `repro_all` runs the whole
//!   evaluation. Feed their output to EXPERIMENTS.md.
//! * criterion benches (`cargo bench`) — smaller configurations with
//!   statistical repetition, one bench per figure plus ablations and
//!   microbenchmarks.
//!
//! Datasets are staged once under `target/dv-bench-data` and reused
//! across runs (a JSON marker records the generating configuration).
//! Set `DV_QUICK=1` to shrink every dataset ~8× for smoke runs.

pub mod queries;
pub mod stage;

use std::time::{Duration, Instant};

/// Smallest-of-N timing of a fallible operation (page cache is warm in
/// all runs, matching the relative-shape goal; see EXPERIMENTS.md).
pub fn time_best_of<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(n >= 1);
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..n {
        let start = Instant::now();
        let v = f();
        let d = start.elapsed();
        if d < best {
            best = d;
        }
        out = Some(v);
    }
    (out.unwrap(), best)
}

/// Drop the OS page cache (requires root; silently skipped when not
/// permitted). The paper's evaluation is disk-bound — its DBMS
/// comparison hinges on the 3× storage inflation costing 3× the I/O —
/// so the repro binaries measure cold-cache runs.
pub fn drop_caches() -> bool {
    let _ = std::process::Command::new("sync").status();
    std::fs::write("/proc/sys/vm/drop_caches", "3").is_ok()
}

/// Time cold-cache runs of `f` (caches dropped before each of two
/// runs; minimum reported — cold I/O on virtualized disks is noisy).
/// Falls back to warm runs when cache dropping is not permitted.
pub fn time_cold<T>(mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..2 {
        drop_caches();
        let start = Instant::now();
        let v = f();
        let d = start.elapsed();
        if d < best {
            best = d;
        }
        out = Some(v);
    }
    (out.unwrap(), best)
}

/// Pre-read every file under `dir` so warm-cache measurements start
/// warm (staging large datasets leaves dirty/evicted pages behind).
pub fn warm_dir(dir: &std::path::Path) {
    fn walk(d: &std::path::Path, sink: &mut u64) {
        let Ok(entries) = std::fs::read_dir(d) else { return };
        for e in entries.flatten() {
            let path = e.path();
            if path.is_dir() {
                walk(&path, sink);
            } else if let Ok(data) = std::fs::read(&path) {
                *sink = sink.wrapping_add(data.len() as u64);
            }
        }
    }
    let mut sink = 0u64;
    walk(dir, &mut sink);
    std::hint::black_box(sink);
}

/// True when `DV_QUICK` asks for a fast smoke-sized run.
pub fn quick_mode() -> bool {
    std::env::var("DV_QUICK").map(|v| v == "1" || v.eq_ignore_ascii_case("true")).unwrap_or(false)
}

/// Divide `n` by 8 in quick mode (minimum 1).
pub fn scaled(n: usize) -> usize {
    if quick_mode() {
        (n / 8).max(1)
    } else {
        n
    }
}

/// Minimum over `n` runs of a measured quantity (used for the
/// simulated-cluster times, whose per-node maxima are noisy on a
/// timeshared host).
pub fn min_over<T>(n: usize, mut f: impl FnMut() -> (T, Duration)) -> (T, Duration) {
    assert!(n >= 1);
    let mut best: Option<(T, Duration)> = None;
    for _ in 0..n {
        let (v, d) = f();
        match &best {
            Some((_, bd)) if *bd <= d => {}
            _ => best = Some((v, d)),
        }
    }
    best.unwrap()
}

/// Render a markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Format a duration in milliseconds with 1 decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Format a ratio like `1.13x`.
pub fn ratio(a: Duration, b: Duration) -> String {
    if b.is_zero() {
        return "-".into();
    }
    format!("{:.2}x", a.as_secs_f64() / b.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_best_of_returns_min() {
        let mut calls = 0;
        let (_v, d) = time_best_of(3, || {
            calls += 1;
            std::thread::sleep(Duration::from_millis(1));
        });
        assert_eq!(calls, 3);
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.0");
        assert_eq!(ratio(Duration::from_secs(2), Duration::from_secs(1)), "2.00x");
    }
}
