//! The paper's query sets, scaled to the synthetic datasets.
//!
//! Figure 7 (Titan) and Figure 8 (Ipars) of the paper, with literal
//! ranges adjusted to the generators' domains so that each query keeps
//! the selectivity role it plays in the paper (full scan / small box /
//! UDF / selective indexed / unselective indexed; full scan / indexed
//! subset / subset+filter / subset+UDF / remote subset).

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Paper's query number within its figure.
    pub no: usize,
    /// Short description, as the paper's table gives it.
    pub what: &'static str,
    /// SQL text.
    pub sql: String,
}

/// Figure 7 — the five Titan queries.
///
/// Domain mapping: the generator draws `X, Y ∈ [0, 60000]`,
/// `Z ∈ [0, 600]`, `S1 ∈ [0, 1)`. Query 2's box covers the same ~1/6
/// per-axis slice as the paper's `[0, 10000]²×[0, 100]`; query 4 keeps
/// `S1 < 0.01` (1% — index-friendly) and query 5 `S1 < 0.5` (50%).
pub fn titan_queries(dataset: &str) -> Vec<BenchQuery> {
    vec![
        BenchQuery { no: 1, what: "full scan", sql: format!("SELECT * FROM {dataset}") },
        BenchQuery {
            no: 2,
            what: "spatial box",
            sql: format!(
                "SELECT * FROM {dataset} WHERE X >= 0 AND X <= 10000 AND Y >= 0 AND \
                 Y <= 10000 AND Z >= 0 AND Z <= 100"
            ),
        },
        BenchQuery {
            no: 3,
            what: "DISTANCE() UDF",
            sql: format!("SELECT * FROM {dataset} WHERE DISTANCE(X, Y, Z) < 10000.0"),
        },
        BenchQuery {
            no: 4,
            what: "S1 < 0.01 (selective)",
            sql: format!("SELECT * FROM {dataset} WHERE S1 < 0.01"),
        },
        BenchQuery {
            no: 5,
            what: "S1 < 0.5 (unselective)",
            sql: format!("SELECT * FROM {dataset} WHERE S1 < 0.5"),
        },
    ]
}

/// Figure 8 — the five Ipars queries, parameterized by the dataset's
/// time-step count (the paper's `TIME>1000 AND TIME<1100` selects
/// 1/10 of its 1000 steps; we select the same fraction of `t_max`).
pub fn ipars_queries(dataset: &str, t_max: usize) -> Vec<BenchQuery> {
    let t_lo = t_max / 2;
    let t_hi = t_lo + t_max / 10;
    vec![
        BenchQuery {
            no: 1,
            what: "full scan of the table",
            sql: format!("SELECT * FROM {dataset}"),
        },
        BenchQuery {
            no: 2,
            what: "subset on indexed attribute",
            sql: format!("SELECT * FROM {dataset} WHERE TIME > {t_lo} AND TIME < {t_hi}"),
        },
        BenchQuery {
            no: 3,
            what: "subset + value filter",
            sql: format!(
                "SELECT * FROM {dataset} WHERE TIME > {t_lo} AND TIME < {t_hi} AND SOIL > 0.7"
            ),
        },
        BenchQuery {
            no: 4,
            what: "subset + user-defined filter",
            sql: format!(
                "SELECT * FROM {dataset} WHERE TIME > {t_lo} AND TIME < {t_hi} AND \
                 SPEED(OILVX, OILVY, OILVZ) < 30.0"
            ),
        },
        BenchQuery {
            no: 5,
            what: "remote client subset",
            sql: format!(
                "SELECT * FROM {dataset} WHERE TIME > {t_lo} AND TIME < {}",
                t_lo + t_max / 20
            ),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_parse() {
        for q in titan_queries("TitanData") {
            dv_sql::parse(&q.sql).unwrap();
        }
        for q in ipars_queries("IparsData", 1000) {
            dv_sql::parse(&q.sql).unwrap();
        }
    }

    #[test]
    fn ipars_fraction_matches_paper() {
        let qs = ipars_queries("I", 1000);
        assert!(qs[1].sql.contains("TIME > 500 AND TIME < 600"));
    }
}
