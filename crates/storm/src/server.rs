//! The server facade: per-query execution options and the
//! single-query API, now a thin wrapper over the service plane.
//!
//! [`StormServer`] owns one [`QueryService`] per dataset. The legacy
//! synchronous calls (`execute`, `execute_bound`, `execute_table`)
//! route through the service — admission, query ids, cancellation —
//! with default submission options, so existing callers keep their
//! API while concurrent clients use [`StormServer::service`] (or
//! [`QueryService`] directly) for sessions, priorities, timeouts.

use std::sync::Arc;

use dv_layout::{CompiledDataset, IoOptions};
use dv_sql::{BoundQuery, UdfRegistry};
use dv_types::{DvError, Result, Table};

use crate::mover::BandwidthModel;
use crate::partition::PartitionStrategy;
use crate::service::{QueryService, ServerCore, ServiceConfig, SubmitOptions};
use crate::stats::QueryStats;

/// The default per-node worker count: the host's available
/// parallelism, overridable with `DV_THREADS=<n>`; `DV_SERIAL=1`
/// forces the serial configuration (equivalent to `DV_THREADS=1`).
pub fn default_intra_node_threads() -> usize {
    if std::env::var("DV_SERIAL").map(|v| v == "1").unwrap_or(false) {
        return 1;
    }
    if let Some(n) = std::env::var("DV_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        return n.max(1);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Which engine the node pipeline runs. Results are identical; the
/// columnar engine is the default, the row engine is retained for the
/// ablation benchmark and as the oracle in differential tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Struct-of-arrays blocks, vectorized filtering, selection
    /// vectors; rows reconstituted only at the client boundary.
    #[default]
    Columnar,
    /// Legacy `Vec<Vec<Value>>` blocks filtered row-at-a-time.
    RowAtATime,
}

/// Per-query execution options.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Number of client processors receiving partitions.
    pub client_processors: usize,
    /// Row distribution scheme (positions refer to *output* columns).
    pub partition: PartitionStrategy,
    /// Simulated link for remote clients (`None` = local, memory
    /// speed).
    pub bandwidth: Option<BandwidthModel>,
    /// Target rows per extracted block (AFCs are batched up to this).
    pub batch_rows: usize,
    /// Worker threads per node pool. Defaults to the host's available
    /// parallelism (see [`default_intra_node_threads`]); `1` is the
    /// explicit serial configuration (the paper's one-process-per-node
    /// setup and the differential-test oracle). Results are
    /// bit-identical at any setting. Clamped at execution time by
    /// `ServiceConfig::max_intra_node_threads`.
    pub intra_node_threads: usize,
    /// Morsel size target in bytes for intra-node scheduling.
    /// `0` (the default) sizes adaptively: the node's schedule bytes
    /// spread over `threads × MORSELS_PER_THREAD` morsels, floored at
    /// 64 KiB (see [`dv_layout::adaptive_morsel_bytes`]).
    pub morsel_bytes: u64,
    /// Run node pipelines one after another instead of concurrently.
    /// Results are identical; per-node busy times become free of
    /// timesharing noise, so `QueryStats::simulated_parallel_time`
    /// faithfully models an N-node cluster even on a single-core host
    /// (see DESIGN.md).
    pub sequential_nodes: bool,
    /// Which execution engine to run (columnar by default).
    pub exec: ExecMode,
    /// I/O scheduler knobs (coalescing, readahead, segment cache).
    pub io: IoOptions,
    /// Capacity of the bounded mover channel (blocks in flight from
    /// node pipelines to the absorber before senders back-pressure).
    pub mover_capacity: usize,
    /// Disable static partition pruning for this query (ablation
    /// baseline; equivalent to running with `DV_NO_PRUNE=1`).
    pub no_prune: bool,
    /// Disable aggregation pushdown for this query (ablation baseline;
    /// equivalent to running with `DV_NO_AGG_PUSHDOWN=1`). Nodes ship
    /// filtered projected rows and the absorber aggregates client-side
    /// over the identical per-AFC fold units, so results stay
    /// bit-identical across modes.
    pub no_agg_pushdown: bool,
}

impl Default for QueryOptions {
    fn default() -> QueryOptions {
        QueryOptions {
            client_processors: 1,
            partition: PartitionStrategy::RoundRobin,
            bandwidth: None,
            batch_rows: 4 * 1024,
            intra_node_threads: default_intra_node_threads(),
            morsel_bytes: 0,
            sequential_nodes: false,
            exec: ExecMode::default(),
            io: IoOptions::default(),
            mover_capacity: 64,
            no_prune: false,
            no_agg_pushdown: false,
        }
    }
}

/// A running virtualization server for one dataset: compiled plans,
/// UDF registry, per-node executors, and the query service in front.
pub struct StormServer {
    service: QueryService,
}

impl StormServer {
    /// Start a server over a compiled dataset with default service
    /// configuration.
    pub fn new(compiled: Arc<CompiledDataset>, udfs: UdfRegistry) -> StormServer {
        StormServer::with_config(compiled, udfs, ServiceConfig::default())
    }

    /// Start a server with an explicit service configuration
    /// (admission concurrency limit).
    pub fn with_config(
        compiled: Arc<CompiledDataset>,
        udfs: UdfRegistry,
        config: ServiceConfig,
    ) -> StormServer {
        let core = Arc::new(ServerCore::new(compiled, udfs, &config));
        StormServer { service: QueryService::new(core, &config) }
    }

    /// The query service plane: sessions, priorities, timeouts,
    /// cancellation, admission introspection.
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// The dataset model served.
    pub fn model(&self) -> &dv_descriptor::DatasetModel {
        self.service.model()
    }

    /// The compiled dataset (for plan inspection / codegen rendering).
    pub fn compiled(&self) -> &CompiledDataset {
        self.service.compiled()
    }

    /// Parse + bind a query against this server's schema.
    pub fn bind_sql(&self, sql: &str) -> Result<BoundQuery> {
        self.service.bind_sql(sql)
    }

    /// Execute a query, returning one table per client processor and
    /// execution statistics.
    pub fn execute(&self, sql: &str, opts: &QueryOptions) -> Result<(Vec<Table>, QueryStats)> {
        self.service.execute(sql, opts)
    }

    /// Execute a convenience single-table query (one local processor).
    pub fn execute_table(&self, sql: &str) -> Result<(Table, QueryStats)> {
        let (mut tables, stats) = self.execute(sql, &QueryOptions::default())?;
        match tables.pop() {
            Some(table) => Ok((table, stats)),
            None => Err(DvError::Runtime(
                "query produced no client partitions (zero processors configured)".into(),
            )),
        }
    }

    /// Execute a pre-bound query.
    pub fn execute_bound(
        &self,
        bq: &BoundQuery,
        opts: &QueryOptions,
    ) -> Result<(Vec<Table>, QueryStats)> {
        self.service.execute_bound_with(bq, opts, &SubmitOptions::default())
    }
}
