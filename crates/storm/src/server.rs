//! Query service: the client entry point that orchestrates all other
//! services.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, TryRecvError};
use dv_layout::io::{group_afcs, FetchedGroup, IoScheduler, IoStats};
use dv_layout::{Afc, CompiledDataset, Extractor, IoOptions, SegmentCache};
use dv_sql::eval::EvalContext;
use dv_sql::{bind, parse, BoundExpr, BoundQuery, UdfRegistry};
use dv_types::{ColumnBlock, DataType, DvError, Result, RowBlock, Table};

use crate::cluster::Cluster;
use crate::filter::{filter_block, filter_columns, project_block};
use crate::mover::{send_block, send_columns, BandwidthModel, MoverMessage};
use crate::partition::{partition_block, partition_columns, PartitionStrategy};
use crate::stats::QueryStats;

/// Which engine the node pipeline runs. Results are identical; the
/// columnar engine is the default, the row engine is retained for the
/// ablation benchmark and as the oracle in differential tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Struct-of-arrays blocks, vectorized filtering, selection
    /// vectors; rows reconstituted only at the client boundary.
    #[default]
    Columnar,
    /// Legacy `Vec<Vec<Value>>` blocks filtered row-at-a-time.
    RowAtATime,
}

/// Per-query execution options.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Number of client processors receiving partitions.
    pub client_processors: usize,
    /// Row distribution scheme (positions refer to *output* columns).
    pub partition: PartitionStrategy,
    /// Simulated link for remote clients (`None` = local, memory
    /// speed).
    pub bandwidth: Option<BandwidthModel>,
    /// Target rows per extracted block (AFCs are batched up to this).
    pub batch_rows: usize,
    /// Worker threads per node (1 = the paper's one-process-per-node
    /// configuration; >1 is the intra-node parallelism ablation).
    pub intra_node_threads: usize,
    /// Run node pipelines one after another instead of concurrently.
    /// Results are identical; per-node busy times become free of
    /// timesharing noise, so `QueryStats::simulated_parallel_time`
    /// faithfully models an N-node cluster even on a single-core host
    /// (see DESIGN.md).
    pub sequential_nodes: bool,
    /// Which execution engine to run (columnar by default).
    pub exec: ExecMode,
    /// I/O scheduler knobs (coalescing, readahead, segment cache).
    pub io: IoOptions,
}

impl Default for QueryOptions {
    fn default() -> QueryOptions {
        QueryOptions {
            client_processors: 1,
            partition: PartitionStrategy::RoundRobin,
            bandwidth: None,
            batch_rows: 4 * 1024,
            intra_node_threads: 1,
            sequential_nodes: false,
            exec: ExecMode::default(),
            io: IoOptions::default(),
        }
    }
}

/// A running virtualization server for one dataset: compiled plans +
/// UDF registry + per-node workers.
pub struct StormServer {
    compiled: Arc<CompiledDataset>,
    udfs: Arc<UdfRegistry>,
    cluster: Cluster,
    /// Cross-query segment cache shared by every node's I/O
    /// scheduler; budget follows `QueryOptions::io.cache_bytes`.
    segment_cache: Arc<SegmentCache>,
}

impl StormServer {
    /// Start a server over a compiled dataset.
    pub fn new(compiled: Arc<CompiledDataset>, udfs: UdfRegistry) -> StormServer {
        let nodes = compiled.model.node_count();
        StormServer {
            compiled,
            udfs: Arc::new(udfs),
            cluster: Cluster::new(nodes),
            segment_cache: Arc::new(SegmentCache::new(IoOptions::default().cache_bytes)),
        }
    }

    /// The dataset model served.
    pub fn model(&self) -> &dv_descriptor::DatasetModel {
        &self.compiled.model
    }

    /// The compiled dataset (for plan inspection / codegen rendering).
    pub fn compiled(&self) -> &CompiledDataset {
        &self.compiled
    }

    /// Parse + bind a query against this server's schema.
    pub fn bind_sql(&self, sql: &str) -> Result<BoundQuery> {
        let q = parse(sql)?;
        bind(&q, &self.compiled.model.schema, &self.udfs)
    }

    /// Execute a query, returning one table per client processor and
    /// execution statistics.
    pub fn execute(&self, sql: &str, opts: &QueryOptions) -> Result<(Vec<Table>, QueryStats)> {
        let bq = self.bind_sql(sql)?;
        self.execute_bound(&bq, opts)
    }

    /// Execute a convenience single-table query (one local processor).
    pub fn execute_table(&self, sql: &str) -> Result<(Table, QueryStats)> {
        let (mut tables, stats) = self.execute(sql, &QueryOptions::default())?;
        Ok((tables.pop().expect("one processor"), stats))
    }

    /// Execute a pre-bound query.
    pub fn execute_bound(
        &self,
        bq: &BoundQuery,
        opts: &QueryOptions,
    ) -> Result<(Vec<Table>, QueryStats)> {
        if opts.client_processors == 0 {
            return Err(DvError::Runtime("client_processors must be >= 1".into()));
        }
        let mut stats = QueryStats::default();

        // Phase 2a: central planning (range analysis, working row).
        let plan_start = Instant::now();
        let prep = Arc::new(self.compiled.prepare_query(bq)?);
        stats.plan_time = plan_start.elapsed();

        let output_schema = bq.output_schema();
        let schema_len = self.compiled.model.schema.len();
        let working_attrs = Arc::new(prep.working.attrs.clone());
        let working_dtypes = Arc::new(prep.working.dtypes.clone());
        let output_positions = Arc::new(prep.output_positions.clone());
        let predicate: Arc<Option<BoundExpr>> = Arc::new(bq.predicate.clone());
        let extractor = Extractor::new(&self.compiled, prep.working.attrs.len());

        let rows_scanned = Arc::new(AtomicU64::new(0));
        let rows_selected = Arc::new(AtomicU64::new(0));
        let bytes_read = Arc::new(AtomicU64::new(0));
        let bytes_moved = Arc::new(AtomicU64::new(0));
        let afc_count = Arc::new(AtomicU64::new(0));
        let io_stats = Arc::new(IoStats::default());
        if opts.io.enabled && opts.io.cache_bytes > 0 {
            self.segment_cache.set_budget(opts.io.cache_bytes);
        }

        let (tx, rx) = unbounded::<MoverMessage>();
        let exec_start = Instant::now();
        let node_count = self.compiled.model.node_count();
        let mut tables: Vec<Table> =
            (0..opts.client_processors).map(|_| Table::empty(output_schema.clone())).collect();
        let mut first_error: Option<DvError> = None;
        let mut node_busy: Vec<std::time::Duration> = Vec::with_capacity(node_count);

        let dispatch = |node: usize, tx: &crossbeam::channel::Sender<MoverMessage>| {
            let tx = tx.clone();
            let compiled = Arc::clone(&self.compiled);
            let prep = Arc::clone(&prep);
            let extractor = extractor.clone();
            let udfs = Arc::clone(&self.udfs);
            let predicate = Arc::clone(&predicate);
            let working_attrs = Arc::clone(&working_attrs);
            let working_dtypes = Arc::clone(&working_dtypes);
            let output_positions = Arc::clone(&output_positions);
            let rows_scanned = Arc::clone(&rows_scanned);
            let rows_selected = Arc::clone(&rows_selected);
            let bytes_read = Arc::clone(&bytes_read);
            let bytes_moved = Arc::clone(&bytes_moved);
            let afc_count = Arc::clone(&afc_count);
            let io_stats = Arc::clone(&io_stats);
            let segment_cache = Arc::clone(&self.segment_cache);
            let opts = opts.clone();
            self.cluster.run_on(node, move || {
                let worker = NodeWorker {
                    node,
                    extractor,
                    udfs,
                    predicate,
                    working_attrs,
                    working_dtypes,
                    output_positions,
                    schema_len,
                    opts,
                    rows_scanned,
                    rows_selected,
                    bytes_read,
                    bytes_moved,
                    afc_count,
                    io_stats,
                    segment_cache,
                };
                // Phase 2b (the node's generated index function) runs
                // here and counts as this node's work.
                let busy_start = Instant::now();
                let result =
                    compiled.plan_node(&prep, node).and_then(|np| worker.run(&np.afcs, &tx));
                let _ = tx.send(MoverMessage::Done { node, result, busy: busy_start.elapsed() });
            });
        };

        // Drain messages until `want` Done messages arrive.
        let drain = |want: usize,
                     tables: &mut Vec<Table>,
                     node_busy: &mut Vec<std::time::Duration>,
                     first_error: &mut Option<DvError>| {
            let mut done = 0usize;
            for msg in rx.iter() {
                match msg {
                    MoverMessage::Block { processor, block } => tables[processor].absorb(block),
                    MoverMessage::Columns { processor, block } => {
                        tables[processor].absorb_columns(block)
                    }
                    MoverMessage::Done { result, busy, .. } => {
                        done += 1;
                        node_busy.push(busy);
                        if let Err(e) = result {
                            first_error.get_or_insert(e);
                        }
                        if done == want {
                            break;
                        }
                    }
                }
            }
        };

        if opts.sequential_nodes {
            for node in 0..node_count {
                dispatch(node, &tx);
                drain(1, &mut tables, &mut node_busy, &mut first_error);
            }
        } else {
            for node in 0..node_count {
                dispatch(node, &tx);
            }
            drain(node_count, &mut tables, &mut node_busy, &mut first_error);
        }
        drop(tx);
        stats.exec_time = exec_start.elapsed();
        stats.node_busy = node_busy;
        if let Some(e) = first_error {
            return Err(e);
        }

        stats.rows_scanned = rows_scanned.load(Ordering::Relaxed);
        stats.rows_selected = rows_selected.load(Ordering::Relaxed);
        stats.bytes_read = bytes_read.load(Ordering::Relaxed);
        stats.bytes_moved = bytes_moved.load(Ordering::Relaxed);
        stats.afcs = afc_count.load(Ordering::Relaxed);
        stats.io = io_stats.snapshot();
        Ok((tables, stats))
    }
}

/// Everything one node needs to run the extraction → filter →
/// partition → move pipeline.
struct NodeWorker {
    node: usize,
    extractor: Extractor,
    udfs: Arc<UdfRegistry>,
    predicate: Arc<Option<BoundExpr>>,
    working_attrs: Arc<Vec<usize>>,
    working_dtypes: Arc<Vec<DataType>>,
    output_positions: Arc<Vec<usize>>,
    schema_len: usize,
    opts: QueryOptions,
    rows_scanned: Arc<AtomicU64>,
    rows_selected: Arc<AtomicU64>,
    bytes_read: Arc<AtomicU64>,
    bytes_moved: Arc<AtomicU64>,
    afc_count: Arc<AtomicU64>,
    io_stats: Arc<IoStats>,
    segment_cache: Arc<SegmentCache>,
}

impl NodeWorker {
    fn run(&self, afcs: &[Afc], tx: &crossbeam::channel::Sender<MoverMessage>) -> Result<()> {
        if self.opts.intra_node_threads <= 1 {
            return self.run_stripe_any(afcs, tx);
        }
        // Intra-node parallel stripes over the AFC list.
        let stripes = self.opts.intra_node_threads.min(afcs.len().max(1));
        let chunk = afcs.len().div_ceil(stripes);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for piece in afcs.chunks(chunk.max(1)) {
                handles.push(scope.spawn(move || self.run_stripe_any(piece, tx)));
            }
            for h in handles {
                h.join().map_err(|_| DvError::Runtime("node stripe panicked".into()))??;
            }
            Ok(())
        })
    }

    fn run_stripe_any(
        &self,
        afcs: &[Afc],
        tx: &crossbeam::channel::Sender<MoverMessage>,
    ) -> Result<()> {
        match self.opts.exec {
            ExecMode::Columnar => self.run_stripe_columns(afcs, tx),
            ExecMode::RowAtATime => self.run_stripe(afcs, tx),
        }
    }

    /// The columnar pipeline (default): fetch coalesced segments
    /// through the I/O scheduler (prefetching the next working set in
    /// the background), decode into typed columns, filter vectorized
    /// into a selection vector, project by reordering column handles,
    /// partition with one gather per column, move without touching
    /// row data.
    fn run_stripe_columns(
        &self,
        afcs: &[Afc],
        tx: &crossbeam::channel::Sender<MoverMessage>,
    ) -> Result<()> {
        if !self.opts.io.enabled {
            return self.run_stripe_columns_direct(afcs, tx);
        }
        let cx = EvalContext::new(self.schema_len, &self.working_attrs, &self.udfs);
        let mut partition_base = 0u64;
        let scheduler = IoScheduler::new(
            self.extractor.clone(),
            self.opts.io.clone(),
            Some(Arc::clone(&self.segment_cache)),
            Arc::clone(&self.io_stats),
        );
        let groups = group_afcs(afcs, self.opts.io.group_bytes);

        if !self.opts.io.readahead || groups.len() < 2 {
            for g in groups {
                let fetched = scheduler.fetch(&afcs[g.clone()])?;
                self.decode_and_ship(&afcs[g], &fetched, &cx, &mut partition_base, tx)?;
            }
            return Ok(());
        }

        // Double-buffered readahead: a bounded channel of fetched
        // groups; the prefetcher works on group g+1 (and beyond, up
        // to the channel depth) while this thread decodes group g.
        let depth = self.opts.io.prefetch_depth.max(1);
        std::thread::scope(|scope| -> Result<()> {
            let (gtx, grx) = bounded::<Result<FetchedGroup>>(depth);
            let scheduler = &scheduler;
            let groups_tx = groups.clone();
            scope.spawn(move || {
                for g in groups_tx {
                    let fetched = scheduler.fetch(&afcs[g]);
                    let failed = fetched.is_err();
                    // The receiver hangs up after a decode error; stop
                    // fetching. Also stop after shipping a fetch error.
                    if gtx.send(fetched).is_err() || failed {
                        break;
                    }
                }
            });
            for g in groups {
                let fetched = match grx.try_recv() {
                    Ok(r) => {
                        self.io_stats.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                        r?
                    }
                    Err(TryRecvError::Empty) => {
                        let wait_start = Instant::now();
                        let r = grx
                            .recv()
                            .map_err(|_| DvError::Runtime("I/O prefetcher disconnected".into()))?;
                        self.io_stats.prefetch_waits.fetch_add(1, Ordering::Relaxed);
                        self.io_stats
                            .prefetch_wait_ns
                            .fetch_add(wait_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        r?
                    }
                    Err(TryRecvError::Disconnected) => {
                        return Err(DvError::Runtime("I/O prefetcher disconnected".into()));
                    }
                };
                self.decode_and_ship(&afcs[g], &fetched, &cx, &mut partition_base, tx)?;
            }
            Ok(())
        })
    }

    /// Decode one fetched working-set group into blocks of at most
    /// `batch_rows` and run each through filter → project → partition
    /// → move.
    fn decode_and_ship(
        &self,
        afcs: &[Afc],
        fetched: &FetchedGroup,
        cx: &EvalContext,
        partition_base: &mut u64,
        tx: &crossbeam::channel::Sender<MoverMessage>,
    ) -> Result<()> {
        let mut i = 0usize;
        while i < afcs.len() {
            let mut block = ColumnBlock::with_dtypes(self.node, &self.working_dtypes);
            let mut batched_rows = 0u64;
            while i < afcs.len()
                && (batched_rows == 0 || batched_rows < self.opts.batch_rows as u64)
            {
                let afc = &afcs[i];
                self.extractor.extract_columns_fetched(afc, &mut block, fetched)?;
                self.bytes_read.fetch_add(afc.bytes_read(), Ordering::Relaxed);
                self.afc_count.fetch_add(1, Ordering::Relaxed);
                batched_rows += afc.num_rows;
                i += 1;
            }
            self.ship_columns(block, cx, partition_base, tx)?;
        }
        Ok(())
    }

    /// The scheduler-off columnar path: one read per AFC entry into
    /// the shared scratch buffer (kept as the ablation baseline and
    /// the fallback when `QueryOptions::io.enabled` is false).
    fn run_stripe_columns_direct(
        &self,
        afcs: &[Afc],
        tx: &crossbeam::channel::Sender<MoverMessage>,
    ) -> Result<()> {
        let cx = EvalContext::new(self.schema_len, &self.working_attrs, &self.udfs);
        let mut partition_base = 0u64;
        let mut scratch = dv_layout::ExtractScratch::default();

        let mut i = 0usize;
        while i < afcs.len() {
            // Batch AFCs until the block reaches the target row count.
            let mut block = ColumnBlock::with_dtypes(self.node, &self.working_dtypes);
            let mut batched_rows = 0u64;
            while i < afcs.len()
                && (batched_rows == 0 || batched_rows < self.opts.batch_rows as u64)
            {
                let afc = &afcs[i];
                self.extractor.extract_columns_with(afc, &mut block, &mut scratch)?;
                self.count_direct_reads(afc);
                batched_rows += afc.num_rows;
                i += 1;
            }
            self.ship_columns(block, &cx, &mut partition_base, tx)?;
        }
        Ok(())
    }

    /// Per-AFC accounting shared by the direct-read paths: logical
    /// bytes plus one issued syscall per entry run.
    fn count_direct_reads(&self, afc: &Afc) {
        let bytes = afc.bytes_read();
        let runs = afc.entries.len() as u64;
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.afc_count.fetch_add(1, Ordering::Relaxed);
        self.io_stats.read_syscalls.fetch_add(runs, Ordering::Relaxed);
        self.io_stats.runs_scheduled.fetch_add(runs, Ordering::Relaxed);
        self.io_stats.bytes_issued.fetch_add(bytes, Ordering::Relaxed);
        self.io_stats.bytes_used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Filter → project → partition → move one columnar block.
    fn ship_columns(
        &self,
        mut block: ColumnBlock,
        cx: &EvalContext,
        partition_base: &mut u64,
        tx: &crossbeam::channel::Sender<MoverMessage>,
    ) -> Result<()> {
        self.rows_scanned.fetch_add(block.len() as u64, Ordering::Relaxed);

        filter_columns(&mut block, self.predicate.as_ref().as_ref(), cx);
        self.rows_selected.fetch_add(block.selected() as u64, Ordering::Relaxed);
        if block.is_empty() {
            return Ok(());
        }

        block.project(&self.output_positions);

        if self.opts.client_processors == 1 {
            let bytes = send_columns(tx, 0, block, self.opts.bandwidth.as_ref())?;
            self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            let parts = partition_columns(
                block,
                &self.opts.partition,
                self.opts.client_processors,
                *partition_base,
            );
            // Round-robin base advances by total rows partitioned.
            *partition_base += parts.iter().map(|p| p.selected() as u64).sum::<u64>();
            for (p, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let bytes = send_columns(tx, p, part, self.opts.bandwidth.as_ref())?;
                self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn run_stripe(
        &self,
        afcs: &[Afc],
        tx: &crossbeam::channel::Sender<MoverMessage>,
    ) -> Result<()> {
        let cx = EvalContext::new(self.schema_len, &self.working_attrs, &self.udfs);
        let mut partition_base = 0u64;
        let mut scratch = dv_layout::ExtractScratch::default();

        let mut i = 0usize;
        while i < afcs.len() {
            // Batch AFCs until the block reaches the target row count.
            let mut block = RowBlock::new(self.node);
            let mut batched_rows = 0u64;
            while i < afcs.len()
                && (batched_rows == 0 || batched_rows < self.opts.batch_rows as u64)
            {
                let afc = &afcs[i];
                self.extractor.extract_into_with(afc, &mut block, &mut scratch)?;
                self.count_direct_reads(afc);
                batched_rows += afc.num_rows;
                i += 1;
            }
            self.rows_scanned.fetch_add(block.len() as u64, Ordering::Relaxed);

            filter_block(&mut block, self.predicate.as_ref().as_ref(), &cx);
            self.rows_selected.fetch_add(block.len() as u64, Ordering::Relaxed);
            if block.is_empty() {
                continue;
            }

            project_block(&mut block, &self.output_positions);

            if self.opts.client_processors == 1 {
                let bytes = send_block(tx, 0, block, self.opts.bandwidth.as_ref())?;
                self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
            } else {
                let parts = partition_block(
                    block,
                    &self.opts.partition,
                    self.opts.client_processors,
                    partition_base,
                );
                // Round-robin base advances by total rows partitioned.
                partition_base += parts.iter().map(|p| p.len() as u64).sum::<u64>();
                for (p, part) in parts.into_iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    let bytes = send_block(tx, p, part, self.opts.bandwidth.as_ref())?;
                    self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }
}
