//! The simulated cluster: one long-lived worker thread per logical
//! node.
//!
//! Each worker owns the directory tree of its node and executes jobs
//! (closures) sent by the query service. Workers persist across
//! queries, like STORM's long-running per-node services — thread spawn
//! cost never pollutes query timings.

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of per-node worker threads.
pub struct Cluster {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl Cluster {
    /// Spawn one worker per node.
    pub fn new(nodes: usize) -> Cluster {
        let mut senders = Vec::with_capacity(nodes);
        let mut handles = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let (tx, rx) = unbounded::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("storm-node-{node}"))
                .spawn(move || {
                    for job in rx {
                        // A panicking job must not kill the node: the
                        // worker outlives queries, and its death would
                        // turn every later `run_on` into a panic. The
                        // executor layer converts fragment panics into
                        // query errors; this catch keeps the thread
                        // alive even for raw jobs that slip through.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    }
                })
                .expect("spawn cluster worker");
            senders.push(tx);
            handles.push(handle);
        }
        Cluster { senders, handles }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.senders.len()
    }

    /// Enqueue a job on `node`'s worker. Panics on an out-of-range
    /// node (a programming error, not a data condition).
    pub fn run_on(&self, node: usize, job: impl FnOnce() + Send + 'static) {
        self.senders[node].send(Box::new(job)).expect("cluster worker is alive");
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Closing the channels terminates the workers.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_on_their_nodes() {
        let cluster = Cluster::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = unbounded();
        for node in 0..4 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            cluster.run_on(node, move || {
                let name = std::thread::current().name().unwrap().to_string();
                assert_eq!(name, format!("storm-node-{node}"));
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(node).unwrap();
            });
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn workers_process_jobs_in_order() {
        let cluster = Cluster::new(1);
        let (tx, rx) = unbounded();
        for i in 0..10 {
            let tx = tx.clone();
            cluster.run_on(0, move || tx.send(i).unwrap());
        }
        drop(tx);
        let seen: Vec<i32> = rx.iter().collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_joins_cleanly() {
        let cluster = Cluster::new(2);
        cluster.run_on(0, || {});
        cluster.run_on(1, || {});
        drop(cluster); // must not hang or panic
    }

    #[test]
    fn worker_survives_panicking_job() {
        let cluster = Cluster::new(1);
        cluster.run_on(0, || panic!("job blew up"));
        // The worker must still be alive and processing.
        let (tx, rx) = unbounded();
        cluster.run_on(0, move || tx.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
    }
}
