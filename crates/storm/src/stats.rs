//! Query execution statistics, gathered across services.

use std::fmt;
use std::time::Duration;

use dv_layout::IoSnapshot;

use crate::mover::MoverSnapshot;

/// Counters and timings of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Id the query service assigned this execution (0 when the query
    /// ran outside the service plane, e.g. in unit tests).
    pub query_id: u64,
    /// Time spent queued in admission before an execution slot opened.
    pub queue_wait: Duration,
    /// Rows materialized by the extraction service (before filtering).
    pub rows_scanned: u64,
    /// Rows surviving the filtering service (= rows delivered).
    pub rows_selected: u64,
    /// Bytes read from data files.
    pub bytes_read: u64,
    /// Payload bytes shipped by the data mover.
    pub bytes_moved: u64,
    /// Aligned file chunks processed.
    pub afcs: u64,
    /// AFC groups planned before static pruning.
    pub groups_total: u64,
    /// AFC groups dropped as provably empty (no I/O issued for them).
    pub groups_pruned: u64,
    /// AFC groups whose predicate was provably true (filter skipped).
    pub groups_full: u64,
    /// Bytes the pruned groups would have read.
    pub bytes_avoided: u64,
    /// I/O scheduler counters: syscalls, bytes issued vs. used,
    /// coalescing, prefetch and cache behaviour.
    pub io: IoSnapshot,
    /// Data mover counters: sends, and how often/long the bounded
    /// transport back-pressured the node pipelines.
    pub mover: MoverSnapshot,
    /// Time spent planning (phase 2: grouping + AFC alignment).
    pub plan_time: Duration,
    /// Wall time of the parallel execute/transfer phase.
    pub exec_time: Duration,
    /// Per-node pipeline busy time (extract + filter + partition +
    /// move), indexed by completion order.
    pub node_busy: Vec<Duration>,
}

impl QueryStats {
    /// Total wall time.
    pub fn total_time(&self) -> Duration {
        self.plan_time + self.exec_time
    }

    /// Simulated cluster wall time: planning plus the slowest node's
    /// pipeline time. On a real N-node cluster the nodes run
    /// concurrently, so this is what a client would observe; on the
    /// single-core simulation host it is the faithful scaling metric
    /// (see DESIGN.md). Most accurate when the query ran with
    /// `QueryOptions::sequential_nodes`, which removes timesharing
    /// noise from the per-node measurements.
    pub fn simulated_parallel_time(&self) -> Duration {
        self.plan_time + self.node_busy.iter().copied().max().unwrap_or_default()
    }

    /// Selectivity of the filtering service.
    pub fn selectivity(&self) -> f64 {
        if self.rows_scanned == 0 {
            0.0
        } else {
            self.rows_selected as f64 / self.rows_scanned as f64
        }
    }
}

impl fmt::Display for QueryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rows selected / {} scanned ({} AFCs, {} KiB read, {} KiB moved) in {:?}              (plan {:?}, exec {:?}; simulated cluster {:?}; prune: {}/{} groups pruned, {} full, {} KiB avoided; io: {} syscalls, coalesce {:.1}x, {} KiB issued / {} KiB used, cache hit {:.0}%, prefetch {}/{} waits; mover: {} sends, {} blocked {:?}; queued {:?})",
            self.rows_selected,
            self.rows_scanned,
            self.afcs,
            self.bytes_read / 1024,
            self.bytes_moved / 1024,
            self.total_time(),
            self.plan_time,
            self.exec_time,
            self.simulated_parallel_time(),
            self.groups_pruned,
            self.groups_total,
            self.groups_full,
            self.bytes_avoided / 1024,
            self.io.read_syscalls,
            self.io.coalesce_ratio(),
            self.io.bytes_issued / 1024,
            self.io.bytes_used / 1024,
            self.io.cache_hit_rate() * 100.0,
            self.io.prefetch_hits,
            self.io.prefetch_waits,
            self.mover.sends,
            self.mover.blocked_sends,
            self.mover.send_wait,
            self.queue_wait,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_handles_zero() {
        let s = QueryStats::default();
        assert_eq!(s.selectivity(), 0.0);
        let s = QueryStats { rows_scanned: 100, rows_selected: 25, ..Default::default() };
        assert_eq!(s.selectivity(), 0.25);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = QueryStats {
            rows_scanned: 100,
            rows_selected: 40,
            bytes_read: 4096,
            afcs: 7,
            groups_total: 10,
            groups_pruned: 3,
            groups_full: 2,
            bytes_avoided: 8192,
            io: IoSnapshot {
                read_syscalls: 3,
                runs_scheduled: 12,
                bytes_issued: 2048,
                bytes_used: 4096,
                cache_hit_bytes: 1024,
                cache_miss_bytes: 1024,
                ..Default::default()
            },
            mover: crate::mover::MoverSnapshot { sends: 9, blocked_sends: 2, ..Default::default() },
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("40 rows selected / 100 scanned"), "{text}");
        assert!(text.contains("7 AFCs"), "{text}");
        assert!(text.contains("3 syscalls"), "{text}");
        assert!(text.contains("coalesce 4.0x"), "{text}");
        assert!(text.contains("2 KiB issued / 4 KiB used"), "{text}");
        assert!(text.contains("cache hit 50%"), "{text}");
        assert!(text.contains("9 sends, 2 blocked"), "{text}");
        assert!(text.contains("3/10 groups pruned, 2 full, 8 KiB avoided"), "{text}");
    }

    #[test]
    fn total_time_sums_phases() {
        let s = QueryStats {
            plan_time: Duration::from_millis(2),
            exec_time: Duration::from_millis(40),
            ..Default::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(42));
    }
}
