//! Query execution statistics, gathered across services.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dv_layout::IoSnapshot;

use crate::mover::MoverSnapshot;

/// Shared atomic morsel-scheduler counters for one query, aggregated
/// across all node pools and snapshotted into `QueryStats::morsels`.
#[derive(Debug)]
pub struct MorselStats {
    /// Morsels planned across all node schedules.
    pub planned: AtomicU64,
    /// Morsels a worker stole from another worker's queue.
    pub stolen: AtomicU64,
    /// Workers started across all node pools.
    pub workers: AtomicU64,
    /// Largest adaptive byte target any node planned with.
    pub target_bytes: AtomicU64,
    /// Fewest bytes any single worker processed (skew floor).
    pub worker_bytes_min: AtomicU64,
    /// Most bytes any single worker processed (skew ceiling).
    pub worker_bytes_max: AtomicU64,
    /// Total worker time spent in the pool but not executing a morsel
    /// (claim/steal scans plus idle tail while peers finish).
    pub pool_wait_ns: AtomicU64,
}

impl Default for MorselStats {
    fn default() -> MorselStats {
        MorselStats {
            planned: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            target_bytes: AtomicU64::new(0),
            // Folded with `fetch_min`; MAX means "no worker reported".
            worker_bytes_min: AtomicU64::new(u64::MAX),
            worker_bytes_max: AtomicU64::new(0),
            pool_wait_ns: AtomicU64::new(0),
        }
    }
}

impl MorselStats {
    /// Copy the counters into a plain snapshot.
    pub fn snapshot(&self) -> MorselSnapshot {
        let min = self.worker_bytes_min.load(Ordering::Relaxed);
        MorselSnapshot {
            planned: self.planned.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            target_bytes: self.target_bytes.load(Ordering::Relaxed),
            worker_bytes_min: if min == u64::MAX { 0 } else { min },
            worker_bytes_max: self.worker_bytes_max.load(Ordering::Relaxed),
            pool_wait: Duration::from_nanos(self.pool_wait_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time view of [`MorselStats`], carried in
/// `QueryStats::morsels`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MorselSnapshot {
    /// Morsels planned across all node schedules.
    pub planned: u64,
    /// Morsels a worker stole from another worker's queue.
    pub stolen: u64,
    /// Workers started across all node pools.
    pub workers: u64,
    /// Largest adaptive byte target any node planned with.
    pub target_bytes: u64,
    /// Fewest bytes any single worker processed.
    pub worker_bytes_min: u64,
    /// Most bytes any single worker processed.
    pub worker_bytes_max: u64,
    /// Total worker time in the pool but not executing a morsel.
    pub pool_wait: Duration,
}

/// Counters and timings of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Id the query service assigned this execution (0 when the query
    /// ran outside the service plane, e.g. in unit tests).
    pub query_id: u64,
    /// Time spent queued in admission before an execution slot opened.
    pub queue_wait: Duration,
    /// Rows materialized by the extraction service (before filtering).
    pub rows_scanned: u64,
    /// Rows surviving the filtering service (= rows delivered).
    pub rows_selected: u64,
    /// Bytes read from data files.
    pub bytes_read: u64,
    /// Payload bytes shipped by the data mover.
    pub bytes_moved: u64,
    /// Aligned file chunks processed.
    pub afcs: u64,
    /// AFC groups planned before static pruning.
    pub groups_total: u64,
    /// AFC groups dropped as provably empty (no I/O issued for them).
    pub groups_pruned: u64,
    /// AFC groups whose predicate was provably true (filter skipped).
    pub groups_full: u64,
    /// Bytes the pruned groups would have read.
    pub bytes_avoided: u64,
    /// I/O scheduler counters: syscalls, bytes issued vs. used,
    /// coalescing, prefetch and cache behaviour.
    pub io: IoSnapshot,
    /// Data mover counters: sends, and how often/long the bounded
    /// transport back-pressured the node pipelines.
    pub mover: MoverSnapshot,
    /// Morsel scheduler counters: work planned, stolen, and how evenly
    /// the worker pools shared the bytes.
    pub morsels: MorselSnapshot,
    /// Time spent planning (phase 2: grouping + AFC alignment).
    pub plan_time: Duration,
    /// Wall time of the parallel execute/transfer phase.
    pub exec_time: Duration,
    /// Per-node pipeline busy time (extract + filter + partition +
    /// move), indexed by completion order.
    pub node_busy: Vec<Duration>,
}

impl QueryStats {
    /// Total wall time.
    pub fn total_time(&self) -> Duration {
        self.plan_time + self.exec_time
    }

    /// Simulated cluster wall time: planning plus the slowest node's
    /// pipeline time. On a real N-node cluster the nodes run
    /// concurrently, so this is what a client would observe; on the
    /// single-core simulation host it is the faithful scaling metric
    /// (see DESIGN.md). Most accurate when the query ran with
    /// `QueryOptions::sequential_nodes`, which removes timesharing
    /// noise from the per-node measurements.
    pub fn simulated_parallel_time(&self) -> Duration {
        self.plan_time + self.node_busy.iter().copied().max().unwrap_or_default()
    }

    /// Selectivity of the filtering service.
    pub fn selectivity(&self) -> f64 {
        if self.rows_scanned == 0 {
            0.0
        } else {
            self.rows_selected as f64 / self.rows_scanned as f64
        }
    }
}

impl fmt::Display for QueryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Aggregation pushdown line only when the query aggregated.
        let agg = if self.mover.agg_blocks > 0 {
            format!(
                "; agg: {} blocks, {} rows in -> {} groups out ({:.1}x reduction)",
                self.mover.agg_blocks,
                self.mover.agg_rows_in,
                self.mover.agg_groups_out,
                self.mover.agg_reduction().unwrap_or(0.0),
            )
        } else {
            String::new()
        };
        write!(
            f,
            "{} rows selected / {} scanned ({} AFCs, {} KiB read, {} KiB moved) in {:?}              (plan {:?}, exec {:?}; simulated cluster {:?}; prune: {}/{} groups pruned, {} full, {} KiB avoided; io: {} syscalls, coalesce {:.1}x, {} KiB issued / {} KiB used, cache hit {:.0}%, prefetch {}/{} waits; mover: {} sends, {} blocked {:?}, peak buffer {}{agg}; morsels: {} planned, {} stolen, {} workers, {}..{} KiB/worker, pool wait {:?}; queued {:?})",
            self.rows_selected,
            self.rows_scanned,
            self.afcs,
            self.bytes_read / 1024,
            self.bytes_moved / 1024,
            self.total_time(),
            self.plan_time,
            self.exec_time,
            self.simulated_parallel_time(),
            self.groups_pruned,
            self.groups_total,
            self.groups_full,
            self.bytes_avoided / 1024,
            self.io.read_syscalls,
            self.io.coalesce_ratio(),
            self.io.bytes_issued / 1024,
            self.io.bytes_used / 1024,
            self.io.cache_hit_rate() * 100.0,
            self.io.prefetch_hits,
            self.io.prefetch_waits,
            self.mover.sends,
            self.mover.blocked_sends,
            self.mover.send_wait,
            self.mover.peak_buffered_blocks,
            self.morsels.planned,
            self.morsels.stolen,
            self.morsels.workers,
            self.morsels.worker_bytes_min / 1024,
            self.morsels.worker_bytes_max / 1024,
            self.morsels.pool_wait,
            self.queue_wait,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_handles_zero() {
        let s = QueryStats::default();
        assert_eq!(s.selectivity(), 0.0);
        let s = QueryStats { rows_scanned: 100, rows_selected: 25, ..Default::default() };
        assert_eq!(s.selectivity(), 0.25);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = QueryStats {
            rows_scanned: 100,
            rows_selected: 40,
            bytes_read: 4096,
            afcs: 7,
            groups_total: 10,
            groups_pruned: 3,
            groups_full: 2,
            bytes_avoided: 8192,
            io: IoSnapshot {
                read_syscalls: 3,
                runs_scheduled: 12,
                bytes_issued: 2048,
                bytes_used: 4096,
                cache_hit_bytes: 1024,
                cache_miss_bytes: 1024,
                ..Default::default()
            },
            mover: crate::mover::MoverSnapshot {
                sends: 9,
                blocked_sends: 2,
                peak_buffered_blocks: 5,
                agg_blocks: 6,
                agg_rows_in: 1200,
                agg_groups_out: 48,
                ..Default::default()
            },
            morsels: MorselSnapshot {
                planned: 16,
                stolen: 3,
                workers: 4,
                worker_bytes_min: 1024,
                worker_bytes_max: 2048,
                ..Default::default()
            },
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("40 rows selected / 100 scanned"), "{text}");
        assert!(text.contains("7 AFCs"), "{text}");
        assert!(text.contains("3 syscalls"), "{text}");
        assert!(text.contains("coalesce 4.0x"), "{text}");
        assert!(text.contains("2 KiB issued / 4 KiB used"), "{text}");
        assert!(text.contains("cache hit 50%"), "{text}");
        assert!(text.contains("9 sends, 2 blocked"), "{text}");
        assert!(text.contains("peak buffer 5"), "{text}");
        assert!(
            text.contains("6 blocks, 1200 rows in -> 48 groups out (25.0x reduction)"),
            "{text}"
        );
        assert!(text.contains("3/10 groups pruned, 2 full, 8 KiB avoided"), "{text}");
        assert!(text.contains("16 planned, 3 stolen, 4 workers, 1..2 KiB/worker"), "{text}");
    }

    #[test]
    fn morsel_snapshot_maps_untouched_min_to_zero() {
        let stats = MorselStats::default();
        let snap = stats.snapshot();
        assert_eq!(snap.worker_bytes_min, 0);
        stats.worker_bytes_min.fetch_min(512, Ordering::Relaxed);
        stats.worker_bytes_max.fetch_max(512, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.worker_bytes_min, 512);
        assert_eq!(snap.worker_bytes_max, 512);
    }

    #[test]
    fn total_time_sums_phases() {
        let s = QueryStats {
            plan_time: Duration::from_millis(2),
            exec_time: Duration::from_millis(40),
            ..Default::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(42));
    }
}
