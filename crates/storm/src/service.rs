//! The query service plane: admission, sessions, and the staged
//! execution loop.
//!
//! [`QueryService`] is the front end of the STORM runtime. It assigns
//! each query a [`QueryId`], admits it through the shared
//! [`Admission`] gate (priority-then-FIFO, bounded concurrency), and
//! runs it as a *session*: plan centrally, fan plan fragments out to
//! the per-node [`ExecutorService`]s, and absorb mover blocks until
//! every node reports done. Sessions are either blocking
//! ([`QueryService::execute_with`], caller's thread) or detached
//! ([`QueryService::submit`], own thread + [`SessionHandle`]).
//! Dropping a handle without taking the result cancels the query —
//! the client-side-drop abort path.
//!
//! Every session carries a [`CancelToken`] threaded through admission,
//! extraction, I/O scheduling, filtering, and the mover; the drain
//! loop always waits for all node `Done` reports, so a cancelled query
//! leaves no orphaned cluster jobs, and its RAII admission slot and
//! per-query channels/file state are released on every exit path.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver};
use dv_layout::io::IoStats;
use dv_layout::{
    AggPrep, CompiledDataset, CostParams, CostReport, Extractor, IoOptions, RuntimeCounters,
    SegmentCache, SharedHandles,
};
use dv_sql::{bind, parse, AggOutput, BoundExpr, BoundQuery, UdfRegistry};
use dv_types::{
    AggBlock, AggTable, CancelToken, ColumnBlock, DvError, Result, RowBlock, Schema, Table,
};

use crate::admission::Admission;
use crate::cluster::Cluster;
use crate::executor::{AggExec, ExecutorService, NodeWorker};
use crate::mover::{absorb_transfer, MoverMessage, MoverStats};
use crate::server::QueryOptions;
use crate::stats::{MorselStats, QueryStats};

/// Identifier the service assigns to each admitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Service-level configuration, fixed at server construction.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Queries admitted concurrently; the rest queue (min 1).
    pub max_concurrent: usize,
    /// Ceiling on `QueryOptions::intra_node_threads` — a per-query
    /// request above this is clamped at execution time, so one greedy
    /// query cannot oversubscribe a shared server. Defaults to the
    /// host's available parallelism.
    pub max_intra_node_threads: usize,
    /// Cost-based admission: reject any query whose *static* planned
    /// byte bound (`CostReport::bytes_read`, the exact post-prune
    /// payload) exceeds this budget, with a DV401-coded error, before
    /// any fragment is dispatched. `None` disables the check.
    pub max_plan_bytes: Option<u64>,
    /// Cost-based admission: reject any query whose static absorber
    /// group-memory bound (`CostReport::group_memory_hi`) exceeds this
    /// budget, with a DV404-coded error. `None` disables the check.
    pub max_group_memory: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_concurrent: 4,
            max_intra_node_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_plan_bytes: None,
            max_group_memory: None,
        }
    }
}

/// Per-submission options, orthogonal to [`QueryOptions`] (which
/// shapes execution): how the query enters and leaves the service.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Admission priority; higher values are admitted first, ties
    /// break FIFO.
    pub priority: u8,
    /// Deadline for the whole query (queue wait included); expiry
    /// cancels it with [`DvError::Cancelled`].
    pub timeout: Option<Duration>,
    /// Externally supplied cancellation token (a fresh one is made
    /// when absent). The timeout, if any, still applies on top.
    pub cancel: Option<CancelToken>,
}

impl SubmitOptions {
    fn token(&self) -> CancelToken {
        match (&self.cancel, self.timeout) {
            (Some(t), None) => t.clone(),
            (Some(t), Some(timeout)) => t.child_with_deadline(Some(Instant::now() + timeout)),
            (None, Some(timeout)) => CancelToken::with_timeout(timeout),
            (None, None) => CancelToken::new(),
        }
    }
}

/// Everything shared by all sessions of one server: the compiled
/// dataset, UDFs, the simulated cluster and its per-node executors,
/// and the cross-query caches (segment cache, open-file pool).
pub(crate) struct ServerCore {
    pub compiled: Arc<CompiledDataset>,
    pub udfs: Arc<UdfRegistry>,
    pub segment_cache: Arc<SegmentCache>,
    pub shared_handles: SharedHandles,
    pub executors: Vec<ExecutorService>,
    /// Server-wide ceiling on per-query intra-node worker threads.
    pub max_intra_node_threads: usize,
    /// Cost-based admission byte budget (see [`ServiceConfig`]).
    pub max_plan_bytes: Option<u64>,
    /// Cost-based admission group-memory budget (see [`ServiceConfig`]).
    pub max_group_memory: Option<u64>,
}

impl ServerCore {
    pub fn new(
        compiled: Arc<CompiledDataset>,
        udfs: UdfRegistry,
        config: &ServiceConfig,
    ) -> ServerCore {
        let nodes = compiled.model.node_count();
        let cluster = Arc::new(Cluster::new(nodes));
        let executors =
            (0..nodes).map(|node| ExecutorService::new(node, Arc::clone(&cluster))).collect();
        ServerCore {
            compiled,
            udfs: Arc::new(udfs),
            segment_cache: Arc::new(SegmentCache::new(IoOptions::default().cache_bytes)),
            shared_handles: SharedHandles::new(),
            executors,
            max_intra_node_threads: config.max_intra_node_threads.max(1),
            max_plan_bytes: config.max_plan_bytes,
            max_group_memory: config.max_group_memory,
        }
    }
}

/// The front-end service: admission, session tracking, execution.
#[derive(Clone)]
pub struct QueryService {
    core: Arc<ServerCore>,
    admission: Arc<Admission>,
    next_id: Arc<AtomicU64>,
    /// Cancel tokens of live sessions, keyed by query id — the
    /// service-side view used by [`QueryService::cancel`].
    sessions: Arc<Mutex<HashMap<u64, CancelToken>>>,
}

impl QueryService {
    pub(crate) fn new(core: Arc<ServerCore>, config: &ServiceConfig) -> QueryService {
        QueryService {
            core,
            admission: Admission::new(config.max_concurrent),
            next_id: Arc::new(AtomicU64::new(0)),
            sessions: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Queries currently executing.
    pub fn running(&self) -> usize {
        self.admission.running()
    }

    /// Queries waiting for an execution slot.
    pub fn queued(&self) -> usize {
        self.admission.queued()
    }

    /// The configured concurrency limit.
    pub fn max_concurrent(&self) -> usize {
        self.admission.max_concurrent()
    }

    /// Ids of sessions the service is tracking (queued or running).
    pub fn active(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self
            .sessions
            .lock()
            .expect("session table poisoned")
            .keys()
            .map(|&id| QueryId(id))
            .collect();
        ids.sort();
        ids
    }

    /// Cancel a tracked session by id; `false` if unknown (already
    /// finished or never existed).
    pub fn cancel(&self, id: QueryId) -> bool {
        match self.sessions.lock().expect("session table poisoned").get(&id.0) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// The dataset model served.
    pub fn model(&self) -> &dv_descriptor::DatasetModel {
        &self.core.compiled.model
    }

    /// The compiled dataset (for plan inspection / codegen rendering).
    pub fn compiled(&self) -> &CompiledDataset {
        &self.core.compiled
    }

    /// Parse + bind a query against the served schema.
    pub fn bind_sql(&self, sql: &str) -> Result<BoundQuery> {
        let q = parse(sql)?;
        bind(&q, &self.core.compiled.model.schema, &self.core.udfs)
    }

    /// Execute on the caller's thread with default submission options.
    pub fn execute(&self, sql: &str, opts: &QueryOptions) -> Result<(Vec<Table>, QueryStats)> {
        self.execute_with(sql, opts, &SubmitOptions::default())
    }

    /// Execute on the caller's thread: bind, admit, run, absorb.
    pub fn execute_with(
        &self,
        sql: &str,
        opts: &QueryOptions,
        sub: &SubmitOptions,
    ) -> Result<(Vec<Table>, QueryStats)> {
        let bq = self.bind_sql(sql)?;
        self.execute_bound_with(&bq, opts, sub)
    }

    /// Execute a pre-bound query on the caller's thread.
    pub fn execute_bound_with(
        &self,
        bq: &BoundQuery,
        opts: &QueryOptions,
        sub: &SubmitOptions,
    ) -> Result<(Vec<Table>, QueryStats)> {
        let id = self.fresh_id();
        let cancel = sub.token();
        let _session = SessionGuard::register(&self.sessions, id, cancel.clone());
        self.run_admitted(id, bq, opts, sub.priority, &cancel)
    }

    /// Submit a detached session: binding happens here (so syntax and
    /// binding errors surface synchronously), execution on its own
    /// thread. The returned handle is the only way to the result;
    /// dropping it un-taken cancels the query.
    pub fn submit(
        &self,
        sql: &str,
        opts: &QueryOptions,
        sub: &SubmitOptions,
    ) -> Result<SessionHandle> {
        let bq = self.bind_sql(sql)?;
        let id = self.fresh_id();
        let cancel = sub.token();
        let (tx, rx) = bounded::<Result<(Vec<Table>, QueryStats)>>(1);
        let service = self.clone();
        let opts = opts.clone();
        let priority = sub.priority;
        let session_cancel = cancel.clone();
        // Register before the thread exists so the id is cancellable
        // the moment `submit` returns; the guard travels with the
        // session and deregisters on any exit.
        let guard = SessionGuard::register(&self.sessions, id, cancel.clone());
        std::thread::Builder::new()
            .name(format!("dv-session-{id}"))
            .spawn(move || {
                let _session = guard;
                let result = service.run_admitted(id, &bq, &opts, priority, &session_cancel);
                // A dropped handle means nobody wants the result.
                let _ = tx.send(result);
            })
            .map_err(|e| DvError::Runtime(format!("spawn session thread: {e}")))?;
        Ok(SessionHandle { id, cancel, rx, taken: false })
    }

    fn fresh_id(&self) -> QueryId {
        QueryId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// The session body: queue for admission, execute. The caller
    /// holds the [`SessionGuard`]; the admission slot acquired here is
    /// RAII, so it is released however this returns.
    fn run_admitted(
        &self,
        id: QueryId,
        bq: &BoundQuery,
        opts: &QueryOptions,
        priority: u8,
        cancel: &CancelToken,
    ) -> Result<(Vec<Table>, QueryStats)> {
        let wait_start = Instant::now();
        let _slot = self.admission.acquire(priority, cancel)?;
        let queue_wait = wait_start.elapsed();
        let (tables, mut stats) = run_session(&self.core, bq, opts, cancel)?;
        stats.query_id = id.0;
        stats.queue_wait = queue_wait;
        Ok((tables, stats))
    }
}

/// RAII registration of a session in the service's tracking table.
struct SessionGuard {
    sessions: Arc<Mutex<HashMap<u64, CancelToken>>>,
    id: u64,
}

impl SessionGuard {
    fn register(
        sessions: &Arc<Mutex<HashMap<u64, CancelToken>>>,
        id: QueryId,
        token: CancelToken,
    ) -> SessionGuard {
        sessions.lock().expect("session table poisoned").insert(id.0, token);
        SessionGuard { sessions: Arc::clone(sessions), id: id.0 }
    }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.sessions.lock().expect("session table poisoned").remove(&self.id);
    }
}

/// A detached session's client-side handle.
///
/// Holds the query's cancel token and the one-shot result channel.
/// [`SessionHandle::wait`] consumes the handle and blocks for the
/// result; dropping the handle without waiting cancels the query —
/// a disappearing client aborts its scan instead of leaking work.
pub struct SessionHandle {
    id: QueryId,
    cancel: CancelToken,
    rx: Receiver<Result<(Vec<Table>, QueryStats)>>,
    taken: bool,
}

impl SessionHandle {
    /// The service-assigned query id.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// A clone of the session's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Request cancellation (the session ends with
    /// [`DvError::Cancelled`] unless it already finished).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the session finishes and take its result.
    pub fn wait(mut self) -> Result<(Vec<Table>, QueryStats)> {
        self.taken = true;
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(DvError::Runtime("session thread terminated without a result".into())),
        }
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        if !self.taken {
            self.cancel.cancel();
        }
    }
}

/// A block as shipped by a node pipeline, awaiting ordered absorption.
enum Shipped {
    Rows(RowBlock),
    Cols(ColumnBlock),
}

/// Aggregation half of the absorber: per-AFC partials collected from
/// the nodes (pushdown) or computed here on arrival (ablation), merged
/// and finalized deterministically when every node is done.
struct AbsorbAgg {
    /// Positions of group keys / aggregate arguments within *shipped*
    /// blocks (= the query projection) — used only in ablation mode,
    /// where the nodes ship filtered projected rows.
    group_pos: Vec<usize>,
    arg_pos: Vec<Option<usize>>,
    /// Reusable per-block fold table (ablation mode).
    scratch: AggTable,
    /// Partial-aggregate blocks, merged in `(node, seq)` order at the
    /// end. Each `(node, seq, key)` entry appears exactly once.
    parts: Vec<AggBlock>,
}

/// Client-side streaming reassembly of mover blocks.
///
/// Blocks arrive in whatever order morsel workers and stealing produced
/// them; every block carries its source node and plan-time sequence tag
/// (the starting scanned ordinal). Instead of buffering the whole
/// result and stable-sorting at the end, the absorber drains
/// incrementally: each node's advisory [`MoverMessage::MorselDone`]
/// markers build a contiguous-coverage watermark `W(n)` — the prefix
/// `[0, W)` of the node's scanned ordinals whose morsels all completed.
/// A buffered block with `seq < W(n)` can never be preceded by a
/// still-in-flight one, so it moves into its per-(processor, node)
/// output run immediately; peak buffered blocks track what is genuinely
/// in flight, not the result size. Correctness never depends on the
/// markers: a node's `Done` drains its remainder unconditionally, and
/// per-node runs concatenated in node order equal the old global
/// `(node, seq)` sort exactly.
struct Absorber<'a> {
    node_count: usize,
    /// `[processor][node]` reorder buffers keyed by sequence tag.
    buf: Vec<Vec<BTreeMap<u64, Shipped>>>,
    /// `[processor][node]` output runs, drained in ascending seq.
    runs: Vec<Vec<Table>>,
    /// Per node: completed-morsel spans (`base → rows`) not yet folded
    /// into the watermark.
    spans: Vec<BTreeMap<u64, u64>>,
    /// Per node: contiguous-coverage watermark.
    watermark: Vec<u64>,
    buffered: u64,
    mover_stats: &'a MoverStats,
    agg: Option<AbsorbAgg>,
}

impl<'a> Absorber<'a> {
    fn new(
        processors: usize,
        node_count: usize,
        output_schema: &Schema,
        agg: Option<AbsorbAgg>,
        mover_stats: &'a MoverStats,
    ) -> Absorber<'a> {
        Absorber {
            node_count,
            buf: (0..processors)
                .map(|_| (0..node_count).map(|_| BTreeMap::new()).collect())
                .collect(),
            runs: (0..processors)
                .map(|_| (0..node_count).map(|_| Table::empty(output_schema.clone())).collect())
                .collect(),
            spans: (0..node_count).map(|_| BTreeMap::new()).collect(),
            watermark: vec![0; node_count],
            buffered: 0,
            mover_stats,
            agg,
        }
    }

    /// A data block arrived. Aggregate-ablation queries fold it into a
    /// per-block partial immediately (one block = one AFC = one
    /// canonical fold unit — nothing is buffered); everything else
    /// enters the reorder buffer until its watermark covers it.
    fn on_data(&mut self, processor: usize, node: usize, seq: u64, shipped: Shipped) {
        if let Some(agg) = &mut self.agg {
            agg.scratch.clear();
            match &shipped {
                Shipped::Rows(b) => {
                    for row in &b.rows {
                        agg.scratch.fold_values(row, &agg.group_pos, &agg.arg_pos);
                    }
                }
                Shipped::Cols(b) => {
                    agg.scratch.fold_block(b, &agg.group_pos, &agg.arg_pos);
                }
            }
            let mut out = AggBlock::new(node, agg.scratch.key_width(), agg.scratch.funcs());
            agg.scratch.drain_into(seq, &mut out);
            agg.parts.push(out);
            return;
        }
        self.buf[processor][node].insert(seq, shipped);
        self.buffered += 1;
        self.mover_stats.note_buffered(self.buffered);
    }

    /// A partial-aggregate block arrived (pushdown mode).
    fn on_agg(&mut self, block: AggBlock) {
        if let Some(agg) = &mut self.agg {
            agg.parts.push(block);
        }
    }

    /// Advance `node`'s watermark with a completed-morsel span and
    /// drain every buffered block it now covers.
    fn on_morsel_done(&mut self, node: usize, base: u64, rows: u64) {
        self.spans[node].insert(base, rows);
        let mut w = self.watermark[node];
        while let Some(r) = self.spans[node].remove(&w) {
            w += r;
        }
        self.watermark[node] = w;
        self.drain_node(node, w);
    }

    /// Unconditional drain when `node` reports done — the safety net
    /// that makes correctness independent of the advisory markers.
    fn on_node_done(&mut self, node: usize) {
        self.drain_node(node, u64::MAX);
    }

    fn drain_node(&mut self, node: usize, below: u64) {
        for p in 0..self.buf.len() {
            let map = &mut self.buf[p][node];
            let rest = if below == u64::MAX { BTreeMap::new() } else { map.split_off(&below) };
            let ready = std::mem::replace(map, rest);
            for (_, shipped) in ready {
                self.buffered -= 1;
                match shipped {
                    Shipped::Rows(b) => self.runs[p][node].absorb(b),
                    Shipped::Cols(b) => self.runs[p][node].absorb_columns(b),
                }
            }
        }
    }

    /// Move the per-node runs into the client tables, node-major —
    /// exactly the old global `(node, seq)` order.
    fn finish(mut self, tables: &mut [Table]) -> Option<AbsorbAgg> {
        for node in 0..self.node_count {
            self.on_node_done(node);
        }
        for (p, t) in tables.iter_mut().enumerate() {
            for node in 0..self.node_count {
                t.rows.append(&mut self.runs[p][node].rows);
            }
        }
        self.agg
    }
}

/// Merge the collected per-AFC partials in ascending `(node, seq)`
/// order and finalize into result rows sorted by decoded group key —
/// the deterministic fold tree shared by every engine, thread count and
/// pushdown mode.
fn finalize_agg(agg: AbsorbAgg, prep: &AggPrep, schema: &Schema, out: &mut Table) {
    let spec = &prep.spec;
    let mut order: Vec<(usize, usize)> =
        agg.parts.iter().enumerate().flat_map(|(p, b)| (0..b.len()).map(move |e| (p, e))).collect();
    order.sort_by_key(|&(p, e)| (agg.parts[p].source_node, agg.parts[p].seqs[e]));
    let mut table = AggTable::new(&spec.funcs(), spec.group_by.len());
    for (p, e) in order {
        let b = &agg.parts[p];
        table.merge_entry(b.keys[e], &b.states_at(e));
    }
    let group_dtypes = spec.group_dtypes(schema);
    for i in table.sorted_indices(&group_dtypes) {
        let keys = table.key_values(i, &group_dtypes);
        let row: Vec<dv_types::Value> = spec
            .output
            .iter()
            .map(|o| match *o {
                AggOutput::Group(k) => keys[k],
                AggOutput::Agg(a) => table.accs[a].finalize(i, spec.result_dtype(a, schema)),
            })
            .collect();
        out.rows.push(row);
    }
}

/// Execute one admitted session: central planning, fragment fan-out
/// via the per-node executors, and the absorb loop. This is the old
/// monolithic `StormServer::execute_bound`, now fed by the service
/// plane and threaded with the session's cancel token.
pub(crate) fn run_session(
    core: &Arc<ServerCore>,
    bq: &BoundQuery,
    opts: &QueryOptions,
    cancel: &CancelToken,
) -> Result<(Vec<Table>, QueryStats)> {
    if opts.client_processors == 0 {
        return Err(DvError::Runtime("client_processors must be >= 1".into()));
    }
    // Clamp the per-query worker request to the server-wide ceiling.
    let mut opts = opts.clone();
    opts.intra_node_threads = opts.intra_node_threads.clamp(1, core.max_intra_node_threads);
    let opts = &opts;
    let mut stats = QueryStats::default();
    cancel.check()?;

    // Phase 2a: central planning (range analysis, working row).
    let plan_start = Instant::now();
    let mut prep = core.compiled.prepare_query(bq)?;
    if opts.no_prune {
        prep.prune_enabled = false;
    }
    if opts.no_agg_pushdown {
        prep.agg_pushdown = false;
    }
    let prep = Arc::new(prep);

    // Phase 2a': cost-based admission (dv-cost). When a budget is
    // configured — or `DV_COST_VALIDATE=1` asks for drain-time bound
    // checking — plan every node centrally, derive the static
    // [`CostReport`], and reject statically over-budget queries with a
    // DV-coded error before any fragment is dispatched. The plans are
    // reused by the dispatch closure, so admitted queries pay the
    // analysis but never plan twice.
    let budgeted = core.max_plan_bytes.is_some() || core.max_group_memory.is_some();
    let cost_validate = cost_validate_enabled();
    let (pre_planned, cost_report) = if budgeted || cost_validate {
        let node_count = core.compiled.model.node_count();
        let plans: Vec<dv_layout::NodePlan> = (0..node_count)
            .map(|node| core.compiled.plan_node(&prep, node))
            .collect::<Result<_>>()?;
        let mut params = CostParams::new(&opts.io, opts.client_processors, bq.predicate.is_some());
        // The I/O scheduler (run-coalescing reads, scheduled-run
        // accounting) only runs on the columnar engine; every other
        // path issues one direct read per AFC entry.
        params.io_enabled = opts.io.enabled && opts.exec == crate::server::ExecMode::Columnar;
        let report = CostReport::analyze_nodes(
            &plans,
            &prep.working,
            &prep.output_positions,
            prep.agg.as_ref(),
            prep.agg_pushdown,
            &params,
        );
        if let Some(budget) = core.max_plan_bytes {
            if report.bytes_read.hi > budget {
                return Err(DvError::CostBudget {
                    code: "DV401",
                    message: format!(
                        "static byte bound {} exceeds the {budget}-byte plan budget",
                        report.bytes_read.hi
                    ),
                });
            }
        }
        if let Some(budget) = core.max_group_memory {
            let need = report.group_memory_hi();
            if need > budget {
                return Err(DvError::CostBudget {
                    code: "DV404",
                    message: format!(
                        "static group-memory bound {need} exceeds the \
                         {budget}-byte memory budget"
                    ),
                });
            }
        }
        (Some(Arc::new(plans)), Some(report))
    } else {
        (None, None)
    };
    stats.plan_time = plan_start.elapsed();

    // Per-query aggregation context shared by all node workers. With
    // pushdown on, each worker folds morsels into per-AFC partial
    // tables and ships compact aggregate blocks; with it off, the
    // nodes ship filtered projected rows (one block per AFC) and the
    // absorber computes the identical per-AFC partials on arrival.
    let agg_exec: Option<Arc<AggExec>> = prep.agg.as_ref().map(|a| {
        Arc::new(AggExec {
            funcs: a.spec.funcs(),
            group_pos: a.group_pos.clone(),
            arg_pos: a.arg_pos.clone(),
            pushdown: prep.agg_pushdown,
        })
    });
    // Absorber-side fold positions index into *shipped* blocks, whose
    // columns follow the query projection (sorted dedup of group keys
    // and aggregate arguments).
    let absorb_agg = prep.agg.as_ref().map(|a| {
        let ppos = |attr: usize| {
            bq.projection
                .iter()
                .position(|&x| x == attr)
                .expect("aggregate attr missing from projection")
        };
        AbsorbAgg {
            group_pos: a.spec.group_by.iter().map(|&g| ppos(g)).collect(),
            arg_pos: a.spec.aggs.iter().map(|ag| ag.arg.map(ppos)).collect(),
            scratch: AggTable::new(&a.spec.funcs(), a.spec.group_by.len()),
            parts: Vec::new(),
        }
    });

    let output_schema = bq.output_schema();
    let schema_len = core.compiled.model.schema.len();
    let working_attrs = Arc::new(prep.working.attrs.clone());
    let working_dtypes = Arc::new(prep.working.dtypes.clone());
    let output_positions = Arc::new(prep.output_positions.clone());
    let predicate: Arc<Option<BoundExpr>> = Arc::new(bq.predicate.clone());
    // Per-query extractor over the server's shared open-file pool,
    // checkpointed on this session's cancel token.
    let extractor = Extractor::new(&core.compiled, prep.working.attrs.len())
        .with_shared_handles(&core.shared_handles)
        .with_cancel(cancel.clone());

    let rows_scanned = Arc::new(AtomicU64::new(0));
    let rows_selected = Arc::new(AtomicU64::new(0));
    let bytes_read = Arc::new(AtomicU64::new(0));
    let bytes_moved = Arc::new(AtomicU64::new(0));
    let afc_count = Arc::new(AtomicU64::new(0));
    let prune_total = Arc::new(AtomicU64::new(0));
    let prune_pruned = Arc::new(AtomicU64::new(0));
    let prune_full = Arc::new(AtomicU64::new(0));
    let prune_bytes_avoided = Arc::new(AtomicU64::new(0));
    let io_stats = Arc::new(IoStats::default());
    let mover_stats = Arc::new(MoverStats::default());
    let morsel_stats = Arc::new(MorselStats::default());

    // The mover is the only inter-stage transport: a bounded typed
    // channel, so a slow absorber back-pressures the node pipelines.
    let (tx, rx) = bounded::<MoverMessage>(opts.mover_capacity.max(1));
    let exec_start = Instant::now();
    let node_count = core.compiled.model.node_count();
    let mut tables: Vec<Table> =
        (0..opts.client_processors).map(|_| Table::empty(output_schema.clone())).collect();
    let mut first_error: Option<DvError> = None;
    let mut node_busy: Vec<std::time::Duration> = Vec::with_capacity(node_count);

    let dispatch = |node: usize, tx: &crossbeam::channel::Sender<MoverMessage>| {
        let compiled = Arc::clone(&core.compiled);
        let prep = Arc::clone(&prep);
        let pre = pre_planned.clone();
        let worker = NodeWorker {
            node,
            extractor: extractor.clone(),
            udfs: Arc::clone(&core.udfs),
            predicate: Arc::clone(&predicate),
            working_attrs: Arc::clone(&working_attrs),
            working_dtypes: Arc::clone(&working_dtypes),
            output_positions: Arc::clone(&output_positions),
            schema_len,
            opts: opts.clone(),
            cancel: cancel.clone(),
            rows_scanned: Arc::clone(&rows_scanned),
            rows_selected: Arc::clone(&rows_selected),
            bytes_read: Arc::clone(&bytes_read),
            bytes_moved: Arc::clone(&bytes_moved),
            afc_count: Arc::clone(&afc_count),
            prune_total: Arc::clone(&prune_total),
            prune_pruned: Arc::clone(&prune_pruned),
            prune_full: Arc::clone(&prune_full),
            prune_bytes_avoided: Arc::clone(&prune_bytes_avoided),
            io_stats: Arc::clone(&io_stats),
            mover_stats: Arc::clone(&mover_stats),
            morsel_stats: Arc::clone(&morsel_stats),
            segment_cache: Arc::clone(&core.segment_cache),
            agg: agg_exec.clone(),
        };
        let worker_tx = tx.clone();
        // Phase 2b (the node's generated index function) runs inside
        // the fragment and counts as this node's work.
        core.executors[node].spawn_fragment(tx.clone(), move || match &pre {
            // Cost-admitted sessions already planned every node
            // centrally; reuse that plan instead of planning twice.
            Some(plans) => {
                let np = &plans[node];
                worker.record_prune(&np.prune);
                worker.run(&np.afcs, &np.prune.verdicts, &worker_tx)
            }
            None => compiled.plan_node(&prep, node).and_then(|np| {
                worker.record_prune(&np.prune);
                worker.run(&np.afcs, &np.prune.verdicts, &worker_tx)
            }),
        });
    };

    // Streaming ordered reassembly (see `Absorber` above): morsel
    // workers ship in whatever order stealing produced, but every
    // block carries its node and plan-time sequence tag (the starting
    // scanned ordinal), so draining per-node buffers in ascending seq
    // and concatenating runs node-major reconstructs exactly the
    // serial schedule order. This is what makes results bit-identical
    // across thread counts and steal orders — without holding the
    // whole result in the reorder buffer.
    let mut absorber =
        Absorber::new(opts.client_processors, node_count, &output_schema, absorb_agg, &mover_stats);

    // Drain messages until `want` Done messages arrive. Always drains
    // to completion — a cancelled query still collects every node's
    // Done, so no fragment is left running or blocked on the mover.
    // The simulated client link is charged here, on the absorbing
    // side: concurrent sessions overlap their transfer stalls, and a
    // cancelled one skips the remaining sleeps (the error surfaces
    // from the final checkpoint) while still collecting every Done.
    let drain = |want: usize,
                 absorber: &mut Absorber,
                 node_busy: &mut Vec<std::time::Duration>,
                 first_error: &mut Option<DvError>| {
        let mut done = 0usize;
        for msg in rx.iter() {
            match msg {
                MoverMessage::Block { processor, seq, block } => {
                    let _ = absorb_transfer(opts.bandwidth.as_ref(), block.wire_bytes(), cancel);
                    absorber.on_data(processor, block.source_node, seq, Shipped::Rows(block));
                }
                MoverMessage::Columns { processor, seq, block } => {
                    let _ = absorb_transfer(opts.bandwidth.as_ref(), block.wire_bytes(), cancel);
                    absorber.on_data(processor, block.source_node, seq, Shipped::Cols(block));
                }
                MoverMessage::Agg { block, .. } => {
                    let _ = absorb_transfer(opts.bandwidth.as_ref(), block.wire_bytes(), cancel);
                    absorber.on_agg(block);
                }
                MoverMessage::MorselDone { node, base, rows } => {
                    absorber.on_morsel_done(node, base, rows);
                }
                MoverMessage::Done { node, result, busy } => {
                    absorber.on_node_done(node);
                    done += 1;
                    node_busy.push(busy);
                    if let Err(e) = result {
                        first_error.get_or_insert(e);
                    }
                    if done == want {
                        break;
                    }
                }
            }
        }
    };

    if opts.sequential_nodes {
        for node in 0..node_count {
            dispatch(node, &tx);
            drain(1, &mut absorber, &mut node_busy, &mut first_error);
        }
    } else {
        for node in 0..node_count {
            dispatch(node, &tx);
        }
        drain(node_count, &mut absorber, &mut node_busy, &mut first_error);
    }
    drop(tx);
    stats.exec_time = exec_start.elapsed();
    stats.node_busy = node_busy;
    if let Some(e) = first_error {
        return Err(e);
    }
    // All nodes succeeded, but a deadline may have expired between
    // their last checkpoint and here; a cancelled query must not
    // return a (possibly complete) result as if nothing happened.
    cancel.check()?;

    // Move the drained runs into the client tables; for aggregate
    // queries, merge and finalize the collected partials instead —
    // aggregate results are always delivered whole to processor 0.
    let agg_state = absorber.finish(&mut tables);
    if let (Some(agg), Some(aprep)) = (agg_state, prep.agg.as_ref()) {
        finalize_agg(agg, aprep, &core.compiled.model.schema, &mut tables[0]);
    }

    stats.rows_scanned = rows_scanned.load(Ordering::Relaxed);
    stats.rows_selected = rows_selected.load(Ordering::Relaxed);
    stats.bytes_read = bytes_read.load(Ordering::Relaxed);
    stats.bytes_moved = bytes_moved.load(Ordering::Relaxed);
    stats.afcs = afc_count.load(Ordering::Relaxed);
    stats.groups_total = prune_total.load(Ordering::Relaxed);
    stats.groups_pruned = prune_pruned.load(Ordering::Relaxed);
    stats.groups_full = prune_full.load(Ordering::Relaxed);
    stats.bytes_avoided = prune_bytes_avoided.load(Ordering::Relaxed);
    stats.io = io_stats.snapshot();
    stats.mover = mover_stats.snapshot();
    stats.morsels = morsel_stats.snapshot();

    // DV_COST_VALIDATE=1: assert, on every successful drain, that each
    // runtime counter stayed within its static bound — the soundness
    // contract of the dv-cost analysis, checked end to end.
    if let Some(report) = &cost_report {
        if cost_validate {
            let counters = RuntimeCounters {
                rows_scanned: stats.rows_scanned,
                rows_selected: stats.rows_selected,
                bytes_read: stats.bytes_read,
                afcs: stats.afcs,
                io_runs: stats.io.runs_scheduled,
                read_syscalls: stats.io.read_syscalls,
                bytes_issued: stats.io.bytes_issued,
                mover_sends: stats.mover.sends,
                mover_bytes: stats.bytes_moved,
                agg_groups: stats.mover.agg_groups_out,
                peak_buffered_blocks: stats.mover.peak_buffered_blocks,
            };
            let violations = report.validate(&counters);
            if !violations.is_empty() {
                let list = violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ");
                return Err(DvError::Runtime(format!(
                    "DV_COST_VALIDATE: runtime counters escaped their static bounds: {list}"
                )));
            }
        }
    }
    Ok((tables, stats))
}

/// True when the environment asks every session to check its runtime
/// counters against the static cost bounds at drain time.
fn cost_validate_enabled() -> bool {
    std::env::var("DV_COST_VALIDATE").map(|v| v == "1").unwrap_or(false)
}
