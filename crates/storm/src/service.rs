//! The query service plane: admission, sessions, and the staged
//! execution loop.
//!
//! [`QueryService`] is the front end of the STORM runtime. It assigns
//! each query a [`QueryId`], admits it through the shared
//! [`Admission`] gate (priority-then-FIFO, bounded concurrency), and
//! runs it as a *session*: plan centrally, fan plan fragments out to
//! the per-node [`ExecutorService`]s, and absorb mover blocks until
//! every node reports done. Sessions are either blocking
//! ([`QueryService::execute_with`], caller's thread) or detached
//! ([`QueryService::submit`], own thread + [`SessionHandle`]).
//! Dropping a handle without taking the result cancels the query —
//! the client-side-drop abort path.
//!
//! Every session carries a [`CancelToken`] threaded through admission,
//! extraction, I/O scheduling, filtering, and the mover; the drain
//! loop always waits for all node `Done` reports, so a cancelled query
//! leaves no orphaned cluster jobs, and its RAII admission slot and
//! per-query channels/file state are released on every exit path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver};
use dv_layout::io::IoStats;
use dv_layout::{CompiledDataset, Extractor, IoOptions, SegmentCache, SharedHandles};
use dv_sql::{bind, parse, BoundExpr, BoundQuery, UdfRegistry};
use dv_types::{CancelToken, ColumnBlock, DvError, Result, RowBlock, Table};

use crate::admission::Admission;
use crate::cluster::Cluster;
use crate::executor::{ExecutorService, NodeWorker};
use crate::mover::{absorb_transfer, MoverMessage, MoverStats};
use crate::server::QueryOptions;
use crate::stats::{MorselStats, QueryStats};

/// Identifier the service assigns to each admitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Service-level configuration, fixed at server construction.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Queries admitted concurrently; the rest queue (min 1).
    pub max_concurrent: usize,
    /// Ceiling on `QueryOptions::intra_node_threads` — a per-query
    /// request above this is clamped at execution time, so one greedy
    /// query cannot oversubscribe a shared server. Defaults to the
    /// host's available parallelism.
    pub max_intra_node_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_concurrent: 4,
            max_intra_node_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Per-submission options, orthogonal to [`QueryOptions`] (which
/// shapes execution): how the query enters and leaves the service.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Admission priority; higher values are admitted first, ties
    /// break FIFO.
    pub priority: u8,
    /// Deadline for the whole query (queue wait included); expiry
    /// cancels it with [`DvError::Cancelled`].
    pub timeout: Option<Duration>,
    /// Externally supplied cancellation token (a fresh one is made
    /// when absent). The timeout, if any, still applies on top.
    pub cancel: Option<CancelToken>,
}

impl SubmitOptions {
    fn token(&self) -> CancelToken {
        match (&self.cancel, self.timeout) {
            (Some(t), None) => t.clone(),
            (Some(t), Some(timeout)) => t.child_with_deadline(Some(Instant::now() + timeout)),
            (None, Some(timeout)) => CancelToken::with_timeout(timeout),
            (None, None) => CancelToken::new(),
        }
    }
}

/// Everything shared by all sessions of one server: the compiled
/// dataset, UDFs, the simulated cluster and its per-node executors,
/// and the cross-query caches (segment cache, open-file pool).
pub(crate) struct ServerCore {
    pub compiled: Arc<CompiledDataset>,
    pub udfs: Arc<UdfRegistry>,
    pub segment_cache: Arc<SegmentCache>,
    pub shared_handles: SharedHandles,
    pub executors: Vec<ExecutorService>,
    /// Server-wide ceiling on per-query intra-node worker threads.
    pub max_intra_node_threads: usize,
}

impl ServerCore {
    pub fn new(
        compiled: Arc<CompiledDataset>,
        udfs: UdfRegistry,
        config: &ServiceConfig,
    ) -> ServerCore {
        let nodes = compiled.model.node_count();
        let cluster = Arc::new(Cluster::new(nodes));
        let executors =
            (0..nodes).map(|node| ExecutorService::new(node, Arc::clone(&cluster))).collect();
        ServerCore {
            compiled,
            udfs: Arc::new(udfs),
            segment_cache: Arc::new(SegmentCache::new(IoOptions::default().cache_bytes)),
            shared_handles: SharedHandles::new(),
            executors,
            max_intra_node_threads: config.max_intra_node_threads.max(1),
        }
    }
}

/// The front-end service: admission, session tracking, execution.
#[derive(Clone)]
pub struct QueryService {
    core: Arc<ServerCore>,
    admission: Arc<Admission>,
    next_id: Arc<AtomicU64>,
    /// Cancel tokens of live sessions, keyed by query id — the
    /// service-side view used by [`QueryService::cancel`].
    sessions: Arc<Mutex<HashMap<u64, CancelToken>>>,
}

impl QueryService {
    pub(crate) fn new(core: Arc<ServerCore>, config: &ServiceConfig) -> QueryService {
        QueryService {
            core,
            admission: Admission::new(config.max_concurrent),
            next_id: Arc::new(AtomicU64::new(0)),
            sessions: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Queries currently executing.
    pub fn running(&self) -> usize {
        self.admission.running()
    }

    /// Queries waiting for an execution slot.
    pub fn queued(&self) -> usize {
        self.admission.queued()
    }

    /// The configured concurrency limit.
    pub fn max_concurrent(&self) -> usize {
        self.admission.max_concurrent()
    }

    /// Ids of sessions the service is tracking (queued or running).
    pub fn active(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self
            .sessions
            .lock()
            .expect("session table poisoned")
            .keys()
            .map(|&id| QueryId(id))
            .collect();
        ids.sort();
        ids
    }

    /// Cancel a tracked session by id; `false` if unknown (already
    /// finished or never existed).
    pub fn cancel(&self, id: QueryId) -> bool {
        match self.sessions.lock().expect("session table poisoned").get(&id.0) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// The dataset model served.
    pub fn model(&self) -> &dv_descriptor::DatasetModel {
        &self.core.compiled.model
    }

    /// The compiled dataset (for plan inspection / codegen rendering).
    pub fn compiled(&self) -> &CompiledDataset {
        &self.core.compiled
    }

    /// Parse + bind a query against the served schema.
    pub fn bind_sql(&self, sql: &str) -> Result<BoundQuery> {
        let q = parse(sql)?;
        bind(&q, &self.core.compiled.model.schema, &self.core.udfs)
    }

    /// Execute on the caller's thread with default submission options.
    pub fn execute(&self, sql: &str, opts: &QueryOptions) -> Result<(Vec<Table>, QueryStats)> {
        self.execute_with(sql, opts, &SubmitOptions::default())
    }

    /// Execute on the caller's thread: bind, admit, run, absorb.
    pub fn execute_with(
        &self,
        sql: &str,
        opts: &QueryOptions,
        sub: &SubmitOptions,
    ) -> Result<(Vec<Table>, QueryStats)> {
        let bq = self.bind_sql(sql)?;
        self.execute_bound_with(&bq, opts, sub)
    }

    /// Execute a pre-bound query on the caller's thread.
    pub fn execute_bound_with(
        &self,
        bq: &BoundQuery,
        opts: &QueryOptions,
        sub: &SubmitOptions,
    ) -> Result<(Vec<Table>, QueryStats)> {
        let id = self.fresh_id();
        let cancel = sub.token();
        let _session = SessionGuard::register(&self.sessions, id, cancel.clone());
        self.run_admitted(id, bq, opts, sub.priority, &cancel)
    }

    /// Submit a detached session: binding happens here (so syntax and
    /// binding errors surface synchronously), execution on its own
    /// thread. The returned handle is the only way to the result;
    /// dropping it un-taken cancels the query.
    pub fn submit(
        &self,
        sql: &str,
        opts: &QueryOptions,
        sub: &SubmitOptions,
    ) -> Result<SessionHandle> {
        let bq = self.bind_sql(sql)?;
        let id = self.fresh_id();
        let cancel = sub.token();
        let (tx, rx) = bounded::<Result<(Vec<Table>, QueryStats)>>(1);
        let service = self.clone();
        let opts = opts.clone();
        let priority = sub.priority;
        let session_cancel = cancel.clone();
        // Register before the thread exists so the id is cancellable
        // the moment `submit` returns; the guard travels with the
        // session and deregisters on any exit.
        let guard = SessionGuard::register(&self.sessions, id, cancel.clone());
        std::thread::Builder::new()
            .name(format!("dv-session-{id}"))
            .spawn(move || {
                let _session = guard;
                let result = service.run_admitted(id, &bq, &opts, priority, &session_cancel);
                // A dropped handle means nobody wants the result.
                let _ = tx.send(result);
            })
            .map_err(|e| DvError::Runtime(format!("spawn session thread: {e}")))?;
        Ok(SessionHandle { id, cancel, rx, taken: false })
    }

    fn fresh_id(&self) -> QueryId {
        QueryId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// The session body: queue for admission, execute. The caller
    /// holds the [`SessionGuard`]; the admission slot acquired here is
    /// RAII, so it is released however this returns.
    fn run_admitted(
        &self,
        id: QueryId,
        bq: &BoundQuery,
        opts: &QueryOptions,
        priority: u8,
        cancel: &CancelToken,
    ) -> Result<(Vec<Table>, QueryStats)> {
        let wait_start = Instant::now();
        let _slot = self.admission.acquire(priority, cancel)?;
        let queue_wait = wait_start.elapsed();
        let (tables, mut stats) = run_session(&self.core, bq, opts, cancel)?;
        stats.query_id = id.0;
        stats.queue_wait = queue_wait;
        Ok((tables, stats))
    }
}

/// RAII registration of a session in the service's tracking table.
struct SessionGuard {
    sessions: Arc<Mutex<HashMap<u64, CancelToken>>>,
    id: u64,
}

impl SessionGuard {
    fn register(
        sessions: &Arc<Mutex<HashMap<u64, CancelToken>>>,
        id: QueryId,
        token: CancelToken,
    ) -> SessionGuard {
        sessions.lock().expect("session table poisoned").insert(id.0, token);
        SessionGuard { sessions: Arc::clone(sessions), id: id.0 }
    }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.sessions.lock().expect("session table poisoned").remove(&self.id);
    }
}

/// A detached session's client-side handle.
///
/// Holds the query's cancel token and the one-shot result channel.
/// [`SessionHandle::wait`] consumes the handle and blocks for the
/// result; dropping the handle without waiting cancels the query —
/// a disappearing client aborts its scan instead of leaking work.
pub struct SessionHandle {
    id: QueryId,
    cancel: CancelToken,
    rx: Receiver<Result<(Vec<Table>, QueryStats)>>,
    taken: bool,
}

impl SessionHandle {
    /// The service-assigned query id.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// A clone of the session's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Request cancellation (the session ends with
    /// [`DvError::Cancelled`] unless it already finished).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the session finishes and take its result.
    pub fn wait(mut self) -> Result<(Vec<Table>, QueryStats)> {
        self.taken = true;
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(DvError::Runtime("session thread terminated without a result".into())),
        }
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        if !self.taken {
            self.cancel.cancel();
        }
    }
}

/// Execute one admitted session: central planning, fragment fan-out
/// via the per-node executors, and the absorb loop. This is the old
/// monolithic `StormServer::execute_bound`, now fed by the service
/// plane and threaded with the session's cancel token.
pub(crate) fn run_session(
    core: &Arc<ServerCore>,
    bq: &BoundQuery,
    opts: &QueryOptions,
    cancel: &CancelToken,
) -> Result<(Vec<Table>, QueryStats)> {
    if opts.client_processors == 0 {
        return Err(DvError::Runtime("client_processors must be >= 1".into()));
    }
    // Clamp the per-query worker request to the server-wide ceiling.
    let mut opts = opts.clone();
    opts.intra_node_threads = opts.intra_node_threads.clamp(1, core.max_intra_node_threads);
    let opts = &opts;
    let mut stats = QueryStats::default();
    cancel.check()?;

    // Phase 2a: central planning (range analysis, working row).
    let plan_start = Instant::now();
    let mut prep = core.compiled.prepare_query(bq)?;
    if opts.no_prune {
        prep.prune_enabled = false;
    }
    let prep = Arc::new(prep);
    stats.plan_time = plan_start.elapsed();

    let output_schema = bq.output_schema();
    let schema_len = core.compiled.model.schema.len();
    let working_attrs = Arc::new(prep.working.attrs.clone());
    let working_dtypes = Arc::new(prep.working.dtypes.clone());
    let output_positions = Arc::new(prep.output_positions.clone());
    let predicate: Arc<Option<BoundExpr>> = Arc::new(bq.predicate.clone());
    // Per-query extractor over the server's shared open-file pool,
    // checkpointed on this session's cancel token.
    let extractor = Extractor::new(&core.compiled, prep.working.attrs.len())
        .with_shared_handles(&core.shared_handles)
        .with_cancel(cancel.clone());

    let rows_scanned = Arc::new(AtomicU64::new(0));
    let rows_selected = Arc::new(AtomicU64::new(0));
    let bytes_read = Arc::new(AtomicU64::new(0));
    let bytes_moved = Arc::new(AtomicU64::new(0));
    let afc_count = Arc::new(AtomicU64::new(0));
    let prune_total = Arc::new(AtomicU64::new(0));
    let prune_pruned = Arc::new(AtomicU64::new(0));
    let prune_full = Arc::new(AtomicU64::new(0));
    let prune_bytes_avoided = Arc::new(AtomicU64::new(0));
    let io_stats = Arc::new(IoStats::default());
    let mover_stats = Arc::new(MoverStats::default());
    let morsel_stats = Arc::new(MorselStats::default());

    // The mover is the only inter-stage transport: a bounded typed
    // channel, so a slow absorber back-pressures the node pipelines.
    let (tx, rx) = bounded::<MoverMessage>(opts.mover_capacity.max(1));
    let exec_start = Instant::now();
    let node_count = core.compiled.model.node_count();
    let mut tables: Vec<Table> =
        (0..opts.client_processors).map(|_| Table::empty(output_schema.clone())).collect();
    let mut first_error: Option<DvError> = None;
    let mut node_busy: Vec<std::time::Duration> = Vec::with_capacity(node_count);

    let dispatch = |node: usize, tx: &crossbeam::channel::Sender<MoverMessage>| {
        let compiled = Arc::clone(&core.compiled);
        let prep = Arc::clone(&prep);
        let worker = NodeWorker {
            node,
            extractor: extractor.clone(),
            udfs: Arc::clone(&core.udfs),
            predicate: Arc::clone(&predicate),
            working_attrs: Arc::clone(&working_attrs),
            working_dtypes: Arc::clone(&working_dtypes),
            output_positions: Arc::clone(&output_positions),
            schema_len,
            opts: opts.clone(),
            cancel: cancel.clone(),
            rows_scanned: Arc::clone(&rows_scanned),
            rows_selected: Arc::clone(&rows_selected),
            bytes_read: Arc::clone(&bytes_read),
            bytes_moved: Arc::clone(&bytes_moved),
            afc_count: Arc::clone(&afc_count),
            prune_total: Arc::clone(&prune_total),
            prune_pruned: Arc::clone(&prune_pruned),
            prune_full: Arc::clone(&prune_full),
            prune_bytes_avoided: Arc::clone(&prune_bytes_avoided),
            io_stats: Arc::clone(&io_stats),
            mover_stats: Arc::clone(&mover_stats),
            morsel_stats: Arc::clone(&morsel_stats),
            segment_cache: Arc::clone(&core.segment_cache),
        };
        let worker_tx = tx.clone();
        // Phase 2b (the node's generated index function) runs inside
        // the fragment and counts as this node's work.
        core.executors[node].spawn_fragment(tx.clone(), move || {
            compiled.plan_node(&prep, node).and_then(|np| {
                worker.record_prune(&np.prune);
                worker.run(&np.afcs, &np.prune.verdicts, &worker_tx)
            })
        });
    };

    // Blocks buffered for ordered reassembly: morsel workers ship in
    // whatever order stealing produced, but every block carries its
    // node and plan-time sequence tag (the starting scanned ordinal),
    // so sorting by (node, seq) reconstructs exactly the serial
    // schedule order before anything is absorbed into a client table.
    // This is what makes results bit-identical across thread counts
    // and steal orders.
    enum Shipped {
        Rows(RowBlock),
        Cols(ColumnBlock),
    }
    let mut pending: Vec<(usize, u64, usize, Shipped)> = Vec::new();

    // Drain messages until `want` Done messages arrive. Always drains
    // to completion — a cancelled query still collects every node's
    // Done, so no fragment is left running or blocked on the mover.
    // The simulated client link is charged here, on the absorbing
    // side: concurrent sessions overlap their transfer stalls, and a
    // cancelled one skips the remaining sleeps (the error surfaces
    // from the final checkpoint) while still collecting every Done.
    let drain = |want: usize,
                 pending: &mut Vec<(usize, u64, usize, Shipped)>,
                 node_busy: &mut Vec<std::time::Duration>,
                 first_error: &mut Option<DvError>| {
        let mut done = 0usize;
        for msg in rx.iter() {
            match msg {
                MoverMessage::Block { processor, seq, block } => {
                    let _ = absorb_transfer(opts.bandwidth.as_ref(), block.wire_bytes(), cancel);
                    pending.push((block.source_node, seq, processor, Shipped::Rows(block)));
                }
                MoverMessage::Columns { processor, seq, block } => {
                    let _ = absorb_transfer(opts.bandwidth.as_ref(), block.wire_bytes(), cancel);
                    pending.push((block.source_node, seq, processor, Shipped::Cols(block)));
                }
                MoverMessage::Done { result, busy, .. } => {
                    done += 1;
                    node_busy.push(busy);
                    if let Err(e) = result {
                        first_error.get_or_insert(e);
                    }
                    if done == want {
                        break;
                    }
                }
            }
        }
    };

    if opts.sequential_nodes {
        for node in 0..node_count {
            dispatch(node, &tx);
            drain(1, &mut pending, &mut node_busy, &mut first_error);
        }
    } else {
        for node in 0..node_count {
            dispatch(node, &tx);
        }
        drain(node_count, &mut pending, &mut node_busy, &mut first_error);
    }
    drop(tx);
    stats.exec_time = exec_start.elapsed();
    stats.node_busy = node_busy;
    if let Some(e) = first_error {
        return Err(e);
    }
    // All nodes succeeded, but a deadline may have expired between
    // their last checkpoint and here; a cancelled query must not
    // return a (possibly complete) result as if nothing happened.
    cancel.check()?;

    // Ordered reassembly (see `pending` above). The sort is stable and
    // (node, seq) is unique per destination table: a node pipeline
    // never ships two blocks for the same processor with equal seq.
    pending.sort_by_key(|&(node, seq, _, _)| (node, seq));
    for (_, _, processor, shipped) in pending {
        match shipped {
            Shipped::Rows(block) => tables[processor].absorb(block),
            Shipped::Cols(block) => tables[processor].absorb_columns(block),
        }
    }

    stats.rows_scanned = rows_scanned.load(Ordering::Relaxed);
    stats.rows_selected = rows_selected.load(Ordering::Relaxed);
    stats.bytes_read = bytes_read.load(Ordering::Relaxed);
    stats.bytes_moved = bytes_moved.load(Ordering::Relaxed);
    stats.afcs = afc_count.load(Ordering::Relaxed);
    stats.groups_total = prune_total.load(Ordering::Relaxed);
    stats.groups_pruned = prune_pruned.load(Ordering::Relaxed);
    stats.groups_full = prune_full.load(Ordering::Relaxed);
    stats.bytes_avoided = prune_bytes_avoided.load(Ordering::Relaxed);
    stats.io = io_stats.snapshot();
    stats.mover = mover_stats.snapshot();
    stats.morsels = morsel_stats.snapshot();
    Ok((tables, stats))
}
