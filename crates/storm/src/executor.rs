//! Per-node executor services.
//!
//! An [`ExecutorService`] runs one node's plan fragments on that
//! node's long-lived [`Cluster`] worker. It owns the contract between
//! the service plane and the cluster: every spawned fragment reports
//! completion with a `MoverMessage::Done` — even when it errors or
//! panics — so the session's drain loop can always account for all
//! nodes, and a panicking UDF becomes a query error instead of a dead
//! node thread.
//!
//! [`NodeWorker`] is the fragment body: morsel-driven parallel
//! execution of the node's AFC schedule. The schedule is split at
//! plan time into byte-budgeted, coalesce-group-aligned morsels
//! ([`dv_layout::MorselPlan`]); a pool of workers (sized by
//! `QueryOptions::intra_node_threads`, capped by the service config)
//! claims morsels from per-worker deques and steals from the most
//! loaded peer when its own runs dry, so one skewed file cannot
//! serialize the node. Results are bit-identical to serial execution
//! regardless of steal order because every morsel carries its
//! plan-time scanned-ordinal base: round-robin partitioning keys on
//! global scanned ordinals and every mover block is tagged with its
//! starting ordinal for ordered reassembly at the absorber. One
//! [`SharedPrefetcher`] per node serves the whole pool, so readahead
//! memory stays bounded by `IoOptions::prefetch_depth` — not by the
//! worker count. Workers checkpoint the query's [`CancelToken`] in
//! the claim/steal loop and at every block boundary.

use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use dv_layout::io::{FetchedGroup, IoScheduler, IoStats};
use dv_layout::{Afc, Extractor, Morsel, MorselPlan, PruneCertificate, PruneVerdict, SegmentCache};
use dv_sql::eval::EvalContext;
use dv_sql::{BoundExpr, UdfRegistry};
use dv_types::{
    AggBlock, AggFunc, AggTable, CancelToken, ColumnBlock, DataType, DvError, Result, RowBlock,
};

use crate::cluster::Cluster;
use crate::filter::{filter_block, filter_columns, project_block};
use crate::mover::{
    send_agg, send_block, send_columns, send_morsel_done, MoverMessage, MoverStats,
};
use crate::partition::{partition_block, partition_columns};
use crate::server::{ExecMode, QueryOptions};
use crate::stats::MorselStats;

/// One node's executor: dispatches plan fragments onto the node's
/// cluster worker and guarantees a `Done` report per fragment.
pub struct ExecutorService {
    node: usize,
    cluster: Arc<Cluster>,
}

impl ExecutorService {
    /// An executor for `node`, running on `cluster`'s worker threads.
    pub fn new(node: usize, cluster: Arc<Cluster>) -> ExecutorService {
        ExecutorService { node, cluster }
    }

    /// The node this executor serves.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Run `fragment` on this node's worker. The fragment's outcome —
    /// including a panic, converted to a runtime error — is always
    /// reported to `tx` as `MoverMessage::Done` with the fragment's
    /// busy time, so the session can never lose track of a node.
    pub fn spawn_fragment<F>(&self, tx: Sender<MoverMessage>, fragment: F)
    where
        F: FnOnce() -> Result<()> + Send + 'static,
    {
        let node = self.node;
        self.cluster.run_on(node, move || {
            let busy_start = Instant::now();
            let result = match catch_unwind(AssertUnwindSafe(fragment)) {
                Ok(r) => r,
                Err(payload) => Err(DvError::Runtime(format!(
                    "node {node} fragment panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            };
            let _ = tx.send(MoverMessage::Done { node, result, busy: busy_start.elapsed() });
        });
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Per-morsel jitter for the steal-order shuffling test hook
/// (`DV_MORSEL_JITTER=<ms>`): a deterministic pseudo-random sleep in
/// `0..budget_ms`, keyed by `(node, morsel seq)` so runs are
/// reproducible while execution interleaving varies wildly.
fn morsel_jitter_ms(node: usize, seq: usize, budget_ms: u64) -> u64 {
    let mut h = (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (seq as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 29;
    h % budget_ms.max(1)
}

fn jitter_budget_ms() -> u64 {
    std::env::var("DV_MORSEL_JITTER").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Work-stealing morsel queues for one node's pool.
///
/// Each worker seeds from a contiguous, byte-balanced run of the
/// morsel plan ([`MorselPlan::assign`]) and pops from its own front
/// (schedule order, keeps its I/O sequential). A worker whose queue
/// runs dry steals from the *back* of the most-loaded victim (by
/// remaining bytes), taking the work its owner would reach last.
struct StealQueue {
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Remaining queued bytes per worker — the victim-selection
    /// heuristic. Maintained under the queue lock, read without it.
    remaining: Vec<AtomicU64>,
    /// Morsel byte weights, indexed by morsel id.
    weights: Vec<u64>,
    /// Raised on the first worker error so peers stop claiming.
    abort: AtomicBool,
}

impl StealQueue {
    fn new(plan: &MorselPlan, workers: usize) -> StealQueue {
        let weights: Vec<u64> = plan.morsels.iter().map(|m| m.bytes).collect();
        let mut queues = Vec::with_capacity(workers);
        let mut remaining = Vec::with_capacity(workers);
        for q in plan.assign(workers) {
            remaining.push(AtomicU64::new(q.iter().map(|&m| weights[m]).sum()));
            queues.push(Mutex::new(q.into_iter().collect()));
        }
        StealQueue { queues, remaining, weights, abort: AtomicBool::new(false) }
    }

    fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    fn pop(&self, q: usize, front: bool) -> Option<usize> {
        let mut guard = self.queues[q].lock().expect("morsel queue poisoned");
        match if front { guard.pop_front() } else { guard.pop_back() } {
            Some(m) => {
                self.remaining[q].fetch_sub(self.weights[m], Ordering::Relaxed);
                Some(m)
            }
            None => {
                // Settle the counter so victim scans converge even if
                // a stale `remaining` read raced a concurrent pop.
                self.remaining[q].store(0, Ordering::Relaxed);
                None
            }
        }
    }

    /// Next morsel for `wid`: own queue first, else steal. Returns the
    /// morsel id and whether it was stolen; `None` when every queue is
    /// empty (zero-weight morsels are always drained by their owner,
    /// so an owner never exits while its own queue holds work).
    fn claim(&self, wid: usize) -> Option<(usize, bool)> {
        if let Some(m) = self.pop(wid, true) {
            return Some((m, false));
        }
        loop {
            let mut best = None;
            let mut best_bytes = 0u64;
            for (v, rem) in self.remaining.iter().enumerate() {
                if v == wid {
                    continue;
                }
                let b = rem.load(Ordering::Relaxed);
                if b > best_bytes {
                    best_bytes = b;
                    best = Some(v);
                }
            }
            let v = best?;
            if let Some(m) = self.pop(v, false) {
                return Some((m, true));
            }
        }
    }
}

/// The single per-node prefetcher serving the whole worker pool.
///
/// One background thread walks the node's coalesce groups in schedule
/// order, keeping at most `depth` fetched groups in flight or parked
/// — readahead memory is bounded by `IoOptions::prefetch_depth`
/// regardless of worker count (the old design ran one prefetcher per
/// stripe thread). Workers [`SharedPrefetcher::take`] the group they
/// need: a parked group is a prefetch hit; a group the prefetcher is
/// mid-fetch on is waited for (counted as a prefetch wait); anything
/// else the worker claims and fetches synchronously through the same
/// shared [`IoScheduler`], so per-query segment-cache accounting stays
/// on one scheduler per node.
struct SharedPrefetcher<'a> {
    scheduler: &'a IoScheduler,
    afcs: &'a [Afc],
    groups: &'a [Range<usize>],
    io_stats: &'a IoStats,
    depth: usize,
    state: Mutex<PrefetchState>,
    /// Signaled when a parked group is consumed or shutdown is raised.
    space: Condvar,
    /// Signaled when an in-flight fetch lands (or shutdown).
    ready: Condvar,
}

struct PrefetchState {
    /// Fetched groups parked until a worker takes them.
    parked: HashMap<usize, Result<FetchedGroup>>,
    /// Groups handed out (taken or being fetched synchronously by a
    /// worker) — the prefetcher skips them.
    claimed: Vec<bool>,
    /// The group the prefetcher is currently reading, if any.
    inflight: Option<usize>,
    /// The prefetcher's scan cursor over the group list.
    next: usize,
    /// Parked + in-flight groups, bounded by `depth`.
    occupancy: usize,
    shutdown: bool,
}

impl<'a> SharedPrefetcher<'a> {
    fn new(
        scheduler: &'a IoScheduler,
        afcs: &'a [Afc],
        groups: &'a [Range<usize>],
        io_stats: &'a IoStats,
        depth: usize,
    ) -> SharedPrefetcher<'a> {
        SharedPrefetcher {
            scheduler,
            afcs,
            groups,
            io_stats,
            depth: depth.max(1),
            state: Mutex::new(PrefetchState {
                parked: HashMap::new(),
                claimed: vec![false; groups.len()],
                inflight: None,
                next: 0,
                occupancy: 0,
                shutdown: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    /// The prefetcher thread body. Exits on shutdown, at the end of
    /// the schedule, or after parking a failed fetch (the taker
    /// surfaces the error; fetching further groups would waste I/O).
    fn run(&self) {
        loop {
            let g = {
                let mut st = self.state.lock().expect("prefetch state poisoned");
                loop {
                    if st.shutdown {
                        return;
                    }
                    while st.next < self.groups.len()
                        && (st.claimed[st.next] || st.parked.contains_key(&st.next))
                    {
                        st.next += 1;
                    }
                    if st.next >= self.groups.len() {
                        return;
                    }
                    if st.occupancy >= self.depth {
                        st = self.space.wait(st).expect("prefetch state poisoned");
                        continue;
                    }
                    let g = st.next;
                    st.next += 1;
                    st.inflight = Some(g);
                    st.occupancy += 1;
                    break g;
                }
            };
            let fetched = self.scheduler.fetch(&self.afcs[self.groups[g].clone()]);
            let failed = fetched.is_err();
            let mut st = self.state.lock().expect("prefetch state poisoned");
            st.inflight = None;
            st.parked.insert(g, fetched);
            self.ready.notify_all();
            if failed || st.shutdown {
                return;
            }
        }
    }

    /// Hand group `g` to the calling worker (parked, awaited, or
    /// fetched synchronously — see the type docs).
    fn take(&self, g: usize) -> Result<FetchedGroup> {
        let mut wait_start: Option<Instant> = None;
        let record_wait = |start: Option<Instant>| {
            if let Some(s) = start {
                self.io_stats
                    .prefetch_wait_ns
                    .fetch_add(s.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        };
        let mut st = self.state.lock().expect("prefetch state poisoned");
        loop {
            if let Some(r) = st.parked.remove(&g) {
                st.claimed[g] = true;
                st.occupancy -= 1;
                self.space.notify_all();
                drop(st);
                if wait_start.is_none() {
                    self.io_stats.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                }
                record_wait(wait_start);
                return r;
            }
            if st.inflight == Some(g) {
                if wait_start.is_none() {
                    wait_start = Some(Instant::now());
                    self.io_stats.prefetch_waits.fetch_add(1, Ordering::Relaxed);
                }
                st = self.ready.wait(st).expect("prefetch state poisoned");
                continue;
            }
            // Not parked, not in flight: fetch it on this worker.
            st.claimed[g] = true;
            drop(st);
            record_wait(wait_start);
            return self.scheduler.fetch(&self.afcs[self.groups[g].clone()]);
        }
    }

    /// Wake and retire the prefetcher thread (idempotent).
    fn shutdown(&self) {
        let mut st = self.state.lock().expect("prefetch state poisoned");
        st.shutdown = true;
        self.space.notify_all();
        self.ready.notify_all();
    }
}

/// Accumulator-table entries buffered in a worker's outgoing
/// [`AggBlock`] before it is handed to the mover. Large enough to
/// amortize per-message overhead, small enough that partials stream
/// out during the scan instead of piling up per worker.
const AGG_FLUSH_ENTRIES: usize = 4096;

/// Per-query aggregation context for one node's workers: the functions
/// to fold plus the positions of group keys and arguments inside
/// *working* columns (folding runs before output projection).
pub(crate) struct AggExec {
    pub funcs: Vec<AggFunc>,
    pub group_pos: Vec<usize>,
    pub arg_pos: Vec<Option<usize>>,
    /// `true` = nodes fold per-AFC partials and ship accumulators;
    /// `false` = ablation mode, nodes ship filtered rows (one block
    /// per AFC so the absorber can reproduce the same fold tree).
    pub pushdown: bool,
}

/// One worker's in-flight aggregation state for the current morsel:
/// a reusable per-AFC fold table and the outgoing block of drained
/// partials. Every AFC is folded whole by exactly one worker, so each
/// `(seq, key)` entry is produced exactly once per query — the
/// node-side "merge" across workers is pure union, never a float add.
struct AggSink {
    table: AggTable,
    out: AggBlock,
    rows_in: u64,
}

impl AggSink {
    fn new(node: usize, agg: &AggExec) -> AggSink {
        let key_width = agg.group_pos.len();
        AggSink {
            table: AggTable::new(&agg.funcs, key_width),
            out: AggBlock::new(node, key_width, &agg.funcs),
            rows_in: 0,
        }
    }
}

/// Everything one node needs to run the extraction → filter →
/// partition → move pipeline for one query.
pub(crate) struct NodeWorker {
    pub node: usize,
    pub extractor: Extractor,
    pub udfs: Arc<UdfRegistry>,
    pub predicate: Arc<Option<BoundExpr>>,
    pub working_attrs: Arc<Vec<usize>>,
    pub working_dtypes: Arc<Vec<DataType>>,
    pub output_positions: Arc<Vec<usize>>,
    pub schema_len: usize,
    pub opts: QueryOptions,
    pub cancel: CancelToken,
    pub rows_scanned: Arc<AtomicU64>,
    pub rows_selected: Arc<AtomicU64>,
    pub bytes_read: Arc<AtomicU64>,
    pub bytes_moved: Arc<AtomicU64>,
    pub afc_count: Arc<AtomicU64>,
    pub prune_total: Arc<AtomicU64>,
    pub prune_pruned: Arc<AtomicU64>,
    pub prune_full: Arc<AtomicU64>,
    pub prune_bytes_avoided: Arc<AtomicU64>,
    pub io_stats: Arc<IoStats>,
    pub mover_stats: Arc<MoverStats>,
    pub morsel_stats: Arc<MorselStats>,
    pub segment_cache: Arc<SegmentCache>,
    /// Aggregation context (`None` = plain scan query).
    pub agg: Option<Arc<AggExec>>,
}

impl NodeWorker {
    /// Fold a node plan's prune accounting into the session counters.
    pub(crate) fn record_prune(&self, cert: &PruneCertificate) {
        self.prune_total.fetch_add(cert.groups_total, Ordering::Relaxed);
        self.prune_pruned.fetch_add(cert.groups_pruned, Ordering::Relaxed);
        self.prune_full.fetch_add(cert.groups_full, Ordering::Relaxed);
        self.prune_bytes_avoided.fetch_add(cert.bytes_avoided, Ordering::Relaxed);
    }

    /// Run the node's AFC schedule morsel-parallel. `verdicts` is
    /// parallel to `afcs` (the plan's [`PruneCertificate`]); `Full`
    /// chunks skip the filter kernel whenever an entire batch is
    /// provably satisfying.
    pub(crate) fn run(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        debug_assert_eq!(afcs.len(), verdicts.len());
        let threads = self.opts.intra_node_threads.max(1);
        let plan =
            MorselPlan::build(afcs, self.opts.io.group_bytes, threads, self.opts.morsel_bytes);
        let workers = plan.worker_count(threads);
        if workers == 0 {
            return Ok(());
        }
        self.morsel_stats.planned.fetch_add(plan.morsels.len() as u64, Ordering::Relaxed);
        self.morsel_stats.workers.fetch_add(workers as u64, Ordering::Relaxed);
        self.morsel_stats.target_bytes.fetch_max(plan.target_bytes, Ordering::Relaxed);

        match self.opts.exec {
            ExecMode::Columnar if self.opts.io.enabled => {
                self.run_columnar_io(afcs, verdicts, &plan, workers, tx)
            }
            ExecMode::Columnar => self.run_pool(&plan, workers, &|m: &Morsel| {
                self.run_morsel_columns_direct(afcs, verdicts, m, tx)
            }),
            ExecMode::RowAtATime => self.run_pool(&plan, workers, &|m: &Morsel| {
                self.run_morsel_rows(afcs, verdicts, m, tx)
            }),
        }
    }

    /// The scheduled columnar path: one shared [`IoScheduler`] per
    /// node and (with readahead on) one [`SharedPrefetcher`] serving
    /// every pool worker.
    fn run_columnar_io(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        plan: &MorselPlan,
        workers: usize,
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        let scheduler = IoScheduler::new(
            self.extractor.clone(),
            self.opts.io.clone(),
            Some(Arc::clone(&self.segment_cache)),
            Arc::clone(&self.io_stats),
        )
        .with_cancel(self.cancel.clone());

        if !self.opts.io.readahead || plan.groups.len() < 2 {
            let fetch = |gi: usize| scheduler.fetch(&afcs[plan.groups[gi].clone()]);
            return self.run_pool(plan, workers, &|m: &Morsel| {
                self.run_morsel_groups(afcs, verdicts, plan, m, &fetch, tx)
            });
        }

        let prefetcher = SharedPrefetcher::new(
            &scheduler,
            afcs,
            &plan.groups,
            &self.io_stats,
            self.opts.io.prefetch_depth,
        );
        std::thread::scope(|scope| {
            let pf = &prefetcher;
            scope.spawn(move || pf.run());
            let fetch = |gi: usize| pf.take(gi);
            let result = self.run_pool(plan, workers, &|m: &Morsel| {
                self.run_morsel_groups(afcs, verdicts, plan, m, &fetch, tx)
            });
            // Wake the prefetcher out of any condvar wait so the scope
            // can join it — on success, error, and cancellation alike.
            pf.shutdown();
            result
        })
    }

    /// Run the pool: `workers` threads (the fragment thread counts as
    /// worker 0) claiming and stealing morsels until the plan drains.
    /// A single worker runs the same claim loop inline — the serial
    /// path and the parallel path share every line of semantics.
    fn run_pool<F>(&self, plan: &MorselPlan, workers: usize, run_morsel: &F) -> Result<()>
    where
        F: Fn(&Morsel) -> Result<()> + Sync,
    {
        let queue = StealQueue::new(plan, workers);
        let jitter_ms = jitter_budget_ms();
        if workers == 1 {
            return self.worker_loop(0, &queue, plan, jitter_ms, run_morsel);
        }
        std::thread::scope(|scope| {
            let queue = &queue;
            let mut handles = Vec::with_capacity(workers - 1);
            for wid in 1..workers {
                handles.push(
                    scope.spawn(move || self.worker_loop(wid, queue, plan, jitter_ms, run_morsel)),
                );
            }
            let mut first = self.worker_loop(0, queue, plan, jitter_ms, run_morsel).err();
            for h in handles {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        first.get_or_insert(e);
                    }
                    Err(payload) => {
                        first.get_or_insert(DvError::Runtime(format!(
                            "node {} morsel worker panicked: {}",
                            self.node,
                            panic_message(payload.as_ref())
                        )));
                    }
                }
            }
            match first {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })
    }

    /// One worker's life: claim (or steal) morsels until the queues
    /// drain, an error aborts the pool, or the query is cancelled.
    /// The cancel checkpoint sits inside the claim loop, so a
    /// cancelled query stops before touching the next morsel on every
    /// worker — no orphaned work behind a dead session.
    fn worker_loop<F>(
        &self,
        wid: usize,
        queue: &StealQueue,
        plan: &MorselPlan,
        jitter_ms: u64,
        run_morsel: &F,
    ) -> Result<()>
    where
        F: Fn(&Morsel) -> Result<()> + Sync,
    {
        let span_start = Instant::now();
        let mut active = Duration::ZERO;
        let mut bytes = 0u64;
        let result = loop {
            if queue.aborted() {
                break Ok(());
            }
            if let Err(e) = self.cancel.check() {
                break Err(e);
            }
            let Some((m, stolen)) = queue.claim(wid) else { break Ok(()) };
            if stolen {
                self.morsel_stats.stolen.fetch_add(1, Ordering::Relaxed);
            }
            let morsel = &plan.morsels[m];
            if jitter_ms > 0 {
                std::thread::sleep(Duration::from_millis(morsel_jitter_ms(
                    self.node, morsel.seq, jitter_ms,
                )));
            }
            let work_start = Instant::now();
            let r = run_morsel(morsel);
            active += work_start.elapsed();
            bytes += morsel.bytes;
            if let Err(e) = r {
                break Err(e);
            }
        };
        if result.is_err() {
            queue.abort();
        }
        self.morsel_stats.worker_bytes_min.fetch_min(bytes, Ordering::Relaxed);
        self.morsel_stats.worker_bytes_max.fetch_max(bytes, Ordering::Relaxed);
        self.morsel_stats.pool_wait_ns.fetch_add(
            span_start.elapsed().saturating_sub(active).as_nanos() as u64,
            Ordering::Relaxed,
        );
        result
    }

    /// One columnar morsel through the I/O scheduler: fetch each of
    /// its coalesce groups (via `fetch` — the shared prefetcher or a
    /// synchronous scheduler call), decode, ship. The scanned-ordinal
    /// cursor starts at the morsel's plan-time base.
    fn run_morsel_groups(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        plan: &MorselPlan,
        m: &Morsel,
        fetch: &(dyn Fn(usize) -> Result<FetchedGroup> + Sync),
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        let cx = EvalContext::new(self.schema_len, &self.working_attrs, &self.udfs);
        let mut sink = self.new_sink();
        let mut cursor = m.base_rows;
        for gi in m.groups.clone() {
            self.cancel.check()?;
            let g = plan.groups[gi].clone();
            let fetched = fetch(gi)?;
            self.decode_and_ship(
                &afcs[g.clone()],
                &verdicts[g],
                &fetched,
                &cx,
                &mut cursor,
                &mut sink,
                tx,
            )?;
        }
        self.finish_morsel(m, cursor, sink, tx)
    }

    /// Decode one fetched working-set group into blocks of at most
    /// `batch_rows` and run each through filter → project → partition
    /// → move. Aggregate queries cap every block at a single AFC — the
    /// canonical float-fold unit — so block sequence tags identify AFCs
    /// in pushdown and ablation mode alike.
    #[allow(clippy::too_many_arguments)]
    fn decode_and_ship(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        fetched: &FetchedGroup,
        cx: &EvalContext,
        cursor: &mut u64,
        sink: &mut Option<AggSink>,
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        let batch_cap = if self.agg.is_some() { 0 } else { self.opts.batch_rows as u64 };
        let mut i = 0usize;
        while i < afcs.len() {
            let mut block = ColumnBlock::with_dtypes(self.node, &self.working_dtypes);
            let mut batched_rows = 0u64;
            let mut all_full = true;
            while i < afcs.len() && (batched_rows == 0 || batched_rows < batch_cap) {
                let afc = &afcs[i];
                self.extractor.extract_columns_fetched(afc, &mut block, fetched)?;
                self.bytes_read.fetch_add(afc.bytes_read(), Ordering::Relaxed);
                self.afc_count.fetch_add(1, Ordering::Relaxed);
                all_full &= verdicts[i] == PruneVerdict::Full;
                batched_rows += afc.num_rows;
                i += 1;
            }
            match sink {
                Some(s) => self.fold_columns(block, all_full, cx, cursor, s, tx)?,
                None => self.ship_columns(block, all_full, cx, cursor, tx)?,
            }
        }
        Ok(())
    }

    /// A fresh aggregation sink when this query folds node-side.
    fn new_sink(&self) -> Option<AggSink> {
        self.agg.as_ref().filter(|a| a.pushdown).map(|a| AggSink::new(self.node, a))
    }

    /// End-of-morsel bookkeeping shared by all engine paths: flush the
    /// aggregation sink (if any), then post the advisory `MorselDone`
    /// marker. `cursor` is the scanned ordinal after the morsel's last
    /// block, so `cursor - base` is exactly the morsel's pre-filter
    /// row span.
    fn finish_morsel(
        &self,
        m: &Morsel,
        cursor: u64,
        sink: Option<AggSink>,
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        if let Some(mut s) = sink {
            self.flush_agg(&mut s, tx)?;
        }
        send_morsel_done(tx, self.node, m.base_rows, cursor - m.base_rows)
    }

    /// Filter one single-AFC block and fold the survivors into the
    /// worker's aggregation sink (pushdown path). The partials drain
    /// into the outgoing block tagged with the AFC's scanned ordinal;
    /// the absorber leftfolds them per group in `(node, seq)` order,
    /// reproducing the serial fold bit for bit.
    fn fold_columns(
        &self,
        mut block: ColumnBlock,
        skip_filter: bool,
        cx: &EvalContext,
        cursor: &mut u64,
        sink: &mut AggSink,
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        self.cancel.check()?;
        let seq = *cursor;
        let scanned = block.len() as u64;
        *cursor += scanned;
        self.rows_scanned.fetch_add(scanned, Ordering::Relaxed);

        let predicate = if skip_filter { None } else { self.predicate.as_ref().as_ref() };
        filter_columns(&mut block, predicate, cx);
        self.rows_selected.fetch_add(block.selected() as u64, Ordering::Relaxed);
        if block.is_empty() {
            return Ok(());
        }

        let agg = self.agg.as_ref().expect("fold_columns requires aggregation context");
        sink.table.clear();
        sink.rows_in += sink.table.fold_block(&block, &agg.group_pos, &agg.arg_pos);
        sink.table.drain_into(seq, &mut sink.out);
        if sink.out.len() >= AGG_FLUSH_ENTRIES {
            self.flush_agg(sink, tx)?;
        }
        Ok(())
    }

    /// Ship the sink's buffered partials. Aggregate results are always
    /// delivered whole to client processor 0 (partitioning a handful
    /// of groups would only fragment them).
    fn flush_agg(&self, sink: &mut AggSink, tx: &Sender<MoverMessage>) -> Result<()> {
        if sink.out.is_empty() {
            sink.rows_in = 0;
            return Ok(());
        }
        let agg = self.agg.as_ref().expect("flush_agg requires aggregation context");
        let block = std::mem::replace(
            &mut sink.out,
            AggBlock::new(self.node, agg.group_pos.len(), &agg.funcs),
        );
        let bytes = send_agg(tx, 0, block, sink.rows_in, &self.mover_stats)?;
        self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
        sink.rows_in = 0;
        Ok(())
    }

    /// One columnar morsel on the scheduler-off path: one read per AFC
    /// entry into the worker's scratch buffer (kept as the ablation
    /// baseline and the fallback when `QueryOptions::io.enabled` is
    /// false).
    fn run_morsel_columns_direct(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        m: &Morsel,
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        let cx = EvalContext::new(self.schema_len, &self.working_attrs, &self.udfs);
        let mut scratch = dv_layout::ExtractScratch::default();
        let mut sink = self.new_sink();
        let mut cursor = m.base_rows;
        let batch_cap = if self.agg.is_some() { 0 } else { self.opts.batch_rows as u64 };

        let mut i = m.afcs.start;
        while i < m.afcs.end {
            // Batch AFCs until the block reaches the target row count
            // (aggregate queries: exactly one AFC per block).
            let mut block = ColumnBlock::with_dtypes(self.node, &self.working_dtypes);
            let mut batched_rows = 0u64;
            let mut all_full = true;
            while i < m.afcs.end && (batched_rows == 0 || batched_rows < batch_cap) {
                let afc = &afcs[i];
                self.extractor.extract_columns_with(afc, &mut block, &mut scratch)?;
                self.count_direct_reads(afc);
                all_full &= verdicts[i] == PruneVerdict::Full;
                batched_rows += afc.num_rows;
                i += 1;
            }
            match &mut sink {
                Some(s) => self.fold_columns(block, all_full, &cx, &mut cursor, s, tx)?,
                None => self.ship_columns(block, all_full, &cx, &mut cursor, tx)?,
            }
        }
        self.finish_morsel(m, cursor, sink, tx)
    }

    /// Per-AFC accounting shared by the direct-read paths: logical
    /// bytes plus one issued syscall per entry run.
    fn count_direct_reads(&self, afc: &Afc) {
        let bytes = afc.bytes_read();
        let runs = afc.entries.len() as u64;
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.afc_count.fetch_add(1, Ordering::Relaxed);
        self.io_stats.read_syscalls.fetch_add(runs, Ordering::Relaxed);
        self.io_stats.runs_scheduled.fetch_add(runs, Ordering::Relaxed);
        self.io_stats.bytes_issued.fetch_add(bytes, Ordering::Relaxed);
        self.io_stats.bytes_used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Filter → project → partition → move one columnar block. When
    /// every AFC in the block carried a `Full` prune verdict the
    /// predicate is provably true for all rows, so the filter kernel
    /// runs with no predicate (select-all). `cursor` is the block's
    /// starting scanned ordinal; it advances by the block's pre-filter
    /// row count, keeping partition assignment and the mover sequence
    /// tag pure functions of the scan schedule.
    fn ship_columns(
        &self,
        mut block: ColumnBlock,
        skip_filter: bool,
        cx: &EvalContext,
        cursor: &mut u64,
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        self.cancel.check()?;
        let seq = *cursor;
        let scanned = block.len() as u64;
        *cursor += scanned;
        self.rows_scanned.fetch_add(scanned, Ordering::Relaxed);

        let predicate = if skip_filter { None } else { self.predicate.as_ref().as_ref() };
        filter_columns(&mut block, predicate, cx);
        self.rows_selected.fetch_add(block.selected() as u64, Ordering::Relaxed);
        if block.is_empty() {
            return Ok(());
        }

        block.project(&self.output_positions);

        if self.opts.client_processors == 1 {
            let bytes = send_columns(tx, 0, seq, block, &self.mover_stats)?;
            self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            let parts =
                partition_columns(block, &self.opts.partition, self.opts.client_processors, seq);
            for (p, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let bytes = send_columns(tx, p, seq, part, &self.mover_stats)?;
                self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// One morsel on the legacy row-at-a-time engine (the differential
    /// oracle). Same scanned-ordinal semantics as the columnar path:
    /// the filter reports survivors' pre-filter indices and partition
    /// assignment keys on them.
    fn run_morsel_rows(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        m: &Morsel,
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        let cx = EvalContext::new(self.schema_len, &self.working_attrs, &self.udfs);
        let mut scratch = dv_layout::ExtractScratch::default();
        let mut sink = self.new_sink();
        let mut cursor = m.base_rows;
        let batch_cap = if self.agg.is_some() { 0 } else { self.opts.batch_rows as u64 };

        let mut i = m.afcs.start;
        while i < m.afcs.end {
            self.cancel.check()?;
            // Batch AFCs until the block reaches the target row count
            // (aggregate queries: exactly one AFC per block).
            let mut block = RowBlock::new(self.node);
            let mut batched_rows = 0u64;
            let mut all_full = true;
            while i < m.afcs.end && (batched_rows == 0 || batched_rows < batch_cap) {
                let afc = &afcs[i];
                self.extractor.extract_into_with(afc, &mut block, &mut scratch)?;
                self.count_direct_reads(afc);
                all_full &= verdicts[i] == PruneVerdict::Full;
                batched_rows += afc.num_rows;
                i += 1;
            }
            let seq = cursor;
            cursor += batched_rows;
            self.rows_scanned.fetch_add(block.len() as u64, Ordering::Relaxed);

            let predicate = if all_full { None } else { self.predicate.as_ref().as_ref() };
            let kept = filter_block(&mut block, predicate, &cx);
            self.rows_selected.fetch_add(block.len() as u64, Ordering::Relaxed);
            if block.is_empty() {
                continue;
            }

            if let Some(s) = &mut sink {
                // Row-engine fold: same rows, same scan order, same
                // fold tree as the columnar kernel.
                let agg = self.agg.as_ref().expect("sink implies aggregation context");
                s.table.clear();
                for row in &block.rows {
                    s.table.fold_values(row, &agg.group_pos, &agg.arg_pos);
                }
                s.rows_in += block.rows.len() as u64;
                s.table.drain_into(seq, &mut s.out);
                if s.out.len() >= AGG_FLUSH_ENTRIES {
                    self.flush_agg(s, tx)?;
                }
                continue;
            }

            project_block(&mut block, &self.output_positions);

            if self.opts.client_processors == 1 {
                let bytes = send_block(tx, 0, seq, block, &self.mover_stats)?;
                self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
            } else {
                let parts = partition_block(
                    block,
                    &self.opts.partition,
                    self.opts.client_processors,
                    seq,
                    Some(&kept),
                );
                for (p, part) in parts.into_iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    let bytes = send_block(tx, p, seq, part, &self.mover_stats)?;
                    self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
                }
            }
        }
        self.finish_morsel(m, cursor, sink, tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn fragment_panic_reports_done_with_error() {
        let cluster = Arc::new(Cluster::new(1));
        let exec = ExecutorService::new(0, Arc::clone(&cluster));
        let (tx, rx) = unbounded();
        exec.spawn_fragment(tx, || panic!("udf exploded"));
        match rx.recv().unwrap() {
            MoverMessage::Done { node, result, .. } => {
                assert_eq!(node, 0);
                let err = result.unwrap_err();
                assert!(err.to_string().contains("udf exploded"), "{err}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The node worker survived the panic and still runs fragments.
        let (tx, rx) = unbounded();
        exec.spawn_fragment(tx, || Ok(()));
        match rx.recv().unwrap() {
            MoverMessage::Done { result, .. } => assert!(result.is_ok()),
            other => panic!("unexpected {other:?}"),
        }
    }

    fn plan_of(weights: &[u64]) -> MorselPlan {
        let morsels: Vec<Morsel> = weights
            .iter()
            .enumerate()
            .map(|(i, &b)| Morsel {
                seq: i,
                afcs: i..i + 1,
                groups: i..i + 1,
                base_rows: 0,
                bytes: b,
            })
            .collect();
        MorselPlan {
            groups: (0..weights.len()).map(|i| i..i + 1).collect(),
            morsels,
            target_bytes: 1,
            total_bytes: weights.iter().sum(),
        }
    }

    #[test]
    fn steal_queue_drains_every_morsel_exactly_once() {
        let plan = plan_of(&[10, 10, 10, 10, 10, 10, 10, 10]);
        let queue = StealQueue::new(&plan, 2);
        let mut seen = Vec::new();
        // Worker 1 never claims: worker 0 must steal the other half.
        let mut steals = 0;
        while let Some((m, stolen)) = queue.claim(0) {
            seen.push(m);
            if stolen {
                steals += 1;
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert_eq!(steals, 4, "the whole second queue is stolen");
    }

    #[test]
    fn steal_queue_prefers_most_loaded_victim() {
        let plan = plan_of(&[1, 100, 100, 1]);
        // Three workers: w0 gets morsel 0.. assignment is byte-based;
        // build queues manually via claim behavior instead: drain w2's
        // own queue first so only w0/w1 hold work, then steal.
        let queue = StealQueue::new(&plan, 3);
        while queue.pop(2, true).is_some() {}
        // w2 steals: must come from the back of the heaviest remaining
        // queue, never a lighter one while a heavier exists.
        let heaviest_before: u64 =
            (0..2).map(|v| queue.remaining[v].load(Ordering::Relaxed)).max().unwrap();
        let (m, stolen) = queue.claim(2).unwrap();
        assert!(stolen);
        let victim_had = heaviest_before;
        assert!(
            plan.morsels[m].bytes <= victim_had,
            "stole morsel {m} from a queue that held {victim_had} bytes"
        );
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for seq in 0..64 {
            let a = morsel_jitter_ms(3, seq, 7);
            let b = morsel_jitter_ms(3, seq, 7);
            assert_eq!(a, b);
            assert!(a < 7);
        }
        // Different morsels actually shuffle.
        let distinct: std::collections::HashSet<u64> =
            (0..64).map(|s| morsel_jitter_ms(0, s, 1000)).collect();
        assert!(distinct.len() > 8);
    }
}
