//! Per-node executor services.
//!
//! An [`ExecutorService`] runs one node's plan fragments on that
//! node's long-lived [`Cluster`] worker. It owns the contract between
//! the service plane and the cluster: every spawned fragment reports
//! completion with a `MoverMessage::Done` — even when it errors or
//! panics — so the session's drain loop can always account for all
//! nodes, and a panicking UDF becomes a query error instead of a dead
//! node thread. [`NodeWorker`] is the fragment body: the extract →
//! filter → partition → move pipeline, checkpointed on the query's
//! [`CancelToken`] at every block boundary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, Sender, TryRecvError};
use dv_layout::io::{group_afcs, FetchedGroup, IoScheduler, IoStats};
use dv_layout::{Afc, Extractor, PruneCertificate, PruneVerdict, SegmentCache};
use dv_sql::eval::EvalContext;
use dv_sql::{BoundExpr, UdfRegistry};
use dv_types::{CancelToken, ColumnBlock, DataType, DvError, Result, RowBlock};

use crate::cluster::Cluster;
use crate::filter::{filter_block, filter_columns, project_block};
use crate::mover::{send_block, send_columns, MoverMessage, MoverStats};
use crate::partition::{partition_block, partition_columns};
use crate::server::{ExecMode, QueryOptions};

/// One node's executor: dispatches plan fragments onto the node's
/// cluster worker and guarantees a `Done` report per fragment.
pub struct ExecutorService {
    node: usize,
    cluster: Arc<Cluster>,
}

impl ExecutorService {
    /// An executor for `node`, running on `cluster`'s worker threads.
    pub fn new(node: usize, cluster: Arc<Cluster>) -> ExecutorService {
        ExecutorService { node, cluster }
    }

    /// The node this executor serves.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Run `fragment` on this node's worker. The fragment's outcome —
    /// including a panic, converted to a runtime error — is always
    /// reported to `tx` as `MoverMessage::Done` with the fragment's
    /// busy time, so the session can never lose track of a node.
    pub fn spawn_fragment<F>(&self, tx: Sender<MoverMessage>, fragment: F)
    where
        F: FnOnce() -> Result<()> + Send + 'static,
    {
        let node = self.node;
        self.cluster.run_on(node, move || {
            let busy_start = Instant::now();
            let result = match catch_unwind(AssertUnwindSafe(fragment)) {
                Ok(r) => r,
                Err(payload) => Err(DvError::Runtime(format!(
                    "node {node} fragment panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            };
            let _ = tx.send(MoverMessage::Done { node, result, busy: busy_start.elapsed() });
        });
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Everything one node needs to run the extraction → filter →
/// partition → move pipeline for one query.
pub(crate) struct NodeWorker {
    pub node: usize,
    pub extractor: Extractor,
    pub udfs: Arc<UdfRegistry>,
    pub predicate: Arc<Option<BoundExpr>>,
    pub working_attrs: Arc<Vec<usize>>,
    pub working_dtypes: Arc<Vec<DataType>>,
    pub output_positions: Arc<Vec<usize>>,
    pub schema_len: usize,
    pub opts: QueryOptions,
    pub cancel: CancelToken,
    pub rows_scanned: Arc<AtomicU64>,
    pub rows_selected: Arc<AtomicU64>,
    pub bytes_read: Arc<AtomicU64>,
    pub bytes_moved: Arc<AtomicU64>,
    pub afc_count: Arc<AtomicU64>,
    pub prune_total: Arc<AtomicU64>,
    pub prune_pruned: Arc<AtomicU64>,
    pub prune_full: Arc<AtomicU64>,
    pub prune_bytes_avoided: Arc<AtomicU64>,
    pub io_stats: Arc<IoStats>,
    pub mover_stats: Arc<MoverStats>,
    pub segment_cache: Arc<SegmentCache>,
}

impl NodeWorker {
    /// Fold a node plan's prune accounting into the session counters.
    pub(crate) fn record_prune(&self, cert: &PruneCertificate) {
        self.prune_total.fetch_add(cert.groups_total, Ordering::Relaxed);
        self.prune_pruned.fetch_add(cert.groups_pruned, Ordering::Relaxed);
        self.prune_full.fetch_add(cert.groups_full, Ordering::Relaxed);
        self.prune_bytes_avoided.fetch_add(cert.bytes_avoided, Ordering::Relaxed);
    }

    /// Run the node's AFC schedule. `verdicts` is parallel to `afcs`
    /// (the plan's [`PruneCertificate`]); `Full` chunks skip the
    /// filter kernel whenever an entire batch is provably satisfying.
    pub(crate) fn run(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        debug_assert_eq!(afcs.len(), verdicts.len());
        if self.opts.intra_node_threads <= 1 {
            return self.run_stripe_any(afcs, verdicts, tx);
        }
        // Intra-node parallel stripes over the AFC list.
        let stripes = self.opts.intra_node_threads.min(afcs.len().max(1));
        let chunk = afcs.len().div_ceil(stripes);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (piece, piece_verdicts) in
                afcs.chunks(chunk.max(1)).zip(verdicts.chunks(chunk.max(1)))
            {
                handles.push(scope.spawn(move || self.run_stripe_any(piece, piece_verdicts, tx)));
            }
            for h in handles {
                h.join().map_err(|_| DvError::Runtime("node stripe panicked".into()))??;
            }
            Ok(())
        })
    }

    fn run_stripe_any(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        match self.opts.exec {
            ExecMode::Columnar => self.run_stripe_columns(afcs, verdicts, tx),
            ExecMode::RowAtATime => self.run_stripe(afcs, verdicts, tx),
        }
    }

    /// The columnar pipeline (default): fetch coalesced segments
    /// through the I/O scheduler (prefetching the next working set in
    /// the background), decode into typed columns, filter vectorized
    /// into a selection vector, project by reordering column handles,
    /// partition with one gather per column, move without touching
    /// row data.
    fn run_stripe_columns(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        if !self.opts.io.enabled {
            return self.run_stripe_columns_direct(afcs, verdicts, tx);
        }
        let cx = EvalContext::new(self.schema_len, &self.working_attrs, &self.udfs);
        let mut partition_base = 0u64;
        let scheduler = IoScheduler::new(
            self.extractor.clone(),
            self.opts.io.clone(),
            Some(Arc::clone(&self.segment_cache)),
            Arc::clone(&self.io_stats),
        )
        .with_cancel(self.cancel.clone());
        let groups = group_afcs(afcs, self.opts.io.group_bytes);

        if !self.opts.io.readahead || groups.len() < 2 {
            for g in groups {
                self.cancel.check()?;
                let fetched = scheduler.fetch(&afcs[g.clone()])?;
                self.decode_and_ship(
                    &afcs[g.clone()],
                    &verdicts[g],
                    &fetched,
                    &cx,
                    &mut partition_base,
                    tx,
                )?;
            }
            return Ok(());
        }

        // Double-buffered readahead: a bounded channel of fetched
        // groups; the prefetcher works on group g+1 (and beyond, up
        // to the channel depth) while this thread decodes group g.
        // On cancellation the decode loop's early return drops the
        // receiver; the prefetcher's next send then fails and the
        // scoped thread exits before the scope joins it — no orphan.
        let depth = self.opts.io.prefetch_depth.max(1);
        std::thread::scope(|scope| -> Result<()> {
            let (gtx, grx) = bounded::<Result<FetchedGroup>>(depth);
            let scheduler = &scheduler;
            let groups_tx = groups.clone();
            scope.spawn(move || {
                for g in groups_tx {
                    let fetched = scheduler.fetch(&afcs[g]);
                    let failed = fetched.is_err();
                    // The receiver hangs up after a decode error; stop
                    // fetching. Also stop after shipping a fetch error.
                    if gtx.send(fetched).is_err() || failed {
                        break;
                    }
                }
            });
            for g in groups {
                self.cancel.check()?;
                let fetched = match grx.try_recv() {
                    Ok(r) => {
                        self.io_stats.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                        r?
                    }
                    Err(TryRecvError::Empty) => {
                        let wait_start = Instant::now();
                        let r = grx
                            .recv()
                            .map_err(|_| DvError::Runtime("I/O prefetcher disconnected".into()))?;
                        self.io_stats.prefetch_waits.fetch_add(1, Ordering::Relaxed);
                        self.io_stats
                            .prefetch_wait_ns
                            .fetch_add(wait_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        r?
                    }
                    Err(TryRecvError::Disconnected) => {
                        return Err(DvError::Runtime("I/O prefetcher disconnected".into()));
                    }
                };
                self.decode_and_ship(
                    &afcs[g.clone()],
                    &verdicts[g],
                    &fetched,
                    &cx,
                    &mut partition_base,
                    tx,
                )?;
            }
            Ok(())
        })
    }

    /// Decode one fetched working-set group into blocks of at most
    /// `batch_rows` and run each through filter → project → partition
    /// → move.
    fn decode_and_ship(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        fetched: &FetchedGroup,
        cx: &EvalContext,
        partition_base: &mut u64,
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        let mut i = 0usize;
        while i < afcs.len() {
            let mut block = ColumnBlock::with_dtypes(self.node, &self.working_dtypes);
            let mut batched_rows = 0u64;
            let mut all_full = true;
            while i < afcs.len()
                && (batched_rows == 0 || batched_rows < self.opts.batch_rows as u64)
            {
                let afc = &afcs[i];
                self.extractor.extract_columns_fetched(afc, &mut block, fetched)?;
                self.bytes_read.fetch_add(afc.bytes_read(), Ordering::Relaxed);
                self.afc_count.fetch_add(1, Ordering::Relaxed);
                all_full &= verdicts[i] == PruneVerdict::Full;
                batched_rows += afc.num_rows;
                i += 1;
            }
            self.ship_columns(block, all_full, cx, partition_base, tx)?;
        }
        Ok(())
    }

    /// The scheduler-off columnar path: one read per AFC entry into
    /// the shared scratch buffer (kept as the ablation baseline and
    /// the fallback when `QueryOptions::io.enabled` is false).
    fn run_stripe_columns_direct(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        let cx = EvalContext::new(self.schema_len, &self.working_attrs, &self.udfs);
        let mut partition_base = 0u64;
        let mut scratch = dv_layout::ExtractScratch::default();

        let mut i = 0usize;
        while i < afcs.len() {
            // Batch AFCs until the block reaches the target row count.
            let mut block = ColumnBlock::with_dtypes(self.node, &self.working_dtypes);
            let mut batched_rows = 0u64;
            let mut all_full = true;
            while i < afcs.len()
                && (batched_rows == 0 || batched_rows < self.opts.batch_rows as u64)
            {
                let afc = &afcs[i];
                self.extractor.extract_columns_with(afc, &mut block, &mut scratch)?;
                self.count_direct_reads(afc);
                all_full &= verdicts[i] == PruneVerdict::Full;
                batched_rows += afc.num_rows;
                i += 1;
            }
            self.ship_columns(block, all_full, &cx, &mut partition_base, tx)?;
        }
        Ok(())
    }

    /// Per-AFC accounting shared by the direct-read paths: logical
    /// bytes plus one issued syscall per entry run.
    fn count_direct_reads(&self, afc: &Afc) {
        let bytes = afc.bytes_read();
        let runs = afc.entries.len() as u64;
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.afc_count.fetch_add(1, Ordering::Relaxed);
        self.io_stats.read_syscalls.fetch_add(runs, Ordering::Relaxed);
        self.io_stats.runs_scheduled.fetch_add(runs, Ordering::Relaxed);
        self.io_stats.bytes_issued.fetch_add(bytes, Ordering::Relaxed);
        self.io_stats.bytes_used.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Filter → project → partition → move one columnar block. When
    /// every AFC in the block carried a `Full` prune verdict the
    /// predicate is provably true for all rows, so the filter kernel
    /// runs with no predicate (select-all).
    fn ship_columns(
        &self,
        mut block: ColumnBlock,
        skip_filter: bool,
        cx: &EvalContext,
        partition_base: &mut u64,
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        self.cancel.check()?;
        self.rows_scanned.fetch_add(block.len() as u64, Ordering::Relaxed);

        let predicate = if skip_filter { None } else { self.predicate.as_ref().as_ref() };
        filter_columns(&mut block, predicate, cx);
        self.rows_selected.fetch_add(block.selected() as u64, Ordering::Relaxed);
        if block.is_empty() {
            return Ok(());
        }

        block.project(&self.output_positions);

        if self.opts.client_processors == 1 {
            let bytes = send_columns(tx, 0, block, &self.mover_stats)?;
            self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            let parts = partition_columns(
                block,
                &self.opts.partition,
                self.opts.client_processors,
                *partition_base,
            );
            // Round-robin base advances by total rows partitioned.
            *partition_base += parts.iter().map(|p| p.selected() as u64).sum::<u64>();
            for (p, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let bytes = send_columns(tx, p, part, &self.mover_stats)?;
                self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn run_stripe(
        &self,
        afcs: &[Afc],
        verdicts: &[PruneVerdict],
        tx: &Sender<MoverMessage>,
    ) -> Result<()> {
        let cx = EvalContext::new(self.schema_len, &self.working_attrs, &self.udfs);
        let mut partition_base = 0u64;
        let mut scratch = dv_layout::ExtractScratch::default();

        let mut i = 0usize;
        while i < afcs.len() {
            self.cancel.check()?;
            // Batch AFCs until the block reaches the target row count.
            let mut block = RowBlock::new(self.node);
            let mut batched_rows = 0u64;
            let mut all_full = true;
            while i < afcs.len()
                && (batched_rows == 0 || batched_rows < self.opts.batch_rows as u64)
            {
                let afc = &afcs[i];
                self.extractor.extract_into_with(afc, &mut block, &mut scratch)?;
                self.count_direct_reads(afc);
                all_full &= verdicts[i] == PruneVerdict::Full;
                batched_rows += afc.num_rows;
                i += 1;
            }
            self.rows_scanned.fetch_add(block.len() as u64, Ordering::Relaxed);

            let predicate = if all_full { None } else { self.predicate.as_ref().as_ref() };
            filter_block(&mut block, predicate, &cx);
            self.rows_selected.fetch_add(block.len() as u64, Ordering::Relaxed);
            if block.is_empty() {
                continue;
            }

            project_block(&mut block, &self.output_positions);

            if self.opts.client_processors == 1 {
                let bytes = send_block(tx, 0, block, &self.mover_stats)?;
                self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
            } else {
                let parts = partition_block(
                    block,
                    &self.opts.partition,
                    self.opts.client_processors,
                    partition_base,
                );
                // Round-robin base advances by total rows partitioned.
                partition_base += parts.iter().map(|p| p.len() as u64).sum::<u64>();
                for (p, part) in parts.into_iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    let bytes = send_block(tx, p, part, &self.mover_stats)?;
                    self.bytes_moved.fetch_add(bytes as u64, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn fragment_panic_reports_done_with_error() {
        let cluster = Arc::new(Cluster::new(1));
        let exec = ExecutorService::new(0, Arc::clone(&cluster));
        let (tx, rx) = unbounded();
        exec.spawn_fragment(tx, || panic!("udf exploded"));
        match rx.recv().unwrap() {
            MoverMessage::Done { node, result, .. } => {
                assert_eq!(node, 0);
                let err = result.unwrap_err();
                assert!(err.to_string().contains("udf exploded"), "{err}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The node worker survived the panic and still runs fragments.
        let (tx, rx) = unbounded();
        exec.spawn_fragment(tx, || Ok(()));
        match rx.recv().unwrap() {
            MoverMessage::Done { result, .. } => assert!(result.is_ok()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
