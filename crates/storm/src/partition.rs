//! Partition generation service.
//!
//! "The purpose of the partition generation service is to make it
//! possible for an application developer to implement the data
//! distribution scheme employed in the client program at the server"
//! (§2.3): selected rows are split among the client's processors
//! *before* transfer, so each processor receives exactly its share.

use dv_types::{ColumnBlock, RowBlock, Value};

/// How rows are distributed over the client's processors.
#[derive(Debug, Clone)]
pub enum PartitionStrategy {
    /// Cycle rows over processors (default; balances load).
    RoundRobin,
    /// Hash one attribute (by working-row position) — rows with equal
    /// values land on the same processor.
    HashAttr { position: usize },
    /// Range-partition one attribute over `bounds`: processor `p`
    /// receives rows with `bounds[p-1] <= v < bounds[p]` (processor 0
    /// takes everything below `bounds[0]`, the last everything above).
    RangeAttr { position: usize, bounds: Vec<f64> },
}

impl PartitionStrategy {
    /// Processor index for a row.
    #[inline]
    pub fn assign(&self, row_ordinal: u64, row: &[Value], processors: usize) -> usize {
        if processors <= 1 {
            return 0;
        }
        match self {
            PartitionStrategy::RoundRobin => (row_ordinal % processors as u64) as usize,
            PartitionStrategy::HashAttr { position } => {
                hash_processor(row[*position].as_f64(), processors)
            }
            PartitionStrategy::RangeAttr { position, bounds } => {
                range_processor(row[*position].as_f64(), bounds, processors)
            }
        }
    }
}

/// Hash a partition-key value to a processor. Mixes the bits of the
/// value; f64 -> u64 is stable for equal values (including
/// -0.0 == 0.0 normalization), so the row and columnar paths agree.
#[inline]
fn hash_processor(v: f64, processors: usize) -> usize {
    let bits = if v == 0.0 { 0u64 } else { v.to_bits() };
    let mut h = bits ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h % processors as u64) as usize
}

/// Range-partition a key value over sorted `bounds`.
#[inline]
fn range_processor(v: f64, bounds: &[f64], processors: usize) -> usize {
    bounds.partition_point(|b| *b <= v).min(processors - 1)
}

/// Split a block into per-processor blocks. `base_ordinal` is the
/// *scanned* ordinal of the block's first pre-filter row — a plan-time
/// quantity (rows materialized by all earlier AFCs in the node's
/// schedule), so round-robin assignment is independent of block
/// boundaries, batch sizes, thread counts, and morsel steal order.
/// `ordinals`, when present, gives each surviving row's pre-filter
/// index within the block (from [`crate::filter::filter_block`]);
/// `None` means the block was not filtered (identity).
pub fn partition_block(
    block: RowBlock,
    strategy: &PartitionStrategy,
    processors: usize,
    base_ordinal: u64,
    ordinals: Option<&[u32]>,
) -> Vec<RowBlock> {
    let mut out: Vec<RowBlock> =
        (0..processors).map(|_| RowBlock::new(block.source_node)).collect();
    for (i, row) in block.rows.into_iter().enumerate() {
        let ord = match ordinals {
            Some(o) => o[i] as u64,
            None => i as u64,
        };
        let p = strategy.assign(base_ordinal + ord, &row, processors);
        out[p].rows.push(row);
    }
    out
}

/// Split a columnar block's *selected* rows into dense per-processor
/// columnar blocks. Assignment reads only the key column (as `f64`s);
/// the gather then touches each payload column exactly once.
/// Round-robin keys on `base_ordinal` plus each row's pre-filter index
/// (the selection vector preserves scanned positions), mirroring
/// [`partition_block`]'s scanned-ordinal semantics.
pub fn partition_columns(
    block: ColumnBlock,
    strategy: &PartitionStrategy,
    processors: usize,
    base_ordinal: u64,
) -> Vec<ColumnBlock> {
    let mut idx: Vec<Vec<u32>> = (0..processors).map(|_| Vec::new()).collect();
    match strategy {
        PartitionStrategy::RoundRobin => {
            for i in block.selected_rows() {
                idx[((base_ordinal + i as u64) % processors as u64) as usize].push(i);
            }
        }
        PartitionStrategy::HashAttr { position } => {
            let keys = block.columns[*position].f64s(block.selection());
            for (v, i) in keys.into_iter().zip(block.selected_rows()) {
                idx[hash_processor(v, processors)].push(i);
            }
        }
        PartitionStrategy::RangeAttr { position, bounds } => {
            let keys = block.columns[*position].f64s(block.selection());
            for (v, i) in keys.into_iter().zip(block.selected_rows()) {
                idx[range_processor(v, bounds, processors)].push(i);
            }
        }
    }
    idx.into_iter()
        .map(|ids| {
            let cols = block.columns.iter().map(|c| c.gather(&ids)).collect();
            ColumnBlock::from_columns(block.source_node, cols)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: i32) -> RowBlock {
        let mut b = RowBlock::new(0);
        for i in 0..n {
            b.rows.push(vec![Value::Int(i), Value::Double(i as f64)]);
        }
        b
    }

    #[test]
    fn round_robin_balances() {
        let parts = partition_block(block(10), &PartitionStrategy::RoundRobin, 3, 0, None);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        // Conservation.
        assert_eq!(sizes.iter().sum::<usize>(), 10);
    }

    #[test]
    fn round_robin_continues_across_blocks() {
        let a = partition_block(block(2), &PartitionStrategy::RoundRobin, 2, 0, None);
        let b = partition_block(block(2), &PartitionStrategy::RoundRobin, 2, 2, None);
        // Second block continues the cycle: ordinals 2,3 → procs 0,1.
        assert_eq!(a[0].len(), 1);
        assert_eq!(b[0].len(), 1);
        assert_eq!(b[0].rows[0][0], Value::Int(0));
    }

    #[test]
    fn hash_groups_equal_values() {
        let mut b = RowBlock::new(0);
        for _ in 0..5 {
            b.rows.push(vec![Value::Int(42)]);
        }
        for _ in 0..5 {
            b.rows.push(vec![Value::Int(7)]);
        }
        let parts = partition_block(b, &PartitionStrategy::HashAttr { position: 0 }, 4, 0, None);
        // Each distinct value lands entirely on one processor.
        for parts_with_42 in parts.iter().filter(|p| p.rows.iter().any(|r| r[0] == Value::Int(42)))
        {
            assert!(parts_with_42.rows.iter().filter(|r| r[0] == Value::Int(42)).count() == 5);
        }
    }

    #[test]
    fn hash_cross_type_equal_values_agree() {
        // Int 5 and Double 5.0 compare equal and must hash identically.
        let s = PartitionStrategy::HashAttr { position: 0 };
        let a = s.assign(0, &[Value::Int(5)], 8);
        let b = s.assign(0, &[Value::Double(5.0)], 8);
        assert_eq!(a, b);
    }

    #[test]
    fn range_partition_respects_bounds() {
        let s = PartitionStrategy::RangeAttr { position: 1, bounds: vec![3.0, 6.0] };
        let parts = partition_block(block(10), &s, 3, 0, None);
        assert_eq!(parts[0].len(), 3); // 0,1,2
        assert_eq!(parts[1].len(), 3); // 3,4,5
        assert_eq!(parts[2].len(), 4); // 6..9
    }

    #[test]
    fn single_processor_short_circuits() {
        let s = PartitionStrategy::HashAttr { position: 0 };
        assert_eq!(s.assign(9, &[Value::Int(1)], 1), 0);
    }

    fn col_block(n: i32) -> ColumnBlock {
        use dv_types::DataType;
        let mut b = ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Double]);
        for i in 0..n {
            b.columns[0].append_data().push_value(Value::Int(i));
            b.columns[1].append_data().push_value(Value::Double(i as f64));
        }
        b.advance_rows(n as usize);
        b
    }

    /// Reconstitute a columnar partition as rows for comparison.
    fn part_rows(p: &ColumnBlock) -> Vec<Vec<Value>> {
        (0..p.len()).map(|i| p.columns.iter().map(|c| c.value_at(i)).collect()).collect()
    }

    #[test]
    fn columnar_partition_matches_row_partition() {
        let strategies = [
            PartitionStrategy::RoundRobin,
            PartitionStrategy::HashAttr { position: 0 },
            PartitionStrategy::RangeAttr { position: 1, bounds: vec![3.0, 6.0] },
        ];
        for s in strategies {
            let rows = partition_block(block(10), &s, 3, 5, None);
            let cols = partition_columns(col_block(10), &s, 3, 5);
            assert_eq!(cols.len(), rows.len());
            for (c, r) in cols.iter().zip(&rows) {
                assert_eq!(part_rows(c), r.rows, "{s:?}");
            }
        }
    }

    #[test]
    fn columnar_partition_honors_selection() {
        let mut b = col_block(10);
        // Keep only even rows, then round-robin over 2 processors.
        // Assignment keys on the *scanned* ordinal (the pre-filter
        // index), so every even-ordinal survivor lands on processor 0
        // — a plan-time function of the scan, independent of how the
        // surviving rows were batched or which worker shipped them.
        b.set_selection(Some(vec![0, 2, 4, 6, 8]));
        let parts = partition_columns(b, &PartitionStrategy::RoundRobin, 2, 0);
        assert_eq!(parts[0].len() + parts[1].len(), 5);
        assert_eq!(parts[0].len(), 5);
        assert_eq!(parts[1].len(), 0);
        assert_eq!(part_rows(&parts[0])[0], vec![Value::Int(0), Value::Double(0.0)]);
        assert_eq!(part_rows(&parts[0])[1], vec![Value::Int(2), Value::Double(2.0)]);
    }

    #[test]
    fn row_partition_with_ordinals_matches_columnar_selection() {
        // Row path: the same five survivors with their pre-filter
        // indices must partition exactly like the columnar selection.
        let mut b = RowBlock::new(0);
        for i in [0, 2, 4, 6, 8] {
            b.rows.push(vec![Value::Int(i), Value::Double(i as f64)]);
        }
        let kept: Vec<u32> = vec![0, 2, 4, 6, 8];
        let parts = partition_block(b, &PartitionStrategy::RoundRobin, 2, 0, Some(&kept));
        assert_eq!(parts[0].len(), 5);
        assert_eq!(parts[1].len(), 0);
        // A different base shifts the whole block's assignment.
        let mut b = RowBlock::new(0);
        for i in [0, 2, 4, 6, 8] {
            b.rows.push(vec![Value::Int(i), Value::Double(i as f64)]);
        }
        let parts = partition_block(b, &PartitionStrategy::RoundRobin, 2, 1, Some(&kept));
        assert_eq!(parts[0].len(), 0);
        assert_eq!(parts[1].len(), 5);
    }
}
