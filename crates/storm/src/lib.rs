//! # dv-storm
//!
//! The runtime middleware, mirroring the paper's STORM architecture
//! (§2.3) as "a suite of loosely coupled services":
//!
//! * **query service** ([`server::StormServer`]) — the entry point:
//!   parses, binds, plans and orchestrates;
//! * **data source service** — the generated extraction function,
//!   executed per node by [`cluster::Cluster`] workers via
//!   [`dv_layout::Extractor`];
//! * **indexing service** — embedded in plan generation
//!   (`dv-layout` file/chunk pruning with implicit extents + R-trees);
//! * **filtering service** ([`filter`]) — evaluates the residual
//!   predicate (including user-defined filters) on working rows;
//! * **partition generation service** ([`partition`]) — assigns
//!   selected rows to the client program's processors;
//! * **data mover service** ([`mover`]) — ships row blocks to client
//!   consumers, optionally through a bandwidth/latency model that
//!   simulates remote (wide-area) clients.
//!
//! The cluster is simulated: each logical node is a worker thread that
//! owns that node's directory tree, so per-node work (I/O, decoding,
//! filtering) runs in parallel exactly as data-parallel STORM nodes
//! would (see DESIGN.md for the substitution argument).

pub mod cluster;
pub mod filter;
pub mod mover;
pub mod partition;
pub mod server;
pub mod stats;

pub use dv_layout::{IoOptions, IoSnapshot};
pub use mover::BandwidthModel;
pub use partition::PartitionStrategy;
pub use server::{ExecMode, QueryOptions, StormServer};
pub use stats::QueryStats;
