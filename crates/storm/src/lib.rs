//! # dv-storm
//!
//! The runtime middleware, mirroring the paper's STORM architecture
//! (§2.3) as "a suite of loosely coupled services":
//!
//! * **query service** ([`service::QueryService`]) — the long-lived
//!   front end: admits queries (priority-then-FIFO, bounded by
//!   [`ServiceConfig::max_concurrent`]), assigns [`QueryId`]s, tracks
//!   sessions, and threads a sticky [`CancelToken`] + deadline through
//!   every stage. [`server::StormServer`] survives as a thin
//!   single-query facade over it;
//! * **data source service** — the generated extraction function,
//!   executed per node by [`executor::ExecutorService`]s running plan
//!   fragments off the [`cluster::Cluster`] workers via
//!   [`dv_layout::Extractor`];
//! * **indexing service** — embedded in plan generation
//!   (`dv-layout` file/chunk pruning with implicit extents + R-trees);
//! * **filtering service** ([`filter`]) — evaluates the residual
//!   predicate (including user-defined filters) on working rows;
//! * **partition generation service** ([`partition`]) — assigns
//!   selected rows to the client program's processors;
//! * **data mover service** ([`mover`]) — the only inter-stage
//!   transport: bounded typed channels, so a slow absorber
//!   back-pressures node pipelines; remote (wide-area) clients charge
//!   a bandwidth/latency model on the absorbing side, so concurrent
//!   sessions overlap their simulated transfer stalls.
//!
//! The cluster is simulated: each logical node is a worker thread that
//! owns that node's directory tree, so per-node work (I/O, decoding,
//! filtering) runs in parallel exactly as data-parallel STORM nodes
//! would (see DESIGN.md §2 for the substitution argument and §10 for
//! the service plane: admission, sessions, cancellation, transport).

pub mod admission;
pub mod cluster;
pub mod executor;
pub mod filter;
pub mod mover;
pub mod partition;
pub mod server;
pub mod service;
pub mod stats;

pub use admission::{Admission, AdmissionSlot};
pub use dv_layout::{IoOptions, IoSnapshot};
pub use dv_types::{CancelReason, CancelToken};
pub use executor::ExecutorService;
pub use mover::{BandwidthModel, MoverSnapshot};
pub use partition::PartitionStrategy;
pub use server::{default_intra_node_threads, ExecMode, QueryOptions, StormServer};
pub use service::{QueryId, QueryService, ServiceConfig, SessionHandle, SubmitOptions};
pub use stats::{MorselSnapshot, QueryStats};
