//! Filtering service: residual predicate evaluation on working rows.
//!
//! Range constraints already pruned files/chunks at the plan level,
//! but rows inside surviving chunks can still violate the predicate
//! (value filters like `SOIL > 0.7`, user-defined filters like
//! `SPEED(...) <= 30`, or partially-pruned ranges). This service
//! evaluates the *full* predicate on every extracted row — sound even
//! when pruning was exact, and required when it was not.

use dv_sql::eval::EvalContext;
use dv_sql::BoundExpr;
use dv_types::{ColumnBlock, RowBlock};

/// Filter a block in place, returning the surviving rows' *pre-filter*
/// indices within the block. Round-robin partitioning keys on those
/// scanned ordinals (not the compacted positions), so the row →
/// processor map stays a pure function of the scan schedule — the
/// property the morsel engine's determinism rests on. `None` predicate
/// keeps everything (identity indices).
pub fn filter_block(
    block: &mut RowBlock,
    predicate: Option<&BoundExpr>,
    cx: &EvalContext<'_>,
) -> Vec<u32> {
    let Some(pred) = predicate else { return (0..block.rows.len() as u32).collect() };
    let mut kept = Vec::with_capacity(block.rows.len());
    let mut next = 0u32;
    block.rows.retain(|row| {
        let keep = cx.eval(pred, row);
        if keep {
            kept.push(next);
        }
        next += 1;
        keep
    });
    kept
}

/// Filter a freshly extracted columnar block by evaluating the
/// predicate vectorized and installing the resulting selection vector
/// — no row data moves. Returns the number of rows rejected.
pub fn filter_columns(
    block: &mut ColumnBlock,
    predicate: Option<&BoundExpr>,
    cx: &EvalContext<'_>,
) -> usize {
    let Some(pred) = predicate else { return 0 };
    let before = block.selected();
    let bm = cx.eval_block(pred, block);
    if bm.count() == block.len() {
        block.set_selection(None);
    } else {
        block.set_selection(Some(bm.indices()));
    }
    before - block.selected()
}

/// Project working rows to the output columns, in place.
pub fn project_block(block: &mut RowBlock, output_positions: &[usize]) {
    // Identity projection: working row already equals the output row.
    if output_positions.len() == block.rows.first().map(|r| r.len()).unwrap_or(0)
        && output_positions.iter().enumerate().all(|(i, &p)| i == p)
    {
        return;
    }
    for row in &mut block.rows {
        let projected = output_positions.iter().map(|&p| row[p]).collect();
        *row = projected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_sql::{bind, parse, UdfRegistry};
    use dv_types::{Attribute, DataType, Schema, Value};

    fn schema() -> Schema {
        Schema::new(
            "T",
            vec![Attribute::new("A", DataType::Int), Attribute::new("B", DataType::Float)],
        )
        .unwrap()
    }

    fn block() -> RowBlock {
        let mut b = RowBlock::new(0);
        for i in 0..10 {
            b.rows.push(vec![Value::Int(i), Value::Float(i as f32 / 10.0)]);
        }
        b
    }

    #[test]
    fn filters_rows() {
        let s = schema();
        let udfs = UdfRegistry::new();
        let q = parse("SELECT * FROM T WHERE A >= 3 AND B < 0.7").unwrap();
        let bq = bind(&q, &s, &udfs).unwrap();
        let cx = EvalContext::new(2, &[0, 1], &udfs);
        let mut b = block();
        let kept = filter_block(&mut b, bq.predicate.as_ref(), &cx);
        // f32(0.7) ≈ 0.699999988 < 0.7, so i = 7 survives too.
        assert_eq!(b.rows.len(), 5); // A in {3,4,5,6,7}
        assert_eq!(b.rows[0][0], Value::Int(3));
        // Survivors' pre-filter positions, for ordinal partitioning.
        assert_eq!(kept, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn no_predicate_keeps_everything() {
        let udfs = UdfRegistry::new();
        let cx = EvalContext::new(2, &[0, 1], &udfs);
        let mut b = block();
        let kept = filter_block(&mut b, None, &cx);
        assert_eq!(kept, (0..10).collect::<Vec<u32>>());
        assert_eq!(b.rows.len(), 10);
    }

    #[test]
    fn projection_reorders_and_drops() {
        let mut b = block();
        project_block(&mut b, &[1]);
        assert_eq!(b.rows[3], vec![Value::Float(0.3)]);
        let mut b2 = block();
        project_block(&mut b2, &[1, 0]);
        assert_eq!(b2.rows[2], vec![Value::Float(0.2), Value::Int(2)]);
    }

    #[test]
    fn identity_projection_is_noop() {
        let mut b = block();
        let expected = b.rows.clone();
        project_block(&mut b, &[0, 1]);
        assert_eq!(b.rows, expected);
    }

    fn column_block() -> ColumnBlock {
        let mut b = ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Float]);
        for i in 0..10 {
            b.columns[0].append_data().push_value(Value::Int(i));
            b.columns[1].append_data().push_value(Value::Float(i as f32 / 10.0));
        }
        b.advance_rows(10);
        b
    }

    #[test]
    fn columnar_filter_selects_same_rows() {
        let s = schema();
        let udfs = UdfRegistry::new();
        let q = parse("SELECT * FROM T WHERE A >= 3 AND B < 0.7").unwrap();
        let bq = bind(&q, &s, &udfs).unwrap();
        let cx = EvalContext::new(2, &[0, 1], &udfs);

        let mut rows = block();
        let kept = filter_block(&mut rows, bq.predicate.as_ref(), &cx);
        let mut cols = column_block();
        let removed = filter_columns(&mut cols, bq.predicate.as_ref(), &cx);
        assert_eq!(removed, 10 - rows.rows.len());

        // The row path's kept indices and the columnar selection
        // vector must name the same scanned ordinals.
        let sel = cols.selection().expect("partial filter installs a selection");
        assert_eq!(kept, sel.to_vec());

        let survivors: Vec<Value> = cols.columns[0].values(cols.selection());
        let expected: Vec<Value> = rows.rows.iter().map(|r| r[0]).collect();
        assert_eq!(survivors, expected);
    }

    #[test]
    fn columnar_filter_without_predicate_keeps_all() {
        let udfs = UdfRegistry::new();
        let cx = EvalContext::new(2, &[0, 1], &udfs);
        let mut cols = column_block();
        assert_eq!(filter_columns(&mut cols, None, &cx), 0);
        assert_eq!(cols.selected(), 10);
        assert!(cols.selection().is_none());
    }
}
