//! Admission control for the query service plane.
//!
//! The service admits at most `max_concurrent` queries at once; the
//! rest wait in a priority-then-FIFO queue. A granted slot is an RAII
//! guard ([`AdmissionSlot`]) whose `Drop` releases the slot, so every
//! exit path — success, error, panic unwinding through the session,
//! cancellation — frees capacity for the next waiter. Waiters poll
//! their [`CancelToken`] while queued, so a timed-out or abandoned
//! query leaves the queue without ever occupying a slot.

use std::cmp::Reverse;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use dv_types::{CancelToken, Result};

/// How long a queued waiter sleeps between cancellation polls.
const WAIT_QUANTUM: Duration = Duration::from_millis(10);

struct AdmState {
    max_concurrent: usize,
    running: usize,
    /// Waiting tickets as `(priority, ticket)`; the next admitted is
    /// the highest priority, then the lowest (oldest) ticket.
    queue: Vec<(u8, u64)>,
    next_ticket: u64,
}

/// The admission gate shared by all sessions of one query service.
pub struct Admission {
    state: Mutex<AdmState>,
    cv: Condvar,
}

impl Admission {
    /// A gate admitting at most `max_concurrent` queries (clamped to
    /// at least 1).
    pub fn new(max_concurrent: usize) -> Arc<Admission> {
        Arc::new(Admission {
            state: Mutex::new(AdmState {
                max_concurrent: max_concurrent.max(1),
                running: 0,
                queue: Vec::new(),
                next_ticket: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Queries currently holding a slot.
    pub fn running(&self) -> usize {
        self.state.lock().expect("admission poisoned").running
    }

    /// Queries waiting for a slot.
    pub fn queued(&self) -> usize {
        self.state.lock().expect("admission poisoned").queue.len()
    }

    /// The configured concurrency limit.
    pub fn max_concurrent(&self) -> usize {
        self.state.lock().expect("admission poisoned").max_concurrent
    }

    /// Block until a slot opens (respecting priority-then-FIFO order)
    /// or `cancel` trips. Higher `priority` values are admitted first.
    pub fn acquire(self: &Arc<Self>, priority: u8, cancel: &CancelToken) -> Result<AdmissionSlot> {
        let ticket = {
            let mut state = self.state.lock().expect("admission poisoned");
            let ticket = state.next_ticket;
            state.next_ticket += 1;
            state.queue.push((priority, ticket));
            ticket
        };
        let mut state = self.state.lock().expect("admission poisoned");
        loop {
            if cancel.is_cancelled() {
                state.queue.retain(|&(_, t)| t != ticket);
                drop(state);
                // Our departure may make another waiter the front.
                self.cv.notify_all();
                return Err(cancel.error());
            }
            if state.running < state.max_concurrent && Self::front(&state) == Some(ticket) {
                state.queue.retain(|&(_, t)| t != ticket);
                state.running += 1;
                return Ok(AdmissionSlot { gate: Arc::clone(self) });
            }
            // A timed wait, not a pure condvar wait: cancellation and
            // deadlines have no waker of their own and must be polled.
            let (guard, _) = self.cv.wait_timeout(state, WAIT_QUANTUM).expect("admission poisoned");
            state = guard;
        }
    }

    /// The ticket next in line: highest priority, then oldest.
    fn front(state: &AdmState) -> Option<u64> {
        state.queue.iter().min_by_key(|&&(p, t)| (Reverse(p), t)).map(|&(_, t)| t)
    }
}

/// A granted execution slot; dropping it (on any exit path) releases
/// capacity and wakes the queue.
pub struct AdmissionSlot {
    gate: Arc<Admission>,
}

impl std::fmt::Debug for AdmissionSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AdmissionSlot")
    }
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("admission poisoned");
        state.running -= 1;
        drop(state);
        self.gate.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    #[test]
    fn slots_are_limited_and_released() {
        let gate = Admission::new(2);
        let live = CancelToken::new();
        let a = gate.acquire(0, &live).unwrap();
        let b = gate.acquire(0, &live).unwrap();
        assert_eq!(gate.running(), 2);
        // A third acquire must wait until a slot drops.
        let gate2 = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            let _slot = gate2.acquire(0, &CancelToken::new()).unwrap();
            gate2.running()
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(gate.queued(), 1);
        drop(a);
        assert_eq!(t.join().unwrap(), 2);
        drop(b);
        assert_eq!(gate.running(), 0);
    }

    #[test]
    fn cancelled_waiter_leaves_the_queue() {
        let gate = Admission::new(1);
        let _held = gate.acquire(0, &CancelToken::new()).unwrap();
        let cancel = CancelToken::with_timeout(Duration::from_millis(20));
        let start = Instant::now();
        let err = gate.acquire(0, &cancel).unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        assert!(start.elapsed() < Duration::from_secs(2));
        assert_eq!(gate.queued(), 0, "cancelled waiter must not linger");
        assert_eq!(gate.running(), 1, "held slot unaffected");
    }

    #[test]
    fn priority_beats_fifo() {
        let gate = Admission::new(1);
        let held = gate.acquire(0, &CancelToken::new()).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let admitted = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        // A low-priority waiter queues first, a high-priority one second.
        for (delay_ms, priority, tag) in [(0u64, 0u8, "low"), (20, 3, "high")] {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            let admitted = Arc::clone(&admitted);
            threads.push(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                let _slot = gate.acquire(priority, &CancelToken::new()).unwrap();
                order.lock().unwrap().push(tag);
                admitted.fetch_add(1, Ordering::SeqCst);
                // Hold briefly so the other waiter observes the order.
                std::thread::sleep(Duration::from_millis(10));
            }));
        }
        // Let both enqueue before releasing the held slot.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(gate.queued(), 2);
        drop(held);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec!["high", "low"]);
    }

    #[test]
    fn fifo_within_equal_priority() {
        let gate = Admission::new(1);
        let held = gate.acquire(0, &CancelToken::new()).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        for i in 0..3u64 {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            threads.push(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(i * 20));
                let _slot = gate.acquire(0, &CancelToken::new()).unwrap();
                order.lock().unwrap().push(i);
                std::thread::sleep(Duration::from_millis(5));
            }));
        }
        std::thread::sleep(Duration::from_millis(100));
        drop(held);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn zero_limit_clamps_to_one() {
        let gate = Admission::new(0);
        assert_eq!(gate.max_concurrent(), 1);
        let _slot = gate.acquire(0, &CancelToken::new()).unwrap();
    }
}
