//! Data mover service.
//!
//! Transfers selected row blocks from node workers to client
//! processors. Local clients receive blocks over channels at memory
//! speed; remote clients (the paper's Figure 8 query 5, "accessing the
//! data from a remote client") go through a [`BandwidthModel`] that
//! delays each block according to a link bandwidth and per-block
//! latency, simulating the wide-area transfer.

use std::time::Duration;

use crossbeam::channel::Sender;
use dv_types::{ColumnBlock, DvError, Result, RowBlock};

/// Simulated network link for remote clients.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthModel {
    /// Payload bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-block latency (round-trip / framing overhead).
    pub latency: Duration,
}

impl BandwidthModel {
    /// A Fast-Ethernet-class link (the paper's cluster interconnect):
    /// 100 Mbit/s, negligible latency.
    pub fn fast_ethernet() -> BandwidthModel {
        BandwidthModel { bytes_per_sec: 12.5e6, latency: Duration::from_micros(100) }
    }

    /// A wide-area link for remote-client experiments: 10 Mbit/s,
    /// 20 ms latency.
    pub fn wide_area() -> BandwidthModel {
        BandwidthModel { bytes_per_sec: 1.25e6, latency: Duration::from_millis(20) }
    }

    /// Transfer delay of a payload of `bytes`.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

/// Message from node workers to the client-side collector.
#[derive(Debug)]
pub enum MoverMessage {
    /// A block destined for client processor `processor`.
    Block { processor: usize, block: RowBlock },
    /// A columnar block destined for client processor `processor`
    /// (rows are reconstituted only when the client absorbs it).
    Columns { processor: usize, block: ColumnBlock },
    /// Node `node` finished (successfully or not), reporting how long
    /// its extract/filter/partition/move pipeline ran.
    Done { node: usize, result: Result<()>, busy: std::time::Duration },
}

/// Send one block, applying the bandwidth model if present. Returns
/// the simulated bytes moved.
pub fn send_block(
    tx: &Sender<MoverMessage>,
    processor: usize,
    block: RowBlock,
    bandwidth: Option<&BandwidthModel>,
) -> Result<usize> {
    let bytes = block.wire_bytes();
    if let Some(bw) = bandwidth {
        // The worker thread stalls for the transfer duration, exactly
        // like a synchronous socket write over a slow link.
        std::thread::sleep(bw.delay_for(bytes));
    }
    tx.send(MoverMessage::Block { processor, block })
        .map_err(|_| DvError::Runtime("client disconnected during data transfer".into()))?;
    Ok(bytes)
}

/// Send one columnar block, applying the bandwidth model if present.
/// Only *selected* rows count toward the simulated payload — exactly
/// what a serializing mover would put on the wire.
pub fn send_columns(
    tx: &Sender<MoverMessage>,
    processor: usize,
    block: ColumnBlock,
    bandwidth: Option<&BandwidthModel>,
) -> Result<usize> {
    let bytes = block.wire_bytes();
    if let Some(bw) = bandwidth {
        std::thread::sleep(bw.delay_for(bytes));
    }
    tx.send(MoverMessage::Columns { processor, block })
        .map_err(|_| DvError::Runtime("client disconnected during data transfer".into()))?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use dv_types::Value;

    #[test]
    fn delay_scales_with_bytes() {
        let bw = BandwidthModel { bytes_per_sec: 1000.0, latency: Duration::ZERO };
        assert_eq!(bw.delay_for(1000), Duration::from_secs(1));
        assert_eq!(bw.delay_for(250), Duration::from_millis(250));
        let with_lat = BandwidthModel { bytes_per_sec: 1000.0, latency: Duration::from_millis(5) };
        assert_eq!(with_lat.delay_for(0), Duration::from_millis(5));
    }

    #[test]
    fn send_block_counts_payload() {
        let (tx, rx) = unbounded();
        let mut b = RowBlock::new(0);
        b.rows.push(vec![Value::Int(1), Value::Double(2.0)]);
        let bytes = send_block(&tx, 3, b, None).unwrap();
        assert_eq!(bytes, 12);
        match rx.recv().unwrap() {
            MoverMessage::Block { processor, block } => {
                assert_eq!(processor, 3);
                assert_eq!(block.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_columns_counts_selected_payload() {
        use dv_types::{DataType, Value};
        let (tx, rx) = unbounded();
        let mut b = ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Double]);
        for i in 0..4 {
            b.columns[0].append_data().push_value(Value::Int(i));
            b.columns[1].append_data().push_value(Value::Double(i as f64));
        }
        b.advance_rows(4);
        b.set_selection(Some(vec![1, 3]));
        let bytes = send_columns(&tx, 2, b, None).unwrap();
        assert_eq!(bytes, 2 * 12);
        match rx.recv().unwrap() {
            MoverMessage::Columns { processor, block } => {
                assert_eq!(processor, 2);
                assert_eq!(block.selected(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_to_disconnected_client_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        let b = RowBlock::new(0);
        assert!(send_block(&tx, 0, b, None).is_err());
    }

    #[test]
    fn bandwidth_model_actually_delays() {
        let (tx, rx) = unbounded();
        let mut b = RowBlock::new(0);
        for i in 0..1000 {
            b.rows.push(vec![Value::Double(i as f64)]);
        }
        // 8000 bytes at 80 kB/s = 100 ms.
        let bw = BandwidthModel { bytes_per_sec: 80_000.0, latency: Duration::ZERO };
        let start = std::time::Instant::now();
        send_block(&tx, 0, b, Some(&bw)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(90));
        drop(rx);
    }
}
