//! Data mover service.
//!
//! Transfers selected row blocks from node workers to client
//! processors — the only inter-stage transport in the service plane.
//! Blocks flow over *bounded* channels sized by
//! `QueryOptions::mover_capacity`, so a slow absorber back-pressures
//! the node pipelines instead of buffering unboundedly; send-side
//! blocking is counted in [`MoverStats`] (queue-wait observability).
//! Local clients receive blocks at memory speed; remote clients (the
//! paper's Figure 8 query 5, "accessing the data from a remote
//! client") go through a [`BandwidthModel`] that delays each block
//! according to a link bandwidth and per-block latency, simulating the
//! wide-area transfer. The delay is charged on the *absorbing* side
//! ([`absorb_transfer`], the client session's thread) — it models the
//! client's ingest link, so concurrent queries overlap their stalls
//! while a slow client back-pressures only its own node pipelines
//! through the bounded channel. The simulated transfer sleeps in short
//! slices and polls the query's [`CancelToken`] between them, so an
//! abort or deadline interrupts a block mid-"flight".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel::{Sender, TrySendError};
use dv_types::{AggBlock, CancelToken, ColumnBlock, DvError, Result, RowBlock};

/// Longest uninterruptible slice of a simulated transfer sleep.
const SLEEP_SLICE: Duration = Duration::from_millis(10);

/// Simulated network link for remote clients.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthModel {
    /// Payload bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-block latency (round-trip / framing overhead).
    pub latency: Duration,
}

impl BandwidthModel {
    /// A Fast-Ethernet-class link (the paper's cluster interconnect):
    /// 100 Mbit/s, negligible latency.
    pub fn fast_ethernet() -> BandwidthModel {
        BandwidthModel { bytes_per_sec: 12.5e6, latency: Duration::from_micros(100) }
    }

    /// A wide-area link for remote-client experiments: 10 Mbit/s,
    /// 20 ms latency.
    pub fn wide_area() -> BandwidthModel {
        BandwidthModel { bytes_per_sec: 1.25e6, latency: Duration::from_millis(20) }
    }

    /// Transfer delay of a payload of `bytes`.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

/// Shared atomic mover counters for one query, snapshotted into
/// `QueryStats::mover`.
#[derive(Debug, Default)]
pub struct MoverStats {
    /// Blocks handed to the transport.
    pub sends: AtomicU64,
    /// Sends that found the bounded channel full and had to wait.
    pub blocked_sends: AtomicU64,
    /// Total time senders spent blocked on a full channel.
    pub send_wait_ns: AtomicU64,
    /// Partial-aggregate blocks shipped (aggregation pushdown).
    pub agg_blocks: AtomicU64,
    /// Rows folded into node-side accumulators before shipping.
    pub agg_rows_in: AtomicU64,
    /// Accumulator entries (per-AFC group partials) actually shipped.
    pub agg_groups_out: AtomicU64,
    /// High-water mark of blocks buffered in the absorber's reorder
    /// maps (set by the absorbing side; bounds client-side memory).
    pub peak_buffered_blocks: AtomicU64,
}

impl MoverStats {
    /// Copy the counters into a plain snapshot.
    pub fn snapshot(&self) -> MoverSnapshot {
        MoverSnapshot {
            sends: self.sends.load(Ordering::Relaxed),
            blocked_sends: self.blocked_sends.load(Ordering::Relaxed),
            send_wait: Duration::from_nanos(self.send_wait_ns.load(Ordering::Relaxed)),
            agg_blocks: self.agg_blocks.load(Ordering::Relaxed),
            agg_rows_in: self.agg_rows_in.load(Ordering::Relaxed),
            agg_groups_out: self.agg_groups_out.load(Ordering::Relaxed),
            peak_buffered_blocks: self.peak_buffered_blocks.load(Ordering::Relaxed),
        }
    }

    /// Record the absorber's current buffered-block count, keeping the
    /// high-water mark.
    pub fn note_buffered(&self, buffered: u64) {
        self.peak_buffered_blocks.fetch_max(buffered, Ordering::Relaxed);
    }
}

/// Point-in-time view of [`MoverStats`], carried in
/// `QueryStats::mover`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoverSnapshot {
    /// Blocks handed to the transport.
    pub sends: u64,
    /// Sends that found the bounded channel full and had to wait.
    pub blocked_sends: u64,
    /// Total sender time spent blocked on a full channel.
    pub send_wait: Duration,
    /// Partial-aggregate blocks shipped (aggregation pushdown).
    pub agg_blocks: u64,
    /// Rows folded into node-side accumulators before shipping.
    pub agg_rows_in: u64,
    /// Accumulator entries (per-AFC group partials) shipped.
    pub agg_groups_out: u64,
    /// High-water mark of blocks buffered in the absorber's reorder
    /// maps.
    pub peak_buffered_blocks: u64,
}

impl MoverSnapshot {
    /// Rows-in to groups-out reduction ratio of the aggregation
    /// pushdown (`None` when no partials were shipped).
    pub fn agg_reduction(&self) -> Option<f64> {
        (self.agg_groups_out > 0).then(|| self.agg_rows_in as f64 / self.agg_groups_out as f64)
    }
}

/// Message from node workers to the client-side collector.
///
/// Data messages carry a sequence tag: the *scanned ordinal* of the
/// source block's first pre-filter row within its node's schedule — a
/// plan-time quantity, unique and monotonic in schedule order per
/// node. The absorbing side buffers arrivals and reassembles them
/// sorted by `(source node, seq)`, so client tables come out
/// bit-identical no matter how morsel workers interleaved or stole
/// the work that produced the blocks.
#[derive(Debug)]
pub enum MoverMessage {
    /// A block destined for client processor `processor`.
    Block { processor: usize, seq: u64, block: RowBlock },
    /// A columnar block destined for client processor `processor`
    /// (rows are reconstituted only when the client absorbs it).
    Columns { processor: usize, seq: u64, block: ColumnBlock },
    /// A partial-aggregate block (aggregation pushdown). Entries carry
    /// their own per-AFC sequence tags, so no message-level `seq`.
    Agg { processor: usize, block: AggBlock },
    /// Control message: the sending worker finished every block of the
    /// morsel starting at scanned ordinal `base` and spanning `rows`
    /// pre-filter rows on `node`. The channel is per-sender FIFO, so
    /// this always arrives after the morsel's data blocks; the absorber
    /// uses the contiguous-coverage watermark it implies to drain its
    /// reorder buffer early. Purely advisory — correctness never
    /// depends on it (the node's `Done` drain is the safety net).
    MorselDone { node: usize, base: u64, rows: u64 },
    /// Node `node` finished (successfully or not), reporting how long
    /// its extract/filter/partition/move pipeline ran.
    Done { node: usize, result: Result<()>, busy: std::time::Duration },
}

/// Sleep for the simulated transfer duration in short slices, polling
/// the cancel token between them so an abort interrupts the transfer.
fn sleep_cancellable(total: Duration, cancel: &CancelToken) -> Result<()> {
    let mut remaining = total;
    while remaining > Duration::ZERO {
        cancel.check()?;
        let step = remaining.min(SLEEP_SLICE);
        std::thread::sleep(step);
        remaining -= step;
    }
    cancel.check()
}

/// Hand one message to the transport: a non-blocking attempt first so
/// a full channel is observed (and its wait timed) rather than folded
/// silently into the blocking send.
fn send_msg(tx: &Sender<MoverMessage>, msg: MoverMessage, stats: &MoverStats) -> Result<()> {
    let disconnected = || DvError::Runtime("client disconnected during data transfer".into());
    stats.sends.fetch_add(1, Ordering::Relaxed);
    match tx.try_send(msg) {
        Ok(()) => Ok(()),
        Err(TrySendError::Disconnected(_)) => Err(disconnected()),
        Err(TrySendError::Full(msg)) => {
            stats.blocked_sends.fetch_add(1, Ordering::Relaxed);
            let wait_start = Instant::now();
            let sent = tx.send(msg);
            stats.send_wait_ns.fetch_add(wait_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            sent.map_err(|_| disconnected())
        }
    }
}

/// Charge the simulated transfer of `bytes` at the absorbing end: the
/// client's ingest link. A `None` model is a local client — no delay.
pub fn absorb_transfer(
    bandwidth: Option<&BandwidthModel>,
    bytes: usize,
    cancel: &CancelToken,
) -> Result<()> {
    match bandwidth {
        Some(bw) => sleep_cancellable(bw.delay_for(bytes), cancel),
        None => Ok(()),
    }
}

/// Send one block into the bounded transport, tagged with its source
/// block's scanned ordinal. Returns the wire bytes of the payload.
pub fn send_block(
    tx: &Sender<MoverMessage>,
    processor: usize,
    seq: u64,
    block: RowBlock,
    stats: &MoverStats,
) -> Result<usize> {
    let bytes = block.wire_bytes();
    send_msg(tx, MoverMessage::Block { processor, seq, block }, stats)?;
    Ok(bytes)
}

/// Send one columnar block into the bounded transport, tagged with its
/// source block's scanned ordinal. Only *selected* rows count toward
/// the payload — exactly what a serializing mover would put on the
/// wire.
pub fn send_columns(
    tx: &Sender<MoverMessage>,
    processor: usize,
    seq: u64,
    block: ColumnBlock,
    stats: &MoverStats,
) -> Result<usize> {
    let bytes = block.wire_bytes();
    send_msg(tx, MoverMessage::Columns { processor, seq, block }, stats)?;
    Ok(bytes)
}

/// Send one partial-aggregate block into the bounded transport.
/// Returns the wire bytes of the payload (seq tags + keys +
/// accumulator states). `rows_in` is the number of pre-aggregation
/// rows the block's accumulators absorbed, kept for the
/// pushdown-reduction counters.
pub fn send_agg(
    tx: &Sender<MoverMessage>,
    processor: usize,
    block: AggBlock,
    rows_in: u64,
    stats: &MoverStats,
) -> Result<usize> {
    let bytes = block.wire_bytes();
    stats.agg_blocks.fetch_add(1, Ordering::Relaxed);
    stats.agg_rows_in.fetch_add(rows_in, Ordering::Relaxed);
    stats.agg_groups_out.fetch_add(block.len() as u64, Ordering::Relaxed);
    send_msg(tx, MoverMessage::Agg { processor, block }, stats)?;
    Ok(bytes)
}

/// Send the advisory end-of-morsel marker. A control frame: it is not
/// charged to the bandwidth model and does not count as a payload send.
pub fn send_morsel_done(
    tx: &Sender<MoverMessage>,
    node: usize,
    base: u64,
    rows: u64,
) -> Result<()> {
    tx.send(MoverMessage::MorselDone { node, base, rows })
        .map_err(|_| DvError::Runtime("client disconnected during data transfer".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use dv_types::Value;

    #[test]
    fn delay_scales_with_bytes() {
        let bw = BandwidthModel { bytes_per_sec: 1000.0, latency: Duration::ZERO };
        assert_eq!(bw.delay_for(1000), Duration::from_secs(1));
        assert_eq!(bw.delay_for(250), Duration::from_millis(250));
        let with_lat = BandwidthModel { bytes_per_sec: 1000.0, latency: Duration::from_millis(5) };
        assert_eq!(with_lat.delay_for(0), Duration::from_millis(5));
    }

    #[test]
    fn send_block_counts_payload() {
        let (tx, rx) = unbounded();
        let stats = MoverStats::default();
        let mut b = RowBlock::new(0);
        b.rows.push(vec![Value::Int(1), Value::Double(2.0)]);
        let bytes = send_block(&tx, 3, 40, b, &stats).unwrap();
        assert_eq!(bytes, 12);
        match rx.recv().unwrap() {
            MoverMessage::Block { processor, seq, block } => {
                assert_eq!(processor, 3);
                assert_eq!(seq, 40);
                assert_eq!(block.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let snap = stats.snapshot();
        assert_eq!(snap.sends, 1);
        assert_eq!(snap.blocked_sends, 0, "unbounded channel never blocks");
    }

    #[test]
    fn send_columns_counts_selected_payload() {
        use dv_types::{DataType, Value};
        let (tx, rx) = unbounded();
        let mut b = ColumnBlock::with_dtypes(0, &[DataType::Int, DataType::Double]);
        for i in 0..4 {
            b.columns[0].append_data().push_value(Value::Int(i));
            b.columns[1].append_data().push_value(Value::Double(i as f64));
        }
        b.advance_rows(4);
        b.set_selection(Some(vec![1, 3]));
        let bytes = send_columns(&tx, 2, 8, b, &MoverStats::default()).unwrap();
        assert_eq!(bytes, 2 * 12);
        match rx.recv().unwrap() {
            MoverMessage::Columns { processor, seq, block } => {
                assert_eq!(processor, 2);
                assert_eq!(seq, 8);
                assert_eq!(block.selected(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_to_disconnected_client_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        let b = RowBlock::new(0);
        assert!(send_block(&tx, 0, 0, b, &MoverStats::default()).is_err());
    }

    #[test]
    fn bandwidth_model_actually_delays() {
        // 8000 bytes at 80 kB/s = 100 ms.
        let bw = BandwidthModel { bytes_per_sec: 80_000.0, latency: Duration::ZERO };
        let start = std::time::Instant::now();
        absorb_transfer(Some(&bw), 8000, &CancelToken::new()).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(90));
        // A local client pays nothing.
        let start = std::time::Instant::now();
        absorb_transfer(None, usize::MAX, &CancelToken::new()).unwrap();
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn cancel_interrupts_simulated_transfer() {
        // 8000 bytes at 8 kB/s = 1 s, but the deadline trips in 30 ms.
        let bw = BandwidthModel { bytes_per_sec: 8_000.0, latency: Duration::ZERO };
        let cancel = CancelToken::with_timeout(Duration::from_millis(30));
        let start = std::time::Instant::now();
        let err = absorb_transfer(Some(&bw), 8000, &cancel).unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        assert!(start.elapsed() < Duration::from_millis(500), "abort must cut the sleep short");
    }

    #[test]
    fn full_bounded_channel_counts_blocked_send() {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let stats = MoverStats::default();
        let mk = || {
            let mut b = RowBlock::new(0);
            b.rows.push(vec![Value::Int(1)]);
            b
        };
        send_block(&tx, 0, 0, mk(), &stats).unwrap();
        // The channel is full: the next send must block until the
        // consumer drains one message.
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let first = rx.recv();
            let second = rx.recv();
            (first.is_ok(), second.is_ok())
        });
        send_block(&tx, 0, 1, mk(), &stats).unwrap();
        let (first, second) = consumer.join().unwrap();
        assert!(first && second);
        let snap = stats.snapshot();
        assert_eq!(snap.sends, 2);
        assert_eq!(snap.blocked_sends, 1);
        assert!(snap.send_wait > Duration::ZERO);
    }
}
