//! Cost-based admission: statically over-budget queries are rejected
//! with a DV-coded error before any fragment runs, while in-budget
//! queries on the same server produce results bit-identical to a
//! no-budget run.

use std::path::PathBuf;
use std::sync::Arc;

use dv_datagen::{ipars, IparsConfig, IparsLayout};
use dv_layout::plan::compile_from_text;
use dv_sql::UdfRegistry;
use dv_storm::{QueryOptions, ServiceConfig, StormServer};
use dv_types::DvError;

fn tmpbase(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dv-storm-cost-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn servers(tag: &str, config: ServiceConfig) -> (StormServer, StormServer) {
    let cfg = IparsConfig::tiny();
    let base = tmpbase(tag);
    let desc = ipars::generate(&base, &cfg, IparsLayout::I).unwrap();
    let compiled = Arc::new(compile_from_text(&desc, &base).unwrap());
    let plain = StormServer::new(Arc::clone(&compiled), UdfRegistry::with_builtins());
    let budgeted = StormServer::with_config(compiled, UdfRegistry::with_builtins(), config);
    (plain, budgeted)
}

#[test]
fn over_budget_query_rejected_with_dv401() {
    let (_, budgeted) =
        servers("dv401", ServiceConfig { max_plan_bytes: Some(8), ..ServiceConfig::default() });
    let err = budgeted.execute_table("SELECT * FROM IparsData").unwrap_err();
    assert!(err.is_cost_rejected(), "expected cost rejection, got: {err}");
    assert!(err.to_string().contains("[DV401]"), "{err}");
}

#[test]
fn over_budget_group_query_rejected_with_dv404() {
    // SOIL is a stored float: its group-cardinality hull is unbounded
    // below the row count, so a tiny memory budget must reject.
    let (_, budgeted) =
        servers("dv404", ServiceConfig { max_group_memory: Some(16), ..ServiceConfig::default() });
    let err =
        budgeted.execute_table("SELECT SOIL, COUNT(*) FROM IparsData GROUP BY SOIL").unwrap_err();
    assert!(matches!(err, DvError::CostBudget { code: "DV404", .. }), "got: {err}");

    // A scan with no aggregation has no group state to bound — the
    // same budget admits it.
    let (table, _) = budgeted.execute_table("SELECT TIME FROM IparsData WHERE TIME < 0").unwrap();
    assert_eq!(table.len(), 0);
}

#[test]
fn in_budget_query_is_bit_identical_to_no_budget_run() {
    let (plain, budgeted) = servers(
        "identical",
        ServiceConfig {
            max_plan_bytes: Some(u64::MAX),
            max_group_memory: Some(u64::MAX),
            ..ServiceConfig::default()
        },
    );
    let opts = QueryOptions::default();
    for sql in [
        "SELECT * FROM IparsData",
        "SELECT REL, TIME, SOIL FROM IparsData WHERE TIME >= 2 AND SOIL > 0.4",
        "SELECT REL, COUNT(*), AVG(SOIL) FROM IparsData GROUP BY REL",
    ] {
        let (want, want_stats) = plain.execute(sql, &opts).unwrap();
        let (got, got_stats) = budgeted.execute(sql, &opts).unwrap();
        assert_eq!(want.len(), got.len(), "{sql}");
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.rows, g.rows, "{sql}");
        }
        assert_eq!(want_stats.rows_scanned, got_stats.rows_scanned, "{sql}");
        assert_eq!(want_stats.rows_selected, got_stats.rows_selected, "{sql}");
        assert_eq!(want_stats.bytes_read, got_stats.bytes_read, "{sql}");
    }
}
