//! Property tests for the partition generation service: no row is
//! lost or duplicated by any strategy, hash partitioning is
//! value-consistent, range partitioning respects its bounds.

use proptest::prelude::*;

use dv_storm::partition::partition_block;
use dv_storm::PartitionStrategy;
use dv_types::{RowBlock, Value};

fn block_of(vals: &[(i32, f64)]) -> RowBlock {
    let mut b = RowBlock::new(0);
    for (a, x) in vals {
        b.rows.push(vec![Value::Int(*a), Value::Double(*x)]);
    }
    b
}

fn arb_strategy() -> impl Strategy<Value = PartitionStrategy> {
    prop_oneof![
        Just(PartitionStrategy::RoundRobin),
        (0usize..2).prop_map(|position| PartitionStrategy::HashAttr { position }),
        prop::collection::vec(-50.0f64..50.0, 0..4).prop_map(|mut bounds| {
            bounds.sort_by(f64::total_cmp);
            PartitionStrategy::RangeAttr { position: 1, bounds }
        }),
    ]
}

proptest! {
    #[test]
    fn partitioning_conserves_rows(
        vals in prop::collection::vec((-20i32..20, -50.0f64..50.0), 0..300),
        strategy in arb_strategy(),
        processors in 1usize..6,
        base in 0u64..100,
    ) {
        let block = block_of(&vals);
        let parts = partition_block(block, &strategy, processors, base, None);
        prop_assert_eq!(parts.len(), processors);

        // Conservation: the multiset of rows is unchanged.
        let mut merged: Vec<Vec<Value>> =
            parts.iter().flat_map(|p| p.rows.iter().cloned()).collect();
        let mut original: Vec<Vec<Value>> = block_of(&vals).rows;
        merged.sort();
        original.sort();
        prop_assert_eq!(merged, original);
    }

    #[test]
    fn hash_is_value_consistent(
        vals in prop::collection::vec(-5i32..5, 1..200),
        processors in 1usize..6,
    ) {
        let rows: Vec<(i32, f64)> = vals.iter().map(|v| (*v, 0.0)).collect();
        let parts = partition_block(
            block_of(&rows),
            &PartitionStrategy::HashAttr { position: 0 },
            processors,
            0,
            None,
        );
        // No value appears on two different processors.
        let mut owner: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        for (p, part) in parts.iter().enumerate() {
            for row in &part.rows {
                let v = row[0].as_i64().unwrap();
                if let Some(prev) = owner.insert(v, p) {
                    prop_assert_eq!(prev, p, "value {} split across processors", v);
                }
            }
        }
    }

    #[test]
    fn range_respects_bounds(
        vals in prop::collection::vec(-50.0f64..50.0, 1..200),
        raw_bounds in prop::collection::vec(-40.0f64..40.0, 1..4),
    ) {
        let mut bounds = raw_bounds;
        bounds.sort_by(f64::total_cmp);
        let processors = bounds.len() + 1;
        let rows: Vec<(i32, f64)> = vals.iter().map(|v| (0, *v)).collect();
        let strategy = PartitionStrategy::RangeAttr { position: 1, bounds: bounds.clone() };
        let parts = partition_block(block_of(&rows), &strategy, processors, 0, None);
        for (p, part) in parts.iter().enumerate() {
            for row in &part.rows {
                let v = row[1].as_f64();
                if p > 0 {
                    prop_assert!(v >= bounds[p - 1], "proc {} got {} below {}", p, v, bounds[p - 1]);
                }
                if p < bounds.len() {
                    prop_assert!(v < bounds[p], "proc {} got {} at/above {}", p, v, bounds[p]);
                }
            }
        }
    }

    #[test]
    fn round_robin_is_balanced(
        n in 0usize..300,
        processors in 1usize..6,
    ) {
        let rows: Vec<(i32, f64)> = (0..n as i32).map(|i| (i, 0.0)).collect();
        let parts = partition_block(block_of(&rows), &PartitionStrategy::RoundRobin, processors, 0, None);
        let max = parts.iter().map(|p| p.len()).max().unwrap_or(0);
        let min = parts.iter().map(|p| p.len()).min().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }
}
