//! End-to-end tests: generate tiny datasets, run SQL through the full
//! service stack, verify against independently computed references.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dv_datagen::{ipars, titan, IparsConfig, IparsLayout, TitanConfig};
use dv_layout::plan::compile_from_text;
use dv_sql::UdfRegistry;
use dv_storm::{BandwidthModel, PartitionStrategy, QueryOptions, StormServer};
use dv_types::{Schema, Table, Value};

fn tmpbase(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dv-storm-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn ipars_server(base: &Path, cfg: &IparsConfig, layout: IparsLayout) -> StormServer {
    let desc = ipars::generate(base, cfg, layout).unwrap();
    let compiled = compile_from_text(&desc, base).unwrap();
    StormServer::new(Arc::new(compiled), UdfRegistry::with_builtins())
}

/// Reference evaluation: filter + project the full logical row set in
/// plain Rust.
fn ipars_reference(
    cfg: &IparsConfig,
    schema: &Schema,
    keep: impl Fn(&[Value]) -> bool,
    project: &[&str],
) -> Table {
    let idx: Vec<usize> = project.iter().map(|p| schema.index_of(p).unwrap()).collect();
    let mut t = Table::empty(schema.project(&idx));
    for row in cfg.all_rows() {
        if keep(&row) {
            t.rows.push(idx.iter().map(|&i| row[i]).collect());
        }
    }
    t
}

#[test]
fn full_scan_matches_reference_all_layouts() {
    let cfg = IparsConfig::tiny();
    for layout in IparsLayout::all() {
        let base = tmpbase(&format!("scan-{}", layout.tag()));
        let server = ipars_server(&base, &cfg, layout);
        let (table, stats) = server.execute_table("SELECT * FROM IparsData").unwrap();
        assert_eq!(table.len() as u64, cfg.rows(), "{}", layout.label());
        assert_eq!(stats.rows_scanned, cfg.rows());
        assert_eq!(stats.rows_selected, cfg.rows());

        let all_names: Vec<&str> =
            server.model().schema.attributes().iter().map(|a| a.name.as_str()).collect();
        let reference = ipars_reference(&cfg, &server.model().schema, |_| true, &all_names);
        assert!(table.same_rows(&reference), "{} full scan mismatch", layout.label());
    }
}

#[test]
fn filtered_query_matches_reference_all_layouts() {
    let cfg = IparsConfig::tiny();
    let schema_probe = {
        let base = tmpbase("probe");
        let server = ipars_server(&base, &cfg, IparsLayout::I);
        server.model().schema.clone()
    };
    let soil_idx = schema_probe.index_of("SOIL").unwrap();
    let time_idx = schema_probe.index_of("TIME").unwrap();
    let rel_idx = schema_probe.index_of("REL").unwrap();

    let sql = "SELECT REL, TIME, X, SOIL FROM IparsData \
               WHERE REL = 1 AND TIME >= 2 AND SOIL > 0.4";
    let reference = ipars_reference(
        &cfg,
        &schema_probe,
        |row| {
            row[rel_idx].as_f64() == 1.0
                && row[time_idx].as_f64() >= 2.0
                && row[soil_idx].as_f64() > 0.4
        },
        &["REL", "TIME", "X", "SOIL"],
    );
    assert!(!reference.is_empty(), "reference should select something");

    for layout in IparsLayout::all() {
        let base = tmpbase(&format!("filter-{}", layout.tag()));
        let server = ipars_server(&base, &cfg, layout);
        let (table, _) = server.execute_table(sql).unwrap();
        assert!(
            table.same_rows(&reference),
            "{}: got {} rows, reference {}",
            layout.label(),
            table.len(),
            reference.len()
        );
    }
}

#[test]
fn udf_filter_matches_reference() {
    let cfg = IparsConfig::tiny();
    let base = tmpbase("udf");
    let server = ipars_server(&base, &cfg, IparsLayout::V);
    let schema = server.model().schema.clone();
    let (vx, vy, vz) = (
        schema.index_of("OILVX").unwrap(),
        schema.index_of("OILVY").unwrap(),
        schema.index_of("OILVZ").unwrap(),
    );
    let sql = "SELECT REL, TIME FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) <= 40.0";
    let reference = ipars_reference(
        &cfg,
        &schema,
        |row| {
            let (x, y, z) = (row[vx].as_f64(), row[vy].as_f64(), row[vz].as_f64());
            (x * x + y * y + z * z).sqrt() <= 40.0
        },
        &["REL", "TIME"],
    );
    let (table, stats) = server.execute_table(sql).unwrap();
    assert!(table.same_rows(&reference));
    assert!(stats.rows_selected < stats.rows_scanned);
}

#[test]
fn pruning_reduces_bytes_read() {
    let cfg = IparsConfig::tiny();
    let base = tmpbase("prune");
    let server = ipars_server(&base, &cfg, IparsLayout::L0);
    let (_, full) = server.execute_table("SELECT * FROM IparsData").unwrap();
    let (_, pruned) =
        server.execute_table("SELECT * FROM IparsData WHERE TIME = 1 AND REL = 0").unwrap();
    assert!(pruned.bytes_read < full.bytes_read / 2);
    assert_eq!(pruned.rows_scanned, 8); // 2 dirs × 4 grid points
}

#[test]
fn partitioned_execution_conserves_rows() {
    let cfg = IparsConfig::tiny();
    let base = tmpbase("part");
    let server = ipars_server(&base, &cfg, IparsLayout::I);
    let opts = QueryOptions {
        client_processors: 4,
        partition: PartitionStrategy::RoundRobin,
        ..Default::default()
    };
    let (tables, stats) = server.execute("SELECT * FROM IparsData", &opts).unwrap();
    assert_eq!(tables.len(), 4);
    let total: usize = tables.iter().map(|t| t.len()).sum();
    assert_eq!(total as u64, cfg.rows());
    assert_eq!(stats.rows_selected, cfg.rows());
    // Round-robin is balanced within one block per node.
    let max = tables.iter().map(|t| t.len()).max().unwrap();
    let min = tables.iter().map(|t| t.len()).min().unwrap();
    assert!(max - min <= cfg.rows() as usize / 4, "unbalanced: {max} vs {min}");
}

#[test]
fn hash_partition_groups_by_attr() {
    let cfg = IparsConfig::tiny();
    let base = tmpbase("hashpart");
    let server = ipars_server(&base, &cfg, IparsLayout::I);
    // Output columns: REL at position 0.
    let opts = QueryOptions {
        client_processors: 2,
        partition: PartitionStrategy::HashAttr { position: 0 },
        ..Default::default()
    };
    let (tables, _) = server.execute("SELECT REL, TIME FROM IparsData", &opts).unwrap();
    for t in &tables {
        let rels: std::collections::BTreeSet<i64> =
            t.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        // Each processor sees at most the distinct RELs that hash to it;
        // no REL may appear on two processors.
        for other in &tables {
            if std::ptr::eq(t, other) {
                continue;
            }
            let other_rels: std::collections::BTreeSet<i64> =
                other.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
            assert!(rels.is_disjoint(&other_rels) || rels == other_rels && rels.is_empty());
        }
    }
}

#[test]
fn remote_client_bandwidth_slows_transfer() {
    let cfg = IparsConfig::tiny();
    let base = tmpbase("remote");
    let server = ipars_server(&base, &cfg, IparsLayout::I);
    let local = QueryOptions::default();
    let remote = QueryOptions {
        bandwidth: Some(BandwidthModel {
            bytes_per_sec: 50_000.0,
            latency: std::time::Duration::from_millis(1),
        }),
        ..Default::default()
    };
    let sql = "SELECT * FROM IparsData";
    let (t1, s1) = server.execute(sql, &local).unwrap();
    let (t2, s2) = server.execute(sql, &remote).unwrap();
    assert!(t1[0].same_rows(&t2[0]));
    assert_eq!(s1.bytes_moved, s2.bytes_moved);
    // 48 rows × 86 bytes ≈ 4.1 kB at 50 kB/s ≈ 80 ms.
    assert!(s2.exec_time > s1.exec_time + std::time::Duration::from_millis(20));
}

#[test]
fn intra_node_threads_same_result() {
    let cfg = IparsConfig::tiny();
    let base = tmpbase("intra");
    let server = ipars_server(&base, &cfg, IparsLayout::III);
    let opts = QueryOptions { intra_node_threads: 4, batch_rows: 4, ..Default::default() };
    let (par, _) = server.execute("SELECT * FROM IparsData WHERE SOIL > 0.3", &opts).unwrap();
    let (seq, _) = server.execute_table("SELECT * FROM IparsData WHERE SOIL > 0.3").unwrap();
    assert!(par[0].same_rows(&seq));
}

#[test]
fn titan_box_query_matches_reference() {
    let cfg = TitanConfig::tiny();
    let base = tmpbase("titan");
    let desc = titan::generate(&base, &cfg).unwrap();
    let compiled = compile_from_text(&desc, &base).unwrap();
    let server = StormServer::new(Arc::new(compiled), UdfRegistry::with_builtins());

    let sql = "SELECT * FROM TitanData WHERE X >= 0 AND X <= 30000 AND Y >= 0 AND \
               Y <= 30000 AND Z >= 0 AND Z <= 300";
    let (table, stats) = server.execute_table(sql).unwrap();

    let mut reference = Table::empty(server.model().schema.clone());
    for row in cfg.all_rows() {
        let (x, y, z) = (row[0].as_f64(), row[1].as_f64(), row[2].as_f64());
        if (0.0..=30000.0).contains(&x)
            && (0.0..=30000.0).contains(&y)
            && (0.0..=300.0).contains(&z)
        {
            reference.rows.push(row);
        }
    }
    assert!(!reference.is_empty());
    assert!(table.same_rows(&reference));
    // The chunk index must have pruned something: fewer rows scanned
    // than the full dataset.
    assert!(stats.rows_scanned < cfg.points as u64);
}

#[test]
fn titan_sensor_filter_matches_reference() {
    let cfg = TitanConfig { nodes: 2, ..TitanConfig::tiny() };
    let base = tmpbase("titan-s1");
    let desc = titan::generate(&base, &cfg).unwrap();
    let compiled = compile_from_text(&desc, &base).unwrap();
    let server = StormServer::new(Arc::new(compiled), UdfRegistry::with_builtins());

    let (table, stats) = server.execute_table("SELECT * FROM TitanData WHERE S1 < 0.25").unwrap();
    let expected = cfg.all_rows().filter(|r| r[3].as_f64() < 0.25).count();
    assert_eq!(table.len(), expected);
    // Sensor filters cannot prune chunks: full scan.
    assert_eq!(stats.rows_scanned, cfg.points as u64);
}

#[test]
fn titan_distance_udf() {
    let cfg = TitanConfig::tiny();
    let base = tmpbase("titan-dist");
    let desc = titan::generate(&base, &cfg).unwrap();
    let compiled = compile_from_text(&desc, &base).unwrap();
    let server = StormServer::new(Arc::new(compiled), UdfRegistry::with_builtins());

    let (table, _) = server
        .execute_table("SELECT X, Y, Z FROM TitanData WHERE DISTANCE(X, Y, Z) < 20000.0")
        .unwrap();
    let expected = cfg
        .all_rows()
        .filter(|r| {
            let (x, y, z) = (r[0].as_f64(), r[1].as_f64(), r[2].as_f64());
            (x * x + y * y + z * z).sqrt() < 20000.0
        })
        .count();
    assert_eq!(table.len(), expected);
}

#[test]
fn empty_result_is_clean() {
    let cfg = IparsConfig::tiny();
    let base = tmpbase("empty");
    let server = ipars_server(&base, &cfg, IparsLayout::II);
    let (table, stats) =
        server.execute_table("SELECT * FROM IparsData WHERE TIME > 100000").unwrap();
    assert!(table.is_empty());
    assert_eq!(stats.rows_scanned, 0);
    assert_eq!(stats.bytes_read, 0);
}

#[test]
fn sequential_nodes_same_result_and_busy_times() {
    let cfg = IparsConfig::tiny();
    let base = tmpbase("seqnodes");
    let server = ipars_server(&base, &cfg, IparsLayout::I);
    let opts = QueryOptions { sequential_nodes: true, ..Default::default() };
    let sql = "SELECT * FROM IparsData WHERE SOIL > 0.2";
    let (seq_tables, seq_stats) = server.execute(sql, &opts).unwrap();
    let (par_table, par_stats) = server.execute_table(sql).unwrap();
    assert!(seq_tables[0].same_rows(&par_table));
    // One busy sample per node in both modes.
    assert_eq!(seq_stats.node_busy.len(), 2);
    assert_eq!(par_stats.node_busy.len(), 2);
    // Simulated parallel time is bounded by total wall time in
    // sequential mode (it takes the max, not the sum).
    assert!(seq_stats.simulated_parallel_time() <= seq_stats.total_time());
}
