//! dv-cost: static per-plan resource bounds.
//!
//! Given a compiled [`QueryPlan`], derive **guaranteed upper bounds**
//! on every resource the runtime spends executing it: rows scanned,
//! bytes read and issued (after pruning and run coalescing), syscall
//! count, mover wire bytes (with the aggregation reduction bound),
//! and peak absorber reorder-buffer occupancy. The bounds are
//! closed-form intervals computed from the same abstract domains the
//! planner itself uses — the descriptor's affine extent domain, the
//! per-AFC implicit-coordinate hulls, and the I/O scheduler's
//! coalescing parameters — so they hold for *every* execution of the
//! plan, on any thread count, steal order, or cache state.
//!
//! # Soundness argument (per bound)
//!
//! * `rows_scanned` — exact: every retained AFC materializes exactly
//!   `num_rows` rows; pruned AFCs were dropped from the plan.
//! * `rows_selected` — at most `rows_scanned`; at least the row count
//!   of AFCs whose prune verdict is `Full` (the filter is provably
//!   true there and skipped at runtime).
//! * `bytes_read` — exact: `Σ num_rows × stride` over retained AFC
//!   entries; both the direct read path and the I/O scheduler charge
//!   exactly the entry runs.
//! * `read_syscalls` / `io_runs` — at most one syscall per entry run
//!   (`Σ entries`); coalescing and the segment cache only merge or
//!   absorb reads, never split them.
//! * `bytes_issued` — the scheduler merges runs whose gap is at most
//!   `coalesce_gap`; each merge adds at most `coalesce_gap` slack
//!   bytes and there are fewer merges than runs, so issued bytes
//!   never exceed `bytes_read + runs × coalesce_gap`. Overlap
//!   deduplication and cache hits only reduce the total. The direct
//!   path issues exactly the planned bytes.
//! * `mover_sends` — scans ship at most one block per AFC (blocks
//!   batch one *or more* AFCs) partitioned across at most
//!   `client_processors` sends each. Aggregation pushdown ships at
//!   most one partial block per morsel (morsels group whole AFCs)
//!   plus one per `AGG_FLUSH_ENTRIES` accumulated group entries.
//! * `mover_bytes` — scans wire at most `rows × output-row width`
//!   (only selected rows are serialized). Pushdown wires at most
//!   `group bound × per-entry bytes` (seq tag + packed keys +
//!   accumulator states).
//! * `agg_groups` — per AFC, the distinct group-key count is bounded
//!   by `min(num_rows, Π per-key cardinality)` where a constant
//!   implicit contributes 1, a non-degenerate affine implicit at most
//!   `num_rows`, and a stored attribute is unbounded (clamped by
//!   `num_rows`) — the aggregation reduction bound.
//! * `peak_buffered_blocks` / `absorber_bytes` — the reorder buffer
//!   only ever holds blocks in flight, so the send bounds cap it;
//!   aggregate queries fold arrivals immediately and buffer nothing.
//!
//! The bounds are *contracts*, not estimates: `dv_storm` re-checks
//! every runtime counter against them at drain time under
//! `DV_COST_VALIDATE=1`, and the `cost_diff` differential suite
//! sweeps layouts × queries × prune/pushdown/thread settings
//! asserting no counter ever exceeds its bound.

use std::fmt;

use crate::afc::{Afc, ImplicitValue, WorkingSet};
use crate::io::IoOptions;
use crate::plan::{AggPrep, NodePlan, QueryPlan};
use crate::prune::PruneVerdict;

/// Node-side partial-aggregate flush threshold. Mirrors the executor's
/// `AGG_FLUSH_ENTRIES` in `dv_storm` (asserted equal by its tests):
/// every mid-morsel flush ships at least this many group entries, so
/// flush count is bounded by `groups / AGG_FLUSH_ENTRIES`.
pub const AGG_FLUSH_ENTRIES: u64 = 4096;

/// A closed interval bound `[lo, hi]` on one runtime counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBound {
    /// Guaranteed minimum (0 when nothing is promised).
    pub lo: u64,
    /// Guaranteed maximum.
    pub hi: u64,
}

impl CostBound {
    /// A counter known exactly at plan time.
    pub fn exact(v: u64) -> CostBound {
        CostBound { lo: v, hi: v }
    }

    /// An upper bound with no lower promise.
    pub fn at_most(hi: u64) -> CostBound {
        CostBound { lo: 0, hi }
    }

    /// Whether an observed counter value is consistent with the bound.
    pub fn admits(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

impl fmt::Display for CostBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "= {}", self.lo)
        } else if self.lo == 0 {
            write!(f, "<= {}", self.hi)
        } else {
            write!(f, "{}..={}", self.lo, self.hi)
        }
    }
}

/// Execution parameters the bounds depend on (everything else comes
/// from the plan itself).
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Client processors receiving partitioned blocks.
    pub client_processors: usize,
    /// Whether reads go through the I/O scheduler (columnar engine
    /// with `IoOptions::enabled`). The direct path issues exactly the
    /// planned bytes in exactly one syscall per entry run.
    pub io_enabled: bool,
    /// The scheduler's run-coalescing gap (slack bytes per merge).
    pub coalesce_gap: u64,
    /// Whether the query carries a `WHERE` clause. Without one every
    /// scanned row is selected, which sharpens `rows_selected` to an
    /// exact bound.
    pub has_predicate: bool,
}

impl CostParams {
    pub fn new(io: &IoOptions, client_processors: usize, has_predicate: bool) -> CostParams {
        CostParams {
            client_processors: client_processors.max(1),
            io_enabled: io.enabled,
            coalesce_gap: io.coalesce_gap,
            has_predicate,
        }
    }
}

impl Default for CostParams {
    fn default() -> CostParams {
        CostParams::new(&IoOptions::default(), 1, true)
    }
}

/// One counter observed to escape its static bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostViolation {
    /// Name of the violated counter.
    pub counter: &'static str,
    /// The observed runtime value.
    pub actual: u64,
    /// The static bound it escaped.
    pub bound: CostBound,
}

impl fmt::Display for CostViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {} escapes static bound {}", self.counter, self.actual, self.bound)
    }
}

/// Plain runtime counter values to check against a report — a
/// dependency-free mirror of the relevant `QueryStats` fields, so
/// validation lives next to the analysis instead of in `dv_storm`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeCounters {
    pub rows_scanned: u64,
    pub rows_selected: u64,
    pub bytes_read: u64,
    pub afcs: u64,
    pub io_runs: u64,
    pub read_syscalls: u64,
    pub bytes_issued: u64,
    pub mover_sends: u64,
    pub mover_bytes: u64,
    pub agg_groups: u64,
    pub peak_buffered_blocks: u64,
}

/// Static resource bounds of one compiled plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostReport {
    /// Rows materialized by extraction (exact).
    pub rows_scanned: CostBound,
    /// Rows surviving the filter.
    pub rows_selected: CostBound,
    /// Bytes decoded from data files (exact).
    pub bytes_read: CostBound,
    /// Aligned file chunks processed (exact).
    pub afcs: CostBound,
    /// Contiguous byte runs handed to the I/O layer.
    pub io_runs: CostBound,
    /// Read syscalls after coalescing and cache hits.
    pub read_syscalls: CostBound,
    /// Bytes issued to the filesystem (coalescing slack included).
    pub bytes_issued: CostBound,
    /// Blocks handed to the mover transport.
    pub mover_sends: CostBound,
    /// Payload bytes shipped over the mover.
    pub mover_bytes: CostBound,
    /// Partial-aggregate group entries shipped (the reduction bound).
    pub agg_groups: CostBound,
    /// High-water mark of the absorber's reorder buffer, in blocks.
    pub peak_buffered_blocks: CostBound,
    /// Peak absorber memory attributable to shipped payloads.
    pub absorber_bytes: CostBound,
    /// Width in bytes of one serialized output row.
    pub out_row_bytes: u64,
}

impl CostReport {
    /// Derive the bounds for `plan` under `params`.
    pub fn analyze(plan: &QueryPlan, params: &CostParams) -> CostReport {
        CostReport::analyze_nodes(
            &plan.node_plans,
            &plan.working,
            &plan.output_positions,
            plan.agg.as_ref(),
            plan.agg_pushdown,
            params,
        )
    }

    /// [`CostReport::analyze`] over a plan's parts — the entry point
    /// for callers holding a `QueryPrep` plus per-node plans rather
    /// than an assembled [`QueryPlan`] (the service plane).
    pub fn analyze_nodes(
        node_plans: &[NodePlan],
        working: &WorkingSet,
        output_positions: &[usize],
        agg: Option<&AggPrep>,
        agg_pushdown: bool,
        params: &CostParams,
    ) -> CostReport {
        let group_pos: Option<&[usize]> = agg.map(|a| a.group_pos.as_slice());

        let mut rows = 0u64;
        let mut bytes = 0u64;
        let mut afcs = 0u64;
        let mut runs = 0u64;
        let mut full_rows = 0u64;
        let mut groups_hi = 0u64;
        for np in node_plans {
            for (i, afc) in np.afcs.iter().enumerate() {
                rows = rows.saturating_add(afc.num_rows);
                bytes = bytes.saturating_add(afc.bytes_read());
                afcs += 1;
                runs = runs.saturating_add(afc.entries.len() as u64);
                if matches!(np.prune.verdicts.get(i), Some(PruneVerdict::Full)) {
                    full_rows = full_rows.saturating_add(afc.num_rows);
                }
                if let Some(keys) = group_pos {
                    groups_hi = groups_hi.saturating_add(afc_group_bound(afc, keys));
                }
            }
        }

        let out_row_bytes: u64 =
            output_positions.iter().map(|&p| working.dtypes[p].size() as u64).sum();

        let selected_lo = if params.has_predicate { full_rows } else { rows };
        let processors = params.client_processors as u64;

        let (mover_sends, mover_bytes, agg_groups, peak_blocks) = match agg {
            Some(a) if agg_pushdown => {
                // Pushdown: one partial block per morsel (morsels group
                // whole AFCs) plus one per AGG_FLUSH_ENTRIES entries;
                // each entry wires a seq tag, the packed key, and one
                // state per accumulator. Nothing enters the reorder
                // buffer — partials are collected, not reordered.
                let key_width = a.spec.group_by.len() as u64;
                let entry_bytes = 8
                    + key_width * 8
                    + a.spec
                        .aggs
                        .iter()
                        .map(|ag| match ag.func {
                            dv_types::AggFunc::Avg => 16u64,
                            _ => 8u64,
                        })
                        .sum::<u64>();
                let sends = afcs.saturating_add(groups_hi / AGG_FLUSH_ENTRIES);
                (
                    CostBound::at_most(sends),
                    CostBound::at_most(groups_hi.saturating_mul(entry_bytes)),
                    CostBound::at_most(groups_hi),
                    CostBound::exact(0),
                )
            }
            Some(_) => {
                // Ablation: nodes ship filtered projected rows (at most
                // one block per AFC, partitioned), and the absorber
                // folds each arrival immediately — nothing buffers and
                // no node-side aggregate counters move.
                (
                    CostBound::at_most(afcs.saturating_mul(processors)),
                    CostBound::at_most(rows.saturating_mul(out_row_bytes)),
                    CostBound::at_most(groups_hi),
                    CostBound::exact(0),
                )
            }
            None => {
                let sends = afcs.saturating_mul(processors);
                (
                    CostBound::at_most(sends),
                    CostBound::at_most(rows.saturating_mul(out_row_bytes)),
                    CostBound::exact(0),
                    CostBound::at_most(sends),
                )
            }
        };

        // All I/O accounting is in *logical* (decoded-image) bytes, so
        // the scheduled-path upper bounds hold for every codec: a
        // non-affine file decodes at most once per cache-missed range,
        // and decodes ≤ missed ranges ≤ runs. Only the direct path
        // loses *exactness* — a CSV/zstd run is served by a whole-file
        // decode rather than one positioned read — so its bounds
        // degrade to `at_most` when any node touches such a file.
        let nonaffine = node_plans.iter().any(|np| np.nonaffine);
        let (io_runs, read_syscalls, bytes_issued) = if params.io_enabled {
            (
                CostBound::at_most(runs),
                CostBound::at_most(runs),
                CostBound::at_most(bytes.saturating_add(runs.saturating_mul(params.coalesce_gap))),
            )
        } else if nonaffine {
            (CostBound::at_most(runs), CostBound::at_most(runs), CostBound::at_most(bytes))
        } else {
            (CostBound::exact(runs), CostBound::exact(runs), CostBound::exact(bytes))
        };

        CostReport {
            rows_scanned: CostBound::exact(rows),
            rows_selected: CostBound { lo: selected_lo, hi: rows },
            bytes_read: CostBound::exact(bytes),
            afcs: CostBound::exact(afcs),
            io_runs,
            read_syscalls,
            bytes_issued,
            mover_sends,
            mover_bytes,
            agg_groups,
            peak_buffered_blocks: peak_blocks,
            absorber_bytes: mover_bytes,
            out_row_bytes,
        }
    }

    /// Check observed runtime counters against the bounds, returning
    /// every violation (empty = the contract held).
    pub fn validate(&self, c: &RuntimeCounters) -> Vec<CostViolation> {
        let mut out = Vec::new();
        let mut check = |counter: &'static str, actual: u64, bound: CostBound, exact: bool| {
            let ok = if exact { bound.admits(actual) } else { actual <= bound.hi };
            if !ok {
                out.push(CostViolation { counter, actual, bound });
            }
        };
        check("rows_scanned", c.rows_scanned, self.rows_scanned, true);
        check("rows_selected", c.rows_selected, self.rows_selected, true);
        check("bytes_read", c.bytes_read, self.bytes_read, true);
        check("afcs", c.afcs, self.afcs, true);
        check("io_runs", c.io_runs, self.io_runs, false);
        check("read_syscalls", c.read_syscalls, self.read_syscalls, false);
        check("bytes_issued", c.bytes_issued, self.bytes_issued, false);
        check("mover_sends", c.mover_sends, self.mover_sends, false);
        check("mover_bytes", c.mover_bytes, self.mover_bytes, false);
        check("agg_groups", c.agg_groups, self.agg_groups, false);
        check("peak_buffered_blocks", c.peak_buffered_blocks, self.peak_buffered_blocks, false);
        out
    }

    /// The worst-case mover transfer time over a link of
    /// `bytes_per_sec` with `latency` charged per block send.
    pub fn transfer_time_hi(&self, bytes_per_sec: f64, latency: std::time::Duration) -> f64 {
        self.mover_bytes.hi as f64 / bytes_per_sec
            + latency.as_secs_f64() * self.mover_sends.hi as f64
    }

    /// Worst-case absorber group-table memory for aggregate queries:
    /// group entries × serialized entry width (0 for scans).
    pub fn group_memory_hi(&self) -> u64 {
        if self.agg_groups.hi == 0 {
            0
        } else {
            self.absorber_bytes.hi
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rows scanned {}, selected {}", self.rows_scanned, self.rows_selected)?;
        writeln!(
            f,
            "bytes read {}, issued {} (runs {}, syscalls {})",
            self.bytes_read, self.bytes_issued, self.io_runs, self.read_syscalls
        )?;
        write!(
            f,
            "mover sends {}, wire bytes {} ({} B/row), reorder blocks {}, absorber bytes {}",
            self.mover_sends,
            self.mover_bytes,
            self.out_row_bytes,
            self.peak_buffered_blocks,
            self.absorber_bytes
        )?;
        if self.agg_groups.hi > 0 {
            write!(f, "\nagg groups out {} (reduction bound)", self.agg_groups)?;
        }
        Ok(())
    }
}

/// The aggregation reduction bound for one AFC: distinct group keys
/// `≤ min(num_rows, Π per-key cardinality)`, where a constant implicit
/// coordinate contributes 1, a degenerate affine (step 0) contributes
/// 1, a non-degenerate affine at most `num_rows` distinct values, and
/// a stored attribute is statically unbounded (the `num_rows` clamp
/// absorbs it). `group_pos` indexes the working set, matching
/// `Afc::implicits`.
pub fn afc_group_bound(afc: &Afc, group_pos: &[usize]) -> u64 {
    let mut product: u64 = 1;
    for &pos in group_pos {
        let card = match afc.implicits.iter().find(|(p, _)| *p == pos) {
            Some((_, ImplicitValue::Const(_))) => 1,
            Some((_, ImplicitValue::Affine { step, .. })) => {
                if *step == 0 {
                    1
                } else {
                    afc.num_rows
                }
            }
            None => afc.num_rows,
        };
        product = product.saturating_mul(card.max(1));
    }
    product.min(afc.num_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CompiledDataset;
    use dv_sql::{bind, parse, UdfRegistry};
    use std::path::PathBuf;
    use std::sync::Arc;

    const DESC: &str = r#"
[S]
REL = short
TIME = int
SOIL = float

[D]
DatasetDescription = S
DIR[0] = n0/d

DATASET "D" {
  DATATYPE { S }
  DATAINDEX { TIME }
  DATA { DATASET leaf }
  DATASET "leaf" {
    DATASPACE { LOOP TIME 1:20:1 { LOOP G 1:10:1 { SOIL } } }
    DATA { DIR[0]/f$REL REL = 0:1:1 }
  }
}
"#;

    fn compiled() -> CompiledDataset {
        let model = Arc::new(dv_descriptor::compile(DESC).unwrap());
        CompiledDataset::compile(model, vec![PathBuf::from("/x")]).unwrap()
    }

    fn plan(c: &CompiledDataset, sql: &str) -> QueryPlan {
        let q = parse(sql).unwrap();
        let b = bind(&q, &c.model.schema, &UdfRegistry::with_builtins()).unwrap();
        c.plan_query(&b).unwrap()
    }

    #[test]
    fn scan_bounds_are_exact_where_promised() {
        let c = compiled();
        let p = plan(&c, "SELECT SOIL FROM D WHERE TIME >= 5 AND TIME <= 8");
        let r = CostReport::analyze(&p, &CostParams::default());
        assert_eq!(r.rows_scanned, CostBound::exact(p.planned_rows()));
        assert_eq!(r.bytes_read, CostBound::exact(p.planned_bytes()));
        assert!(r.rows_selected.hi == p.planned_rows());
        // TIME >= 5 AND TIME <= 8 is provably true on every retained
        // chunk, so the lower bound matches the upper.
        assert_eq!(r.rows_selected.lo, p.planned_rows(), "{r}");
        assert!(r.read_syscalls.hi >= 1);
        assert!(r.bytes_issued.hi >= r.bytes_read.hi);
        assert_eq!(r.agg_groups, CostBound::exact(0));
        // 2 files x 4 retained TIME steps -> 8 AFCs, one block each.
        assert_eq!(r.mover_sends.hi, r.afcs.hi);
        assert_eq!(r.out_row_bytes, 4);
        assert_eq!(r.mover_bytes.hi, p.planned_rows() * 4);
    }

    #[test]
    fn no_predicate_selects_everything() {
        let c = compiled();
        let p = plan(&c, "SELECT SOIL FROM D");
        let r = CostReport::analyze(&p, &CostParams::new(&IoOptions::default(), 2, false));
        assert_eq!(r.rows_selected, CostBound::exact(400));
        assert_eq!(r.mover_sends.hi, r.afcs.hi * 2, "partitioned across 2 processors");
    }

    #[test]
    fn direct_path_bounds_are_exact() {
        let c = compiled();
        let p = plan(&c, "SELECT SOIL FROM D WHERE TIME = 3");
        let io = IoOptions::disabled();
        let r = CostReport::analyze(&p, &CostParams::new(&io, 1, true));
        assert_eq!(r.read_syscalls.lo, r.read_syscalls.hi);
        assert_eq!(r.bytes_issued, r.bytes_read);
    }

    #[test]
    fn group_bound_uses_implicit_cardinality() {
        let c = compiled();
        // TIME is an implicit loop coordinate: constant within each
        // AFC, so each AFC contributes exactly one group.
        let p = plan(&c, "SELECT TIME, COUNT(*) FROM D GROUP BY TIME");
        let r = CostReport::analyze(&p, &CostParams::default());
        assert_eq!(r.agg_groups.hi, r.afcs.hi, "one group per TIME-constant AFC");
        assert!(r.agg_groups.hi < p.planned_rows(), "reduction bound bites");
        // Grouping by a stored attribute is unbounded per row.
        let p = plan(&c, "SELECT SOIL, COUNT(*) FROM D GROUP BY SOIL");
        let r = CostReport::analyze(&p, &CostParams::default());
        assert_eq!(r.agg_groups.hi, p.planned_rows());
        // Pushdown entry bytes: seq(8) + key(8) + COUNT state(8).
        assert_eq!(r.mover_bytes.hi, r.agg_groups.hi * 24);
        assert_eq!(r.peak_buffered_blocks, CostBound::exact(0));
    }

    #[test]
    fn afc_group_bound_handles_each_implicit_kind() {
        use crate::afc::Afc;
        use dv_types::{DataType, Value};
        let afc = Afc {
            num_rows: 100,
            entries: vec![],
            fields: vec![],
            implicits: vec![
                (0, ImplicitValue::Const(Value::Int(7))),
                (1, ImplicitValue::Affine { start: 0, step: 2, dtype: DataType::Int }),
                (2, ImplicitValue::Affine { start: 5, step: 0, dtype: DataType::Int }),
            ],
        };
        assert_eq!(afc_group_bound(&afc, &[0]), 1);
        assert_eq!(afc_group_bound(&afc, &[2]), 1);
        assert_eq!(afc_group_bound(&afc, &[1]), 100, "non-degenerate affine");
        assert_eq!(afc_group_bound(&afc, &[0, 2]), 1);
        assert_eq!(afc_group_bound(&afc, &[3]), 100, "stored attr clamps at rows");
        assert_eq!(afc_group_bound(&afc, &[1, 3]), 100, "product clamps at rows");
    }

    #[test]
    fn validate_reports_escapes_and_accepts_conforming_runs() {
        let c = compiled();
        let p = plan(&c, "SELECT SOIL FROM D WHERE TIME = 3");
        let r = CostReport::analyze(&p, &CostParams::default());
        let ok = RuntimeCounters {
            rows_scanned: r.rows_scanned.hi,
            rows_selected: r.rows_selected.lo,
            bytes_read: r.bytes_read.hi,
            afcs: r.afcs.hi,
            io_runs: 1,
            read_syscalls: 1,
            bytes_issued: r.bytes_read.hi,
            mover_sends: 1,
            mover_bytes: 8,
            agg_groups: 0,
            peak_buffered_blocks: 1,
        };
        assert!(r.validate(&ok).is_empty());
        let bad = RuntimeCounters { bytes_issued: u64::MAX, rows_scanned: 0, ..ok };
        let violations = r.validate(&bad);
        assert_eq!(
            violations.len(),
            2,
            "bytes_issued escapes, rows_scanned inexact: {violations:?}"
        );
        assert!(violations.iter().any(|v| v.counter == "bytes_issued"));
        let rendered = violations[0].to_string();
        assert!(rendered.contains("escapes static bound"), "{rendered}");
    }

    #[test]
    fn display_mentions_every_stage() {
        let c = compiled();
        let p = plan(&c, "SELECT TIME, AVG(SOIL) FROM D GROUP BY TIME");
        let r = CostReport::analyze(&p, &CostParams::default());
        let text = r.to_string();
        assert!(text.contains("rows scanned"), "{text}");
        assert!(text.contains("bytes read"), "{text}");
        assert!(text.contains("mover sends"), "{text}");
        assert!(text.contains("agg groups out"), "{text}");
    }
}
